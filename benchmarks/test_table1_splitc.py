"""Table 1: Split-C benchmark execution times.

Six benchmarks x {2, 4, 8} nodes x {Fast Ethernet / Pentium cluster,
ATM / SPARCstation cluster}, at the paper's full scale (512K keys per
node; 1024x1024 and 256x256 matrices).  Full-scale times come from the
analytic projection calibrated against the simulator (see DESIGN.md);
`test_ablation_analytic.py` validates that projection against full-DES
runs at reduced scale.

The source text of the paper has corrupted numeric columns for Table 1,
so the assertions here encode Section 5.2's qualitative claims instead
of absolute values: FE wins the small-message sorts, ATM wins the
matrix multiplies and the large-message radix sort, small-message sorts
are network-dominated, and everything scales 2 -> 8 nodes.
"""

import pytest

from repro.analysis import BENCHMARKS, format_table, table1


def test_table1_splitc(benchmark, emit):
    entries = benchmark.pedantic(table1, rounds=1, iterations=1)
    index = {(e.benchmark, e.nodes, e.substrate): e for e in entries}

    rows = []
    for name in BENCHMARKS:
        row = [name]
        for n in (2, 4, 8):
            row.append(index[(name, n, "FE")].seconds)
            row.append(index[(name, n, "ATM")].seconds)
        rows.append(row)
    emit(format_table(
        ("Benchmark", "2n FE", "2n ATM", "4n FE", "4n ATM", "8n FE", "8n ATM"),
        rows,
        title="Table 1 - Split-C execution times (seconds), 512K keys/node "
              "(paper's numeric columns are corrupted in the source text; "
              "shape asserted per Section 5.2)",
    ))

    for n in (2, 4, 8):
        # matrix multiply: ATM/SPARC wins (bandwidth + floating point)
        for mm in ("mm 128x128", "mm 16x16"):
            assert index[(mm, n, "ATM")].seconds < index[(mm, n, "FE")].seconds
        # small-message sorts: FE wins (lower overhead + integer ops)
        for sm in ("ssortsm512K", "rsortsm512K"):
            assert index[(sm, n, "FE")].seconds < index[(sm, n, "ATM")].seconds
    # large-message radix sort: ATM wins at scale (network bandwidth)
    for n in (4, 8):
        assert index[("rsortlg512K", n, "ATM")].seconds < index[("rsortlg512K", n, "FE")].seconds
        # ... and its bandwidth advantage shows in the net component of
        # both large-message sorts
        for lg in ("rsortlg512K", "ssortlg512K"):
            assert index[(lg, n, "ATM")].net_seconds < index[(lg, n, "FE")].net_seconds
    # small-message sorts are dominated by network time (Section 5.2)
    for n in (4, 8):
        for sub in ("FE", "ATM"):
            e = index[("rsortsm512K", n, sub)]
            assert e.net_seconds > 2 * e.cpu_seconds
    # matrix multiply stays compute-dominated
    e = index[("mm 128x128", 8, "ATM")]
    assert e.cpu_seconds > 5 * e.net_seconds
