"""Figure 5: round-trip latency vs. message size, four configurations.

Paper targets: 40-byte RTT of 57 us (hub) to 91 us (FN100) on Fast
Ethernet and 89 us on ATM (single-cell optimized); the ATM curve jumps
to ~130 us at 44 bytes (first multi-cell size) and reaches ~351 us at
1500 bytes; FE latency grows ~25 us / 100 bytes, ATM ~17 us / 100 bytes.
"""

import pytest

from repro.analysis import FIGURE5_CONFIGS, ascii_plot, format_comparison, measure_rtt

SIZES = [0, 8, 16, 24, 32, 40, 44, 64, 96, 128, 256, 512, 1024, 1498]
PAPER_TARGETS = [
    ("hub 40B", 57.0, "hub", 40),
    ("fn100 40B", 91.0, "fn100", 40),
    ("atm 40B", 89.0, "atm", 40),
    ("atm 44B (multi-cell)", 130.0, "atm", 44),
    ("atm 1498B", 351.0, "atm", 1498),
]


def _collect():
    series = {}
    for name, factory in FIGURE5_CONFIGS.items():
        series[name] = [(size, measure_rtt(factory(), size)) for size in SIZES]
    return series


def test_fig5_roundtrip(benchmark, emit):
    series = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lookup = {name: dict(points) for name, points in series.items()}

    rows = [(label, paper, lookup[config][size]) for label, paper, config, size in PAPER_TARGETS]
    emit(format_comparison(rows, title="Figure 5 - round-trip latency (us), paper vs measured"))
    emit(ascii_plot(
        {name: [(float(s), r) for s, r in pts] for name, pts in series.items()},
        title="Figure 5 - RTT vs message size",
        xlabel="message size (bytes)",
        ylabel="round-trip time (us)",
    ))
    inset = {name: [(float(s), r) for s, r in pts if s <= 128] for name, pts in series.items()}
    emit(ascii_plot(inset, title="Figure 5 (inset) - small messages",
                    xlabel="message size (bytes)", ylabel="RTT (us)"))

    for label, paper, config, size in PAPER_TARGETS:
        assert lookup[config][size] == pytest.approx(paper, rel=0.12), label
    # FE slope ~25 us/100B; ATM slope ~17 us/100B (we accept +-20%)
    fe_slope = (lookup["hub"][1024] - lookup["hub"][128]) / 8.96
    atm_slope = (lookup["atm"][1024] - lookup["atm"][128]) / 8.96
    assert fe_slope == pytest.approx(25.0, rel=0.20)
    assert atm_slope == pytest.approx(17.0, rel=0.20)
    # ordering: hub < bay28115 < fn100 for small messages
    assert lookup["hub"][40] < lookup["bay28115"][40] < lookup["fn100"][40]
    # ATM's multi-cell discontinuity
    assert lookup["atm"][44] - lookup["atm"][40] > 25.0
