"""Ablation: radix width of the parallel radix sort.

The paper fixes "a fixed number of passes over the keys, one for every
digit in the radix"; the digit width trades passes (communication
rounds) against histogram size (allgather volume + scan work).  We
sweep it with the analytic model at full scale on both clusters.
"""

import pytest

from repro.analysis import format_table
from repro.apps import RadixConfig
from repro.hw import PENTIUM_120, SPARCSTATION_20
from repro.perfmodel import atm_stage_costs, fe_stage_costs, project_radix
from repro.splitc import atm_cluster_cpus, fe_cluster_cpus

K = 512 * 1024
NODES = 8
WIDTHS = (4, 8, 11, 16)


def _sweep():
    fe = fe_stage_costs(PENTIUM_120)
    atm = atm_stage_costs(SPARCSTATION_20)
    out = {}
    for bits in WIDTHS:
        cfg = RadixConfig(keys_per_node=K, small_messages=False, radix_bits=bits)
        out[bits] = (
            project_radix(cfg, NODES, fe, fe_cluster_cpus(NODES)).total_s,
            project_radix(cfg, NODES, atm, atm_cluster_cpus(NODES)).total_s,
            cfg.passes,
            cfg.buckets,
        )
    return out


def test_ablation_radix_bits(benchmark, emit):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        (bits, passes, buckets, fe_s, atm_s)
        for bits, (fe_s, atm_s, passes, buckets) in results.items()
    ]
    emit(format_table(
        ("radix bits", "passes", "buckets", "FE (s)", "ATM (s)"),
        rows,
        title=f"Ablation - radix digit width, {NODES} nodes x {K} keys (rsortlg)",
    ))
    # too narrow: pass count explodes (8 passes at 4 bits)
    assert results[4][0] > results[11][0]
    # too wide: the 64K-bucket histogram allgather + scan dominates
    assert results[16][0] > results[11][0]
    # the paper-era choice (11 bits, 3 passes) is at/near the sweet spot
    best_fe = min(fe for fe, _a, _p, _b in results.values())
    assert results[11][0] == pytest.approx(best_fe, rel=0.15)
