"""Figure 6: bandwidth vs. message size.

Paper targets: Fast Ethernet saturates around 96-97 Mb/s (wire limit
after framing overhead) for messages of ~1 KB and up; ATM reaches
118-120 Mb/s on the 140 Mb/s TAXI receive link, with a jagged curve
caused by segmentation into fixed 48-byte cells.
"""

import pytest

from repro.analysis import FIGURE6_CONFIGS, ascii_plot, format_comparison, measure_bandwidth

SIZES = [16, 40, 64, 128, 256, 384, 512, 768, 1024, 1280, 1498]
PAPER_TARGETS = [
    ("FE @1498B", 96.5, "hub", 1498),
    ("FE @1024B", 93.0, "hub", 1024),
    ("ATM @1498B", 118.0, "atm", 1498),
]


def _collect():
    series = {}
    for name, factory in FIGURE6_CONFIGS.items():
        series[name] = [(size, measure_bandwidth(factory(), size)) for size in SIZES]
    return series


def test_fig6_bandwidth(benchmark, emit):
    series = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lookup = {name: dict(points) for name, points in series.items()}

    rows = [(label, paper, lookup[config][size]) for label, paper, config, size in PAPER_TARGETS]
    emit(format_comparison(rows, title="Figure 6 - bandwidth (Mb/s), paper vs measured"))
    emit(ascii_plot(
        {name: [(float(s), b) for s, b in pts] for name, pts in series.items()},
        title="Figure 6 - bandwidth vs message size",
        xlabel="message size (bytes)",
        ylabel="Mb/s",
    ))

    for label, paper, config, size in PAPER_TARGETS:
        assert lookup[config][size] == pytest.approx(paper, rel=0.08), label
    # ATM beats FE at large sizes (155/140 vs 100 Mb/s links)
    assert lookup["atm"][1498] > lookup["hub"][1498] + 10
    # cell quantization: ATM per-message goodput is non-monotone ("jagged")
    fine_sizes = list(range(1024, 1204, 12))
    factory = FIGURE6_CONFIGS["atm"]
    fine = [measure_bandwidth(factory(), s, messages=40) for s in fine_sizes]
    dips = sum(1 for a, b in zip(fine, fine[1:]) if b < a)
    assert dips >= 2  # the sawtooth really shows
    # both curves rise with message size up to saturation
    for name in ("hub", "atm"):
        assert lookup[name][1498] > lookup[name][64] > lookup[name][16]
