"""Ablation: adaptive reliability vs the fixed-RTO baseline under chaos.

The paper's design point is a lean substrate with reliability above it
(Section 3.1: U-Net has "no retransmission or flow control"); this
ablation quantifies what the Active Messages layer gains from replacing
the original fixed 4 ms retransmit timer and static window with
estimated RTOs (Jacobson/Karels + Karn), AIMD window adaptation, and
duplicate-ack fast retransmit, across the chaos soak scenarios.
"""

import pytest

from repro.analysis import format_table
from repro.faults import SCENARIOS, compare_reliability, wins

SOAK_SCENARIOS = ("bursty", "reorder", "flap", "combined")


@pytest.fixture(scope="module")
def results():
    return compare_reliability([SCENARIOS[name] for name in SOAK_SCENARIOS])


def test_reliability_ablation_table(results, emit):
    rows = []
    by_key = {(r.scenario, r.mode): r for r in results}
    for name in SOAK_SCENARIOS:
        fixed = by_key[(name, "fixed")]
        adaptive = by_key[(name, "adaptive")]
        rows.append([
            name,
            fixed.completion_time_us / 1000.0,
            adaptive.completion_time_us / 1000.0,
            fixed.completion_time_us / adaptive.completion_time_us,
            fixed.retransmissions,
            adaptive.retransmissions,
        ])
    emit(format_table(
        ("scenario", "fixed_ms", "adaptive_ms", "speedup", "fixed_rexmit", "adaptive_rexmit"),
        rows,
        title="Ablation - adaptive reliability vs fixed 4 ms RTO under chaos",
    ))


def test_invariants_hold_in_every_mode(results):
    for r in results:
        assert r.ok, f"{r.scenario} [{r.mode}]: {r.violations}"


def test_adaptive_wins_each_scenario(results):
    by_key = {(r.scenario, r.mode): r for r in results}
    for name in SOAK_SCENARIOS:
        won = wins(by_key[(name, "fixed")], by_key[(name, "adaptive")])
        assert won, f"adaptive stack improved no robustness metric under {name}"


def test_adaptive_recovers_much_faster_overall(results):
    fixed_total = sum(r.completion_time_us for r in results if r.mode == "fixed")
    adaptive_total = sum(r.completion_time_us for r in results if r.mode == "adaptive")
    assert adaptive_total < 0.5 * fixed_total
