"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it (bypassing pytest capture so the rows land in the report),
then asserts the reproduction targets that define its "shape".
"""

import pytest


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
