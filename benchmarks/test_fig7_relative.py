"""Figure 7: relative execution times, split into cpu and net portions.

Bars for ATM and FE clusters of 2, 4 and 8 nodes, normalized to the
2-node ATM cluster per benchmark, each split into computation (cpu) and
communication (net) time, as in the paper's stacked-bar figure.
"""

import pytest

from repro.analysis import BENCHMARKS, figure7, format_table, table1


def _bar(fraction_cpu: float, total: float, width: int = 30) -> str:
    total_chars = max(1, int(round(total * width)))
    cpu_chars = int(round(fraction_cpu * total_chars))
    return "C" * cpu_chars + "n" * (total_chars - cpu_chars)


def test_fig7_relative(benchmark, emit):
    entries = table1()
    bars = benchmark.pedantic(figure7, args=(entries,), rounds=1, iterations=1)
    lines = ["Figure 7 - relative execution times (normalized to 2-node ATM; C=cpu, n=net)"]
    for name in BENCHMARKS:
        lines.append(f"\n{name}:")
        for bar in bars:
            if bar["benchmark"] != name:
                continue
            frac_cpu = bar["relative_cpu"] / bar["relative_total"] if bar["relative_total"] else 0
            lines.append(
                f"  {bar['substrate']:>3} {bar['nodes']}n |{_bar(frac_cpu, min(2.5, bar['relative_total']))}"
                f"  {bar['relative_total']:.2f}"
            )
    emit("\n".join(lines))

    index = {(b["benchmark"], b["substrate"], b["nodes"]): b for b in bars}
    # normalization anchor
    for name in BENCHMARKS:
        assert index[(name, "ATM", 2)]["relative_total"] == pytest.approx(1.0)
    # mm: fixed problem size -> relative time drops with nodes
    for sub in ("ATM", "FE"):
        assert index[("mm 128x128", sub, 8)]["relative_total"] < index[("mm 128x128", sub, 2)]["relative_total"]
    # sorts: keys/processor constant -> total work grows; the paper notes
    # the increased execution time from 2 to 8 nodes
    assert index[("rsortsm512K", "FE", 8)]["relative_total"] > index[("rsortsm512K", "FE", 2)]["relative_total"] * 0.9
    # the small-message sorts' bars are mostly net; mm bars mostly cpu
    small = index[("rsortsm512K", "FE", 8)]
    assert small["relative_net"] > small["relative_cpu"]
    mm = index[("mm 128x128", "ATM", 8)]
    assert mm["relative_cpu"] > mm["relative_net"]
