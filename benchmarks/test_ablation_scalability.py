"""Ablation: scaling beyond one switch — ATM VCs vs IP-encapsulated FE.

Section 4.4.3's closing contrast: Fast Ethernet U-Net tags cannot cross
switches/routers without IP encapsulation and its overhead, while
"U-Net/ATM does not suffer this problem as virtual circuits are
established network-wide."  We measure a 40-byte RTT between hosts on
*different* switches for both technologies.
"""

import pytest

from repro.analysis import format_table
from repro.analysis.microbench import _ENDPOINT
from repro.atm import AtmFabric
from repro.ethernet import RoutedFeNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator


def _rtt(sim, ep1, ep2, ch1, ch2, size=40):
    def ponger():
        while True:
            msg = yield from ep2.recv()
            yield from ep2.send(ch2, msg.data)

    def pinger():
        last = 0.0
        for _ in range(4):
            t0 = sim.now
            yield from ep1.send(ch1, b"x" * size)
            yield from ep1.recv()
            last = sim.now - t0
        return last

    sim.process(ponger())
    return sim.run_until_complete(sim.process(pinger()))


def _atm_cross_fabric():
    sim = Simulator()
    fabric = AtmFabric(sim, switches=2)
    h1 = fabric.add_host("h1", PENTIUM_120, switch=0)
    h2 = fabric.add_host("h2", PENTIUM_120, switch=1)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ch1, ch2 = fabric.connect(ep1, ep2)
    return _rtt(sim, ep1, ep2, ch1, ch2)


def _atm_one_switch():
    sim = Simulator()
    fabric = AtmFabric(sim, switches=1)
    h1 = fabric.add_host("h1", PENTIUM_120)
    h2 = fabric.add_host("h2", PENTIUM_120)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ch1, ch2 = fabric.connect(ep1, ep2)
    return _rtt(sim, ep1, ep2, ch1, ch2)


def _fe_cross_router():
    sim = Simulator()
    net = RoutedFeNetwork(sim, segments=2)
    h1 = net.add_host("h1", PENTIUM_120, segment=0)
    h2 = net.add_host("h2", PENTIUM_120, segment=1)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=32)
    ch1, ch2 = net.connect(ep1, ep2)
    return _rtt(sim, ep1, ep2, ch1, ch2)


def test_ablation_multi_switch_scalability(benchmark, emit):
    def run():
        return {
            "ATM, one switch": _atm_one_switch(),
            "ATM, two switches (network-wide VC)": _atm_cross_fabric(),
            "FE, two segments (IP + software router)": _fe_cross_router(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, rtt) for name, rtt in results.items()]
    emit(format_table(("configuration", "40B RTT (us)"), rows,
                      title="Ablation - crossing switch boundaries (Section 4.4.3)"))
    atm1 = results["ATM, one switch"]
    atm2 = results["ATM, two switches (network-wide VC)"]
    fe2 = results["FE, two segments (IP + software router)"]
    # an extra ATM switch costs only its forwarding latency (~7us/hop
    # plus trunk serialization) ...
    assert atm2 - atm1 < 60.0
    # ... while the FE path pays the router + encapsulation: much slower
    # than ATM crossing the same boundary, despite FE winning inside one
    # switch (Fig. 5)
    assert fe2 > 1.5 * atm2
