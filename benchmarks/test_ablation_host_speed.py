"""Ablation: faster hosts — where each U-Net architecture bottlenecks.

The paper's conclusion: "The i960 co-processor on the ATM interface is
significantly slower than the Pentium host and its use slows down the
latency times."  Scaling the host CPU up shows the consequence — the
kernel-path U-Net/FE keeps improving with the host, while U-Net/ATM
latency plateaus at the co-processor and wire costs.  (This is the
trajectory that led user-level NIC designs toward VIA/RDMA.)
"""

import pytest

from repro.analysis import format_table, measure_rtt, setup_atm, setup_fe_hub
from repro.hw import PENTIUM_120


def _rtts(scale: float):
    cpu = PENTIUM_120.scaled(scale)
    fe = measure_rtt(setup_fe_hub(cpu=cpu), 40)
    atm = measure_rtt(setup_atm(cpu=cpu), 40)
    return fe, atm


def test_ablation_host_speed(benchmark, emit):
    scales = (1.0, 2.0, 4.0, 8.0)

    def run():
        return {s: _rtts(s) for s in scales}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(f"{s:g}x Pentium-120", fe, atm) for s, (fe, atm) in results.items()]
    emit(format_table(("host speed", "FE RTT (us)", "ATM RTT (us)"),
                      rows,
                      title="Ablation - 40-byte RTT vs host CPU speed"))
    fe1, atm1 = results[1.0]
    fe8, atm8 = results[8.0]
    fe_gain = fe1 - fe8
    atm_gain = atm1 - atm8
    # the FE path lives on the host CPU: it gains much more from faster
    # hosts than the co-processor-bound ATM path
    assert fe_gain > 2.0 * atm_gain
    # ATM latency plateaus: the i960 + SONET costs dominate
    assert atm8 > 0.75 * atm1
    # at 1x the two are comparable; at 8x FE has pulled clearly ahead
    assert fe8 < 0.75 * atm8