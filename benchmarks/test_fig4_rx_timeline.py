"""Figure 4: U-Net/FE reception timelines for 40- and 100-byte messages.

Paper: 4.1 us for 40 bytes (copied inline into the receive descriptor)
and 5.6 us for 100 bytes (buffer allocation plus copy); copy cost rises
1.42 us per additional 100 bytes.
"""

import pytest

from repro.analysis import figure4_timeline

PAPER_40B_US = 4.1
PAPER_100B_US = 5.6
#: our handler span additionally includes the final empty ring poll
EXTRA_POLL_US = 0.52


def test_fig4_rx_timeline(benchmark, emit):
    def run():
        return figure4_timeline(40), figure4_timeline(100)

    t40, t100 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(t40.render(title=f"Figure 4a - RX timeline, 40-byte message (paper: {PAPER_40B_US} us)"))
    emit(t100.render(title=f"Figure 4b - RX timeline, 100-byte message (paper: {PAPER_100B_US} us)"))
    assert t40.total == pytest.approx(PAPER_40B_US + EXTRA_POLL_US, abs=0.25)
    assert t100.total == pytest.approx(PAPER_100B_US + EXTRA_POLL_US, abs=0.25)
    # the small-message optimization saved the buffer allocation
    assert not any("allocate U-Net recv buffer" in s.label for s in t40.steps())
    assert any("allocate U-Net recv buffer" in s.label for s in t100.steps())
    # copy slope: ~1.42us per additional 100 bytes (70 MB/s memcpy)
    t300 = figure4_timeline(300)
    assert t300.total - t100.total == pytest.approx(2 * 1.42, abs=0.3)
