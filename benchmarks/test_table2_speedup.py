"""Table 2: speedup from 2 to 8 nodes for the ATM and FE clusters.

The matrix multiplies keep total problem size fixed (time shrinks with
nodes); the sorts keep keys per processor fixed (scaled speedup).  The
paper's claim: "performance on both U-Net implementations scales well
when the number of processors is increased".
"""

import pytest

from repro.analysis import format_table, table1, table2


def test_table2_speedup(benchmark, emit):
    entries = table1()
    rows = benchmark.pedantic(table2, args=(entries,), rounds=1, iterations=1)
    emit(format_table(
        ("Benchmark", "ATM speedup", "FE speedup"),
        rows,
        title="Table 2 - speedup from 2 to 8 nodes (mm: fixed problem; "
              "sorts: fixed keys/processor, scaled by 4)",
    ))
    for name, atm_speedup, fe_speedup in rows:
        # everything scales meaningfully on both clusters
        assert atm_speedup > 1.5, name
        assert fe_speedup > 1.5, name
    by_name = {name: (a, f) for name, a, f in rows}
    # compute-bound matrix multiply scales nearly linearly (4x ideal 2->8)
    assert by_name["mm 128x128"][0] > 3.5
    assert by_name["mm 128x128"][1] > 3.5
    # the communication-bound small-message sorts scale worst
    assert by_name["rsortsm512K"][0] < by_name["mm 128x128"][0]
    assert by_name["rsortsm512K"][1] < by_name["mm 128x128"][1]
