"""Ablation: how robust are the Table-1 orderings to the integer ratio?

The SPARC-vs-Pentium integer-op ratio cannot be calibrated from the
paper, and EXPERIMENTS.md notes the large-message sample sort's
ordering is sensitive to it.  This bench quantifies the margin: for
each benchmark, the multiplier on the SPARC clusters' integer rate at
which FE and ATM would tie.  A flip point near 1.0 means the ordering
is fragile; far from 1.0 means it is robust to the uncertainty.
"""

import pytest

from repro.analysis import format_table
from repro.apps import PAPER_MM_128, RadixConfig, SampleConfig
from repro.perfmodel import int_ratio_flip_point, project_matmul, project_radix, project_sample

K = 512 * 1024
NODES = 8

CASES = [
    ("mm 128x128", project_matmul, PAPER_MM_128),
    ("ssortsm512K", project_sample, SampleConfig(K, True)),
    ("ssortlg512K", project_sample, SampleConfig(K, False)),
    ("rsortsm512K", project_radix, RadixConfig(K, True)),
    ("rsortlg512K", project_radix, RadixConfig(K, False)),
]


def _flip_points():
    return {
        name: int_ratio_flip_point(project, cfg, NODES)
        for name, project, cfg in CASES
    }


def test_ablation_ordering_sensitivity(benchmark, emit):
    flips = benchmark.pedantic(_flip_points, rounds=1, iterations=1)

    def describe(flip):
        if flip == float("-inf"):
            return "ATM wins at any plausible ratio"
        if flip == float("inf"):
            return "FE wins at any plausible ratio"
        return f"flips at SPARC-int x{flip:.2f}"

    rows = [(name, describe(flip)) for name, flip in flips.items()]
    emit(format_table(("benchmark", "FE/ATM ordering robustness"), rows,
                      title=f"Ablation - Table-1 ordering vs the SPARC integer rate ({NODES} nodes)"))
    # matrix multiply is decided by FP + bandwidth: integer rate is irrelevant
    assert flips["mm 128x128"] == float("-inf")
    # the small-message sorts are network-bound: FE's win survives even a
    # much faster SPARC
    assert flips["rsortsm512K"] == float("inf") or flips["rsortsm512K"] > 1.5
    assert flips["ssortsm512K"] == float("inf") or flips["ssortsm512K"] > 1.5
    # the large-message sorts really are balanced on this ratio: their
    # flip points sit near 1 (the EXPERIMENTS.md deviation note, measured)
    for name in ("rsortlg512K", "ssortlg512K"):
        flip = flips[name]
        assert flip not in (float("inf"), float("-inf"))
        assert 0.7 < flip < 1.4
