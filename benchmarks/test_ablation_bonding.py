"""Ablation: Beowulf-style dual-NIC bonding (Section 2.2).

"Each system consists of two Fast Ethernet controllers operating in a
round-robin fashion to double the aggregate bandwidth per node."  We
stripe U-Net/FE frames across two rails and measure both the bandwidth
win (bulk) and the cost (rail skew reorders frames, which the AM layer
pays for in retransmissions on bursty small-window traffic).
"""

import pytest

from repro.analysis import format_table
from repro.core import EndpointConfig
from repro.ethernet import BeowulfNetwork, HubNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator

CONFIG = EndpointConfig(num_buffers=256, buffer_size=2048,
                        send_queue_depth=128, recv_queue_depth=256)


def _goodput(net_factory, size=1498, n=60):
    sim = Simulator()
    net = net_factory(sim)
    h1 = net.add_host("h1", PENTIUM_120)
    h2 = net.add_host("h2", PENTIUM_120)
    ep1 = h1.create_endpoint(config=CONFIG, rx_buffers=64)
    ep2 = h2.create_endpoint(config=CONFIG, rx_buffers=64)
    ch1, ch2 = net.connect(ep1, ep2)

    def tx():
        for _ in range(n):
            yield from ep1.send(ch1, b"b" * size)

    def rx():
        for _ in range(n):
            yield from ep2.recv()
        return sim.now

    sim.process(tx())
    end = sim.run_until_complete(sim.process(rx()))
    return n * size * 8 / end


def test_ablation_dual_nic_bonding(benchmark, emit):
    def run():
        return {
            "single NIC (hub)": _goodput(HubNetwork),
            "dual NIC, striped (Beowulf)": _goodput(BeowulfNetwork),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, mbps) for name, mbps in results.items()]
    emit(format_table(("configuration", "goodput (Mb/s)"), rows,
                      title="Ablation - dual-NIC channel bonding, 1498-byte messages"))
    single = results["single NIC (hub)"]
    dual = results["dual NIC, striped (Beowulf)"]
    # "double the aggregate bandwidth per node"
    assert dual > 1.8 * single
    assert dual > 170.0
