"""Section 4.4 overhead decomposition: the architectural trade-off.

Paper: "while the total send overhead for U-Net/FE is 5.4 us, the total
send overhead for U-Net/ATM is approximately 11.5 us, almost double.
However, the processor overheads are dramatically different in the two
cases: the U-Net/FE architecture shows an overhead of 4.2 us while that
for U-Net/ATM is 1.5 us" — the FE path trades host CPU for latency, the
ATM path offloads to a slow co-processor.
"""

import pytest

from repro.analysis import format_comparison
from repro.core.api import DESCRIPTOR_PUSH_US
from repro.hw import PENTIUM_120
from repro.perfmodel import atm_stage_costs, fe_stage_costs

PAPER = {
    "FE processor overhead (trap path)": 4.2,
    "ATM processor overhead": 1.5,
    "FE total send overhead": 5.4,
    "ATM total send overhead": 11.5,
    "ATM i960 send overhead": 10.0,
}

#: a 40-byte application message = 14 bytes beyond the AM header
MESSAGE = 14


def _measure():
    fe = fe_stage_costs(PENTIUM_120)
    atm = atm_stage_costs(PENTIUM_120)
    compose_and_push = PENTIUM_120.copy_time(MESSAGE + 26) + DESCRIPTOR_PUSH_US
    fe_total = fe.host_send(MESSAGE)
    atm_host = atm.host_send(MESSAGE)
    atm_nic = atm.nic_tx(MESSAGE)
    return {
        "FE processor overhead (trap path)": fe_total - compose_and_push,
        "ATM processor overhead": atm_host,
        "FE total send overhead": fe_total,
        "ATM total send overhead": atm_host + atm_nic,
        "ATM i960 send overhead": atm_nic,
    }


def test_send_overhead_decomposition(benchmark, emit):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [(name, PAPER[name], measured[name]) for name in PAPER]
    emit(format_comparison(rows, title="Section 4.4 - send overhead decomposition (us)"))
    for name in PAPER:
        assert measured[name] == pytest.approx(PAPER[name], rel=0.12), name
    # "almost double": ATM total vs FE total
    ratio = measured["ATM total send overhead"] / measured["FE total send overhead"]
    assert ratio == pytest.approx(11.5 / 5.4, rel=0.15)
    # but the FE path burns ~3x more *host* CPU per send
    assert (
        measured["FE processor overhead (trap path)"]
        > 2.5 * measured["ATM processor overhead"]
    )
