"""Ablation: the Active Messages flow-control window.

The paper's AM layer provides "flow control and reliable transfer"
(Section 5) above a U-Net that has neither.  The window size sets how
much of the wire the protocol can keep full: window 1 degenerates to
stop-and-wait (latency-bound goodput), while a handful of outstanding
messages saturates the link.
"""

import pytest

from repro.am import AmConfig, AmEndpoint
from repro.analysis import format_table
from repro.core import EndpointConfig
from repro.ethernet import SwitchedNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator

CONFIG = EndpointConfig(num_buffers=256, buffer_size=2048,
                        send_queue_depth=128, recv_queue_depth=256)
MESSAGES = 40
SIZE = 1400


def _goodput(window: int) -> float:
    sim = Simulator()
    # full-duplex switch: acks do not contend with data as on the hub
    net = SwitchedNetwork(sim)
    h0 = net.add_host("n0", PENTIUM_120)
    h1 = net.add_host("n1", PENTIUM_120)
    ep0 = h0.create_endpoint(config=CONFIG, rx_buffers=96)
    ep1 = h1.create_endpoint(config=CONFIG, rx_buffers=96)
    ch0, ch1 = net.connect(ep0, ep1)
    am_config = AmConfig(window=window, ack_every=max(1, window // 2))
    am0 = AmEndpoint(0, ep0, config=am_config)
    am1 = AmEndpoint(1, ep1, config=am_config)
    am0.connect_peer(1, ch0)
    am1.connect_peer(0, ch1)
    done = {"count": 0, "t": 0.0}

    def handler(ctx):
        done["count"] += 1
        done["t"] = sim.now

    am1.register_handler(1, handler)

    def tx():
        for _ in range(MESSAGES):
            yield from am0.request(1, 1, data=b"w" * SIZE)

    sim.process(tx())
    sim.run(until=10_000_000.0)
    assert done["count"] == MESSAGES
    return MESSAGES * SIZE * 8 / done["t"]


def test_ablation_am_window(benchmark, emit):
    windows = (1, 2, 4, 8, 16)

    def run():
        return {w: _goodput(w) for w in windows}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(w, results[w]) for w in windows]
    emit(format_table(("window", "goodput (Mb/s)"), rows,
                      title=f"Ablation - AM window size, {SIZE}-byte messages over FE"))
    # stop-and-wait is latency-bound: far below the wire
    assert results[1] < 50.0
    # a modest window recovers (close to) the Figure-6 saturation rate
    assert results[8] > 85.0
    # monotone non-decreasing up to saturation (5% tolerance)
    assert results[2] > results[1]
    assert results[4] > results[2] * 0.95
    assert results[16] > results[8] * 0.95