"""Ablation: validate the analytic Table-1 model against the full DES.

Table 1 at 512K keys/node is produced by the analytic phase model; here
we run the *actual* Split-C benchmarks in the discrete-event simulator
at reduced key counts on both substrates and check the projection
tracks the simulation.  Fixed per-run costs (barriers, cold queues) are
proportionally larger at small scale, so the tolerance is loose; the
point is that the model is anchored to the simulator, not free-floating.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.apps import RadixConfig, SampleConfig, run_radix_sort, run_sample_sort
from repro.hw import PENTIUM_120, SPARCSTATION_20
from repro.perfmodel import atm_stage_costs, fe_stage_costs, project_radix, project_sample
from repro.splitc import Cluster, atm_cluster_cpus, fe_cluster_cpus

KEYS = 4096
NODES = 4


def _des_and_model():
    results = []
    for substrate, stage_costs, cpus in (
        ("fe-switch", fe_stage_costs(PENTIUM_120), fe_cluster_cpus(NODES)),
        ("atm", atm_stage_costs(SPARCSTATION_20), atm_cluster_cpus(NODES)),
    ):
        rcfg = RadixConfig(keys_per_node=KEYS, small_messages=False)
        des = run_radix_sort(Cluster(NODES, substrate=substrate), rcfg).elapsed_us
        model = project_radix(rcfg, NODES, stage_costs, cpus).total_us
        results.append((f"rsortlg {substrate}", des / 1000, model / 1000))

        scfg = SampleConfig(keys_per_node=KEYS, small_messages=False)
        des = run_sample_sort(Cluster(NODES, substrate=substrate), scfg).elapsed_us
        model = project_sample(scfg, NODES, stage_costs, cpus).total_us
        results.append((f"ssortlg {substrate}", des / 1000, model / 1000))
    return results


def test_ablation_analytic_vs_des(benchmark, emit):
    results = benchmark.pedantic(_des_and_model, rounds=1, iterations=1)
    rows = [
        (name, des, model, f"{model / des:.2f}x")
        for name, des, model in results
    ]
    emit(format_table(
        ("benchmark", "DES (ms)", "model (ms)", "model/DES"),
        rows,
        title=f"Ablation - analytic model vs full DES ({NODES} nodes, {KEYS} keys/node)",
    ))
    for name, des, model in results:
        assert model == pytest.approx(des, rel=0.5), name
