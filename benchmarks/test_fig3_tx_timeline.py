"""Figure 3: U-Net/FE transmission timeline for a 40-byte message.

Paper: eight numbered steps totalling ~4.2 us of processor time on a
120 MHz Pentium, of which about 20% is trap entry/return overhead.
"""

import pytest

from repro.analysis import figure3_timeline

PAPER_TOTAL_US = 4.2
PAPER_TRAP_FRACTION = 0.20


def test_fig3_tx_timeline(benchmark, emit):
    timeline = benchmark.pedantic(figure3_timeline, rounds=1, iterations=1)
    emit(timeline.render(title="Figure 3 - U-Net/FE TX timeline, 40-byte message "
                               f"(paper total: {PAPER_TOTAL_US} us)"))
    assert timeline.total == pytest.approx(PAPER_TOTAL_US, abs=0.05)
    steps = timeline.steps()
    assert len(steps) == 8
    trap = sum(s.duration for s in steps if "trap" in s.label)
    assert trap / timeline.total == pytest.approx(PAPER_TRAP_FRACTION, abs=0.05)
