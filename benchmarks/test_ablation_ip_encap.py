"""Ablation: IPv4 encapsulation for multi-switch scalability (§4.4.3).

"The use of Ethernet MAC addresses and port IDs to address endpoints
does not allow messages to traverse multiple switches or IP routers.
One solution would be to use a simple IPv4 encapsulation for U-Net
messages; however, this would add considerable communication overhead.
U-Net/ATM does not suffer this problem as virtual circuits are
established network-wide."

We built the proposal and measure the overhead: raw tags vs. IPv4/UDP
encapsulation on one segment, and the full path through a software IP
router between segments.
"""

import pytest

from repro.analysis import format_table, measure_rtt, setup_fe_switch
from repro.analysis.microbench import _ENDPOINT, MicrobenchSetup
from repro.ethernet import RoutedFeNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator


def _routed_setup(cross_segment: bool) -> MicrobenchSetup:
    sim = Simulator()
    net = RoutedFeNetwork(sim, segments=2)
    h1 = net.add_host("h1", PENTIUM_120, segment=0)
    h2 = net.add_host("h2", PENTIUM_120, segment=1 if cross_segment else 0)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ch1, ch2 = net.connect(ep1, ep2)
    label = "routed" if cross_segment else "ip-same-segment"
    return MicrobenchSetup(label, sim, ep1, ep2, ch1, ch2)


def test_ablation_ip_encapsulation(benchmark, emit):
    def run():
        return {
            "raw U-Net/FE tags (one switch)": measure_rtt(setup_fe_switch(), 40),
            "IPv4 encapsulated (one switch)": measure_rtt(_routed_setup(False), 40),
            "IPv4 across a software router": measure_rtt(_routed_setup(True), 40),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["raw U-Net/FE tags (one switch)"]
    rows = [(name, rtt, f"+{rtt - base:.1f}") for name, rtt in results.items()]
    emit(format_table(
        ("configuration", "40B RTT (us)", "vs raw"),
        rows,
        title="Ablation - IPv4 encapsulation overhead (Section 4.4.3)",
    ))
    encap = results["IPv4 encapsulated (one switch)"]
    routed = results["IPv4 across a software router"]
    # 'considerable communication overhead': headers + checksum cost
    # noticeably more than the raw path even without a router...
    assert encap > base + 15.0
    # ...and crossing a mid-90s software router more than doubles the
    # end-to-end latency
    assert routed > 2 * base
