"""Ablation: the small-message receive optimization (Sections 3.1, 4.3.3).

"a receive queue descriptor may hold an entire small message ... This
avoids buffer management overheads and can improve the round-trip
latency substantially."  We disable the inline path on U-Net/FE and the
single-cell fast path on U-Net/ATM and measure the RTT regression.
"""

import pytest

from repro.analysis import format_table, measure_rtt, setup_atm, setup_fe_hub


def _fe_rtt(enabled: bool) -> float:
    setup = setup_fe_hub()
    for ep in (setup.ep1, setup.ep2):
        ep.host.backend.small_message_optimization = enabled
    return measure_rtt(setup, 40)


def _atm_rtt(enabled: bool) -> float:
    setup = setup_atm()
    for ep in (setup.ep1, setup.ep2):
        ep.host.backend.single_cell_fast_path = enabled
    return measure_rtt(setup, 40)


def test_ablation_small_message_optimization(benchmark, emit):
    def run():
        return {
            "FE": (_fe_rtt(True), _fe_rtt(False)),
            "ATM": (_atm_rtt(True), _atm_rtt(False)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (sub, on, off, f"{(off - on) / on * 100:+.0f}%")
        for sub, (on, off) in results.items()
    ]
    emit(format_table(
        ("substrate", "RTT opt on (us)", "RTT opt off (us)", "regression"),
        rows,
        title="Ablation - small-message optimization, 40-byte RTT",
    ))
    fe_on, fe_off = results["FE"]
    atm_on, atm_off = results["ATM"]
    # FE: the paper quotes ~15% saved receive overhead; at RTT level the
    # effect is smaller but must be visible
    assert fe_off > fe_on + 1.0
    # ATM: losing the single-cell fast path forces the buffer-allocation
    # slow path -> a substantial jump (toward the 44-byte latency)
    assert atm_off > atm_on + 25.0
