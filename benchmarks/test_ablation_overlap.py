"""Ablation: overlapping communication with computation (Section 4.4.3).

"The U-Net/FE architecture, while simple, sacrifices overlap of
communication and computation for lower message latencies...  The
U-Net/ATM architecture is suitable for applications which pipeline many
message transmissions and synchronize rarely."  We run the blocked
matrix multiply with and without split-phase block prefetching on both
clusters and measure how much of the fetch latency overlap hides.
"""

import pytest

from repro.analysis import format_table
from repro.apps import MatmulConfig, run_matmul, verify_matmul
from repro.splitc import Cluster

BLOCKS = 4
BLOCK_SIZE = 16  # 2 KB blocks: fetch time comparable to compute time
NODES = 4


def _run(substrate: str, prefetch: bool):
    cfg = MatmulConfig(blocks=BLOCKS, block_size=BLOCK_SIZE, prefetch=prefetch)
    cluster = Cluster(NODES, substrate=substrate)
    result = run_matmul(cluster, cfg)
    assert verify_matmul(cluster, cfg)  # overlap must not break the math
    return result.elapsed_us


def test_ablation_overlap(benchmark, emit):
    def run():
        return {
            (sub, prefetch): _run(sub, prefetch)
            for sub in ("fe-switch", "atm")
            for prefetch in (False, True)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for sub in ("fe-switch", "atm"):
        blocking = results[(sub, False)] / 1000
        overlapped = results[(sub, True)] / 1000
        saved = (1 - overlapped / blocking) * 100
        rows.append((sub, blocking, overlapped, f"{saved:.0f}%"))
    emit(format_table(
        ("cluster", "blocking (ms)", "prefetch (ms)", "hidden"),
        rows,
        title=f"Ablation - split-phase prefetch, {BLOCKS}x{BLOCKS} blocks of "
              f"{BLOCK_SIZE}x{BLOCK_SIZE} doubles on {NODES} nodes",
    ))
    # prefetching hides a solid fraction of fetch latency on both
    for sub in ("fe-switch", "atm"):
        assert results[(sub, True)] < 0.85 * results[(sub, False)]
    # and the co-processor architecture profits at least as much as the
    # kernel-path architecture (its fetches are costlier to begin with)
    atm_saved = 1 - results[("atm", True)] / results[("atm", False)]
    fe_saved = 1 - results[("fe-switch", True)] / results[("fe-switch", False)]
    assert atm_saved > 0.8 * fe_saved
