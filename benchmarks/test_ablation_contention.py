"""Ablation: shared hub vs switched Fast Ethernet under contention.

Section 4: "the use of Fast Ethernet for high-performance communication
raises the concern that contention for the shared medium might degrade
performance as more hosts are added", while a switch gives every
station a private full-duplex link.
"""

import pytest

from repro.analysis import format_table
from repro.splitc import Cluster

import numpy as np

NBYTES = 60_000


def _exchange_time(substrate: str, n: int) -> float:
    """All nodes bulk-store to their ring successor simultaneously."""
    cluster = Cluster(n, substrate=substrate)

    def program(rt):
        rt.all_spread_malloc("blob", NBYTES, np.uint8)
        yield from rt.barrier()
        t0 = rt.sim.now
        dest = (rt.node + 1) % rt.nprocs
        yield from rt.store_bytes(dest, "blob", 0, b"x" * NBYTES)
        yield from rt.all_store_sync()
        return rt.sim.now - t0

    return max(cluster.run(program))


def test_ablation_hub_vs_switch_contention(benchmark, emit):
    def run():
        return {
            (sub, n): _exchange_time(sub, n)
            for sub in ("fe-hub", "fe-switch")
            for n in (2, 4, 8)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n in (2, 4, 8):
        hub_ms = times[("fe-hub", n)] / 1000
        sw_ms = times[("fe-switch", n)] / 1000
        rows.append((n, hub_ms, sw_ms, f"{hub_ms / sw_ms:.1f}x"))
    emit(format_table(
        ("nodes", "hub (ms)", "switch (ms)", "hub penalty"),
        rows,
        title=f"Ablation - neighbour exchange of {NBYTES} bytes/node, hub vs switch",
    ))
    # on the hub all transmissions share one half-duplex wire: the
    # exchange degrades roughly linearly with node count
    assert times[("fe-hub", 8)] > 3.0 * times[("fe-hub", 2)]
    # the switch keeps per-pair time nearly flat
    assert times[("fe-switch", 8)] < 1.6 * times[("fe-switch", 2)]
    # and at 8 nodes the hub is far behind the switch
    assert times[("fe-hub", 8)] > 2.5 * times[("fe-switch", 8)]
