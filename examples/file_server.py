#!/usr/bin/env python3
"""A small-message file-server workload (one of the paper's motivations).

The introduction argues low overheads matter because, among others,
"in network file systems ... the vast majority of messages are small
(less than 200 bytes) in size".  This example runs an NFS-like
request/response workload — lookups, getattrs, small reads — from three
clients against one server, over U-Net/FE and U-Net/ATM, and reports
operations per second.  Fast Ethernet's lower per-message overhead wins
exactly as Section 5.2 predicts for small-message traffic.

Run:  python examples/file_server.py
"""

from repro.am import AmEndpoint
from repro.atm import AtmNetwork
from repro.core import EndpointConfig
from repro.ethernet import SwitchedNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator

OP_LOOKUP = 1
OP_GETATTR = 2
OP_READ = 3

CLIENTS = 3
OPS_PER_CLIENT = 120

CONFIG = EndpointConfig(num_buffers=256, buffer_size=2048,
                        send_queue_depth=128, recv_queue_depth=256)


def run_workload(substrate: str) -> float:
    sim = Simulator()
    network = SwitchedNetwork(sim) if substrate == "fe" else AtmNetwork(sim)
    server_host = network.add_host("server", PENTIUM_120)
    server_ep = server_host.create_endpoint(config=CONFIG, rx_buffers=96)
    server = AmEndpoint(0, server_ep)

    # the "filesystem"
    files = {i: bytes([i % 256]) * 180 for i in range(64)}

    def on_lookup(ctx):
        yield from ctx.reply(args=(ctx.args[0], 1), data=b"\x07" * 32)  # a file handle

    def on_getattr(ctx):
        yield from ctx.reply(args=(ctx.args[0],), data=b"\x00" * 68)  # struct stat

    def on_read(ctx):
        handle, offset = ctx.args[0], ctx.args[1]
        data = files.get(handle % 64, b"")[offset : offset + 180]
        yield from ctx.reply(args=(handle, len(data)), data=data)

    server.register_handler(OP_LOOKUP, on_lookup)
    server.register_handler(OP_GETATTR, on_getattr)
    server.register_handler(OP_READ, on_read)

    clients = []
    for c in range(CLIENTS):
        host = network.add_host(f"client{c}", PENTIUM_120)
        endpoint = host.create_endpoint(config=CONFIG, rx_buffers=96)
        am = AmEndpoint(c + 1, endpoint)
        ch_server, ch_client = network.connect(server_ep, endpoint)
        server.connect_peer(c + 1, ch_server)
        am.connect_peer(0, ch_client)
        clients.append(am)

    def client_program(am, c):
        def proc():
            for i in range(OPS_PER_CLIENT):
                # a typical NFS mix: lookup, getattr, then a small read
                yield from am.rpc(0, OP_LOOKUP, args=(i,), data=b"/home/u/file%d" % i)
                yield from am.rpc(0, OP_GETATTR, args=(i,))
                yield from am.rpc(0, OP_READ, args=(i, 0))

        return proc

    processes = [sim.process(client_program(am, c)()) for c, am in enumerate(clients)]
    for process in processes:
        sim.run_until_complete(process)
    total_ops = CLIENTS * OPS_PER_CLIENT * 3
    return total_ops / (sim.now / 1e6)  # ops per second


def main() -> None:
    print(f"NFS-like small-message workload: {CLIENTS} clients x "
          f"{OPS_PER_CLIENT * 3} RPCs against one server\n")
    fe = run_workload("fe")
    atm = run_workload("atm")
    print(f"  U-Net/FE  (Bay 28115):  {fe:10.0f} ops/s")
    print(f"  U-Net/ATM (ASX-200):    {atm:10.0f} ops/s")
    print()
    print(f"Fast Ethernet serves {fe / atm:.2f}x the operations: every RPC is a")
    print("small message, and the i960 charges ~10+13 us where the FE kernel")
    print("path charges ~4 us of (faster) host CPU — the Section 5.2 result.")


if __name__ == "__main__":
    main()
