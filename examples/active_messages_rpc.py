#!/usr/bin/env python3
"""A distributed key-value store over Active Messages over U-Net/ATM.

Demonstrates the programming model the paper's Split-C stack is built
on: registered handlers, request/reply RPC, one-way requests, and bulk
transfers — all running over the simulated PCA-200 ATM fabric with real
AAL5 cells on the (virtual) wire.

Run:  python examples/active_messages_rpc.py
"""

from repro.am import AmEndpoint, BulkReceiver, BulkSender
from repro.atm import AtmNetwork
from repro.core import EndpointConfig
from repro.hw import SPARCSTATION_20
from repro.sim import Simulator

H_PUT = 1
H_GET = 2


def main() -> None:
    sim = Simulator()
    network = AtmNetwork(sim)
    config = EndpointConfig(num_buffers=128, buffer_size=2048, recv_queue_depth=128)

    server_host = network.add_host("server", SPARCSTATION_20)
    client_host = network.add_host("client", SPARCSTATION_20)
    server_ep = server_host.create_endpoint(config=config, rx_buffers=48)
    client_ep = client_host.create_endpoint(config=config, rx_buffers=48)
    ch_server, ch_client = network.connect(server_ep, client_ep)

    server = AmEndpoint(0, server_ep)
    client = AmEndpoint(1, client_ep)
    server.connect_peer(1, ch_server)
    client.connect_peer(0, ch_client)

    # ---- server: a tiny key-value store exposed as AM handlers --------
    store = {}

    def on_put(ctx):
        key = ctx.args[0]
        store[key] = ctx.data
        # one-way: no reply; U-Net+AM reliability still guarantees arrival

    def on_get(ctx):
        key = ctx.args[0]
        value = store.get(key, b"")
        yield from ctx.reply(args=(key, len(value)), data=value)

    server.register_handler(H_PUT, on_put)
    server.register_handler(H_GET, on_get)

    # bulk path for big values
    blobs = {}
    BulkReceiver(server, lambda src, tag, data: blobs.update({tag: data}))

    # ---- client program -----------------------------------------------
    def client_program():
        t0 = sim.now
        yield from client.request(0, H_PUT, args=(7,), data=b"forty-two")
        args, data = yield from client.rpc(0, H_GET, args=(7,))
        print(f"GET key=7 -> {data!r}  (rpc took {sim.now - t0:.1f} us)")

        t0 = sim.now
        args, data = yield from client.rpc(0, H_GET, args=(99,))
        print(f"GET key=99 -> {data!r} (miss, {sim.now - t0:.1f} us)")

        # stream a 64 KB value with the bulk-transfer machinery
        sender = BulkSender(client)
        blob = bytes(range(256)) * 256
        t0 = sim.now
        tag = yield from sender.send(0, blob)
        megabits = len(blob) * 8 / (sim.now - t0)
        print(f"bulk PUT of {len(blob)} bytes in {(sim.now - t0) / 1000:.2f} ms "
              f"({megabits:.0f} Mb/s over the simulated OC-3 link)")
        return tag

    tag = sim.run_until_complete(sim.process(client_program()))
    assert blobs[tag] == bytes(range(256)) * 256
    print("bulk blob verified at the server")
    print(f"AM stats: client sent {client.requests_sent} requests, "
          f"server delivered {server.requests_delivered}, acks {server.acks_sent + client.acks_sent}")


if __name__ == "__main__":
    main()
