#!/usr/bin/env python3
"""Parallel radix sort on a simulated workstation cluster (Section 5).

Runs the paper's radix-sort benchmark — real keys, real all-to-all key
exchange over Active Messages over U-Net — on a 4-node Fast Ethernet
cluster and a 4-node ATM cluster, in both the small-message (two keys
per message) and large-message (one bulk transfer per peer) variants,
verifies the results are globally sorted, and prints the cpu/net time
split the paper's Figure 7 is built from.

Run:  python examples/parallel_sort.py
"""

import numpy as np

from repro.apps import RadixConfig, run_radix_sort, verify_sorted
from repro.apps.radix_sort import initial_keys
from repro.splitc import Cluster

NODES = 4
KEYS_PER_NODE = 2048  # scaled down from the paper's 512K for a quick demo


def main() -> None:
    print(f"Parallel radix sort: {NODES} nodes x {KEYS_PER_NODE} keys")
    print(f"{'configuration':28s} {'time (ms)':>10s} {'cpu%':>6s} {'net%':>6s}  sorted?")
    for substrate, label in (("fe-switch", "Fast Ethernet (Bay 28115)"), ("atm", "ATM (ASX-200)")):
        for small in (True, False):
            variant = "small msgs" if small else "bulk msgs"
            cfg = RadixConfig(keys_per_node=KEYS_PER_NODE, small_messages=small)
            cluster = Cluster(NODES, substrate=substrate)
            result = run_radix_sort(cluster, cfg)
            original = np.concatenate([initial_keys(cfg, i) for i in range(NODES)])
            ok = verify_sorted(cluster, expected_multiset=original)
            cpu = sum(result.per_node_cpu_us) / NODES
            net = sum(result.per_node_net_us) / NODES
            busy = cpu + net or 1.0
            print(f"{label + ', ' + variant:28s} {result.elapsed_us / 1000:10.1f} "
                  f"{cpu / busy * 100:5.0f}% {net / busy * 100:5.0f}%  {ok}")
    print()
    print("Note how the small-message variant is communication-bound and the")
    print("ATM cluster pays the i960 co-processor's per-message cost for it,")
    print("while bulk transfers flip the comparison (Section 5.2).")


if __name__ == "__main__":
    main()
