#!/usr/bin/env python3
"""Quickstart: two hosts exchange messages over U-Net on Fast Ethernet.

Builds the smallest possible U-Net system — two simulated Pentium
workstations on a 100BaseTX hub — creates an endpoint on each, connects
them with a communication channel, and ping-pongs a message, printing
the application-level round-trip time (the paper's headline number:
~57 us for 40 bytes over a hub).

Run:  python examples/quickstart.py
"""

from repro.ethernet import HubNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    network = HubNetwork(sim)

    # two workstations on the shared hub
    alice = network.add_host("alice", PENTIUM_120)
    bob = network.add_host("bob", PENTIUM_120)

    # each application creates a U-Net endpoint (buffer area + queues)
    # and donates some receive buffers via the free queue
    ep_alice = alice.create_endpoint(rx_buffers=16)
    ep_bob = bob.create_endpoint(rx_buffers=16)

    # the OS channel service registers the (MAC, U-Net port) tags
    ch_alice, ch_bob = network.connect(ep_alice, ep_bob)

    def bob_echo():
        """Bob: receive and echo forever."""
        while True:
            message = yield from ep_bob.recv()
            yield from ep_bob.send(ch_bob, message.data)

    def alice_pingpong():
        """Alice: measure round trips for a few message sizes."""
        for size in (8, 40, 100, 500, 1498):
            rtts = []
            for round_number in range(4):
                t0 = sim.now
                yield from ep_alice.send(ch_alice, b"u" * size)
                yield from ep_alice.recv()
                if round_number:  # skip the cold-start round
                    rtts.append(sim.now - t0)
            print(f"  {size:5d} bytes: round-trip {sum(rtts) / len(rtts):7.1f} us")

    print("U-Net/FE ping-pong over a 100BaseTX hub (paper: ~57 us at 40 bytes)")
    sim.process(bob_echo())
    sim.run_until_complete(sim.process(alice_pingpong()))
    print(f"simulated time: {sim.now / 1000:.2f} ms, "
          f"events processed: {sim.events_processed}")


if __name__ == "__main__":
    main()
