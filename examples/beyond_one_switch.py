#!/usr/bin/env python3
"""Scaling beyond a single switch (Section 4.4.3).

U-Net/FE addresses endpoints with Ethernet MAC addresses + port IDs,
which cannot cross an IP router; the paper proposes IPv4 encapsulation
but warns of "considerable communication overhead".  U-Net/ATM uses
network-wide virtual circuits instead.  This example builds both
multi-hop topologies and measures a 40-byte round trip:

* two ATM switches joined by an OC-3 trunk (VCI programmed hop by hop),
* two Fast Ethernet segments joined by a software IP router, with
  U-Net messages carried in real IPv4/UDP datagrams.

Run:  python examples/beyond_one_switch.py
"""

from repro.atm import AtmFabric
from repro.ethernet import RoutedFeNetwork
from repro.hw import PENTIUM_120
from repro.sim import Simulator


def _rtt(sim, ep1, ep2, ch1, ch2, size=40, rounds=4):
    def ponger():
        while True:
            msg = yield from ep2.recv()
            yield from ep2.send(ch2, msg.data)

    def pinger():
        rtts = []
        for i in range(rounds):
            t0 = sim.now
            yield from ep1.send(ch1, b"x" * size)
            yield from ep1.recv()
            if i:
                rtts.append(sim.now - t0)
        return sum(rtts) / len(rtts)

    sim.process(ponger())
    return sim.run_until_complete(sim.process(pinger()))


def main() -> None:
    print("Crossing switch boundaries with U-Net (40-byte round trips)\n")

    for hops in (1, 2, 3):
        sim = Simulator()
        fabric = AtmFabric(sim, switches=hops)
        h1 = fabric.add_host("h1", PENTIUM_120, switch=0)
        h2 = fabric.add_host("h2", PENTIUM_120, switch=hops - 1)
        ep1 = h1.create_endpoint(rx_buffers=16)
        ep2 = h2.create_endpoint(rx_buffers=16)
        ch1, ch2 = fabric.connect(ep1, ep2)
        rtt = _rtt(sim, ep1, ep2, ch1, ch2)
        print(f"  ATM, {hops} switch(es), network-wide VC:   {rtt:7.1f} us")

    for cross in (False, True):
        sim = Simulator()
        net = RoutedFeNetwork(sim, segments=2)
        h1 = net.add_host("h1", PENTIUM_120, segment=0)
        h2 = net.add_host("h2", PENTIUM_120, segment=1 if cross else 0)
        ep1 = h1.create_endpoint(rx_buffers=16)
        ep2 = h2.create_endpoint(rx_buffers=16)
        ch1, ch2 = net.connect(ep1, ep2)
        rtt = _rtt(sim, ep1, ep2, ch1, ch2)
        where = "across the IP router " if cross else "same segment (IP encap)"
        print(f"  FE,  {where}: {rtt:7.1f} us")
        if cross:
            print(f"       (router forwarded {net.router.packets_forwarded} packets, "
                  f"55 us of software forwarding each)")

    print("\nEach extra ATM switch costs ~7 us of cell forwarding; the FE path")
    print("pays IPv4 headers + checksums on every message and a mid-90s software")
    print("router on the way — the paper's Section 4.4.3 trade-off, quantified.")


if __name__ == "__main__":
    main()
