#!/usr/bin/env python3
"""Print the U-Net/FE kernel path timelines (the paper's Figures 3 & 4).

Every step of the fast-trap transmit path and the receive interrupt
handler is traced by the simulator; this example renders them exactly
as the paper's timeline figures do, for a 40-byte and a 100-byte
message.

Run:  python examples/kernel_timelines.py
"""

from repro.analysis import figure3_timeline, figure4_timeline


def main() -> None:
    tx = figure3_timeline()
    print(tx.render(title="Figure 3 — transmit trap, 40-byte message (paper: 4.2 us)"))
    print()
    rx40 = figure4_timeline(40)
    print(rx40.render(title="Figure 4a — receive handler, 40-byte message (paper: 4.1 us)"))
    print()
    rx100 = figure4_timeline(100)
    print(rx100.render(title="Figure 4b — receive handler, 100-byte message (paper: 5.6 us)"))
    print()
    saved = rx100.total - rx40.total
    print(f"the small-message optimization saves {saved:.1f} us per receive "
          f"(no buffer allocation, shorter copy)")


if __name__ == "__main__":
    main()
