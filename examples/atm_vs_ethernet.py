#!/usr/bin/env python3
"""Head-to-head: U-Net/ATM vs U-Net/FE latency and bandwidth.

Reproduces the core of the paper's Figures 5 and 6 in one run: sweeps
message sizes over all four network configurations (hub, Bay 28115
switch, Cabletron FN100 switch, Fore ASX-200 ATM) and prints the
latency and bandwidth curves side by side, highlighting:

* the ATM single-cell fast path (note the jump between 40 and 44 bytes),
* the per-switch latency differences on Fast Ethernet,
* FE saturating at ~97 Mb/s while ATM reaches ~118 Mb/s.

Run:  python examples/atm_vs_ethernet.py
"""

from repro.analysis import (
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    ascii_plot,
    format_table,
    measure_bandwidth,
    measure_rtt,
)

LATENCY_SIZES = [0, 16, 40, 44, 64, 128, 256, 512, 1024, 1498]
BANDWIDTH_SIZES = [64, 256, 512, 1024, 1498]


def main() -> None:
    print("=== Round-trip latency (us) — Figure 5 ===")
    latency = {}
    for name, factory in FIGURE5_CONFIGS.items():
        latency[name] = [(size, measure_rtt(factory(), size)) for size in LATENCY_SIZES]
    rows = []
    for i, size in enumerate(LATENCY_SIZES):
        rows.append([size] + [latency[name][i][1] for name in FIGURE5_CONFIGS])
    print(format_table(["bytes"] + list(FIGURE5_CONFIGS), rows))
    print()
    print(ascii_plot(
        {name: [(float(s), r) for s, r in pts] for name, pts in latency.items()},
        title="RTT vs message size",
        xlabel="bytes",
        ylabel="us",
    ))

    print()
    print("=== One-way bandwidth (Mb/s) — Figure 6 ===")
    bandwidth = {}
    for name, factory in FIGURE6_CONFIGS.items():
        bandwidth[name] = [(size, measure_bandwidth(factory(), size)) for size in BANDWIDTH_SIZES]
    rows = []
    for i, size in enumerate(BANDWIDTH_SIZES):
        rows.append([size] + [bandwidth[name][i][1] for name in FIGURE6_CONFIGS])
    print(format_table(["bytes"] + list(FIGURE6_CONFIGS), rows))

    atm40 = dict(latency["atm"])[40]
    atm44 = dict(latency["atm"])[44]
    print()
    print(f"ATM single-cell fast path: 40B -> {atm40:.0f} us, 44B -> {atm44:.0f} us "
          f"(+{atm44 - atm40:.0f} us once a second cell is needed)")


if __name__ == "__main__":
    main()
