#!/usr/bin/env python3
"""Protocol specialization at user level — U-Net's whole point.

"U-Net circumvents the traditional UNIX networking architecture ...
This shifts most of the protocol processing to user-level where it can
often be specialized and better integrated into the application thus
yielding higher performance" (Section 1).

This example builds two file-transfer protocols *in the application*,
directly on raw U-Net endpoints (no Active Messages layer):

* a naive stop-and-wait protocol, the kind a generic in-kernel stack
  might give you; and
* a specialized pipelined protocol that knows its traffic pattern —
  fixed-size records, one receiver — and keeps a window of frames in
  flight with a single cumulative ack per burst.

Same hardware, same U-Net; the specialized protocol more than doubles
the throughput.  That is the experiment the U-Net design argues for.

Run:  python examples/custom_protocol.py
"""

import struct

from repro.ethernet import SwitchedNetwork
from repro.core import EndpointConfig
from repro.hw import PENTIUM_120
from repro.sim import Simulator

RECORD = 1400          # payload bytes per frame
RECORDS = 64           # file size: 64 records
WINDOW = 8             # specialized protocol's pipeline depth

CONFIG = EndpointConfig(num_buffers=256, buffer_size=2048,
                        send_queue_depth=128, recv_queue_depth=256)


def _build():
    sim = Simulator()
    net = SwitchedNetwork(sim)
    src = net.add_host("src", PENTIUM_120)
    dst = net.add_host("dst", PENTIUM_120)
    ep_src = src.create_endpoint(config=CONFIG, rx_buffers=64)
    ep_dst = dst.create_endpoint(config=CONFIG, rx_buffers=64)
    ch_src, ch_dst = net.connect(ep_src, ep_dst)
    return sim, ep_src, ep_dst, ch_src, ch_dst


def _record(index: int) -> bytes:
    return struct.pack("!I", index) + bytes([(index * 37) % 256]) * (RECORD - 4)


def stop_and_wait() -> float:
    """One record in flight; every record individually acknowledged."""
    sim, ep_src, ep_dst, ch_src, ch_dst = _build()
    received = []

    def receiver():
        while len(received) < RECORDS:
            message = yield from ep_dst.recv()
            received.append(message.data)
            yield from ep_dst.send(ch_dst, b"ack")  # per-record ack

    def sender():
        for i in range(RECORDS):
            yield from ep_src.send(ch_src, _record(i))
            yield from ep_src.recv()  # wait for the ack
        return sim.now

    sim.process(receiver())
    end = sim.run_until_complete(sim.process(sender()))
    assert [struct.unpack("!I", r[:4])[0] for r in received] == list(range(RECORDS))
    return RECORDS * RECORD * 8 / end


def pipelined() -> float:
    """Specialized: WINDOW records in flight, one cumulative ack per burst.

    The application knows its records are fixed-size and ordered (the
    simulated switch does not reorder), so it skips per-record acks and
    sequence bookkeeping entirely — protocol processing tailored to the
    traffic, exactly what user-level networking enables.
    """
    sim, ep_src, ep_dst, ch_src, ch_dst = _build()
    received = []

    def receiver():
        since_ack = 0
        while len(received) < RECORDS:
            message = yield from ep_dst.recv()
            received.append(message.data)
            since_ack += 1
            if since_ack == WINDOW or len(received) == RECORDS:
                yield from ep_dst.send(ch_dst, struct.pack("!I", len(received)))
                since_ack = 0

    def sender():
        sent = 0
        acked = 0
        while acked < RECORDS:
            while sent < RECORDS and sent - acked < WINDOW:
                yield from ep_src.send(ch_src, _record(sent))
                sent += 1
            message = yield from ep_src.recv()
            acked = struct.unpack("!I", message.data)[0]
        return sim.now

    sim.process(receiver())
    end = sim.run_until_complete(sim.process(sender()))
    assert [struct.unpack("!I", r[:4])[0] for r in received] == list(range(RECORDS))
    return RECORDS * RECORD * 8 / end


def main() -> None:
    naive = stop_and_wait()
    fast = pipelined()
    print(f"transferring {RECORDS} x {RECORD}-byte records over U-Net/FE:\n")
    print(f"  generic stop-and-wait:        {naive:6.1f} Mb/s")
    print(f"  specialized pipelined (w={WINDOW}):  {fast:6.1f} Mb/s   ({fast / naive:.1f}x)")
    print()
    print("Both protocols live entirely in user space on the same U-Net")
    print("endpoint API — specializing the protocol to the application is")
    print("a code change in the application, not in the kernel (Section 1).")


if __name__ == "__main__":
    main()
