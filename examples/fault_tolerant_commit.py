#!/usr/bin/env python3
"""Two-phase commit rounds over U-Net (another intro motivation).

"Software fault-tolerance protocols (establishing consistent views of a
distributed system among its members) ... often require multiple rounds
of small-message passing" — the paper's introduction.  This example
runs a coordinator + participants two-phase commit over Active Messages
on both substrates and reports commit latency, including a run where a
participant's link drops messages (the AM layer retransmits and the
protocol still completes).

Run:  python examples/fault_tolerant_commit.py
"""

from repro.am import AmConfig, AmEndpoint
from repro.analysis import FrameFaultInjector
from repro.core import EndpointConfig
from repro.ethernet import SwitchedNetwork
from repro.atm import AtmNetwork
from repro.hw import PENTIUM_120
from repro.sim import RngRegistry, Simulator

H_PREPARE = 1
H_COMMIT = 2

PARTICIPANTS = 4
ROUNDS = 20

CONFIG = EndpointConfig(num_buffers=128, buffer_size=2048, recv_queue_depth=128)


def build(substrate: str, lossy: bool):
    sim = Simulator()
    network = SwitchedNetwork(sim) if substrate == "fe" else AtmNetwork(sim)
    coord_host = network.add_host("coordinator", PENTIUM_120)
    coord_ep = coord_host.create_endpoint(config=CONFIG, rx_buffers=64)
    am_cfg = AmConfig(retransmit_timeout_us=500.0)
    coordinator = AmEndpoint(0, coord_ep, config=am_cfg)
    participants = []
    for p in range(PARTICIPANTS):
        host = network.add_host(f"participant{p}", PENTIUM_120)
        endpoint = host.create_endpoint(config=CONFIG, rx_buffers=64)
        am = AmEndpoint(p + 1, endpoint, config=am_cfg)
        ch_c, ch_p = network.connect(coord_ep, endpoint)
        coordinator.connect_peer(p + 1, ch_c)
        am.connect_peer(0, ch_p)

        state = {"prepared": set(), "committed": set()}

        def make_handlers(state=state, am=am):
            def on_prepare(ctx):
                state["prepared"].add(ctx.args[0])
                yield from ctx.reply(args=(ctx.args[0], 1))  # vote yes

            def on_commit(ctx):
                state["committed"].add(ctx.args[0])
                yield from ctx.reply(args=(ctx.args[0],))

            return on_prepare, on_commit

        on_prepare, on_commit = make_handlers()
        am.register_handler(H_PREPARE, on_prepare)
        am.register_handler(H_COMMIT, on_commit)
        participants.append((am, state))
    injector = None
    if lossy and substrate == "fe":
        # participant 2's inbound link loses 20% of its frames
        injector = FrameFaultInjector(participants[2][0].user.host.backend,
                                      drop_rate=0.2, rng=RngRegistry(13))
    return sim, coordinator, participants, injector


def run(substrate: str, lossy: bool = False):
    sim, coordinator, participants, injector = build(substrate, lossy)
    latencies = []

    def coordinator_program():
        for txn in range(ROUNDS):
            t0 = sim.now
            # phase 1: prepare — gather unanimous votes
            votes = []
            for p in range(PARTICIPANTS):
                args, _ = yield from coordinator.rpc(p + 1, H_PREPARE, args=(txn,))
                votes.append(args[1])
            assert all(votes)
            # phase 2: commit
            for p in range(PARTICIPANTS):
                yield from coordinator.rpc(p + 1, H_COMMIT, args=(txn,))
            latencies.append(sim.now - t0)

    sim.run_until_complete(sim.process(coordinator_program()))
    for _am, state in participants:
        assert state["committed"] == set(range(ROUNDS))  # consistency held
    dropped = injector.dropped if injector else 0
    return sum(latencies) / len(latencies), max(latencies), dropped


def main() -> None:
    print(f"Two-phase commit, {PARTICIPANTS} participants, {ROUNDS} transactions\n")
    for substrate, label in (("fe", "U-Net/FE"), ("atm", "U-Net/ATM")):
        avg, worst, _ = run(substrate)
        print(f"  {label:10s} clean link:  avg {avg:7.0f} us/txn, worst {worst:7.0f} us")
    avg, worst, dropped = run("fe", lossy=True)
    print(f"  {'U-Net/FE':10s} 20% loss  :  avg {avg:7.0f} us/txn, worst {worst:7.0f} us "
          f"({dropped} frames dropped, all transactions still committed)")
    print()
    print("Every message here is tiny, so the low-overhead FE path wins; and")
    print("because U-Net leaves reliability to the layer above, the AM window")
    print("recovers lost messages and the commit protocol never notices.")


if __name__ == "__main__":
    main()
