"""Deterministic named random streams.

Every stochastic component (Ethernet backoff, loss injection, workload
generators) draws from its own named stream so that adding randomness to
one component never perturbs another — runs stay reproducible bit-for-bit
for a given master seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "ScopedRng"]


class RngRegistry:
    """Factory of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0xC0FFEE) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The RNG for ``name``, created on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def scoped(self, prefix: str) -> "ScopedRng":
        """A view of this registry that prefixes every stream name.

        Lets a subsystem (e.g. one fault pipeline of several) hand out
        namespaced streams without threading name prefixes everywhere.
        """
        return ScopedRng(self, prefix)

    def reset(self) -> None:
        self._streams.clear()


class ScopedRng:
    """A registry view whose streams all live under one name prefix."""

    def __init__(self, registry: RngRegistry, prefix: str) -> None:
        self._registry = registry
        self.prefix = prefix

    def stream(self, name: str) -> random.Random:
        return self._registry.stream(f"{self.prefix}.{name}")

    def scoped(self, prefix: str) -> "ScopedRng":
        return ScopedRng(self._registry, f"{self.prefix}.{prefix}")
