"""The discrete-event simulation engine.

Time is a ``float`` measured in **microseconds** throughout this project,
matching the units the paper reports (trap costs, round-trip latencies).
Events scheduled for the same instant fire in FIFO order of scheduling,
with an urgency tier for internal process bookkeeping, which keeps every
run fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import NORMAL, AllOf, AnyOf, Event, Process, Timeout

__all__ = ["Simulator", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class _Callback:
    """A bare deferred function call on the timeline (see ``call_in``).

    Device hot paths (cell/frame forwarding, link delivery) used to spawn
    a full :class:`Process` — generator + init event + timeout event — per
    PDU.  A ``_Callback`` is one heap entry and one function call, which
    is what makes 256-node collective sweeps finish in seconds.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self.fn = fn
        self.args = args


class Simulator:
    """Owns the event queue and the simulation clock.

    >>> sim = Simulator()
    >>> def pinger():
    ...     yield sim.timeout(5.0)
    ...     return "done"
    >>> proc = sim.process(pinger())
    >>> sim.run()
    >>> proc.value
    'done'
    >>> sim.now
    5.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._event_count = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._event_count

    # -- event factories -----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """A fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register ``generator`` as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling (internal) ----------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule a bare callback ``delay`` microseconds from now.

        The analytic fast path for fire-and-forget device work: no Event,
        no generator, no Process bookkeeping — just one heap entry whose
        function runs when the clock reaches it.  Ordering relative to
        ordinary events at the same instant follows the usual FIFO
        scheduling order (NORMAL tier).
        """
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, NORMAL, self._seq, _Callback(fn, args)))

    # -- execution ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise EmptySchedule()
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive; cannot happen
            raise RuntimeError("time ran backwards")
        self._now = when
        self._event_count += 1
        if type(event) is _Callback:
            event.fn(*event.args)
            return
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event.ok and not callbacks and not getattr(event, "_defused", False):
            # An unhandled failure (e.g. a crashed process nobody waits on)
            # must not pass silently.
            raise event._value

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or the budget ends.

        ``until`` is an absolute simulation time; the clock is advanced to it
        even if the last event fires earlier.

        The loop is intentionally inlined (rather than calling
        :meth:`step`) — it is the single hottest function in large-cluster
        runs and the attribute/call overhead of the delegating version was
        measurable.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        while queue:
            if until is not None and queue[0][0] > until:
                break
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events} (runaway simulation?)")
            when, _prio, _seq, event = pop(queue)
            self._now = when
            self._event_count += 1
            processed += 1
            if type(event) is _Callback:
                event.fn(*event.args)
                continue
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            if callbacks:
                for callback in callbacks:
                    callback(event)
            elif not event._ok and not getattr(event, "_defused", False):
                raise event._value
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, process: Process, limit: float = 1e12) -> Any:
        """Run until ``process`` finishes and return its value.

        Raises the process's exception if it failed, and ``RuntimeError`` if
        the schedule drained or the time ``limit`` passed without completion.
        """
        queue = self._queue
        pop = heapq.heappop
        while not process.triggered:
            if not queue:
                raise RuntimeError(f"schedule drained before process {process.name!r} completed")
            if queue[0][0] > limit:
                raise RuntimeError(f"process {process.name!r} did not complete before t={limit}")
            when, _prio, _seq, event = pop(queue)
            self._now = when
            self._event_count += 1
            if type(event) is _Callback:
                event.fn(*event.args)
                continue
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            if callbacks:
                for callback in callbacks:
                    callback(event)
            elif not event._ok and not getattr(event, "_defused", False):
                raise event._value
        if not process.ok:
            raise process._value
        return process.value
