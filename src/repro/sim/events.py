"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy, re-implemented here from scratch): simulation processes are Python
generators that ``yield`` :class:`Event` objects and are resumed when the
event fires.  An :class:`Event` carries a value (delivered as the result of
the ``yield``) or an exception (raised at the ``yield`` site).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "StopProcess",
]

#: Ordering priorities for events scheduled at the same simulation time.
#: Lower values fire first.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class StopProcess(Exception):
    """Raised by a process to terminate itself early with a return value."""

    @property
    def value(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once given a value (it is
    then queued on the simulator), and *processed* after its callbacks ran.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "name")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.name = name

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception raised at the yield site."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    def _mark_processed(self) -> None:
        self._processed = True
        self.callbacks = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{label} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative Timeout delay: {delay}")
        super().__init__(sim, name=f"Timeout({delay})")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay, priority=priority)


class Process(Event):
    """Wraps a generator and drives it through the simulation.

    The process is itself an event which fires when the generator returns
    (with the generator's return value) or raises (failing the event).
    """

    __slots__ = ("generator", "_target", "_alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._target: Optional[Event] = None
        self._alive = True
        # Kick off the generator at the current time.
        init = Event(sim, name="process-init")
        init._triggered = True
        init._ok = True
        sim._schedule(init, delay=0.0, priority=URGENT)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.sim, name="interrupt")
        interrupt_event._triggered = True
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        # Interrupts do not propagate as process failures; they are thrown in.
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, delay=0.0, priority=URGENT)

    # -- generator driving -----------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._target = None
        gen = self.generator
        event: Any
        try:
            if trigger.ok:
                event = gen.send(trigger.value)
            else:
                event = gen.throw(trigger.value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except StopProcess as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._alive = False
            self.fail(exc)
            return

        if isinstance(event, (int, float)):
            event = Timeout(self.sim, float(event))
        if not isinstance(event, Event):
            self._alive = False
            self.fail(TypeError(f"process {self.name!r} yielded non-event {event!r}"))
            return
        if event.sim is not self.sim:
            self._alive = False
            self.fail(RuntimeError("yielded event belongs to a different simulator"))
            return

        if event.callbacks is None:
            # Already processed: resume immediately at the current time.
            ghost = Event(self.sim, name="ghost")
            ghost._triggered = True
            ghost._ok = event.ok
            ghost._value = event._value
            ghost.callbacks.append(self._resume)
            self.sim._schedule(ghost, delay=0.0, priority=URGENT)
            self._target = ghost
        else:
            event.callbacks.append(self._resume)
            self._target = event


class Condition(Event):
    """Fires when ``evaluate`` over the child events becomes true.

    The value is a dict mapping each fired child event to its value.
    A failing child fails the condition immediately.
    """

    def __init__(
        self,
        sim: "Simulator",
        events: Iterable[Event],
        evaluate: Callable[[List[Event], int], bool],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, name=name or "Condition")
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.sim is not self.sim:
                raise RuntimeError("condition spans multiple simulators")
        if not self._events and self._evaluate(self._events, 0):
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed({e: e._value for e in self._events if e.processed and e.ok})


class AllOf(Condition):
    """Fires once all child events have fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, lambda evs, count: count >= len(evs), name="AllOf")


class AnyOf(Condition):
    """Fires once any child event has fired (immediately, if empty)."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, lambda evs, count: count >= 1 or not evs, name="AnyOf")
