"""Timeline tracing.

The paper's Figures 3 and 4 are *step timelines*: each step of the U-Net/FE
trap and interrupt handlers is labelled with its duration.  Device models
record steps into a :class:`TraceRecorder`; the analysis layer turns a
recorded span into the same step/duration breakdown the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceRecorder", "Timeline", "TimelineStep"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced step: ``[start, start+duration)`` within a category."""

    start: float
    duration: float
    category: str
    step: str
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries; cheap to disable.

    Subscribers see every record as it happens — even when ``enabled``
    is False, so an observer (e.g. the conformance checker's probe) can
    stream substrate steps without paying for an unbounded buffer.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._listeners: List[Any] = []

    def subscribe(self, listener) -> None:
        """Call ``listener(record)`` for every future record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def record(self, start: float, duration: float, category: str, step: str, **info: Any) -> None:
        if not self.enabled and not self._listeners:
            return
        rec = TraceRecord(start, duration, category, step, dict(info))
        if self.enabled:
            self.records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def clear(self) -> None:
        self.records.clear()

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def spans(self, category: str) -> Iterator["Timeline"]:
        """Group a category's records into contiguous timelines.

        A new timeline begins at each record flagged ``begin=True`` in its
        info dict (device models mark the first step of each handler run).
        """
        current: List[TraceRecord] = []
        for record in self.by_category(category):
            if record.info.get("begin") and current:
                yield Timeline(category, current)
                current = []
            current.append(record)
        if current:
            yield Timeline(category, current)

    def to_chrome_events(self, pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
        """Chrome trace-event dicts for everything recorded
        (load the JSON-dumped list via chrome://tracing)."""
        return [
            {
                "name": record.step,
                "cat": record.category,
                "ph": "X",
                "ts": record.start,
                "dur": record.duration,
                "pid": pid,
                "tid": tid,
                "args": dict(record.info),
            }
            for record in self.records
        ]

    def last_span(self, category: str) -> Optional["Timeline"]:
        result = None
        for span in self.spans(category):
            result = span
        return result


@dataclass(frozen=True)
class TimelineStep:
    label: str
    duration: float
    offset: float


class Timeline:
    """An ordered sequence of steps, as drawn in Figures 3 and 4."""

    def __init__(self, category: str, records: List[TraceRecord]) -> None:
        if not records:
            raise ValueError("empty timeline")
        self.category = category
        self.records = list(records)

    @property
    def start(self) -> float:
        return self.records[0].start

    @property
    def end(self) -> float:
        return max(r.end for r in self.records)

    @property
    def total(self) -> float:
        return self.end - self.start

    def steps(self) -> List[TimelineStep]:
        base = self.start
        return [TimelineStep(r.step, r.duration, r.start - base) for r in self.records]

    def to_chrome_events(self, pid: int = 1, tid: int = 1) -> List[Dict[str, Any]]:
        """Chrome trace-event dicts (load via chrome://tracing).

        Timestamps are microseconds, matching the simulation clock.
        """
        return [
            {
                "name": record.step,
                "cat": record.category,
                "ph": "X",
                "ts": record.start,
                "dur": record.duration,
                "pid": pid,
                "tid": tid,
                "args": dict(record.info),
            }
            for record in self.records
        ]

    def render(self, title: str = "", width: int = 60) -> str:
        """ASCII rendering in the style of the paper's figures."""
        lines = []
        if title:
            lines.append(title)
        total = self.total or 1.0
        for index, step in enumerate(self.steps(), start=1):
            bar_start = int(round(step.offset / total * width))
            bar_len = max(1, int(round(step.duration / total * width)))
            bar = " " * bar_start + "#" * bar_len
            lines.append(f"{index:2d}. {step.label:<42s} {step.duration:5.2f}us |{bar}")
        lines.append(f"    {'total':<42s} {self.total:5.2f}us")
        return "\n".join(lines)
