"""Blocking and non-blocking queue primitives used across the stack.

Two flavours are provided:

* :class:`Store` — a blocking FIFO in the process-interaction style
  (``yield store.get()`` / ``yield store.put(item)``), used for links,
  FIFOs, and mailboxes inside device models.
* :class:`BoundedRing` — a non-blocking fixed-capacity ring with
  notification hooks, modelling the hardware descriptor rings and the
  U-Net send/receive/free queues, which in the paper are plain memory
  polled by firmware or the kernel.
* :class:`Resource` — counted resource with FIFO request queue (used for
  bus arbitration and the shared Ethernet medium).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Callable, Deque, Generic, List, Optional, Tuple, TypeVar

from .engine import Simulator
from .events import Event

__all__ = ["Store", "BoundedRing", "RingFullError", "RingEmptyError", "Resource"]

T = TypeVar("T")


class Store(Generic[T]):
    """Blocking FIFO channel between simulation processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: T) -> Event:
        """Event that fires once ``item`` has been deposited."""
        event = self.sim.event(name=f"{self.name}.put")
        if not self.is_full:
            self._deposit(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: T) -> bool:
        """Non-blocking put; returns False when full."""
        if self.is_full:
            return False
        self._deposit(item)
        return True

    def get(self) -> Event:
        """Event that fires with the next item."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[T]:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _deposit(self, item: T) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter, item = self._putters.popleft()
            self._deposit(item)
            putter.succeed()


class RingFullError(Exception):
    """Push onto a full :class:`BoundedRing`."""


class RingEmptyError(Exception):
    """Pop from an empty :class:`BoundedRing`."""


class BoundedRing(Generic[T]):
    """Fixed-capacity FIFO ring with synchronous access and wakeup hooks.

    This mirrors the paper's queues: descriptor rings and U-Net message
    queues live in (simulated) memory, are written/read instantaneously by
    whoever holds the CPU, and are *polled* by their consumer.  The
    ``on_nonempty`` hooks let a consumer model sleep until producers push
    (e.g. the U-Net receive-queue ``select()``/signal upcall path).
    """

    def __init__(self, capacity: int, name: str = "ring") -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self._nonempty_hooks: List[Callable[["BoundedRing[T]"], None]] = []
        self.pushed_total = 0
        self.dropped_total = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._items)

    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`RingFullError` when full."""
        if self.is_full:
            raise RingFullError(f"{self.name} is full (capacity {self.capacity})")
        was_empty = not self._items
        self._items.append(item)
        self.pushed_total += 1
        if was_empty:
            hooks, self._nonempty_hooks = self._nonempty_hooks, []
            for hook in hooks:
                hook(self)

    def try_push(self, item: T) -> bool:
        """Append ``item`` if space allows; counts a drop otherwise."""
        if self.is_full:
            self.dropped_total += 1
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        if not self._items:
            raise RingEmptyError(f"{self.name} is empty")
        return self._items.popleft()

    def try_pop(self) -> Optional[T]:
        return self._items.popleft() if self._items else None

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def peek_many(self, n: int) -> List[T]:
        """The first ``n`` items, oldest first, without popping.

        Lets a batching consumer compose one burst from the queue head
        and then pop exactly as many entries as the device accepted —
        the tail stays queued under backpressure, FIFO order intact.
        """
        return list(islice(self._items, n))

    def drain(self) -> List[T]:
        """Pop everything currently queued (the 'consume all pending
        messages in a single upcall' amortization from §3.1)."""
        items = list(self._items)
        self._items.clear()
        return items

    def on_nonempty(self, hook: Callable[["BoundedRing[T]"], None]) -> None:
        """Register a one-shot hook run when the ring goes empty→non-empty.

        If the ring already holds items the hook runs immediately.
        """
        if self._items:
            hook(self)
        else:
            self._nonempty_hooks.append(hook)


class Resource:
    """Counted resource with FIFO queued acquisition."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = self.sim.event(name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
