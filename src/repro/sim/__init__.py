"""Discrete-event simulation kernel (time unit: microseconds)."""

from .engine import EmptySchedule, Simulator
from .events import AllOf, AnyOf, Condition, Event, Interrupt, Process, StopProcess, Timeout
from .queues import BoundedRing, Resource, RingEmptyError, RingFullError, Store
from .rng import RngRegistry, ScopedRng
from .trace import Timeline, TimelineStep, TraceRecord, TraceRecorder

__all__ = [
    "Simulator",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "StopProcess",
    "Store",
    "BoundedRing",
    "Resource",
    "RingFullError",
    "RingEmptyError",
    "RngRegistry",
    "ScopedRng",
    "TraceRecorder",
    "TraceRecord",
    "Timeline",
    "TimelineStep",
]
