"""Active Messages wire protocol.

Messages are classic Active Messages (von Eicken et al., ISCA '92):
a handler identifier, four word-size arguments, and an optional data
block.  On top of U-Net — which itself offers no retransmission or flow
control (Section 3.1) — every data packet carries a sequence number and
a cumulative acknowledgement; the sender keeps a go-back-N window.

When the receiver-credit extension is enabled (``AmConfig.credit_flow``)
a packet may additionally advertise the sender's *receive* capacity.
The advertisement rides behind a flag bit in the type byte plus a
two-byte credit word between header and data, so the classic wire
format — and every byte the calibrated benchmarks see — is unchanged
when the extension is off.

The crash-recovery extension (``AmConfig.recovery``) follows the same
pattern: an :data:`EPOCH_FLAG` bit in the type byte announces a
four-byte *incarnation epoch* field (after the credit word when both
are present) holding two 16-bit values — the sender's own epoch and an
echo of the destination's epoch as the sender knows it.  Both halves
are needed to fence sequence-number aliasing across a restart: the
sender half rejects traffic *from* a dead incarnation, and the echo
half rejects traffic *addressed to* a dead incarnation (a surviving
peer's epoch never changes, so only the echo distinguishes its
pre-crash in-flight packets from post-reconnect ones).  Receivers count
fenced packets as the typed ``stale_epoch`` drop class.  Two handshake
packet types, :data:`TYPE_HELLO` and :data:`TYPE_HELLO_ACK`, let a
restarted endpoint re-establish a channel: both carry the epoch pair
plus the sender's receive horizon (the next sequence number it will
accept) in the ``ack`` field.

The selective-acknowledgment extension (``AmConfig.ack_mode="sack"``)
rides a third flag bit: a five-byte versioned SACK block (one version
byte, then a 32-bit bitmap) after the epoch field.  Bit *i* of the
bitmap reports that the receiver holds sequence number ``ack + 1 + i``
out of order — the cumulative ``ack`` field stays authoritative for
everything below it, so a receiver that never reorders emits an empty
bitmap and the protocol degenerates to the classic cumulative scheme.

The ECN-style congestion extension (``AmConfig.congestion="ecn"``)
uses the last two flag bits and carries no body bytes at all:
:data:`ECN_CE_FLAG` is *congestion experienced*, set in flight by a
congested queue via :func:`mark_ce` (no re-encode needed — the bit
lives in the first byte); :data:`ECN_ECHO_FLAG` is the receiver's echo
of a mark back to the sender, which backs off before loss occurs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Packet",
    "encode",
    "decode",
    "HEADER_SIZE",
    "CREDIT_FLAG",
    "CREDIT_SIZE",
    "MAX_CREDIT",
    "EPOCH_FLAG",
    "EPOCH_SIZE",
    "EPOCH_MOD",
    "epoch_newer",
    "SACK_FLAG",
    "SACK_SIZE",
    "SACK_VERSION",
    "SACK_BITMAP_BITS",
    "ECN_CE_FLAG",
    "ECN_ECHO_FLAG",
    "mark_ce",
    "TYPE_REQUEST",
    "TYPE_REPLY",
    "TYPE_ACK",
    "TYPE_HELLO",
    "TYPE_HELLO_ACK",
    "SEQ_MOD",
    "seq_lt",
    "seq_leq",
    "seq_add",
    "peek_type_seq",
]

#: type, handler, seq, ack, req_seq, 4 word args, data length
_HEADER_FMT = "!BBHHH4IH"
HEADER_SIZE = struct.calcsize(_HEADER_FMT)

TYPE_REQUEST = 1
TYPE_REPLY = 2
TYPE_ACK = 3
#: reconnect handshake: "I am incarnation E; my receive horizon is A"
TYPE_HELLO = 4
#: handshake answer, same payload semantics as TYPE_HELLO
TYPE_HELLO_ACK = 5

#: type-byte flag: a two-byte credit advertisement follows the header
CREDIT_FLAG = 0x80
CREDIT_SIZE = struct.calcsize("!H")
#: largest advertisable credit (the wire word is 16 bits)
MAX_CREDIT = 0xFFFF

#: type-byte flag: a four-byte incarnation-epoch field follows the
#: header (after the credit word when both extensions are on): sender
#: epoch then destination-epoch echo, two 16-bit words
EPOCH_FLAG = 0x40
EPOCH_SIZE = struct.calcsize("!HH")
#: 16-bit epoch space; compared circularly like sequence numbers
EPOCH_MOD = 1 << 16

#: type-byte flag: a five-byte versioned SACK block follows the header
#: (after credit and epoch when present): one version byte, then a
#: 32-bit bitmap whose bit *i* acknowledges ``ack + 1 + i``
SACK_FLAG = 0x20
SACK_SIZE = struct.calcsize("!BI")
#: current SACK block wire version; decoders reject anything else
SACK_VERSION = 1
#: width of the SACK bitmap — the largest expressible receive horizon
SACK_BITMAP_BITS = 32

#: type-byte flag: congestion experienced.  Set *in flight* by a
#: congested queue (see :func:`mark_ce`); carries no body bytes.
ECN_CE_FLAG = 0x10
#: type-byte flag: receiver's echo of a congestion mark back to the
#: sender; carries no body bytes
ECN_ECHO_FLAG = 0x08

_FLAG_MASK = CREDIT_FLAG | EPOCH_FLAG | SACK_FLAG | ECN_CE_FLAG | ECN_ECHO_FLAG

#: 16-bit sequence space; windows must stay below half of it
SEQ_MOD = 1 << 16
_HALF = SEQ_MOD // 2


def seq_add(seq: int, n: int) -> int:
    return (seq + n) % SEQ_MOD


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` in the circular sequence space."""
    return (b - a) % SEQ_MOD < _HALF and a != b


def seq_leq(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def epoch_newer(a: int, b: int) -> bool:
    """True if incarnation ``a`` is strictly newer than ``b``.

    Epochs live in the same 16-bit circular space as sequence numbers;
    an endpoint would have to restart 32767 times within one peer's
    memory of it to alias.

    >>> epoch_newer(1, 0), epoch_newer(0, 1), epoch_newer(3, 3)
    (True, False, False)
    >>> epoch_newer(0, EPOCH_MOD - 1)
    True
    """
    return seq_lt(b % EPOCH_MOD, a % EPOCH_MOD)


@dataclass
class Packet:
    """One Active Messages packet."""

    type: int
    handler: int = 0
    seq: int = 0
    #: cumulative acknowledgement: the next sequence number expected
    ack: int = 0
    #: for replies: the sequence number of the request being answered
    req_seq: int = 0
    args: Tuple[int, int, int, int] = (0, 0, 0, 0)
    data: bytes = b""
    #: receive-capacity advertisement (credit extension); None = absent
    credit: Optional[int] = None
    #: sender incarnation epoch (recovery extension); None = absent,
    #: semantically equivalent to epoch 0 (the first incarnation)
    epoch: Optional[int] = None
    #: echo of the destination's incarnation epoch as the sender knows
    #: it ("this packet is addressed to incarnation E"); only on the
    #: wire when ``epoch`` is, as the second half of the epoch field
    peer_epoch: Optional[int] = None
    #: SACK bitmap over the receive horizon (bit i acknowledges
    #: ``ack + 1 + i``); None = no SACK block on the wire
    sack_bits: Optional[int] = None
    #: congestion experienced: set in flight by a congested queue
    ce: bool = False
    #: echo of a congestion mark from receiver back to sender
    ece: bool = False

    def __post_init__(self) -> None:
        if len(self.args) != 4:
            args = tuple(self.args) + (0,) * (4 - len(self.args))
            self.args = args[:4]


def encode(packet: Packet) -> bytes:
    """Serialize ``packet`` for the wire.

    >>> p = Packet(type=TYPE_REQUEST, handler=7, seq=3, args=(1, 2), data=b"hi")
    >>> q = decode(encode(p))
    >>> (q.handler, q.seq, q.args, q.data)
    (7, 3, (1, 2, 0, 0), b'hi')

    A credit advertisement survives the round trip and costs two bytes:

    >>> c = decode(encode(Packet(type=TYPE_ACK, credit=9)))
    >>> (c.type, c.credit)
    (3, 9)
    >>> len(encode(Packet(type=TYPE_ACK, credit=9))) - len(encode(Packet(type=TYPE_ACK)))
    2

    So does an incarnation-epoch pair, alone or combined with credit:

    >>> e = decode(encode(Packet(type=TYPE_HELLO, ack=5, epoch=2, peer_epoch=1)))
    >>> (e.type, e.ack, e.epoch, e.peer_epoch)
    (4, 5, 2, 1)
    >>> both = decode(encode(Packet(type=TYPE_REQUEST, credit=7, epoch=1)))
    >>> (both.credit, both.epoch, both.peer_epoch)
    (7, 1, 0)

    A SACK block costs five bytes; the ECN bits cost nothing:

    >>> s = decode(encode(Packet(type=TYPE_ACK, ack=4, sack_bits=0b101, ece=True)))
    >>> (s.ack, s.sack_bits, s.ce, s.ece)
    (4, 5, False, True)
    >>> len(encode(Packet(type=TYPE_ACK, sack_bits=0))) - len(encode(Packet(type=TYPE_ACK)))
    5
    """
    wire_type = packet.type
    credit = b""
    if packet.credit is not None:
        wire_type |= CREDIT_FLAG
        credit = struct.pack("!H", min(max(packet.credit, 0), MAX_CREDIT))
    epoch = b""
    if packet.epoch is not None:
        wire_type |= EPOCH_FLAG
        epoch = struct.pack("!HH", packet.epoch % EPOCH_MOD,
                            (packet.peer_epoch or 0) % EPOCH_MOD)
    sack = b""
    if packet.sack_bits is not None:
        wire_type |= SACK_FLAG
        sack = struct.pack("!BI", SACK_VERSION, packet.sack_bits & 0xFFFFFFFF)
    if packet.ce:
        wire_type |= ECN_CE_FLAG
    if packet.ece:
        wire_type |= ECN_ECHO_FLAG
    header = struct.pack(
        _HEADER_FMT,
        wire_type,
        packet.handler,
        packet.seq,
        packet.ack,
        packet.req_seq,
        *(a & 0xFFFFFFFF for a in packet.args),
        len(packet.data),
    )
    return header + credit + epoch + sack + packet.data


def mark_ce(raw: bytes) -> bytes:
    """Set the congestion-experienced bit on an encoded wire message.

    The CE flag lives in the first byte, so a congested queue can mark
    a message in flight without decoding it.  (On the ATM substrate the
    AAL5 CRC covers the payload, so the marker there must re-segment —
    see ``repro.faults``; frames and datagrams can be marked in place.)

    >>> raw = encode(Packet(type=TYPE_REQUEST, seq=9))
    >>> decode(mark_ce(raw)).ce
    True
    >>> peek_type_seq(mark_ce(raw)) == peek_type_seq(raw)
    True
    """
    if not raw:
        raise ValueError("cannot CE-mark an empty message")
    return bytes([raw[0] | ECN_CE_FLAG]) + raw[1:]


def peek_type_seq(raw: bytes) -> Optional[Tuple[int, int]]:
    """Read ``(type, seq)`` from a wire message's header, if present.

    Needs only the first ``HEADER_SIZE`` bytes, so it works on the first
    cell of a segmented AAL5 PDU (the AM header always fits one cell) —
    that is what lets a fault schedule identify a packet on either
    substrate without reassembling it.  Extension flags are stripped.
    Returns None when ``raw`` is too short to hold a header.
    """
    if len(raw) < HEADER_SIZE:
        return None
    ptype, _handler, seq = struct.unpack("!BBH", raw[:4])
    return ptype & ~_FLAG_MASK, seq


def decode(raw: bytes) -> Packet:
    """Parse a wire message back into a :class:`Packet`."""
    if len(raw) < HEADER_SIZE:
        raise ValueError(f"short AM packet: {len(raw)} bytes")
    ptype, handler, seq, ack, req_seq, a0, a1, a2, a3, dlen = struct.unpack(
        _HEADER_FMT, raw[:HEADER_SIZE]
    )
    offset = HEADER_SIZE
    credit: Optional[int] = None
    if ptype & CREDIT_FLAG:
        if len(raw) < offset + CREDIT_SIZE:
            raise ValueError("AM packet credit word truncated")
        (credit,) = struct.unpack("!H", raw[offset : offset + CREDIT_SIZE])
        offset += CREDIT_SIZE
    epoch: Optional[int] = None
    peer_epoch: Optional[int] = None
    if ptype & EPOCH_FLAG:
        if len(raw) < offset + EPOCH_SIZE:
            raise ValueError("AM packet epoch field truncated")
        epoch, peer_epoch = struct.unpack("!HH", raw[offset : offset + EPOCH_SIZE])
        offset += EPOCH_SIZE
    sack_bits: Optional[int] = None
    if ptype & SACK_FLAG:
        if len(raw) < offset + SACK_SIZE:
            raise ValueError("AM packet SACK block truncated")
        version, sack_bits = struct.unpack("!BI", raw[offset : offset + SACK_SIZE])
        if version != SACK_VERSION:
            raise ValueError(f"unknown SACK block version {version}")
        offset += SACK_SIZE
    ce = bool(ptype & ECN_CE_FLAG)
    ece = bool(ptype & ECN_ECHO_FLAG)
    ptype &= ~_FLAG_MASK
    data = raw[offset : offset + dlen]
    if len(data) != dlen:
        raise ValueError("AM packet data truncated")
    return Packet(type=ptype, handler=handler, seq=seq, ack=ack, req_seq=req_seq,
                  args=(a0, a1, a2, a3), data=data, credit=credit,
                  epoch=epoch, peer_epoch=peer_epoch,
                  sack_bits=sack_bits, ce=ce, ece=ece)
