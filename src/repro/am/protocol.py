"""Active Messages wire protocol.

Messages are classic Active Messages (von Eicken et al., ISCA '92):
a handler identifier, four word-size arguments, and an optional data
block.  On top of U-Net — which itself offers no retransmission or flow
control (Section 3.1) — every data packet carries a sequence number and
a cumulative acknowledgement; the sender keeps a go-back-N window.

When the receiver-credit extension is enabled (``AmConfig.credit_flow``)
a packet may additionally advertise the sender's *receive* capacity.
The advertisement rides behind a flag bit in the type byte plus a
two-byte credit word between header and data, so the classic wire
format — and every byte the calibrated benchmarks see — is unchanged
when the extension is off.

The crash-recovery extension (``AmConfig.recovery``) follows the same
pattern: an :data:`EPOCH_FLAG` bit in the type byte announces a
four-byte *incarnation epoch* field (after the credit word when both
are present) holding two 16-bit values — the sender's own epoch and an
echo of the destination's epoch as the sender knows it.  Both halves
are needed to fence sequence-number aliasing across a restart: the
sender half rejects traffic *from* a dead incarnation, and the echo
half rejects traffic *addressed to* a dead incarnation (a surviving
peer's epoch never changes, so only the echo distinguishes its
pre-crash in-flight packets from post-reconnect ones).  Receivers count
fenced packets as the typed ``stale_epoch`` drop class.  Two handshake
packet types, :data:`TYPE_HELLO` and :data:`TYPE_HELLO_ACK`, let a
restarted endpoint re-establish a channel: both carry the epoch pair
plus the sender's receive horizon (the next sequence number it will
accept) in the ``ack`` field.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Packet",
    "encode",
    "decode",
    "HEADER_SIZE",
    "CREDIT_FLAG",
    "CREDIT_SIZE",
    "MAX_CREDIT",
    "EPOCH_FLAG",
    "EPOCH_SIZE",
    "EPOCH_MOD",
    "epoch_newer",
    "TYPE_REQUEST",
    "TYPE_REPLY",
    "TYPE_ACK",
    "TYPE_HELLO",
    "TYPE_HELLO_ACK",
    "SEQ_MOD",
    "seq_lt",
    "seq_leq",
    "seq_add",
    "peek_type_seq",
]

#: type, handler, seq, ack, req_seq, 4 word args, data length
_HEADER_FMT = "!BBHHH4IH"
HEADER_SIZE = struct.calcsize(_HEADER_FMT)

TYPE_REQUEST = 1
TYPE_REPLY = 2
TYPE_ACK = 3
#: reconnect handshake: "I am incarnation E; my receive horizon is A"
TYPE_HELLO = 4
#: handshake answer, same payload semantics as TYPE_HELLO
TYPE_HELLO_ACK = 5

#: type-byte flag: a two-byte credit advertisement follows the header
CREDIT_FLAG = 0x80
CREDIT_SIZE = struct.calcsize("!H")
#: largest advertisable credit (the wire word is 16 bits)
MAX_CREDIT = 0xFFFF

#: type-byte flag: a four-byte incarnation-epoch field follows the
#: header (after the credit word when both extensions are on): sender
#: epoch then destination-epoch echo, two 16-bit words
EPOCH_FLAG = 0x40
EPOCH_SIZE = struct.calcsize("!HH")
#: 16-bit epoch space; compared circularly like sequence numbers
EPOCH_MOD = 1 << 16

_FLAG_MASK = CREDIT_FLAG | EPOCH_FLAG

#: 16-bit sequence space; windows must stay below half of it
SEQ_MOD = 1 << 16
_HALF = SEQ_MOD // 2


def seq_add(seq: int, n: int) -> int:
    return (seq + n) % SEQ_MOD


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` in the circular sequence space."""
    return (b - a) % SEQ_MOD < _HALF and a != b


def seq_leq(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


def epoch_newer(a: int, b: int) -> bool:
    """True if incarnation ``a`` is strictly newer than ``b``.

    Epochs live in the same 16-bit circular space as sequence numbers;
    an endpoint would have to restart 32767 times within one peer's
    memory of it to alias.

    >>> epoch_newer(1, 0), epoch_newer(0, 1), epoch_newer(3, 3)
    (True, False, False)
    >>> epoch_newer(0, EPOCH_MOD - 1)
    True
    """
    return seq_lt(b % EPOCH_MOD, a % EPOCH_MOD)


@dataclass
class Packet:
    """One Active Messages packet."""

    type: int
    handler: int = 0
    seq: int = 0
    #: cumulative acknowledgement: the next sequence number expected
    ack: int = 0
    #: for replies: the sequence number of the request being answered
    req_seq: int = 0
    args: Tuple[int, int, int, int] = (0, 0, 0, 0)
    data: bytes = b""
    #: receive-capacity advertisement (credit extension); None = absent
    credit: Optional[int] = None
    #: sender incarnation epoch (recovery extension); None = absent,
    #: semantically equivalent to epoch 0 (the first incarnation)
    epoch: Optional[int] = None
    #: echo of the destination's incarnation epoch as the sender knows
    #: it ("this packet is addressed to incarnation E"); only on the
    #: wire when ``epoch`` is, as the second half of the epoch field
    peer_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.args) != 4:
            args = tuple(self.args) + (0,) * (4 - len(self.args))
            self.args = args[:4]


def encode(packet: Packet) -> bytes:
    """Serialize ``packet`` for the wire.

    >>> p = Packet(type=TYPE_REQUEST, handler=7, seq=3, args=(1, 2), data=b"hi")
    >>> q = decode(encode(p))
    >>> (q.handler, q.seq, q.args, q.data)
    (7, 3, (1, 2, 0, 0), b'hi')

    A credit advertisement survives the round trip and costs two bytes:

    >>> c = decode(encode(Packet(type=TYPE_ACK, credit=9)))
    >>> (c.type, c.credit)
    (3, 9)
    >>> len(encode(Packet(type=TYPE_ACK, credit=9))) - len(encode(Packet(type=TYPE_ACK)))
    2

    So does an incarnation-epoch pair, alone or combined with credit:

    >>> e = decode(encode(Packet(type=TYPE_HELLO, ack=5, epoch=2, peer_epoch=1)))
    >>> (e.type, e.ack, e.epoch, e.peer_epoch)
    (4, 5, 2, 1)
    >>> both = decode(encode(Packet(type=TYPE_REQUEST, credit=7, epoch=1)))
    >>> (both.credit, both.epoch, both.peer_epoch)
    (7, 1, 0)
    """
    wire_type = packet.type
    credit = b""
    if packet.credit is not None:
        wire_type |= CREDIT_FLAG
        credit = struct.pack("!H", min(max(packet.credit, 0), MAX_CREDIT))
    epoch = b""
    if packet.epoch is not None:
        wire_type |= EPOCH_FLAG
        epoch = struct.pack("!HH", packet.epoch % EPOCH_MOD,
                            (packet.peer_epoch or 0) % EPOCH_MOD)
    header = struct.pack(
        _HEADER_FMT,
        wire_type,
        packet.handler,
        packet.seq,
        packet.ack,
        packet.req_seq,
        *(a & 0xFFFFFFFF for a in packet.args),
        len(packet.data),
    )
    return header + credit + epoch + packet.data


def peek_type_seq(raw: bytes) -> Optional[Tuple[int, int]]:
    """Read ``(type, seq)`` from a wire message's header, if present.

    Needs only the first ``HEADER_SIZE`` bytes, so it works on the first
    cell of a segmented AAL5 PDU (the AM header always fits one cell) —
    that is what lets a fault schedule identify a packet on either
    substrate without reassembling it.  Extension flags are stripped.
    Returns None when ``raw`` is too short to hold a header.
    """
    if len(raw) < HEADER_SIZE:
        return None
    ptype, _handler, seq = struct.unpack("!BBH", raw[:4])
    return ptype & ~_FLAG_MASK, seq


def decode(raw: bytes) -> Packet:
    """Parse a wire message back into a :class:`Packet`."""
    if len(raw) < HEADER_SIZE:
        raise ValueError(f"short AM packet: {len(raw)} bytes")
    ptype, handler, seq, ack, req_seq, a0, a1, a2, a3, dlen = struct.unpack(
        _HEADER_FMT, raw[:HEADER_SIZE]
    )
    offset = HEADER_SIZE
    credit: Optional[int] = None
    if ptype & CREDIT_FLAG:
        if len(raw) < offset + CREDIT_SIZE:
            raise ValueError("AM packet credit word truncated")
        (credit,) = struct.unpack("!H", raw[offset : offset + CREDIT_SIZE])
        offset += CREDIT_SIZE
    epoch: Optional[int] = None
    peer_epoch: Optional[int] = None
    if ptype & EPOCH_FLAG:
        if len(raw) < offset + EPOCH_SIZE:
            raise ValueError("AM packet epoch field truncated")
        epoch, peer_epoch = struct.unpack("!HH", raw[offset : offset + EPOCH_SIZE])
        offset += EPOCH_SIZE
    ptype &= ~_FLAG_MASK
    data = raw[offset : offset + dlen]
    if len(data) != dlen:
        raise ValueError("AM packet data truncated")
    return Packet(type=ptype, handler=handler, seq=seq, ack=ack, req_seq=req_seq,
                  args=(a0, a1, a2, a3), data=data, credit=credit,
                  epoch=epoch, peer_epoch=peer_epoch)
