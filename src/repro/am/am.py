"""Active Messages over U-Net.

"Split-C is implemented over Active Messages, a low-cost RPC mechanism,
providing flow control and reliable transfer, which has been implemented
over U-Net" (Section 5).  This module provides exactly that layer:

* **handlers** — a received request invokes a registered handler with
  four word arguments and a data block; the handler may send a reply.
* **reliability** — go-back-N retransmission over per-peer sequence
  numbers with cumulative (piggybacked or delayed-explicit) acks.
  U-Net itself drops messages when receive resources are exhausted.
* **flow control** — a bounded per-peer window of unacknowledged
  requests; senders block on a full window.
* **adaptation** (opt-in, see :class:`AmConfig`) — Jacobson/Karels RTO
  estimation with Karn's rule and jittered exponential backoff, AIMD
  window adaptation, and duplicate-ack fast retransmit.  All default
  off, so the classic fixed-RTO protocol the benchmarks were calibrated
  against is what you get out of the box.
* **receiver credit** (opt-in, ``AmConfig.credit_flow``) — every packet
  advertises the sender's remaining receive capacity (free receive-queue
  slots and donated buffers, fair-shared across peers); senders gate
  their window on the peer's latest advertisement minus their own
  unacked in-flight packets.  A receiver that falls behind thus stalls
  its senders instead of silently shedding their packets, which is the
  backpressure half of the overload-containment story (the other half,
  quarantine, lives in :mod:`repro.core.health`).
* **selective acknowledgment** (opt-in, ``AmConfig.ack_mode="sack"``) —
  every packet the receiver sends back carries a SACK bitmap over its
  bounded reorder buffer; the sender keeps a scoreboard and retransmits
  only the *holes* (Karn-safe: selective retransmissions are never RTT
  sampled), so one lost packet under bursty loss costs one retransmit
  instead of a serial chain of go-back-N timeouts.  Dispatch order is
  still sequence order — the reorder buffer never releases early.
* **ECN-style congestion signaling** (opt-in,
  ``AmConfig.congestion="ecn"``) — a congested queue marks packets
  (congestion experienced) instead of dropping them; the receiver
  echoes marks back and the sender halves its AIMD window at most once
  per round trip (RFC-3168 shape), backing off *before* loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..core.api import UserEndpoint
from ..core.errors import ConfigError, PeerUnavailableError, StaleEpochError
from ..sim import Event, Resource, Simulator
from .protocol import (
    CREDIT_SIZE,
    EPOCH_MOD,
    EPOCH_SIZE,
    HEADER_SIZE,
    SACK_BITMAP_BITS,
    SACK_SIZE,
    SEQ_MOD,
    TYPE_ACK,
    TYPE_HELLO,
    TYPE_HELLO_ACK,
    TYPE_REPLY,
    TYPE_REQUEST,
    Packet,
    decode,
    encode,
    seq_add,
    seq_lt,
)
from .spec import (
    ack_epoch_applies,
    credit_gate_blocks,
    cumulative_acked,
    ecn_backoff_allowed,
    effective_epoch,
    epoch_advances,
    epoch_is_stale,
    reconnect_plan,
    reorder_admit,
    sack_block,
    sack_retransmit_plan,
)

__all__ = ["AmConfig", "AmEndpoint", "RequestContext", "AmError"]


class AmError(Exception):
    """Active Messages protocol/usage error."""


@dataclass
class AmConfig:
    """Tunables of the reliability/flow-control machinery."""

    #: maximum unacknowledged packets per peer (must be < SEQ_MOD/2)
    window: int = 16
    #: retransmit the window after this long without an acknowledgement
    retransmit_timeout_us: float = 4000.0
    #: send an explicit ACK if no reverse traffic carried one by then
    ack_delay_us: float = 60.0
    #: ... or after this many unacknowledged deliveries
    ack_every: int = 8
    #: per-message handler-dispatch CPU cost at the receiver
    dispatch_overhead_us: float = 1.0
    #: buffer out-of-order arrivals (up to one window) instead of
    #: dropping them: turns go-back-N into selective-repeat-style
    #: recovery.  Off by default (classic AM); essential for striped
    #: paths that reorder, e.g. Beowulf dual-NIC bonding.
    ooo_buffering: bool = False

    # -- adaptive reliability (all off by default: the fixed-RTO, ----------
    # -- static-window protocol above reproduces the paper's numbers) ------
    #: estimate the RTO per peer (Jacobson/Karels SRTT + RTTVAR, with
    #: Karn's rule: never sample a retransmitted packet's RTT)
    adaptive_rto: bool = False
    #: floor of the estimated RTO (guards against spurious retransmits
    #: when delayed acks dominate the RTT sample)
    rto_min_us: float = 250.0
    #: ceiling of the estimated/backed-off RTO
    rto_max_us: float = 60_000.0
    #: RTO multiplier per consecutive timeout (exponential backoff)
    backoff_factor: float = 2.0
    #: random extra fraction added to backed-off RTOs so that peers
    #: sharing a medium do not phase-lock their retransmissions
    backoff_jitter: float = 0.1
    #: AIMD window adaptation: halve the effective window on timeout,
    #: grow it additively (one packet per window's worth of clean acks)
    adaptive_window: bool = False
    #: AIMD never shrinks the effective window below this
    min_window: int = 1
    #: retransmit the window head after `dup_ack_threshold` duplicate
    #: cumulative acks instead of waiting out the RTO
    fast_retransmit: bool = False
    dup_ack_threshold: int = 3

    # -- receiver-credit backpressure (off by default: classic U-Net is ----
    # -- receiver-paced and drops; see the overload soak for the contrast) -
    #: gate the send window on the peer's advertised receive capacity, so
    #: an exhausted receiver turns sender overruns into stalls, not drops.
    #: Advertisements piggyback on every packet (two extra wire bytes) and
    #: are refreshed periodically when they change.
    credit_flow: bool = False
    #: period of the background credit-refresh process
    credit_update_us: float = 400.0

    # -- crash recovery (off by default: endpoints live forever and the ----
    # -- classic wire bytes are untouched) ---------------------------------
    #: stamp every packet with the incarnation-epoch pair, fence stale
    #: traffic, run the HELLO reconnect handshake after restart(), and
    #: declare ack-starved peers dead instead of retransmitting forever
    recovery: bool = False
    #: starting incarnation (restarts increment it modulo EPOCH_MOD)
    epoch: int = 0
    #: consecutive ack-starved retransmission timeouts before the peer
    #: is declared dead and its in-flight sends are abandoned
    dead_after_timeouts: int = 6
    #: HELLO retransmit period while a reconnect handshake is in flight
    hello_retry_us: float = 2000.0
    #: optional heartbeat period (0 = off): epoch-stamped explicit acks
    #: on idle channels, so a peer's death or restart is detected even
    #: with no data traffic to starve
    heartbeat_us: float = 0.0
    #: declare a peer dead after this many silent heartbeat periods
    heartbeat_misses: int = 4

    # -- loss-resilient transport (off by default: the classic wire -------
    # -- bytes and go-back-N recovery are untouched) -----------------------
    #: acknowledgment scheme: ``"gbn"`` (classic cumulative-only
    #: go-back-N) or ``"sack"`` (cumulative ack + bitmap over the
    #: receive horizon, receiver-side reorder buffer, sender scoreboard
    #: with selective retransmit of holes only)
    ack_mode: str = "gbn"
    #: SACK receive horizon: how far past the cumulative ack the
    #: receiver promises to buffer out-of-order arrivals.  Bounded by
    #: the 32-bit wire bitmap; the window may never exceed it.
    sack_horizon: int = 32
    #: congestion signal: ``"loss"`` (classic: timeouts shrink the AIMD
    #: window) or ``"ecn"`` (queues mark packets instead of dropping,
    #: receivers echo marks, senders back off before loss; requires
    #: ``adaptive_window``)
    congestion: str = "loss"

    @classmethod
    def adaptive(cls, **overrides) -> "AmConfig":
        """The full adaptive stack: estimated RTO + AIMD + fast retransmit."""
        overrides.setdefault("adaptive_rto", True)
        overrides.setdefault("adaptive_window", True)
        overrides.setdefault("fast_retransmit", True)
        return cls(**overrides)

    def __post_init__(self) -> None:
        # Everything is rejected here, at construction, with a typed
        # ConfigError (a UNetError *and* a ValueError) — a bad knob or
        # an incoherent mode combination must not surface as a hang or
        # an assertion deep in the send path.
        if not 0 < self.window < SEQ_MOD // 2:
            raise ConfigError("window must be positive and below half the sequence space",
                              knob="window")
        for knob in ("retransmit_timeout_us", "ack_delay_us", "dispatch_overhead_us"):
            value = getattr(self, knob)
            if not value > 0:
                raise ConfigError(f"{knob} must be positive, got {value!r}", knob=knob)
        if not 0 < self.rto_min_us <= self.rto_max_us:
            raise ConfigError("need 0 < rto_min_us <= rto_max_us", knob="rto_min_us")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1", knob="backoff_factor")
        if self.backoff_jitter < 0.0:
            raise ConfigError("backoff_jitter must be >= 0", knob="backoff_jitter")
        if not 0 < self.min_window <= self.window:
            raise ConfigError("need 0 < min_window <= window", knob="min_window")
        if self.dup_ack_threshold < 1:
            raise ConfigError("dup_ack_threshold must be >= 1", knob="dup_ack_threshold")
        if not self.credit_update_us > 0:
            raise ConfigError("credit_update_us must be positive", knob="credit_update_us")
        if not 0 <= self.epoch < EPOCH_MOD:
            raise ConfigError(f"epoch must be in [0, {EPOCH_MOD}), got {self.epoch!r}",
                              knob="epoch")
        if self.dead_after_timeouts < 1:
            raise ConfigError("dead_after_timeouts must be >= 1", knob="dead_after_timeouts")
        if not self.hello_retry_us > 0:
            raise ConfigError("hello_retry_us must be positive", knob="hello_retry_us")
        if self.heartbeat_us < 0:
            raise ConfigError("heartbeat_us must be >= 0 (0 disables)", knob="heartbeat_us")
        if self.heartbeat_misses < 1:
            raise ConfigError("heartbeat_misses must be >= 1", knob="heartbeat_misses")
        if self.ack_mode not in ("gbn", "sack"):
            raise ConfigError(f"ack_mode must be 'gbn' or 'sack', got {self.ack_mode!r}",
                              knob="ack_mode")
        if self.congestion not in ("loss", "ecn"):
            raise ConfigError(f"congestion must be 'loss' or 'ecn', got {self.congestion!r}",
                              knob="congestion")
        if not 1 <= self.sack_horizon <= SACK_BITMAP_BITS:
            raise ConfigError(
                f"sack_horizon must be in [1, {SACK_BITMAP_BITS}] (the wire bitmap "
                f"width), got {self.sack_horizon!r}", knob="sack_horizon")
        if self.ack_mode == "sack":
            if self.window > self.sack_horizon:
                raise ConfigError(
                    "window must not exceed sack_horizon: the receiver only "
                    "promises to buffer one horizon of reordering", knob="window")
            if self.fast_retransmit:
                raise ConfigError(
                    "fast_retransmit is the go-back-N dup-ack heuristic; the "
                    "SACK scoreboard subsumes it", knob="fast_retransmit")
            if self.ooo_buffering:
                raise ConfigError(
                    "ooo_buffering is the go-back-N reorder option; "
                    "ack_mode='sack' brings its own bounded reorder buffer",
                    knob="ooo_buffering")
            if self.recovery:
                raise ConfigError(
                    "recovery with ack_mode='sack' is not supported: the "
                    "reconnect contract is defined over a cumulative-ack "
                    "horizon only", knob="recovery")
        if self.congestion == "ecn":
            if not self.adaptive_window:
                raise ConfigError(
                    "congestion='ecn' requires adaptive_window: a mark echo "
                    "has no window to shrink otherwise", knob="congestion")
            if self.credit_flow:
                raise ConfigError(
                    "credit_flow and congestion='ecn' are two backpressure "
                    "signals fighting over one send window; pick one",
                    knob="credit_flow")


class _PeerState:
    """Per-connection reliability state."""

    __slots__ = (
        "node",
        "channel",
        "next_seq",
        "unacked",
        "window_waiters",
        "expected_seq",
        "pending_ack",
        "deliveries_since_ack",
        "last_progress",
        "timer_running",
        "retransmissions",
        "duplicates",
        "tx_lock",
        "ooo_held",
        # -- adaptive reliability --
        "srtt",
        "rttvar",
        "rto_us",
        "backoff",
        "sent_at",
        "rexmit_seqs",
        "cwnd",
        "last_ack",
        "dup_acks",
        "fast_done_seq",
        "timeouts",
        "fast_retransmits",
        "rtt_samples",
        # -- selective acknowledgment --
        "sacked",
        "sack_rexmitted",
        # -- ECN-style congestion signaling --
        "pending_echoes",
        "ecn_round_end",
        "ecn_marks",
        "ecn_echoes",
        "ecn_backoffs",
        # -- receiver-credit backpressure --
        "remote_credit",
        "credit_waiters",
        "credit_stalls",
        "last_advertised",
        # -- crash recovery --
        "remote_epoch",
        "alive",
        "starved_timeouts",
        "reconnecting",
        "hello_waiters",
        "abandoned",
        "last_heard",
    )

    def __init__(self, node: int, channel: int, sim: Simulator, window: int) -> None:
        self.node = node
        self.channel = channel
        #: serializes seq assignment + hand-off to U-Net so that packets
        #: from concurrent senders cannot overtake each other (compose
        #: times differ with size; reordering would trip go-back-N)
        self.tx_lock = Resource(sim, capacity=1, name=f"am.peer{node}.tx")
        self.next_seq = 0
        #: seq -> (Packet, bytes) awaiting acknowledgement, in order
        self.unacked: Dict[int, Packet] = {}
        self.window_waiters: List[Event] = []
        self.expected_seq = 0
        self.pending_ack = False
        self.deliveries_since_ack = 0
        self.last_progress = 0.0
        self.timer_running = False
        self.retransmissions = 0
        self.duplicates = 0
        #: out-of-order packets held for in-order delivery (seq -> Packet)
        self.ooo_held: Dict[int, Packet] = {}
        #: smoothed RTT / variance estimates (Jacobson/Karels), unset
        #: until the first clean sample
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        #: current estimated RTO (meaningful once srtt is set)
        self.rto_us = 0.0
        #: consecutive-timeout count driving exponential backoff
        self.backoff = 0
        #: seq -> first-transmission time, for RTT sampling
        self.sent_at: Dict[int, float] = {}
        #: seqs that were retransmitted (Karn's rule: never sample them)
        self.rexmit_seqs: Set[int] = set()
        #: AIMD congestion window (starts wide open at the config window)
        self.cwnd = float(window)
        #: last cumulative ack seen, for duplicate-ack detection
        self.last_ack: Optional[int] = None
        self.dup_acks = 0
        #: head seq already fast-retransmitted (retransmit each head once)
        self.fast_done_seq: Optional[int] = None
        self.timeouts = 0
        self.fast_retransmits = 0
        self.rtt_samples = 0
        #: outstanding seqs a SACK block reported the receiver holds
        self.sacked: Set[int] = set()
        #: holes already selectively retransmitted this round (cleared
        #: on RTO so persistent loss gets another selective pass)
        self.sack_rexmitted: Set[int] = set()
        #: congestion marks accepted but not yet echoed to the peer
        self.pending_echoes = 0
        #: window edge recorded at the last ECN backoff; echoes are
        #: ignored until the cumulative ack reaches it (one per round)
        self.ecn_round_end: Optional[int] = None
        self.ecn_marks = 0
        self.ecn_echoes = 0
        self.ecn_backoffs = 0
        #: peer's latest receive-capacity advertisement (None = none yet,
        #: treated as unlimited so start-up cannot deadlock)
        self.remote_credit: Optional[int] = None
        self.credit_waiters: List[Event] = []
        #: times a sender stalled on exhausted remote credit
        self.credit_stalls = 0
        #: last credit value advertised *to* this peer
        self.last_advertised: Optional[int] = None
        #: the peer incarnation this endpoint believes it is talking to
        self.remote_epoch = 0
        #: False once the liveness detector declared the peer dead;
        #: any valid packet from the peer (usually its HELLO) revives it
        self.alive = True
        #: consecutive RTO firings without any cumulative-ack progress
        self.starved_timeouts = 0
        #: True between restart() and the peer's HELLO-ACK: new sends
        #: queue on ``hello_waiters`` until the channel is re-established
        self.reconnecting = False
        self.hello_waiters: List[Event] = []
        #: sends abandoned under the at-most-once contract (peer died
        #: or returned as a new incarnation)
        self.abandoned = 0
        #: sim time of the last packet accepted from this peer
        self.last_heard = sim.now


class RequestContext:
    """Handed to request handlers; lets them reply to the requester."""

    __slots__ = ("am", "src_node", "args", "data", "_req_seq", "replied")

    def __init__(self, am: "AmEndpoint", src_node: int, args, data: bytes, req_seq: int) -> None:
        self.am = am
        self.src_node = src_node
        self.args = args
        self.data = data
        self._req_seq = req_seq
        self.replied = False

    def reply(self, args=(), data: bytes = b"") -> Generator:
        """Process: send the reply for this request."""
        self.replied = True
        yield from self.am._send_reply(self.src_node, self._req_seq, args, data)


#: request-handler signature: fn(ctx) -> None or a generator to run
Handler = Callable[[RequestContext], Optional[Generator]]


class AmEndpoint:
    """An Active Messages endpoint bound to one U-Net endpoint.

    One AM endpoint serves one node; peers are added with
    :meth:`connect_peer` after U-Net channels have been created by the
    substrate's signaling/channel service.
    """

    def __init__(self, node_id: int, user_endpoint: UserEndpoint, config: Optional[AmConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.node = node_id
        self.user = user_endpoint
        self.sim: Simulator = user_endpoint.sim
        self.config = config or AmConfig()
        #: deterministic per-endpoint stream for retransmission jitter
        self._rng = rng or random.Random(0x5EED ^ node_id)
        self._peers_by_node: Dict[int, _PeerState] = {}
        self._peers_by_channel: Dict[int, _PeerState] = {}
        #: on-demand channel establishment: called with a node id the
        #: first time it is addressed; expected to set up the channel
        #: (signaling is off the critical path, zero simulated time) and
        #: ``connect_peer`` both ends.  Lets a cluster skip the O(N^2)
        #: eager full mesh.
        self.peer_resolver: Optional[Callable[[int], None]] = None
        self._handlers: Dict[int, Handler] = {}
        #: rpc completion events keyed by (peer node, request seq)
        self._rpc_waiters: Dict[Tuple[int, int], Event] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.acks_sent = 0
        self.requests_delivered = 0
        #: optional observable-event hook ``observer(kind, fields)``.
        #: Kinds: grant, credit_stall, tx, rexmit, timeout, dispatch,
        #: reply, dup_rx, ecn_mark, ecn_echo, ecn_backoff.  Every
        #: ``fields`` dict carries ``node`` (this
        #: endpoint), ``peer`` and ``t`` (sim time); the conformance
        #: checker consumes these to diff substrates against the
        #: reference model without reaching into private state.
        self.observer: Optional[Callable[[str, Dict], None]] = None
        self._running = True
        #: this endpoint's incarnation (stamped into every packet when
        #: the recovery extension is on; restarts increment it)
        self.epoch = self.config.epoch
        self._crashed = False
        self.restarts = 0
        #: sends abandoned under the at-most-once contract, all peers
        self.abandoned_sends = 0
        #: optional HealthMonitor fed peer_dead/peer_alive verdicts by
        #: the liveness detector (see attach_health)
        self.health = None
        self.sim.process(self._dispatch_loop(), name=f"am{node_id}.dispatch")
        if self.config.credit_flow:
            self.sim.process(self._credit_refresh_loop(), name=f"am{node_id}.credit")
        if self.config.recovery and self.config.heartbeat_us > 0:
            self.sim.process(self._heartbeat_loop(), name=f"am{node_id}.hb")

    # ------------------------------------------------------------- set-up
    @property
    def max_data(self) -> int:
        """Largest data block one packet can carry on this substrate."""
        overhead = (HEADER_SIZE
                    + (CREDIT_SIZE if self.config.credit_flow else 0)
                    + (EPOCH_SIZE if self.config.recovery else 0)
                    + (SACK_SIZE if self.config.ack_mode == "sack" else 0))
        return self.user.host.backend.max_pdu - overhead

    def connect_peer(self, node_id: int, channel_id: int) -> None:
        if node_id in self._peers_by_node:
            raise AmError(f"peer {node_id} already connected")
        peer = _PeerState(node_id, channel_id, self.sim, self.config.window)
        self._peers_by_node[node_id] = peer
        self._peers_by_channel[channel_id] = peer

    def register_handler(self, handler_id: int, fn: Handler) -> None:
        if not 0 <= handler_id <= 0xFF:
            raise AmError("handler id must fit one byte")
        self._handlers[handler_id] = fn

    def shutdown(self) -> None:
        """Stop background activity so the simulation can drain."""
        self._running = False

    def attach_health(self, monitor) -> None:
        """Feed the liveness detector's peer_dead/peer_alive verdicts
        into a :class:`~repro.core.health.HealthMonitor`."""
        self.health = monitor
        monitor.watch(self.user.endpoint)

    # ------------------------------------------------------ crash recovery
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Abrupt death of this incarnation: all protocol state is lost.

        The dispatch loop keeps draining the U-Net endpoint — the NI
        does not stop delivering into a dead process's rings — but
        nothing is processed or acknowledged until :meth:`restart`.
        Local waiters (blocked senders, pending RPCs) belong to the dead
        incarnation and fail with :class:`StaleEpochError`.
        """
        if not self.config.recovery:
            raise AmError("crash()/restart() require AmConfig.recovery")
        if self._crashed:
            return
        self._crashed = True
        for peer in self._peers_by_node.values():
            peer.unacked.clear()  # armed timers find nothing and exit
            peer.sent_at.clear()
            peer.rexmit_seqs.clear()
            peer.ooo_held.clear()
            self._fail_waiters(peer, StaleEpochError(
                f"node {self.node} epoch {self.epoch} crashed"))
        waiters, self._rpc_waiters = self._rpc_waiters, {}
        for (dest, seq), event in waiters.items():
            event.fail(StaleEpochError(
                f"rpc seq {seq} to node {dest} was issued by the dead "
                f"incarnation {self.epoch} of node {self.node}"))

    def restart(self) -> int:
        """Return as a new incarnation and re-establish every channel.

        Per-peer go-back-N state is rebuilt from scratch (a restarted
        process remembers nothing) and a HELLO handshake announces the
        new epoch on each channel; sends issued before the peer's
        HELLO-ACK arrives queue behind the handshake.  Returns the new
        epoch.
        """
        if not self.config.recovery:
            raise AmError("crash()/restart() require AmConfig.recovery")
        self.epoch = (self.epoch + 1) % EPOCH_MOD
        self.restarts += 1
        self._crashed = False
        if self.health is not None:
            # the restart is a local (syscall-level) event the host's
            # monitor is entitled to see: a quarantine latch earned by
            # the dead incarnation converts back into a live evaluation.
            # Without this the latch is unescapable — the shed endpoint
            # never receives the traffic that could prove it recovered.
            self.health.note_epoch_advance(self.user.endpoint)
        for node, old in list(self._peers_by_node.items()):
            fresh = _PeerState(old.node, old.channel, self.sim, self.config.window)
            fresh.reconnecting = True
            self._peers_by_node[node] = fresh
            self._peers_by_channel[old.channel] = fresh
            self._observe("reconnect", fresh, epoch=self.epoch)
            self.sim.process(self._hello_loop(fresh), name=f"am{self.node}.hello")
        return self.epoch

    def _hello_loop(self, peer: _PeerState) -> Generator:
        """Retransmit HELLO until the peer's HELLO-ACK closes the loop."""
        my_epoch = self.epoch
        while (self._running and not self._crashed and peer.reconnecting
               and self.epoch == my_epoch
               and self._peers_by_node.get(peer.node) is peer):
            yield from self._send_hello(peer, TYPE_HELLO)
            yield self.sim.timeout(self.config.hello_retry_us)

    def _send_hello(self, peer: _PeerState, ptype: int) -> Generator:
        # ack carries this side's receive horizon: the next sequence
        # number it will accept from the peer
        packet = Packet(type=ptype, ack=peer.expected_seq)
        yield from self._transmit(peer, packet, track=False)

    def _fail_waiters(self, peer: _PeerState, exc: Exception) -> None:
        for event in (peer.window_waiters + peer.credit_waiters
                      + peer.hello_waiters):
            event.fail(exc)
        peer.window_waiters = []
        peer.credit_waiters = []
        peer.hello_waiters = []

    def _abandon(self, peer: _PeerState, seqs, reason: str) -> None:
        """Give the listed in-flight sends their ``abandoned`` fate."""
        for seq in seqs:
            peer.unacked.pop(seq, None)
            peer.sent_at.pop(seq, None)
            peer.rexmit_seqs.discard(seq)
            peer.abandoned += 1
            self.abandoned_sends += 1
            self.user.endpoint.note_drop("peer_dead_drops")
            self._observe("abandon", peer, seq=seq, reason=reason)
            waiter = self._rpc_waiters.pop((peer.node, seq), None)
            if waiter is not None:
                waiter.fail(PeerUnavailableError(
                    f"send seq {seq} to node {peer.node} abandoned: {reason}",
                    peer=peer.node, seq=seq))

    def _declare_peer_dead(self, peer: _PeerState, reason: str) -> None:
        if not peer.alive:
            return
        peer.alive = False
        self._observe("peer_dead", peer, reason=reason)
        self._abandon(peer, list(peer.unacked), reason)
        self._fail_waiters(peer, PeerUnavailableError(
            f"node {peer.node} declared dead: {reason}", peer=peer.node))
        if self.health is not None:
            self.health.report_peer_dead(self.user.endpoint, peer.node)

    def _mark_alive(self, peer: _PeerState) -> None:
        peer.last_heard = self.sim.now
        peer.starved_timeouts = 0
        if not peer.alive:
            peer.alive = True
            self._observe("peer_alive", peer)
            if self.health is not None:
                self.health.report_peer_alive(self.user.endpoint, peer.node)

    # -- patchable spec seams (the conformance bug library targets these) --
    def _epoch_stale(self, claimed: Optional[int], current: int) -> bool:
        """Seam for the epoch fence; healthy = :func:`epoch_is_stale`."""
        return epoch_is_stale(claimed, current)

    def _reconnect_plan(self, peer: _PeerState, horizon: int,
                        restarted: bool):
        """Seam for the at-most-once reconnect split; healthy =
        :func:`reconnect_plan`.  Whatever lands in neither list stays in
        ``unacked`` and is *replayed* — which is exactly what the
        ``replay-horizon`` injected bug arranges."""
        return reconnect_plan(peer.unacked, horizon, restarted)

    def _sack_block(self, peer: _PeerState) -> int:
        """The SACK bitmap this receiver advertises to ``peer``;
        healthy = :func:`repro.am.spec.sack_block` over the reorder
        buffer."""
        return sack_block(peer.expected_seq, peer.ooo_held,
                          self.config.sack_horizon)

    def _sack_plan(self, outstanding, ack: int, bits: int):
        """Seam for scoreboard interpretation of a SACK block; healthy =
        :func:`repro.am.spec.sack_retransmit_plan` (bit *i* acknowledges
        ``ack + 1 + i``).  The ``sack-bitmap-shift`` injected bug reads
        bit *i* as ``ack + i`` instead, silently marking the receiver's
        actual hole as delivered."""
        return sack_retransmit_plan(outstanding, ack, bits)

    def _ecn_echo(self, peer: _PeerState) -> bool:
        """Seam for the congestion-mark echo; healthy: drain one pending
        echo onto this outbound packet.  The ``ecn-echo-drop`` injected
        bug swallows the echo, so senders never learn to back off."""
        if peer.pending_echoes <= 0:
            return False
        peer.pending_echoes -= 1
        peer.ecn_echoes += 1
        self._observe("ecn_echo", peer, pending=peer.pending_echoes)
        return True

    def _peer_restarted(self, peer: _PeerState, new_epoch: int,
                        horizon: int) -> None:
        """The peer came back as incarnation ``new_epoch``: apply the
        reconnect plan to our in-flight sends and rebuild both
        directions' go-back-N state for the fresh numbering."""
        completed, abandoned = self._reconnect_plan(peer, horizon, True)
        for seq in completed:
            peer.unacked.pop(seq, None)
            peer.sent_at.pop(seq, None)
            peer.rexmit_seqs.discard(seq)
        self._abandon(peer, abandoned,
                      f"peer restarted as epoch {new_epoch}")
        # anything still unacked is being replayed (bug injection only):
        # renumber new sends after it so tracking keys cannot collide
        remaining = list(peer.unacked)
        peer.next_seq = seq_add(remaining[-1], 1) if remaining else 0
        # receive side: the new incarnation numbers from zero
        peer.expected_seq = 0
        peer.ooo_held.clear()
        peer.pending_ack = False
        peer.deliveries_since_ack = 0
        # sender-side estimator state tied to the dead conversation
        peer.last_ack = None
        peer.dup_acks = 0
        peer.fast_done_seq = None
        peer.backoff = 0
        peer.remote_credit = None
        peer.pending_echoes = 0
        peer.ecn_round_end = None
        peer.sacked.clear()
        peer.sack_rexmitted.clear()
        peer.remote_epoch = new_epoch
        # abandoning the old window freed send slots (and forgot the old
        # credit picture): wake blocked senders, or a window-full sender
        # at restart time would wait for an ack that can never ack
        # anything and hang for good
        while (peer.window_waiters
               and len(peer.unacked) < self._effective_window(peer)):
            peer.window_waiters.pop(0).succeed()
        while peer.credit_waiters:
            peer.credit_waiters.pop(0).succeed()
        if self.health is not None:
            # a restart proves a fresh incarnation is talking: a
            # quarantine latch earned by the dead one must be
            # re-evaluated, not carried over (the watchdog re-latches
            # if the new process still misbehaves)
            self.health.note_epoch_advance(self.user.endpoint)
        self._observe("peer_restart", peer, epoch=new_epoch, horizon=horizon)

    def _heartbeat_loop(self) -> Generator:
        """Epoch-stamped keepalives + silent-peer detection (opt-in)."""
        cfg = self.config
        while self._running:
            yield self.sim.timeout(cfg.heartbeat_us)
            if not self._running:
                break
            if self._crashed:
                continue
            for peer in list(self._peers_by_node.values()):
                if not peer.alive:
                    continue
                silent = self.sim.now - peer.last_heard
                if silent >= cfg.heartbeat_misses * cfg.heartbeat_us:
                    self._declare_peer_dead(
                        peer, f"silent for {silent:.0f}us")
                elif not peer.reconnecting:
                    self.sim.process(self._send_ack(peer),
                                     name=f"am{self.node}.hb.ack")

    # ------------------------------------------------------- introspection
    def _observe(self, kind: str, peer: _PeerState, **fields) -> None:
        if self.observer is not None:
            fields["node"] = self.node
            fields["peer"] = peer.node
            fields["t"] = self.sim.now
            self.observer(kind, fields)

    def snapshot(self) -> Dict[int, Dict]:
        """State-machine introspection: one dict per connected peer.

        Everything a checker needs to reason about the protocol state
        without touching ``_PeerState`` internals directly.
        """
        out: Dict[int, Dict] = {}
        for node, p in self._peers_by_node.items():
            out[node] = {
                "next_seq": p.next_seq,
                "expected_seq": p.expected_seq,
                "unacked": len(p.unacked),
                "window": self._effective_window(p),
                "cwnd": p.cwnd,
                "remote_credit": p.remote_credit,
                "last_advertised": p.last_advertised,
                "retransmissions": p.retransmissions,
                "timeouts": p.timeouts,
                "fast_retransmits": p.fast_retransmits,
                "duplicates": p.duplicates,
                "credit_stalls": p.credit_stalls,
                "rtt_samples": p.rtt_samples,
                "sacked": len(p.sacked),
                "ooo_held": len(p.ooo_held),
                "ecn_marks": p.ecn_marks,
                "ecn_echoes": p.ecn_echoes,
                "ecn_backoffs": p.ecn_backoffs,
                "srtt_us": p.srtt,
                "epoch": self.epoch,
                "remote_epoch": p.remote_epoch,
                "alive": p.alive,
                "reconnecting": p.reconnecting,
                "abandoned": p.abandoned,
            }
        return out

    # ------------------------------------------------------------- sending
    def request(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: send a request (reliable, flow controlled)."""
        self._check_incarnation()
        peer = self._peer(dest)
        if len(data) > self.max_data:
            raise AmError(f"data block of {len(data)} bytes exceeds packet maximum {self.max_data}")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        return packet.seq

    def rpc(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: request + wait for the matching reply.

        Returns ``(args, data)`` from the reply.  Must not be called from
        inside a handler (the dispatch loop would deadlock).
        """
        self._check_incarnation()
        peer = self._peer(dest)
        done = self.sim.event(name=f"am{self.node}.rpc")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            # register the waiter before transmitting: the reply can race us
            self._rpc_waiters[(dest, packet.seq)] = done
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        reply = yield done
        return reply

    def _send_reply(self, dest: int, req_seq: int, args, data: bytes) -> Generator:
        peer = self._peer(dest)
        # replies bypass the request window (deadlock avoidance) but are
        # still sequenced and retransmitted, so they take the tx lock
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REPLY, seq=peer.next_seq, req_seq=req_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.replies_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()

    def _send_ack(self, peer: _PeerState) -> Generator:
        packet = Packet(type=TYPE_ACK)
        self.acks_sent += 1
        yield from self._transmit(peer, packet, track=False)

    def _check_incarnation(self) -> None:
        if self._crashed:
            raise StaleEpochError(
                f"node {self.node} epoch {self.epoch} has crashed; "
                f"restart() before sending")

    def _transmit(self, peer: _PeerState, packet: Packet, track: bool) -> Generator:
        packet.ack = peer.expected_seq
        if self.config.recovery:
            packet.epoch = self.epoch
            packet.peer_epoch = peer.remote_epoch
        if self.config.credit_flow:
            # piggyback our current receive capacity on everything we send
            advertised = self._local_credit()
            packet.credit = advertised
            peer.last_advertised = advertised
        if self.config.ack_mode == "sack":
            # every packet reports the reorder buffer next to its ack
            packet.sack_bits = self._sack_block(peer)
        if self.config.congestion == "ecn":
            packet.ece = self._ecn_echo(peer)
        peer.pending_ack = False
        peer.deliveries_since_ack = 0
        if track:
            peer.unacked[packet.seq] = packet
            peer.sent_at[packet.seq] = self.sim.now
            peer.last_progress = self.sim.now
            self._ensure_timer(peer)
            # observed pre-spend: remote_credit is what the gate saw
            self._observe("tx", peer, seq=packet.seq, ptype=packet.type,
                          unacked=len(peer.unacked), window=self._effective_window(peer),
                          remote_credit=peer.remote_credit)
            if self.config.credit_flow and peer.remote_credit is not None:
                # conservative spend between advertisements; the next
                # absolute advertisement overwrites any drift.  Replies
                # bypass the credit gate (deadlock avoidance) so this may
                # go negative.
                peer.remote_credit -= 1
        yield from self.user.send(peer.channel, encode(packet))

    def _effective_window(self, peer: _PeerState) -> int:
        """The flow-control window currently in force for ``peer``."""
        if not self.config.adaptive_window:
            return self.config.window
        return max(self.config.min_window, min(self.config.window, int(peer.cwnd)))

    def _acquire_window(self, peer: _PeerState) -> Generator:
        while True:
            if self.config.recovery:
                if not peer.alive:
                    raise PeerUnavailableError(
                        f"node {peer.node} is dead; send refused",
                        peer=peer.node)
                if peer.reconnecting:
                    # queue behind the HELLO handshake: the channel has
                    # no established numbering to send on yet
                    event = self.sim.event(name=f"am{self.node}.hello")
                    peer.hello_waiters.append(event)
                    yield event
                    continue
            if len(peer.unacked) >= self._effective_window(peer):
                event = self.sim.event(name=f"am{self.node}.window")
                peer.window_waiters.append(event)
                yield event
                continue
            if self.config.credit_flow and credit_gate_blocks(peer.remote_credit):
                # the peer has no receive capacity for us: stall (do not
                # burn its service time with packets it must drop) until
                # an advertisement says the pressure is off
                peer.credit_stalls += 1
                self._observe("credit_stall", peer, remote_credit=peer.remote_credit)
                event = self.sim.event(name=f"am{self.node}.credit")
                peer.credit_waiters.append(event)
                yield event
                continue
            self._observe("grant", peer, unacked=len(peer.unacked),
                          window=self._effective_window(peer),
                          remote_credit=peer.remote_credit)
            return

    def _local_credit(self) -> int:
        """Receive capacity to advertise: what this endpoint could absorb
        right now (queue slots and donated buffers), fair-shared across
        peers so N senders cannot jointly overrun one advertisement."""
        endpoint = self.user.endpoint
        room = min(
            endpoint.recv_queue.capacity - len(endpoint.recv_queue),
            len(endpoint.free_queue),
        )
        return room // max(1, len(self._peers_by_node))

    def _credit_refresh_loop(self) -> Generator:
        """Re-advertise when capacity changed and no traffic carried it.

        This is what un-sticks a credit-stalled sender after the local
        application drains a backlog: consuming messages generates no
        reverse traffic of its own, so the refreshed advertisement must
        travel on an explicit ACK.
        """
        while self._running:
            yield self.sim.timeout(self.config.credit_update_us)
            if not self._running:
                break
            for peer in list(self._peers_by_node.values()):
                if peer.last_advertised is None:
                    continue  # never talked to them; nothing to refresh
                if self._local_credit() != peer.last_advertised:
                    yield from self._send_ack(peer)

    @property
    def credit_stalls(self) -> int:
        """Total sender stalls on exhausted remote credit, all peers."""
        return sum(p.credit_stalls for p in self._peers_by_node.values())

    def _peer(self, node: int) -> _PeerState:
        peer = self._peers_by_node.get(node)
        if peer is None and self.peer_resolver is not None:
            self.peer_resolver(node)
            peer = self._peers_by_node.get(node)
        if peer is None:
            raise AmError(f"node {node} is not a connected peer of node {self.node}")
        return peer

    # ------------------------------------------------------------ receiving
    def _dispatch_loop(self) -> Generator:
        while self._running:
            message = yield from self.user.recv()
            if self._crashed:
                continue  # a dead process neither dispatches nor acks
            yield self.sim.timeout(self.config.dispatch_overhead_us)
            if self._crashed:
                continue
            try:
                packet = decode(message.data)
            except ValueError:
                continue  # malformed: reliability will retransmit
            peer = self._peers_by_channel.get(message.channel_id)
            if peer is None:
                continue
            if self.config.recovery and not self._admit(peer, packet):
                continue  # fenced: a dead incarnation's traffic
            if ack_epoch_applies(packet.epoch, peer.remote_epoch):
                self._process_ack(peer, packet.ack)
                if (self.config.ack_mode == "sack"
                        and packet.sack_bits is not None):
                    self._process_sack(peer, packet.ack, packet.sack_bits)
                if self.config.congestion == "ecn" and packet.ece:
                    self._ecn_backoff(peer, packet.ack)
            if packet.credit is not None and self.config.credit_flow:
                self._process_credit(peer, packet.credit)
            if packet.type == TYPE_HELLO:
                # answer every HELLO (idempotent): the HELLO-ACK may be
                # lost and the retransmitted HELLO must be re-answered
                self.sim.process(self._send_hello(peer, TYPE_HELLO_ACK),
                                 name=f"am{self.node}.helloack")
                continue
            if packet.type == TYPE_HELLO_ACK:
                if peer.reconnecting:
                    peer.reconnecting = False
                    self._observe("reconnected", peer,
                                  peer_epoch=peer.remote_epoch)
                    waiters, peer.hello_waiters = peer.hello_waiters, []
                    for event in waiters:
                        event.succeed()
                continue
            if packet.type == TYPE_ACK:
                continue
            if packet.seq != peer.expected_seq:
                if self.config.ack_mode == "sack":
                    verdict = reorder_admit(peer.expected_seq, packet.seq,
                                            self.config.sack_horizon)
                    if verdict == "hold" and packet.seq not in peer.ooo_held:
                        # buffer within the promised horizon; the SACK
                        # block on the ack we send next reports it
                        peer.ooo_held[packet.seq] = packet
                        self._note_ce(peer, packet)
                    else:
                        peer.duplicates += 1
                        self._observe("dup_rx", peer, seq=packet.seq,
                                      expected=peer.expected_seq)
                else:
                    in_window = seq_lt(peer.expected_seq, packet.seq) and (
                        (packet.seq - peer.expected_seq) % SEQ_MOD <= self.config.window * 2
                    )
                    if self.config.ooo_buffering and in_window:
                        # hold the future packet; deliver once the hole fills
                        peer.ooo_held.setdefault(packet.seq, packet)
                    else:
                        # go-back-N: duplicates and holes both trigger a re-ack
                        peer.duplicates += 1
                        self._observe("dup_rx", peer, seq=packet.seq,
                                      expected=peer.expected_seq)
                self._note_delivery(peer, out_of_order=True)
                continue
            self._note_ce(peer, packet)
            yield from self._deliver_in_order(peer, packet)
            # drain any buffered successors the packet unblocked
            while peer.ooo_held:
                held = peer.ooo_held.pop(peer.expected_seq, None)
                if held is None:
                    break
                yield from self._deliver_in_order(peer, held)
            self._note_delivery(peer)

    def _admit(self, peer: _PeerState, packet: Packet) -> bool:
        """Epoch fence + restart detection.  False = packet fenced.

        Both halves of the epoch field are checked through the
        ``_epoch_stale`` seam: the sender half against our memory of the
        peer, and (for everything but the handshake itself, which cannot
        know our epoch yet) the destination echo against our own epoch.
        """
        if self._epoch_stale(packet.epoch, peer.remote_epoch):
            self.user.endpoint.note_drop("stale_epoch_drops")
            self._observe("stale_epoch", peer, seq=packet.seq,
                          ptype=packet.type,
                          epoch=effective_epoch(packet.epoch))
            return False
        if (packet.type not in (TYPE_HELLO, TYPE_HELLO_ACK)
                and self._epoch_stale(packet.peer_epoch, self.epoch)):
            self.user.endpoint.note_drop("stale_epoch_drops")
            self._observe("stale_epoch", peer, seq=packet.seq,
                          ptype=packet.type,
                          epoch=effective_epoch(packet.peer_epoch), echo=1)
            return False
        if epoch_advances(packet.epoch, peer.remote_epoch):
            # the packet's ack field is the new incarnation's receive
            # horizon (its HELLO says so explicitly; data says it too)
            self._peer_restarted(peer, effective_epoch(packet.epoch),
                                 packet.ack)
        self._mark_alive(peer)
        return True

    def _deliver_in_order(self, peer: _PeerState, packet: Packet) -> Generator:
        peer.expected_seq = seq_add(peer.expected_seq, 1)
        if packet.type == TYPE_REQUEST:
            self.requests_delivered += 1
            self._observe("dispatch", peer, seq=packet.seq, handler=packet.handler,
                          msg=packet.args[0])
            yield from self._run_handler(peer, packet)
        elif packet.type == TYPE_REPLY:
            self._observe("reply", peer, seq=packet.seq, req_seq=packet.req_seq)
            waiter = self._rpc_waiters.pop((peer.node, packet.req_seq), None)
            if waiter is not None:
                waiter.succeed((packet.args, packet.data))

    def _run_handler(self, peer: _PeerState, packet: Packet) -> Generator:
        fn = self._handlers.get(packet.handler)
        if fn is None:
            return
        ctx = RequestContext(self, peer.node, packet.args, packet.data, packet.seq)
        result = fn(ctx)
        if result is not None:
            yield from result

    def _process_ack(self, peer: _PeerState, ack: int) -> None:
        cfg = self.config
        acked = cumulative_acked(peer.unacked, ack)
        if not acked:
            # a repeated cumulative ack while data is outstanding means
            # the receiver is seeing a hole: candidate fast retransmit
            if cfg.fast_retransmit and peer.unacked:
                if peer.last_ack is None or peer.last_ack != ack:
                    peer.last_ack = ack
                    peer.dup_acks = 0
                else:
                    peer.dup_acks += 1
                    if peer.dup_acks == cfg.dup_ack_threshold:
                        self._fast_retransmit(peer)
            return
        peer.last_ack = ack
        peer.dup_acks = 0
        if cfg.adaptive_rto:
            # Karn's rule: sample only packets that were never retransmitted
            sample = None
            for seq in acked:
                sent = peer.sent_at.pop(seq, None)
                if sent is not None and seq not in peer.rexmit_seqs:
                    sample = self.sim.now - sent
                peer.rexmit_seqs.discard(seq)
            if sample is not None:
                self._update_rto(peer, sample)
            peer.backoff = 0  # forward progress cancels exponential backoff
        else:
            for seq in acked:
                peer.sent_at.pop(seq, None)
                peer.rexmit_seqs.discard(seq)
        if cfg.adaptive_window:
            # additive increase: one extra packet per window of clean acks
            peer.cwnd = min(float(cfg.window),
                            peer.cwnd + len(acked) / max(peer.cwnd, 1.0))
        for seq in acked:
            del peer.unacked[seq]
            peer.sacked.discard(seq)
            peer.sack_rexmitted.discard(seq)
        peer.last_progress = self.sim.now
        peer.starved_timeouts = 0  # forward progress: not a corpse
        while peer.window_waiters and len(peer.unacked) < self._effective_window(peer):
            peer.window_waiters.pop(0).succeed()

    def _process_sack(self, peer: _PeerState, ack: int, bits: int) -> None:
        """Scoreboard update: record what the receiver holds, then
        selectively retransmit the holes below the highest SACKed
        sequence number — each hole once per round, without waiting for
        an RTO.  SACKed packets stay in ``unacked`` (only the cumulative
        ack retires them), which keeps the send window, and therefore
        the receiver's reorder buffer, bounded."""
        sacked, holes = self._sack_plan(peer.unacked, ack, bits)
        for seq in sacked:
            peer.sacked.add(seq)
        for seq in holes:
            if seq in peer.sack_rexmitted or seq in peer.sacked:
                continue
            peer.sack_rexmitted.add(seq)
            self.sim.process(self._retransmit_seq(peer, seq),
                             name=f"am{self.node}.sackrx")

    def _note_ce(self, peer: _PeerState, packet: Packet) -> None:
        """Account an accepted data packet's congestion mark: it will be
        echoed on the next outbound packets to the peer, one echo per
        mark (duplicates are never counted — their first copy was)."""
        if self.config.congestion != "ecn" or not packet.ce:
            return
        peer.ecn_marks += 1
        peer.pending_echoes += 1
        self._observe("ecn_mark", peer, seq=packet.seq)

    def _ecn_backoff(self, peer: _PeerState, ack: int) -> None:
        """A congestion echo arrived: halve the AIMD window, at most
        once per round trip (:func:`repro.am.spec.ecn_backoff_allowed`),
        backing off *before* the queue overflows into loss."""
        if not ecn_backoff_allowed(ack, peer.ecn_round_end):
            return
        peer.ecn_round_end = peer.next_seq
        peer.ecn_backoffs += 1
        peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
        self._observe("ecn_backoff", peer, cwnd=peer.cwnd)

    def _process_credit(self, peer: _PeerState, advertised: int) -> None:
        """Absorb an absolute credit advertisement from ``peer``.

        Runs after :meth:`_process_ack`, so ``peer.unacked`` holds only
        packets the advertisement cannot have accounted for yet; charging
        them against it keeps the sender conservative between updates.
        """
        peer.remote_credit = advertised - len(peer.unacked)
        if peer.remote_credit > 0 and peer.credit_waiters:
            waiters, peer.credit_waiters = peer.credit_waiters, []
            for event in waiters:
                event.succeed()

    def _update_rto(self, peer: _PeerState, rtt: float) -> None:
        """Jacobson/Karels: SRTT/RTTVAR EWMAs, RTO = SRTT + 4*RTTVAR."""
        cfg = self.config
        if peer.srtt is None:
            peer.srtt = rtt
            peer.rttvar = rtt / 2.0
        else:
            peer.rttvar = 0.75 * peer.rttvar + 0.25 * abs(peer.srtt - rtt)
            peer.srtt = 0.875 * peer.srtt + 0.125 * rtt
        peer.rtt_samples += 1
        peer.rto_us = min(max(peer.srtt + 4.0 * peer.rttvar, cfg.rto_min_us), cfg.rto_max_us)

    def _fast_retransmit(self, peer: _PeerState) -> None:
        """Dup-ack threshold crossed: resend the window head right away."""
        head_seq = next(iter(peer.unacked), None)
        if head_seq is None or head_seq == peer.fast_done_seq:
            return
        peer.fast_done_seq = head_seq
        peer.fast_retransmits += 1
        if self.config.adaptive_window:
            peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
        self.sim.process(self._retransmit_head(peer), name=f"am{self.node}.fastrx")

    def _note_delivery(self, peer: _PeerState, out_of_order: bool = False) -> None:
        peer.deliveries_since_ack += 1
        if out_of_order and (self.config.fast_retransmit
                             or self.config.ack_mode == "sack"):
            # ack holes immediately: for fast retransmit (RFC 5681
            # style) so the sender's duplicate-ack counter can cross its
            # threshold before the arrival stream dries up; for SACK so
            # the bitmap reporting the hole reaches the scoreboard while
            # selective retransmit can still beat the RTO
            self.sim.process(self._send_ack(peer), name=f"am{self.node}.dupack")
            return
        if peer.deliveries_since_ack >= self.config.ack_every:
            self.sim.process(self._send_ack(peer), name=f"am{self.node}.ack")
            return
        if not peer.pending_ack:
            peer.pending_ack = True
            self.sim.process(self._delayed_ack(peer), name=f"am{self.node}.dack")

    def _delayed_ack(self, peer: _PeerState) -> Generator:
        yield self.sim.timeout(self.config.ack_delay_us)
        if peer.pending_ack and self._running:
            yield from self._send_ack(peer)

    # ---------------------------------------------------------- retransmit
    def _ensure_timer(self, peer: _PeerState) -> None:
        if not peer.timer_running:
            peer.timer_running = True
            self.sim.process(self._retransmit_timer(peer), name=f"am{self.node}.rto")

    def _current_rto(self, peer: _PeerState) -> float:
        """The retransmission timeout in force for ``peer`` right now."""
        cfg = self.config
        if not cfg.adaptive_rto:
            return cfg.retransmit_timeout_us
        # before the first RTT sample, fall back to the configured value
        rto = peer.rto_us if peer.srtt is not None else cfg.retransmit_timeout_us
        if peer.backoff:
            rto *= cfg.backoff_factor ** peer.backoff
            if cfg.backoff_jitter > 0.0:
                # jitter de-phases peers that share a medium
                rto *= 1.0 + cfg.backoff_jitter * self._rng.random()
        return min(max(rto, cfg.rto_min_us), cfg.rto_max_us)

    def _retransmit_timer(self, peer: _PeerState) -> Generator:
        while peer.unacked and self._running:
            timeout = self._current_rto(peer)
            yield self.sim.timeout(timeout / 2)
            if not peer.unacked or not self._running:
                break
            if self._crashed or not peer.alive:
                break  # a corpse neither sends nor is worth sending to
            if self._peers_by_node.get(peer.node) is not peer:
                break  # superseded by a restart's fresh peer state
            if self.sim.now - peer.last_progress >= timeout:
                peer.timeouts += 1
                self._observe("timeout", peer, rto_us=timeout)
                if self.config.adaptive_rto:
                    peer.backoff += 1
                if self.config.adaptive_window:
                    # multiplicative decrease: the medium is losing packets
                    peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
                if self.config.recovery:
                    peer.starved_timeouts += 1
                    if peer.starved_timeouts >= self.config.dead_after_timeouts:
                        self._declare_peer_dead(
                            peer, f"ack-starved for "
                                  f"{peer.starved_timeouts} timeouts")
                        break
                # a timeout opens a new selective-retransmit round: the
                # next SACK block may re-trigger holes the last round's
                # retransmissions failed to fill
                peer.sack_rexmitted.clear()
                yield from self._retransmit_head(peer)
        peer.timer_running = False

    def _restamp(self, peer: _PeerState, packet: Packet) -> None:
        """Refresh the piggybacked fields on a retransmission: the
        cumulative ack, epoch pair, credit advertisement, SACK block and
        congestion echo all describe *now*, not first-transmission time."""
        packet.ack = peer.expected_seq
        if self.config.recovery:
            # re-stamp: the peer may have restarted since first
            # transmission (replay happens only under bug injection)
            packet.epoch = self.epoch
            packet.peer_epoch = peer.remote_epoch
        if self.config.credit_flow:
            packet.credit = self._local_credit()
            peer.last_advertised = packet.credit
        if self.config.ack_mode == "sack":
            packet.sack_bits = self._sack_block(peer)
        if self.config.congestion == "ecn":
            packet.ece = self._ecn_echo(peer)

    def _retransmit_head(self, peer: _PeerState) -> Generator:
        # retransmit only the head of the window (as TCP does):
        # resending the whole window both floods a congested
        # medium and can phase-lock with periodic loss patterns;
        # once the head is acked the rest follow.  Under SACK the
        # "head" is the first *unSACKed* packet — resending something
        # the receiver already holds buys nothing (when everything
        # outstanding is SACKed, the plain head goes anyway: the
        # cumulative ack reporting it may itself have been lost, and
        # liveness beats elegance).
        yield peer.tx_lock.acquire()
        try:
            head_seq = next((s for s in peer.unacked if s not in peer.sacked),
                            None)
            if head_seq is None:
                head_seq = next(iter(peer.unacked), None)
            if head_seq is None:
                return
            head = peer.unacked[head_seq]
            peer.retransmissions += 1
            self._observe("rexmit", peer, seq=head_seq)
            peer.rexmit_seqs.add(head_seq)
            peer.last_progress = self.sim.now
            self._restamp(peer, head)
            yield from self.user.send(peer.channel, encode(head))
        finally:
            peer.tx_lock.release()

    def _retransmit_seq(self, peer: _PeerState, seq: int) -> Generator:
        """Selective retransmit of one scoreboard hole (SACK mode).
        Karn-safe: the seq joins ``rexmit_seqs`` so its eventual ack is
        never RTT sampled."""
        yield peer.tx_lock.acquire()
        try:
            packet = peer.unacked.get(seq)
            if packet is None or seq in peer.sacked:
                return  # retired or reported delivered while we queued
            peer.retransmissions += 1
            self._observe("rexmit", peer, seq=seq, selective=1)
            peer.rexmit_seqs.add(seq)
            peer.last_progress = self.sim.now
            self._restamp(peer, packet)
            yield from self.user.send(peer.channel, encode(packet))
        finally:
            peer.tx_lock.release()
