"""Active Messages over U-Net.

"Split-C is implemented over Active Messages, a low-cost RPC mechanism,
providing flow control and reliable transfer, which has been implemented
over U-Net" (Section 5).  This module provides exactly that layer:

* **handlers** — a received request invokes a registered handler with
  four word arguments and a data block; the handler may send a reply.
* **reliability** — go-back-N retransmission over per-peer sequence
  numbers with cumulative (piggybacked or delayed-explicit) acks.
  U-Net itself drops messages when receive resources are exhausted.
* **flow control** — a bounded per-peer window of unacknowledged
  requests; senders block on a full window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..core.api import UserEndpoint
from ..sim import Event, Resource, Simulator
from .protocol import (
    HEADER_SIZE,
    SEQ_MOD,
    TYPE_ACK,
    TYPE_REPLY,
    TYPE_REQUEST,
    Packet,
    decode,
    encode,
    seq_add,
    seq_lt,
)

__all__ = ["AmConfig", "AmEndpoint", "RequestContext", "AmError"]


class AmError(Exception):
    """Active Messages protocol/usage error."""


@dataclass
class AmConfig:
    """Tunables of the reliability/flow-control machinery."""

    #: maximum unacknowledged packets per peer (must be < SEQ_MOD/2)
    window: int = 16
    #: retransmit the window after this long without an acknowledgement
    retransmit_timeout_us: float = 4000.0
    #: send an explicit ACK if no reverse traffic carried one by then
    ack_delay_us: float = 60.0
    #: ... or after this many unacknowledged deliveries
    ack_every: int = 8
    #: per-message handler-dispatch CPU cost at the receiver
    dispatch_overhead_us: float = 1.0
    #: buffer out-of-order arrivals (up to one window) instead of
    #: dropping them: turns go-back-N into selective-repeat-style
    #: recovery.  Off by default (classic AM); essential for striped
    #: paths that reorder, e.g. Beowulf dual-NIC bonding.
    ooo_buffering: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.window < SEQ_MOD // 2:
            raise ValueError("window must be positive and below half the sequence space")


class _PeerState:
    """Per-connection reliability state."""

    __slots__ = (
        "node",
        "channel",
        "next_seq",
        "unacked",
        "window_waiters",
        "expected_seq",
        "pending_ack",
        "deliveries_since_ack",
        "last_progress",
        "timer_running",
        "retransmissions",
        "duplicates",
        "tx_lock",
        "ooo_held",
    )

    def __init__(self, node: int, channel: int, sim: Simulator) -> None:
        self.node = node
        self.channel = channel
        #: serializes seq assignment + hand-off to U-Net so that packets
        #: from concurrent senders cannot overtake each other (compose
        #: times differ with size; reordering would trip go-back-N)
        self.tx_lock = Resource(sim, capacity=1, name=f"am.peer{node}.tx")
        self.next_seq = 0
        #: seq -> (Packet, bytes) awaiting acknowledgement, in order
        self.unacked: Dict[int, Packet] = {}
        self.window_waiters: List[Event] = []
        self.expected_seq = 0
        self.pending_ack = False
        self.deliveries_since_ack = 0
        self.last_progress = 0.0
        self.timer_running = False
        self.retransmissions = 0
        self.duplicates = 0
        #: out-of-order packets held for in-order delivery (seq -> Packet)
        self.ooo_held: Dict[int, Packet] = {}


class RequestContext:
    """Handed to request handlers; lets them reply to the requester."""

    __slots__ = ("am", "src_node", "args", "data", "_req_seq", "replied")

    def __init__(self, am: "AmEndpoint", src_node: int, args, data: bytes, req_seq: int) -> None:
        self.am = am
        self.src_node = src_node
        self.args = args
        self.data = data
        self._req_seq = req_seq
        self.replied = False

    def reply(self, args=(), data: bytes = b"") -> Generator:
        """Process: send the reply for this request."""
        self.replied = True
        yield from self.am._send_reply(self.src_node, self._req_seq, args, data)


#: request-handler signature: fn(ctx) -> None or a generator to run
Handler = Callable[[RequestContext], Optional[Generator]]


class AmEndpoint:
    """An Active Messages endpoint bound to one U-Net endpoint.

    One AM endpoint serves one node; peers are added with
    :meth:`connect_peer` after U-Net channels have been created by the
    substrate's signaling/channel service.
    """

    def __init__(self, node_id: int, user_endpoint: UserEndpoint, config: Optional[AmConfig] = None) -> None:
        self.node = node_id
        self.user = user_endpoint
        self.sim: Simulator = user_endpoint.sim
        self.config = config or AmConfig()
        self._peers_by_node: Dict[int, _PeerState] = {}
        self._peers_by_channel: Dict[int, _PeerState] = {}
        self._handlers: Dict[int, Handler] = {}
        #: rpc completion events keyed by (peer node, request seq)
        self._rpc_waiters: Dict[Tuple[int, int], Event] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.acks_sent = 0
        self.requests_delivered = 0
        self._running = True
        self.sim.process(self._dispatch_loop(), name=f"am{node_id}.dispatch")

    # ------------------------------------------------------------- set-up
    @property
    def max_data(self) -> int:
        """Largest data block one packet can carry on this substrate."""
        return self.user.host.backend.max_pdu - HEADER_SIZE

    def connect_peer(self, node_id: int, channel_id: int) -> None:
        if node_id in self._peers_by_node:
            raise AmError(f"peer {node_id} already connected")
        peer = _PeerState(node_id, channel_id, self.sim)
        self._peers_by_node[node_id] = peer
        self._peers_by_channel[channel_id] = peer

    def register_handler(self, handler_id: int, fn: Handler) -> None:
        if not 0 <= handler_id <= 0xFF:
            raise AmError("handler id must fit one byte")
        self._handlers[handler_id] = fn

    def shutdown(self) -> None:
        """Stop background activity so the simulation can drain."""
        self._running = False

    # ------------------------------------------------------------- sending
    def request(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: send a request (reliable, flow controlled)."""
        peer = self._peer(dest)
        if len(data) > self.max_data:
            raise AmError(f"data block of {len(data)} bytes exceeds packet maximum {self.max_data}")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        return packet.seq

    def rpc(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: request + wait for the matching reply.

        Returns ``(args, data)`` from the reply.  Must not be called from
        inside a handler (the dispatch loop would deadlock).
        """
        peer = self._peer(dest)
        done = self.sim.event(name=f"am{self.node}.rpc")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            # register the waiter before transmitting: the reply can race us
            self._rpc_waiters[(dest, packet.seq)] = done
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        reply = yield done
        return reply

    def _send_reply(self, dest: int, req_seq: int, args, data: bytes) -> Generator:
        peer = self._peer(dest)
        # replies bypass the request window (deadlock avoidance) but are
        # still sequenced and retransmitted, so they take the tx lock
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REPLY, seq=peer.next_seq, req_seq=req_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.replies_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()

    def _send_ack(self, peer: _PeerState) -> Generator:
        packet = Packet(type=TYPE_ACK)
        self.acks_sent += 1
        yield from self._transmit(peer, packet, track=False)

    def _transmit(self, peer: _PeerState, packet: Packet, track: bool) -> Generator:
        packet.ack = peer.expected_seq
        peer.pending_ack = False
        peer.deliveries_since_ack = 0
        if track:
            peer.unacked[packet.seq] = packet
            peer.last_progress = self.sim.now
            self._ensure_timer(peer)
        yield from self.user.send(peer.channel, encode(packet))

    def _acquire_window(self, peer: _PeerState) -> Generator:
        while len(peer.unacked) >= self.config.window:
            event = self.sim.event(name=f"am{self.node}.window")
            peer.window_waiters.append(event)
            yield event

    def _peer(self, node: int) -> _PeerState:
        try:
            return self._peers_by_node[node]
        except KeyError:
            raise AmError(f"node {node} is not a connected peer of node {self.node}") from None

    # ------------------------------------------------------------ receiving
    def _dispatch_loop(self) -> Generator:
        while self._running:
            message = yield from self.user.recv()
            yield self.sim.timeout(self.config.dispatch_overhead_us)
            try:
                packet = decode(message.data)
            except ValueError:
                continue  # malformed: reliability will retransmit
            peer = self._peers_by_channel.get(message.channel_id)
            if peer is None:
                continue
            self._process_ack(peer, packet.ack)
            if packet.type == TYPE_ACK:
                continue
            if packet.seq != peer.expected_seq:
                in_window = seq_lt(peer.expected_seq, packet.seq) and (
                    (packet.seq - peer.expected_seq) % SEQ_MOD <= self.config.window * 2
                )
                if self.config.ooo_buffering and in_window:
                    # hold the future packet; deliver once the hole fills
                    peer.ooo_held.setdefault(packet.seq, packet)
                else:
                    # go-back-N: duplicates and holes both trigger a re-ack
                    peer.duplicates += 1
                self._note_delivery(peer)
                continue
            yield from self._deliver_in_order(peer, packet)
            # drain any buffered successors the packet unblocked
            while peer.ooo_held:
                held = peer.ooo_held.pop(peer.expected_seq, None)
                if held is None:
                    break
                yield from self._deliver_in_order(peer, held)
            self._note_delivery(peer)

    def _deliver_in_order(self, peer: _PeerState, packet: Packet) -> Generator:
        peer.expected_seq = seq_add(peer.expected_seq, 1)
        if packet.type == TYPE_REQUEST:
            self.requests_delivered += 1
            yield from self._run_handler(peer, packet)
        elif packet.type == TYPE_REPLY:
            waiter = self._rpc_waiters.pop((peer.node, packet.req_seq), None)
            if waiter is not None:
                waiter.succeed((packet.args, packet.data))

    def _run_handler(self, peer: _PeerState, packet: Packet) -> Generator:
        fn = self._handlers.get(packet.handler)
        if fn is None:
            return
        ctx = RequestContext(self, peer.node, packet.args, packet.data, packet.seq)
        result = fn(ctx)
        if result is not None:
            yield from result

    def _process_ack(self, peer: _PeerState, ack: int) -> None:
        acked = [seq for seq in peer.unacked if seq_lt(seq, ack)]
        if not acked:
            return
        for seq in acked:
            del peer.unacked[seq]
        peer.last_progress = self.sim.now
        while peer.window_waiters and len(peer.unacked) < self.config.window:
            peer.window_waiters.pop(0).succeed()

    def _note_delivery(self, peer: _PeerState) -> None:
        peer.deliveries_since_ack += 1
        if peer.deliveries_since_ack >= self.config.ack_every:
            self.sim.process(self._send_ack(peer), name=f"am{self.node}.ack")
            return
        if not peer.pending_ack:
            peer.pending_ack = True
            self.sim.process(self._delayed_ack(peer), name=f"am{self.node}.dack")

    def _delayed_ack(self, peer: _PeerState) -> Generator:
        yield self.sim.timeout(self.config.ack_delay_us)
        if peer.pending_ack and self._running:
            yield from self._send_ack(peer)

    # ---------------------------------------------------------- retransmit
    def _ensure_timer(self, peer: _PeerState) -> None:
        if not peer.timer_running:
            peer.timer_running = True
            self.sim.process(self._retransmit_timer(peer), name=f"am{self.node}.rto")

    def _retransmit_timer(self, peer: _PeerState) -> Generator:
        timeout = self.config.retransmit_timeout_us
        while peer.unacked and self._running:
            yield self.sim.timeout(timeout / 2)
            if not peer.unacked or not self._running:
                break
            if self.sim.now - peer.last_progress >= timeout:
                # retransmit only the head of the window (as TCP does):
                # resending the whole window both floods a congested
                # medium and can phase-lock with periodic loss patterns;
                # once the head is acked the rest follow
                yield peer.tx_lock.acquire()
                try:
                    head = next(iter(peer.unacked.values()), None)
                    if head is None:
                        break
                    peer.retransmissions += 1
                    peer.last_progress = self.sim.now
                    head.ack = peer.expected_seq
                    yield from self.user.send(peer.channel, encode(head))
                finally:
                    peer.tx_lock.release()
        peer.timer_running = False
