"""Active Messages over U-Net.

"Split-C is implemented over Active Messages, a low-cost RPC mechanism,
providing flow control and reliable transfer, which has been implemented
over U-Net" (Section 5).  This module provides exactly that layer:

* **handlers** — a received request invokes a registered handler with
  four word arguments and a data block; the handler may send a reply.
* **reliability** — go-back-N retransmission over per-peer sequence
  numbers with cumulative (piggybacked or delayed-explicit) acks.
  U-Net itself drops messages when receive resources are exhausted.
* **flow control** — a bounded per-peer window of unacknowledged
  requests; senders block on a full window.
* **adaptation** (opt-in, see :class:`AmConfig`) — Jacobson/Karels RTO
  estimation with Karn's rule and jittered exponential backoff, AIMD
  window adaptation, and duplicate-ack fast retransmit.  All default
  off, so the classic fixed-RTO protocol the benchmarks were calibrated
  against is what you get out of the box.
* **receiver credit** (opt-in, ``AmConfig.credit_flow``) — every packet
  advertises the sender's remaining receive capacity (free receive-queue
  slots and donated buffers, fair-shared across peers); senders gate
  their window on the peer's latest advertisement minus their own
  unacked in-flight packets.  A receiver that falls behind thus stalls
  its senders instead of silently shedding their packets, which is the
  backpressure half of the overload-containment story (the other half,
  quarantine, lives in :mod:`repro.core.health`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..core.api import UserEndpoint
from ..sim import Event, Resource, Simulator
from .protocol import (
    CREDIT_SIZE,
    HEADER_SIZE,
    SEQ_MOD,
    TYPE_ACK,
    TYPE_REPLY,
    TYPE_REQUEST,
    Packet,
    decode,
    encode,
    seq_add,
    seq_lt,
)
from .spec import credit_gate_blocks, cumulative_acked

__all__ = ["AmConfig", "AmEndpoint", "RequestContext", "AmError"]


class AmError(Exception):
    """Active Messages protocol/usage error."""


@dataclass
class AmConfig:
    """Tunables of the reliability/flow-control machinery."""

    #: maximum unacknowledged packets per peer (must be < SEQ_MOD/2)
    window: int = 16
    #: retransmit the window after this long without an acknowledgement
    retransmit_timeout_us: float = 4000.0
    #: send an explicit ACK if no reverse traffic carried one by then
    ack_delay_us: float = 60.0
    #: ... or after this many unacknowledged deliveries
    ack_every: int = 8
    #: per-message handler-dispatch CPU cost at the receiver
    dispatch_overhead_us: float = 1.0
    #: buffer out-of-order arrivals (up to one window) instead of
    #: dropping them: turns go-back-N into selective-repeat-style
    #: recovery.  Off by default (classic AM); essential for striped
    #: paths that reorder, e.g. Beowulf dual-NIC bonding.
    ooo_buffering: bool = False

    # -- adaptive reliability (all off by default: the fixed-RTO, ----------
    # -- static-window protocol above reproduces the paper's numbers) ------
    #: estimate the RTO per peer (Jacobson/Karels SRTT + RTTVAR, with
    #: Karn's rule: never sample a retransmitted packet's RTT)
    adaptive_rto: bool = False
    #: floor of the estimated RTO (guards against spurious retransmits
    #: when delayed acks dominate the RTT sample)
    rto_min_us: float = 250.0
    #: ceiling of the estimated/backed-off RTO
    rto_max_us: float = 60_000.0
    #: RTO multiplier per consecutive timeout (exponential backoff)
    backoff_factor: float = 2.0
    #: random extra fraction added to backed-off RTOs so that peers
    #: sharing a medium do not phase-lock their retransmissions
    backoff_jitter: float = 0.1
    #: AIMD window adaptation: halve the effective window on timeout,
    #: grow it additively (one packet per window's worth of clean acks)
    adaptive_window: bool = False
    #: AIMD never shrinks the effective window below this
    min_window: int = 1
    #: retransmit the window head after `dup_ack_threshold` duplicate
    #: cumulative acks instead of waiting out the RTO
    fast_retransmit: bool = False
    dup_ack_threshold: int = 3

    # -- receiver-credit backpressure (off by default: classic U-Net is ----
    # -- receiver-paced and drops; see the overload soak for the contrast) -
    #: gate the send window on the peer's advertised receive capacity, so
    #: an exhausted receiver turns sender overruns into stalls, not drops.
    #: Advertisements piggyback on every packet (two extra wire bytes) and
    #: are refreshed periodically when they change.
    credit_flow: bool = False
    #: period of the background credit-refresh process
    credit_update_us: float = 400.0

    @classmethod
    def adaptive(cls, **overrides) -> "AmConfig":
        """The full adaptive stack: estimated RTO + AIMD + fast retransmit."""
        overrides.setdefault("adaptive_rto", True)
        overrides.setdefault("adaptive_window", True)
        overrides.setdefault("fast_retransmit", True)
        return cls(**overrides)

    def __post_init__(self) -> None:
        if not 0 < self.window < SEQ_MOD // 2:
            raise ValueError("window must be positive and below half the sequence space")
        for knob in ("retransmit_timeout_us", "ack_delay_us", "dispatch_overhead_us"):
            value = getattr(self, knob)
            if not value > 0:
                raise ValueError(f"{knob} must be positive, got {value!r}")
        if not 0 < self.rto_min_us <= self.rto_max_us:
            raise ValueError("need 0 < rto_min_us <= rto_max_us")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_jitter < 0.0:
            raise ValueError("backoff_jitter must be >= 0")
        if not 0 < self.min_window <= self.window:
            raise ValueError("need 0 < min_window <= window")
        if self.dup_ack_threshold < 1:
            raise ValueError("dup_ack_threshold must be >= 1")
        if not self.credit_update_us > 0:
            raise ValueError("credit_update_us must be positive")


class _PeerState:
    """Per-connection reliability state."""

    __slots__ = (
        "node",
        "channel",
        "next_seq",
        "unacked",
        "window_waiters",
        "expected_seq",
        "pending_ack",
        "deliveries_since_ack",
        "last_progress",
        "timer_running",
        "retransmissions",
        "duplicates",
        "tx_lock",
        "ooo_held",
        # -- adaptive reliability --
        "srtt",
        "rttvar",
        "rto_us",
        "backoff",
        "sent_at",
        "rexmit_seqs",
        "cwnd",
        "last_ack",
        "dup_acks",
        "fast_done_seq",
        "timeouts",
        "fast_retransmits",
        "rtt_samples",
        # -- receiver-credit backpressure --
        "remote_credit",
        "credit_waiters",
        "credit_stalls",
        "last_advertised",
    )

    def __init__(self, node: int, channel: int, sim: Simulator, window: int) -> None:
        self.node = node
        self.channel = channel
        #: serializes seq assignment + hand-off to U-Net so that packets
        #: from concurrent senders cannot overtake each other (compose
        #: times differ with size; reordering would trip go-back-N)
        self.tx_lock = Resource(sim, capacity=1, name=f"am.peer{node}.tx")
        self.next_seq = 0
        #: seq -> (Packet, bytes) awaiting acknowledgement, in order
        self.unacked: Dict[int, Packet] = {}
        self.window_waiters: List[Event] = []
        self.expected_seq = 0
        self.pending_ack = False
        self.deliveries_since_ack = 0
        self.last_progress = 0.0
        self.timer_running = False
        self.retransmissions = 0
        self.duplicates = 0
        #: out-of-order packets held for in-order delivery (seq -> Packet)
        self.ooo_held: Dict[int, Packet] = {}
        #: smoothed RTT / variance estimates (Jacobson/Karels), unset
        #: until the first clean sample
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        #: current estimated RTO (meaningful once srtt is set)
        self.rto_us = 0.0
        #: consecutive-timeout count driving exponential backoff
        self.backoff = 0
        #: seq -> first-transmission time, for RTT sampling
        self.sent_at: Dict[int, float] = {}
        #: seqs that were retransmitted (Karn's rule: never sample them)
        self.rexmit_seqs: Set[int] = set()
        #: AIMD congestion window (starts wide open at the config window)
        self.cwnd = float(window)
        #: last cumulative ack seen, for duplicate-ack detection
        self.last_ack: Optional[int] = None
        self.dup_acks = 0
        #: head seq already fast-retransmitted (retransmit each head once)
        self.fast_done_seq: Optional[int] = None
        self.timeouts = 0
        self.fast_retransmits = 0
        self.rtt_samples = 0
        #: peer's latest receive-capacity advertisement (None = none yet,
        #: treated as unlimited so start-up cannot deadlock)
        self.remote_credit: Optional[int] = None
        self.credit_waiters: List[Event] = []
        #: times a sender stalled on exhausted remote credit
        self.credit_stalls = 0
        #: last credit value advertised *to* this peer
        self.last_advertised: Optional[int] = None


class RequestContext:
    """Handed to request handlers; lets them reply to the requester."""

    __slots__ = ("am", "src_node", "args", "data", "_req_seq", "replied")

    def __init__(self, am: "AmEndpoint", src_node: int, args, data: bytes, req_seq: int) -> None:
        self.am = am
        self.src_node = src_node
        self.args = args
        self.data = data
        self._req_seq = req_seq
        self.replied = False

    def reply(self, args=(), data: bytes = b"") -> Generator:
        """Process: send the reply for this request."""
        self.replied = True
        yield from self.am._send_reply(self.src_node, self._req_seq, args, data)


#: request-handler signature: fn(ctx) -> None or a generator to run
Handler = Callable[[RequestContext], Optional[Generator]]


class AmEndpoint:
    """An Active Messages endpoint bound to one U-Net endpoint.

    One AM endpoint serves one node; peers are added with
    :meth:`connect_peer` after U-Net channels have been created by the
    substrate's signaling/channel service.
    """

    def __init__(self, node_id: int, user_endpoint: UserEndpoint, config: Optional[AmConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.node = node_id
        self.user = user_endpoint
        self.sim: Simulator = user_endpoint.sim
        self.config = config or AmConfig()
        #: deterministic per-endpoint stream for retransmission jitter
        self._rng = rng or random.Random(0x5EED ^ node_id)
        self._peers_by_node: Dict[int, _PeerState] = {}
        self._peers_by_channel: Dict[int, _PeerState] = {}
        self._handlers: Dict[int, Handler] = {}
        #: rpc completion events keyed by (peer node, request seq)
        self._rpc_waiters: Dict[Tuple[int, int], Event] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.acks_sent = 0
        self.requests_delivered = 0
        #: optional observable-event hook ``observer(kind, fields)``.
        #: Kinds: grant, credit_stall, tx, rexmit, timeout, dispatch,
        #: reply, dup_rx.  Every ``fields`` dict carries ``node`` (this
        #: endpoint), ``peer`` and ``t`` (sim time); the conformance
        #: checker consumes these to diff substrates against the
        #: reference model without reaching into private state.
        self.observer: Optional[Callable[[str, Dict], None]] = None
        self._running = True
        self.sim.process(self._dispatch_loop(), name=f"am{node_id}.dispatch")
        if self.config.credit_flow:
            self.sim.process(self._credit_refresh_loop(), name=f"am{node_id}.credit")

    # ------------------------------------------------------------- set-up
    @property
    def max_data(self) -> int:
        """Largest data block one packet can carry on this substrate."""
        overhead = HEADER_SIZE + (CREDIT_SIZE if self.config.credit_flow else 0)
        return self.user.host.backend.max_pdu - overhead

    def connect_peer(self, node_id: int, channel_id: int) -> None:
        if node_id in self._peers_by_node:
            raise AmError(f"peer {node_id} already connected")
        peer = _PeerState(node_id, channel_id, self.sim, self.config.window)
        self._peers_by_node[node_id] = peer
        self._peers_by_channel[channel_id] = peer

    def register_handler(self, handler_id: int, fn: Handler) -> None:
        if not 0 <= handler_id <= 0xFF:
            raise AmError("handler id must fit one byte")
        self._handlers[handler_id] = fn

    def shutdown(self) -> None:
        """Stop background activity so the simulation can drain."""
        self._running = False

    # ------------------------------------------------------- introspection
    def _observe(self, kind: str, peer: _PeerState, **fields) -> None:
        if self.observer is not None:
            fields["node"] = self.node
            fields["peer"] = peer.node
            fields["t"] = self.sim.now
            self.observer(kind, fields)

    def snapshot(self) -> Dict[int, Dict]:
        """State-machine introspection: one dict per connected peer.

        Everything a checker needs to reason about the protocol state
        without touching ``_PeerState`` internals directly.
        """
        out: Dict[int, Dict] = {}
        for node, p in self._peers_by_node.items():
            out[node] = {
                "next_seq": p.next_seq,
                "expected_seq": p.expected_seq,
                "unacked": len(p.unacked),
                "window": self._effective_window(p),
                "cwnd": p.cwnd,
                "remote_credit": p.remote_credit,
                "last_advertised": p.last_advertised,
                "retransmissions": p.retransmissions,
                "timeouts": p.timeouts,
                "fast_retransmits": p.fast_retransmits,
                "duplicates": p.duplicates,
                "credit_stalls": p.credit_stalls,
                "rtt_samples": p.rtt_samples,
                "srtt_us": p.srtt,
            }
        return out

    # ------------------------------------------------------------- sending
    def request(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: send a request (reliable, flow controlled)."""
        peer = self._peer(dest)
        if len(data) > self.max_data:
            raise AmError(f"data block of {len(data)} bytes exceeds packet maximum {self.max_data}")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        return packet.seq

    def rpc(self, dest: int, handler: int, args=(), data: bytes = b"") -> Generator:
        """Process: request + wait for the matching reply.

        Returns ``(args, data)`` from the reply.  Must not be called from
        inside a handler (the dispatch loop would deadlock).
        """
        peer = self._peer(dest)
        done = self.sim.event(name=f"am{self.node}.rpc")
        yield from self._acquire_window(peer)
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            # register the waiter before transmitting: the reply can race us
            self._rpc_waiters[(dest, packet.seq)] = done
            self.requests_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()
        reply = yield done
        return reply

    def _send_reply(self, dest: int, req_seq: int, args, data: bytes) -> Generator:
        peer = self._peer(dest)
        # replies bypass the request window (deadlock avoidance) but are
        # still sequenced and retransmitted, so they take the tx lock
        yield peer.tx_lock.acquire()
        try:
            packet = Packet(type=TYPE_REPLY, seq=peer.next_seq, req_seq=req_seq,
                            args=tuple(args), data=data)
            peer.next_seq = seq_add(peer.next_seq, 1)
            self.replies_sent += 1
            yield from self._transmit(peer, packet, track=True)
        finally:
            peer.tx_lock.release()

    def _send_ack(self, peer: _PeerState) -> Generator:
        packet = Packet(type=TYPE_ACK)
        self.acks_sent += 1
        yield from self._transmit(peer, packet, track=False)

    def _transmit(self, peer: _PeerState, packet: Packet, track: bool) -> Generator:
        packet.ack = peer.expected_seq
        if self.config.credit_flow:
            # piggyback our current receive capacity on everything we send
            advertised = self._local_credit()
            packet.credit = advertised
            peer.last_advertised = advertised
        peer.pending_ack = False
        peer.deliveries_since_ack = 0
        if track:
            peer.unacked[packet.seq] = packet
            peer.sent_at[packet.seq] = self.sim.now
            peer.last_progress = self.sim.now
            self._ensure_timer(peer)
            # observed pre-spend: remote_credit is what the gate saw
            self._observe("tx", peer, seq=packet.seq, ptype=packet.type,
                          unacked=len(peer.unacked), window=self._effective_window(peer),
                          remote_credit=peer.remote_credit)
            if self.config.credit_flow and peer.remote_credit is not None:
                # conservative spend between advertisements; the next
                # absolute advertisement overwrites any drift.  Replies
                # bypass the credit gate (deadlock avoidance) so this may
                # go negative.
                peer.remote_credit -= 1
        yield from self.user.send(peer.channel, encode(packet))

    def _effective_window(self, peer: _PeerState) -> int:
        """The flow-control window currently in force for ``peer``."""
        if not self.config.adaptive_window:
            return self.config.window
        return max(self.config.min_window, min(self.config.window, int(peer.cwnd)))

    def _acquire_window(self, peer: _PeerState) -> Generator:
        while True:
            if len(peer.unacked) >= self._effective_window(peer):
                event = self.sim.event(name=f"am{self.node}.window")
                peer.window_waiters.append(event)
                yield event
                continue
            if self.config.credit_flow and credit_gate_blocks(peer.remote_credit):
                # the peer has no receive capacity for us: stall (do not
                # burn its service time with packets it must drop) until
                # an advertisement says the pressure is off
                peer.credit_stalls += 1
                self._observe("credit_stall", peer, remote_credit=peer.remote_credit)
                event = self.sim.event(name=f"am{self.node}.credit")
                peer.credit_waiters.append(event)
                yield event
                continue
            self._observe("grant", peer, unacked=len(peer.unacked),
                          window=self._effective_window(peer),
                          remote_credit=peer.remote_credit)
            return

    def _local_credit(self) -> int:
        """Receive capacity to advertise: what this endpoint could absorb
        right now (queue slots and donated buffers), fair-shared across
        peers so N senders cannot jointly overrun one advertisement."""
        endpoint = self.user.endpoint
        room = min(
            endpoint.recv_queue.capacity - len(endpoint.recv_queue),
            len(endpoint.free_queue),
        )
        return room // max(1, len(self._peers_by_node))

    def _credit_refresh_loop(self) -> Generator:
        """Re-advertise when capacity changed and no traffic carried it.

        This is what un-sticks a credit-stalled sender after the local
        application drains a backlog: consuming messages generates no
        reverse traffic of its own, so the refreshed advertisement must
        travel on an explicit ACK.
        """
        while self._running:
            yield self.sim.timeout(self.config.credit_update_us)
            if not self._running:
                break
            for peer in list(self._peers_by_node.values()):
                if peer.last_advertised is None:
                    continue  # never talked to them; nothing to refresh
                if self._local_credit() != peer.last_advertised:
                    yield from self._send_ack(peer)

    @property
    def credit_stalls(self) -> int:
        """Total sender stalls on exhausted remote credit, all peers."""
        return sum(p.credit_stalls for p in self._peers_by_node.values())

    def _peer(self, node: int) -> _PeerState:
        try:
            return self._peers_by_node[node]
        except KeyError:
            raise AmError(f"node {node} is not a connected peer of node {self.node}") from None

    # ------------------------------------------------------------ receiving
    def _dispatch_loop(self) -> Generator:
        while self._running:
            message = yield from self.user.recv()
            yield self.sim.timeout(self.config.dispatch_overhead_us)
            try:
                packet = decode(message.data)
            except ValueError:
                continue  # malformed: reliability will retransmit
            peer = self._peers_by_channel.get(message.channel_id)
            if peer is None:
                continue
            self._process_ack(peer, packet.ack)
            if packet.credit is not None and self.config.credit_flow:
                self._process_credit(peer, packet.credit)
            if packet.type == TYPE_ACK:
                continue
            if packet.seq != peer.expected_seq:
                in_window = seq_lt(peer.expected_seq, packet.seq) and (
                    (packet.seq - peer.expected_seq) % SEQ_MOD <= self.config.window * 2
                )
                if self.config.ooo_buffering and in_window:
                    # hold the future packet; deliver once the hole fills
                    peer.ooo_held.setdefault(packet.seq, packet)
                else:
                    # go-back-N: duplicates and holes both trigger a re-ack
                    peer.duplicates += 1
                    self._observe("dup_rx", peer, seq=packet.seq,
                                  expected=peer.expected_seq)
                self._note_delivery(peer, out_of_order=True)
                continue
            yield from self._deliver_in_order(peer, packet)
            # drain any buffered successors the packet unblocked
            while peer.ooo_held:
                held = peer.ooo_held.pop(peer.expected_seq, None)
                if held is None:
                    break
                yield from self._deliver_in_order(peer, held)
            self._note_delivery(peer)

    def _deliver_in_order(self, peer: _PeerState, packet: Packet) -> Generator:
        peer.expected_seq = seq_add(peer.expected_seq, 1)
        if packet.type == TYPE_REQUEST:
            self.requests_delivered += 1
            self._observe("dispatch", peer, seq=packet.seq, handler=packet.handler,
                          msg=packet.args[0])
            yield from self._run_handler(peer, packet)
        elif packet.type == TYPE_REPLY:
            self._observe("reply", peer, seq=packet.seq, req_seq=packet.req_seq)
            waiter = self._rpc_waiters.pop((peer.node, packet.req_seq), None)
            if waiter is not None:
                waiter.succeed((packet.args, packet.data))

    def _run_handler(self, peer: _PeerState, packet: Packet) -> Generator:
        fn = self._handlers.get(packet.handler)
        if fn is None:
            return
        ctx = RequestContext(self, peer.node, packet.args, packet.data, packet.seq)
        result = fn(ctx)
        if result is not None:
            yield from result

    def _process_ack(self, peer: _PeerState, ack: int) -> None:
        cfg = self.config
        acked = cumulative_acked(peer.unacked, ack)
        if not acked:
            # a repeated cumulative ack while data is outstanding means
            # the receiver is seeing a hole: candidate fast retransmit
            if cfg.fast_retransmit and peer.unacked:
                if peer.last_ack is None or peer.last_ack != ack:
                    peer.last_ack = ack
                    peer.dup_acks = 0
                else:
                    peer.dup_acks += 1
                    if peer.dup_acks == cfg.dup_ack_threshold:
                        self._fast_retransmit(peer)
            return
        peer.last_ack = ack
        peer.dup_acks = 0
        if cfg.adaptive_rto:
            # Karn's rule: sample only packets that were never retransmitted
            sample = None
            for seq in acked:
                sent = peer.sent_at.pop(seq, None)
                if sent is not None and seq not in peer.rexmit_seqs:
                    sample = self.sim.now - sent
                peer.rexmit_seqs.discard(seq)
            if sample is not None:
                self._update_rto(peer, sample)
            peer.backoff = 0  # forward progress cancels exponential backoff
        else:
            for seq in acked:
                peer.sent_at.pop(seq, None)
                peer.rexmit_seqs.discard(seq)
        if cfg.adaptive_window:
            # additive increase: one extra packet per window of clean acks
            peer.cwnd = min(float(cfg.window),
                            peer.cwnd + len(acked) / max(peer.cwnd, 1.0))
        for seq in acked:
            del peer.unacked[seq]
        peer.last_progress = self.sim.now
        while peer.window_waiters and len(peer.unacked) < self._effective_window(peer):
            peer.window_waiters.pop(0).succeed()

    def _process_credit(self, peer: _PeerState, advertised: int) -> None:
        """Absorb an absolute credit advertisement from ``peer``.

        Runs after :meth:`_process_ack`, so ``peer.unacked`` holds only
        packets the advertisement cannot have accounted for yet; charging
        them against it keeps the sender conservative between updates.
        """
        peer.remote_credit = advertised - len(peer.unacked)
        if peer.remote_credit > 0 and peer.credit_waiters:
            waiters, peer.credit_waiters = peer.credit_waiters, []
            for event in waiters:
                event.succeed()

    def _update_rto(self, peer: _PeerState, rtt: float) -> None:
        """Jacobson/Karels: SRTT/RTTVAR EWMAs, RTO = SRTT + 4*RTTVAR."""
        cfg = self.config
        if peer.srtt is None:
            peer.srtt = rtt
            peer.rttvar = rtt / 2.0
        else:
            peer.rttvar = 0.75 * peer.rttvar + 0.25 * abs(peer.srtt - rtt)
            peer.srtt = 0.875 * peer.srtt + 0.125 * rtt
        peer.rtt_samples += 1
        peer.rto_us = min(max(peer.srtt + 4.0 * peer.rttvar, cfg.rto_min_us), cfg.rto_max_us)

    def _fast_retransmit(self, peer: _PeerState) -> None:
        """Dup-ack threshold crossed: resend the window head right away."""
        head_seq = next(iter(peer.unacked), None)
        if head_seq is None or head_seq == peer.fast_done_seq:
            return
        peer.fast_done_seq = head_seq
        peer.fast_retransmits += 1
        if self.config.adaptive_window:
            peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
        self.sim.process(self._retransmit_head(peer), name=f"am{self.node}.fastrx")

    def _note_delivery(self, peer: _PeerState, out_of_order: bool = False) -> None:
        peer.deliveries_since_ack += 1
        if out_of_order and self.config.fast_retransmit:
            # ack holes immediately (RFC 5681 style) so the sender's
            # duplicate-ack counter can cross its threshold before the
            # arrival stream dries up
            self.sim.process(self._send_ack(peer), name=f"am{self.node}.dupack")
            return
        if peer.deliveries_since_ack >= self.config.ack_every:
            self.sim.process(self._send_ack(peer), name=f"am{self.node}.ack")
            return
        if not peer.pending_ack:
            peer.pending_ack = True
            self.sim.process(self._delayed_ack(peer), name=f"am{self.node}.dack")

    def _delayed_ack(self, peer: _PeerState) -> Generator:
        yield self.sim.timeout(self.config.ack_delay_us)
        if peer.pending_ack and self._running:
            yield from self._send_ack(peer)

    # ---------------------------------------------------------- retransmit
    def _ensure_timer(self, peer: _PeerState) -> None:
        if not peer.timer_running:
            peer.timer_running = True
            self.sim.process(self._retransmit_timer(peer), name=f"am{self.node}.rto")

    def _current_rto(self, peer: _PeerState) -> float:
        """The retransmission timeout in force for ``peer`` right now."""
        cfg = self.config
        if not cfg.adaptive_rto:
            return cfg.retransmit_timeout_us
        # before the first RTT sample, fall back to the configured value
        rto = peer.rto_us if peer.srtt is not None else cfg.retransmit_timeout_us
        if peer.backoff:
            rto *= cfg.backoff_factor ** peer.backoff
            if cfg.backoff_jitter > 0.0:
                # jitter de-phases peers that share a medium
                rto *= 1.0 + cfg.backoff_jitter * self._rng.random()
        return min(max(rto, cfg.rto_min_us), cfg.rto_max_us)

    def _retransmit_timer(self, peer: _PeerState) -> Generator:
        while peer.unacked and self._running:
            timeout = self._current_rto(peer)
            yield self.sim.timeout(timeout / 2)
            if not peer.unacked or not self._running:
                break
            if self.sim.now - peer.last_progress >= timeout:
                peer.timeouts += 1
                self._observe("timeout", peer, rto_us=timeout)
                if self.config.adaptive_rto:
                    peer.backoff += 1
                if self.config.adaptive_window:
                    # multiplicative decrease: the medium is losing packets
                    peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
                yield from self._retransmit_head(peer)
        peer.timer_running = False

    def _retransmit_head(self, peer: _PeerState) -> Generator:
        # retransmit only the head of the window (as TCP does):
        # resending the whole window both floods a congested
        # medium and can phase-lock with periodic loss patterns;
        # once the head is acked the rest follow
        yield peer.tx_lock.acquire()
        try:
            head_seq = next(iter(peer.unacked), None)
            if head_seq is None:
                return
            head = peer.unacked[head_seq]
            peer.retransmissions += 1
            self._observe("rexmit", peer, seq=head_seq)
            peer.rexmit_seqs.add(head_seq)
            peer.last_progress = self.sim.now
            head.ack = peer.expected_seq
            if self.config.credit_flow:
                head.credit = self._local_credit()
                peer.last_advertised = head.credit
            yield from self.user.send(peer.channel, encode(head))
        finally:
            peer.tx_lock.release()
