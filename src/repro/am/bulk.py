"""Bulk transfers over Active Messages.

Large Split-C operations (the "large message" benchmark variants, bulk
puts/gets) move more data than one packet carries.  A bulk transfer
fragments the block into maximal packets addressed to a reassembly
handler and completes when the receiver has every fragment (the last
fragment is answered with a reply).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional, Tuple

from .am import AmEndpoint, RequestContext

__all__ = ["BulkSender", "BulkReceiver", "BULK_FRAGMENT_HANDLER"]

#: conventional handler id used for bulk fragments
BULK_FRAGMENT_HANDLER = 0xB0


class _IncomingTransfer:
    __slots__ = ("buffer", "received", "total")

    def __init__(self, total: int) -> None:
        self.buffer = bytearray(total)
        self.received = 0
        self.total = total


class BulkReceiver:
    """Reassembles incoming bulk transfers on one AM endpoint.

    ``on_complete(src_node, tag, data)`` runs when a transfer finishes.
    """

    def __init__(
        self,
        am: AmEndpoint,
        on_complete: Callable[[int, int, bytes], None],
        handler_id: int = BULK_FRAGMENT_HANDLER,
    ) -> None:
        self.am = am
        self.on_complete = on_complete
        self._incoming: Dict[Tuple[int, int], _IncomingTransfer] = {}
        am.register_handler(handler_id, self._on_fragment)

    def _on_fragment(self, ctx: RequestContext) -> Optional[Generator]:
        tag, offset, total, flags = ctx.args
        key = (ctx.src_node, tag)
        transfer = self._incoming.get(key)
        if transfer is None:
            transfer = _IncomingTransfer(total)
            self._incoming[key] = transfer
        transfer.buffer[offset : offset + len(ctx.data)] = ctx.data
        transfer.received += len(ctx.data)
        if transfer.received >= transfer.total:
            del self._incoming[key]
            self.on_complete(ctx.src_node, tag, bytes(transfer.buffer))
            if flags & 1:  # sender asked for a completion reply
                return ctx.reply(args=(tag, 0, 0, 0))
        return None


class BulkSender:
    """Sends bulk blocks from one AM endpoint."""

    def __init__(self, am: AmEndpoint, handler_id: int = BULK_FRAGMENT_HANDLER) -> None:
        self.am = am
        self.handler_id = handler_id
        self._next_tag = 0

    def send(self, dest: int, data: bytes, want_reply: bool = True) -> Generator:
        """Process: transfer ``data`` to ``dest``.

        With ``want_reply`` the process completes only once the receiver
        has reassembled the whole block; otherwise it completes when the
        last fragment has been handed to U-Net.
        """
        tag = self._next_tag
        self._next_tag = (self._next_tag + 1) % (1 << 30)
        max_data = self.am.max_data
        total = len(data)
        offsets = list(range(0, total, max_data)) or [0]
        for index, offset in enumerate(offsets):
            chunk = data[offset : offset + max_data]
            is_last = index == len(offsets) - 1
            flags = 1 if (is_last and want_reply) else 0
            args = (tag, offset, total, flags)
            if is_last and want_reply:
                yield from self.am.rpc(dest, self.handler_id, args, chunk)
            else:
                yield from self.am.request(dest, self.handler_id, args, chunk)
        return tag
