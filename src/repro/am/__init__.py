"""Active Messages: reliable, flow-controlled RPC over U-Net."""

from .am import AmConfig, AmEndpoint, AmError, RequestContext
from .bulk import BULK_FRAGMENT_HANDLER, BulkReceiver, BulkSender
from .protocol import (
    EPOCH_MOD,
    HEADER_SIZE,
    SEQ_MOD,
    TYPE_ACK,
    TYPE_HELLO,
    TYPE_HELLO_ACK,
    TYPE_REPLY,
    TYPE_REQUEST,
    Packet,
    decode,
    encode,
    epoch_newer,
    seq_add,
    seq_leq,
    seq_lt,
)

__all__ = [
    "AmConfig",
    "AmEndpoint",
    "AmError",
    "RequestContext",
    "BulkSender",
    "BulkReceiver",
    "BULK_FRAGMENT_HANDLER",
    "Packet",
    "encode",
    "decode",
    "HEADER_SIZE",
    "SEQ_MOD",
    "EPOCH_MOD",
    "TYPE_REQUEST",
    "TYPE_REPLY",
    "TYPE_ACK",
    "TYPE_HELLO",
    "TYPE_HELLO_ACK",
    "seq_lt",
    "seq_leq",
    "seq_add",
    "epoch_newer",
]
