"""The AM reliability spec, as executable predicates.

Two implementations now exist of the Active Messages state machine —
the simulated :class:`~repro.am.am.AmEndpoint` (generator processes)
and the wall-clock :class:`~repro.live.am.LiveAm` (synchronous
polling).  The decisions the differential checker cares most about are
exactly the ones that have historically gone off by one, so they live
here, once, and both endpoints call them:

* the **credit gate**: a sender with zero known remote credit must
  stall (``<= 0``, not ``< 0`` — the classic injected bug);
* the **cumulative-ack horizon**: an ack of ``n`` acknowledges every
  sequence number strictly before ``n`` (``seq_lt``, not ``seq_leq`` —
  the other classic);
* the **epoch fence**: a packet stamped with an incarnation epoch
  strictly older than the receiver's memory of that peer must be
  dropped (``stale_epoch``), or a restarted peer's fresh sequence
  numbers alias the dead incarnation's and dispatch duplicates;
* the **epoch ack gate**: only an ack from the *current* known remote
  incarnation may move the go-back-N window — an old incarnation's ack
  says nothing about what the new incarnation has seen;
* the **reconnect plan**: when a peer returns with a new epoch, every
  in-flight send not already covered by the peer's advertised receive
  horizon is *abandoned*, never replayed — replaying a message that may
  have been dispatched just before the crash would violate the
  at-most-once contract;
* the **reorder admission rule**: in SACK mode a receiver holds an
  out-of-order packet only within its bounded horizon and never
  dispatches it early — dispatch order is always sequence order;
* the **SACK block**: bit *i* acknowledges ``ack + 1 + i`` — never
  ``ack`` itself, which the receiver by definition does not have (the
  ``sack-bitmap-shift`` injected bug is exactly that off-by-one);
* the **selective-retransmit plan**: a sender retransmits only the
  *holes* below the highest SACKed sequence number, leaving everything
  the receiver already holds alone;
* the **ECN round gate**: a sender halves its window at most once per
  round trip of congestion echoes — once on the first echo, then not
  again until the cumulative ack passes the window edge recorded at
  that backoff (RFC-3168 shape).

Keeping these shared means a fix (or a bug) lands in both substrates at
once, and the conformance bug library can patch each implementation's
seam knowing the healthy behavior is identical by construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .protocol import SACK_BITMAP_BITS, SEQ_MOD, epoch_newer, seq_add, seq_lt, seq_leq

__all__ = [
    "credit_gate_blocks",
    "cumulative_acked",
    "effective_epoch",
    "epoch_is_stale",
    "epoch_advances",
    "ack_epoch_applies",
    "reconnect_plan",
    "reorder_admit",
    "sack_block",
    "sack_claimed",
    "sack_retransmit_plan",
    "ecn_backoff_allowed",
]


def credit_gate_blocks(remote_credit: Optional[int]) -> bool:
    """Must a sender stall on this known remote credit?

    ``None`` means the peer has never advertised — treated as unlimited
    so start-up cannot deadlock.  Zero (or the negative values that
    conservative spending between advertisements can reach) blocks.
    """
    return remote_credit is not None and remote_credit <= 0


def cumulative_acked(outstanding: Iterable[int], ack: int) -> List[int]:
    """The sequence numbers ``ack`` acknowledges, in iteration order.

    A cumulative ack names the *next expected* sequence number: it
    covers everything strictly before it in the circular space and
    never the packet the receiver is still waiting for.
    """
    return [seq for seq in outstanding if seq_lt(seq, ack)]


def effective_epoch(epoch: Optional[int]) -> int:
    """The incarnation a packet claims.  An absent epoch word (classic
    framing, recovery off) means the first incarnation, epoch 0, so the
    two framings interoperate."""
    return 0 if epoch is None else epoch


def epoch_is_stale(packet_epoch: Optional[int], known_remote_epoch: int) -> bool:
    """Must the receiver fence this packet as ``stale_epoch``?

    True when the packet's claimed incarnation is strictly older than
    the current one.  Applied twice per packet: to the sender half of
    the epoch field against the receiver's memory of the peer (traffic
    *from* a dead incarnation), and to the destination echo against the
    receiver's own epoch (traffic *addressed to* a dead incarnation —
    the only thing separating a surviving peer's pre-crash in-flight
    packets from post-reconnect ones, since the survivor's own epoch
    never changed).  Equal epochs pass (normal traffic); newer epochs
    pass too — they are the restarted peer announcing itself, handled
    by :func:`epoch_advances`.
    """
    return epoch_newer(known_remote_epoch, effective_epoch(packet_epoch))


def epoch_advances(packet_epoch: Optional[int], known_remote_epoch: int) -> bool:
    """Does this packet reveal that the peer restarted?

    True when the packet's incarnation is strictly newer than the
    receiver's memory.  The receiver must then discard per-peer
    go-back-N state (expected seq, out-of-order buffer, outstanding
    acks) before processing anything from the new incarnation.
    """
    return epoch_newer(effective_epoch(packet_epoch), known_remote_epoch)


def ack_epoch_applies(packet_epoch: Optional[int], known_remote_epoch: int) -> bool:
    """May this packet's cumulative ack move the go-back-N window?

    Only an ack from the *current* known remote incarnation counts: a
    stale incarnation's ack describes a receive horizon that no longer
    exists, and a newer incarnation's ack field describes *its* fresh
    numbering, not the window the sender kept for the old one.
    """
    return effective_epoch(packet_epoch) == known_remote_epoch


def reconnect_plan(outstanding: Iterable[int],
                   peer_horizon: int,
                   peer_restarted: bool) -> Tuple[List[int], List[int]]:
    """Split in-flight sends into ``(completed, abandoned)`` at reconnect.

    ``peer_horizon`` is the receive horizon the peer advertised in its
    HELLO/HELLO-ACK (the next sequence number it will accept).  When the
    peer did *not* restart, everything the horizon covers was delivered
    and the rest stays in flight — nothing is abandoned.  When the peer
    *did* restart, its new incarnation has no memory of the old
    numbering: nothing can be confirmed, and every outstanding send is
    abandoned rather than replayed, because a message dispatched moments
    before the crash would be dispatched twice.  This is the at-most-once
    contract; the ``replay-horizon`` injected bug violates exactly it.
    """
    if peer_restarted:
        return [], list(outstanding)
    return cumulative_acked(outstanding, peer_horizon), []


def reorder_admit(expected: int, seq: int, horizon: int) -> str:
    """Classify an arriving sequence number for a SACK-mode receiver.

    Returns ``"deliver"`` (the in-order packet — dispatch it and drain
    the reorder buffer behind it), ``"hold"`` (a future packet within
    the bounded horizon — buffer it, never dispatch early), or
    ``"reject"`` (a duplicate of something already delivered, or a
    packet beyond the horizon the receiver promised to buffer).  The
    window-never-exceeds-horizon config rule makes "beyond the horizon"
    unreachable for a conforming sender, but a receiver must not trust
    the sender for its own memory bound.
    """
    if seq == expected:
        return "deliver"
    distance = (seq - expected) % SEQ_MOD
    if 1 <= distance <= min(horizon, SACK_BITMAP_BITS):
        return "hold"
    return "reject"


def sack_block(expected: int, held: Iterable[int], horizon: int) -> int:
    """Build the SACK bitmap a receiver advertises.

    Bit *i* acknowledges ``expected + 1 + i``.  Bit 0 therefore refers
    to the sequence number *after* the cumulative ack — ``expected``
    itself is by definition the hole the receiver is waiting for and
    can never be SACKed.  Held entries outside the horizon (impossible
    for a conforming reorder buffer) are silently omitted.
    """
    bits = 0
    limit = min(horizon, SACK_BITMAP_BITS)
    for seq in held:
        distance = (seq - expected) % SEQ_MOD
        if 1 <= distance <= limit:
            bits |= 1 << (distance - 1)
    return bits


def sack_claimed(ack: int, bits: int) -> List[int]:
    """The sequence numbers a SACK block claims the receiver holds."""
    return [seq_add(ack, 1 + i) for i in range(SACK_BITMAP_BITS) if (bits >> i) & 1]


def sack_retransmit_plan(outstanding: Iterable[int], ack: int,
                         bits: int) -> Tuple[List[int], List[int]]:
    """Split outstanding sends into ``(sacked, holes)`` per a SACK block.

    ``sacked`` is every outstanding sequence number the block claims the
    receiver already holds; ``holes`` is every outstanding sequence
    number below the highest claimed one that the block does *not*
    cover — the packets selective retransmit should resend now, without
    waiting for an RTO.  The cumulative ``ack`` itself, when still
    outstanding, is the first hole.  An empty block plans nothing.
    """
    claimed = set(sack_claimed(ack, bits))
    if not claimed:
        return [], []
    highest = max(claimed, key=lambda s: (s - ack) % SEQ_MOD)
    sacked: List[int] = []
    holes: List[int] = []
    for seq in outstanding:
        if seq in claimed:
            sacked.append(seq)
        elif seq_lt(seq, highest):
            holes.append(seq)
    return sacked, holes


def ecn_backoff_allowed(ack: int, round_end: Optional[int]) -> bool:
    """May a congestion echo shrink the window now?

    A sender reacts to at most one congestion signal per round trip:
    after a backoff it records the window edge (its next sequence
    number) as ``round_end`` and ignores further echoes until the
    cumulative ack reaches it — every echo before that describes the
    same congested round the sender already reacted to.
    """
    return round_end is None or seq_leq(round_end, ack)
