"""The AM reliability spec, as executable predicates.

Two implementations now exist of the Active Messages state machine —
the simulated :class:`~repro.am.am.AmEndpoint` (generator processes)
and the wall-clock :class:`~repro.live.am.LiveAm` (synchronous
polling).  The decisions the differential checker cares most about are
exactly the ones that have historically gone off by one, so they live
here, once, and both endpoints call them:

* the **credit gate**: a sender with zero known remote credit must
  stall (``<= 0``, not ``< 0`` — the classic injected bug);
* the **cumulative-ack horizon**: an ack of ``n`` acknowledges every
  sequence number strictly before ``n`` (``seq_lt``, not ``seq_leq`` —
  the other classic).

Keeping these shared means a fix (or a bug) lands in both substrates at
once, and the conformance bug library can patch each implementation's
seam knowing the healthy behavior is identical by construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .protocol import seq_lt

__all__ = ["credit_gate_blocks", "cumulative_acked"]


def credit_gate_blocks(remote_credit: Optional[int]) -> bool:
    """Must a sender stall on this known remote credit?

    ``None`` means the peer has never advertised — treated as unlimited
    so start-up cannot deadlock.  Zero (or the negative values that
    conservative spending between advertisements can reach) blocks.
    """
    return remote_credit is not None and remote_credit <= 0


def cumulative_acked(outstanding: Iterable[int], ack: int) -> List[int]:
    """The sequence numbers ``ack`` acknowledges, in iteration order.

    A cumulative ack names the *next expected* sequence number: it
    covers everything strictly before it in the circular space and
    never the packet the receiver is still waiting for.
    """
    return [seq for seq in outstanding if seq_lt(seq, ack)]
