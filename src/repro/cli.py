"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list                # what can be regenerated
    python -m repro fig3                # U-Net/FE TX timeline
    python -m repro fig4                # U-Net/FE RX timelines
    python -m repro fig5 [--sizes ...]  # RTT vs size, all configs
    python -m repro fig6                # bandwidth vs size
    python -m repro table1 [--keys N]   # Split-C execution times
    python -m repro table2              # speedups 2 -> 8 nodes
    python -m repro fig7                # relative times, cpu/net split
    python -m repro rtt --config atm --size 40
    python -m repro bandwidth --config hub --size 1498
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_EXPERIMENTS = {
    "fig3": "U-Net/FE transmit timeline (Figure 3)",
    "fig4": "U-Net/FE receive timelines (Figure 4)",
    "fig5": "round-trip latency vs message size (Figure 5)",
    "fig6": "bandwidth vs message size (Figure 6)",
    "table1": "Split-C execution times (Table 1)",
    "table2": "speedups 2 to 8 nodes (Table 2)",
    "fig7": "relative execution times, cpu/net split (Figure 7)",
    "rtt": "single round-trip measurement",
    "bandwidth": "single bandwidth measurement",
    "splitc": "run one Split-C benchmark in the event-level simulator",
    "soak": "soak suites: wire chaos or service-capacity overload",
    "bench": "wall-clock benchmarks on the live U-Net/OS substrate",
    "conformance": "differential conformance: substrates vs the reference model",
    "report": "regenerate the full evaluation (all figures and tables)",
    "validate": "self-check every headline number against the paper",
    "list": "list available experiments",
}

_SPLITC_BENCHMARKS = ("rsortsm", "rsortlg", "ssortsm", "ssortlg", "mm")

_DEFAULT_FIG5_SIZES = [0, 8, 16, 32, 40, 44, 64, 128, 256, 512, 1024, 1498]
_DEFAULT_FIG6_SIZES = [16, 64, 128, 256, 512, 1024, 1498]


def _cmd_list(_args) -> int:
    print("experiments:")
    for name, description in _EXPERIMENTS.items():
        print(f"  {name:10s} {description}")
    return 0


def _cmd_fig3(_args) -> int:
    from .analysis import figure3_timeline

    print(figure3_timeline().render(
        title="Figure 3 - U-Net/FE TX timeline, 40-byte message (paper: 4.2 us)"))
    return 0


def _cmd_fig4(_args) -> int:
    from .analysis import figure4_timeline

    print(figure4_timeline(40).render(
        title="Figure 4a - RX timeline, 40 bytes (paper: 4.1 us)"))
    print()
    print(figure4_timeline(100).render(
        title="Figure 4b - RX timeline, 100 bytes (paper: 5.6 us)"))
    return 0


def _cmd_journey(args) -> int:
    from .analysis import render_journey

    print(render_journey(args.substrate, args.size))
    return 0


def _cmd_atm_timeline(args) -> int:
    from .analysis import atm_trace_transfer

    tx, rx = atm_trace_transfer(args.size)
    print(tx.render(title=f"U-Net/ATM i960 TX path, {args.size}-byte message"))
    print()
    print(rx.render(title=f"U-Net/ATM i960 RX path, {args.size}-byte message"))
    return 0


def _cmd_fig5(args) -> int:
    from .analysis import FIGURE5_CONFIGS, ascii_plot, format_table, measure_rtt

    if getattr(args, "svg", None):
        from .analysis import save_figure5_svg

        print(f"wrote {save_figure5_svg(args.svg, sizes=args.sizes)}")
        return 0
    sizes = args.sizes or _DEFAULT_FIG5_SIZES
    series = {}
    for name, factory in FIGURE5_CONFIGS.items():
        series[name] = [(size, measure_rtt(factory(), size)) for size in sizes]
    rows = [[size] + [series[name][i][1] for name in FIGURE5_CONFIGS]
            for i, size in enumerate(sizes)]
    print(format_table(["bytes"] + list(FIGURE5_CONFIGS), rows,
                       title="Figure 5 - round-trip latency (us)"))
    print()
    print(ascii_plot({n: [(float(s), r) for s, r in pts] for n, pts in series.items()},
                     xlabel="bytes", ylabel="us"))
    return 0


def _cmd_fig6(args) -> int:
    from .analysis import FIGURE6_CONFIGS, ascii_plot, format_table, measure_bandwidth

    if getattr(args, "svg", None):
        from .analysis import save_figure6_svg

        print(f"wrote {save_figure6_svg(args.svg, sizes=args.sizes)}")
        return 0
    sizes = args.sizes or _DEFAULT_FIG6_SIZES
    series = {}
    for name, factory in FIGURE6_CONFIGS.items():
        series[name] = [(size, measure_bandwidth(factory(), size)) for size in sizes]
    rows = [[size] + [series[name][i][1] for name in FIGURE6_CONFIGS]
            for i, size in enumerate(sizes)]
    print(format_table(["bytes"] + list(FIGURE6_CONFIGS), rows,
                       title="Figure 6 - bandwidth (Mb/s)"))
    print()
    print(ascii_plot({n: [(float(s), b) for s, b in pts] for n, pts in series.items()},
                     xlabel="bytes", ylabel="Mb/s"))
    return 0


def _cmd_table1(args) -> int:
    from .analysis import BENCHMARKS, format_table, table1, table1_des

    if getattr(args, "des", False):
        keys = args.keys if args.keys != 512 * 1024 else 2048  # scaled default
        entries = table1_des(keys_per_node=keys)
        names = list(dict.fromkeys(e.benchmark for e in entries))
        node_counts = sorted({e.nodes for e in entries})
        index = {(e.benchmark, e.nodes, e.substrate): e for e in entries}
        headers = ["Benchmark"] + [f"{n}n {s}" for n in node_counts for s in ("FE", "ATM")]
        rows = [
            [name] + [index[(name, n, s)].seconds * 1000 for n in node_counts for s in ("FE", "ATM")]
            for name in names
        ]
        print(format_table(
            headers, rows,
            title=f"Table 1 (event-level DES, scaled: {keys} keys/node) - milliseconds",
        ))
        return 0
    entries = table1(keys_per_node=args.keys)
    index = {(e.benchmark, e.nodes, e.substrate): e for e in entries}
    rows = []
    for name in BENCHMARKS:
        rows.append([name] + [index[(name, n, s)].seconds for n in (2, 4, 8) for s in ("FE", "ATM")])
    print(format_table(
        ("Benchmark", "2n FE", "2n ATM", "4n FE", "4n ATM", "8n FE", "8n ATM"),
        rows,
        title=f"Table 1 - Split-C execution times (s), {args.keys} keys/node",
    ))
    return 0


def _cmd_table2(args) -> int:
    from .analysis import format_table, table1, table2

    rows = table2(table1(keys_per_node=args.keys))
    print(format_table(("Benchmark", "ATM", "FE"), rows,
                       title="Table 2 - speedup from 2 to 8 nodes"))
    return 0


def _cmd_fig7(args) -> int:
    from .analysis import BENCHMARKS, figure7, table1

    bars = figure7(table1(keys_per_node=args.keys))
    print("Figure 7 - relative execution times (normalized to 2-node ATM; C=cpu, n=net)")
    for name in BENCHMARKS:
        print(f"\n{name}:")
        for bar in bars:
            if bar["benchmark"] != name:
                continue
            total = bar["relative_total"]
            frac = bar["relative_cpu"] / total if total else 0.0
            chars = max(1, int(round(min(total, 2.5) * 30)))
            cpu_chars = int(round(frac * chars))
            print(f"  {bar['substrate']:>3} {bar['nodes']}n |"
                  f"{'C' * cpu_chars}{'n' * (chars - cpu_chars)}  {total:.2f}")
    return 0


def _cmd_rtt(args) -> int:
    from .analysis import FIGURE5_CONFIGS, measure_rtt

    if args.config not in FIGURE5_CONFIGS:
        print(f"unknown config {args.config!r}; choose from {sorted(FIGURE5_CONFIGS)}", file=sys.stderr)
        return 2
    rtt = measure_rtt(FIGURE5_CONFIGS[args.config](), args.size)
    print(f"{args.config} {args.size}B round-trip: {rtt:.1f} us")
    return 0


def _cmd_bandwidth(args) -> int:
    from .analysis import FIGURE6_CONFIGS, measure_bandwidth

    if args.config not in FIGURE6_CONFIGS:
        print(f"unknown config {args.config!r}; choose from {sorted(FIGURE6_CONFIGS)}", file=sys.stderr)
        return 2
    bw = measure_bandwidth(FIGURE6_CONFIGS[args.config](), args.size)
    print(f"{args.config} {args.size}B bandwidth: {bw:.1f} Mb/s")
    return 0


def _cmd_splitc(args) -> int:
    import numpy as np

    from .apps import (
        MatmulConfig,
        RadixConfig,
        SampleConfig,
        run_matmul,
        run_radix_sort,
        run_sample_sort,
        verify_matmul,
        verify_sample_sorted,
        verify_sorted,
    )
    from .apps.radix_sort import initial_keys
    from .splitc import Cluster

    if args.benchmark not in _SPLITC_BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}; choose from {_SPLITC_BENCHMARKS}",
              file=sys.stderr)
        return 2
    cluster = Cluster(args.nodes, substrate=args.substrate,
                      collectives=args.collectives)
    if args.benchmark == "mm":
        cfg = MatmulConfig(blocks=args.blocks, block_size=args.block_size,
                           prefetch=args.prefetch)
        result = run_matmul(cluster, cfg)
        ok = verify_matmul(cluster, cfg)
    elif args.benchmark.startswith("rsort"):
        cfg = RadixConfig(keys_per_node=args.keys, small_messages=args.benchmark.endswith("sm"))
        result = run_radix_sort(cluster, cfg)
        original = np.concatenate([initial_keys(cfg, i) for i in range(args.nodes)])
        ok = verify_sorted(cluster, expected_multiset=original)
    else:
        cfg = SampleConfig(keys_per_node=args.keys, small_messages=args.benchmark.endswith("sm"))
        result = run_sample_sort(cluster, cfg)
        ok = verify_sample_sorted(cluster, cfg)
    cpu = sum(b["cpu_us"] for b in cluster.time_breakdown()) / args.nodes
    net = sum(b["net_us"] for b in cluster.time_breakdown()) / args.nodes
    busy = (cpu + net) or 1.0
    print(f"{args.benchmark} on {args.nodes}-node {args.substrate}: "
          f"{result.elapsed_us / 1000:.2f} ms "
          f"(cpu {cpu / busy * 100:.0f}% / net {net / busy * 100:.0f}%), "
          f"verified: {ok}")
    if args.stats:
        from .analysis import cluster_stats, render_stats

        print(render_stats(cluster_stats(cluster)))
    return 0 if ok else 1


def _cmd_soak(args) -> int:
    import dataclasses

    from .faults import (
        SCENARIOS,
        adaptive_config,
        compare_reliability,
        fixed_config,
        render_comparison,
        render_soak_table,
        run_scenario,
    )

    if args.suite == "overload":
        return _cmd_soak_overload(args)
    if args.suite == "crash":
        return _cmd_soak_crash(args)
    if args.suite == "multitenant":
        return _cmd_soak_multitenant(args)
    if args.suite == "transport":
        return _cmd_soak_transport(args)
    if args.suite == "fabric":
        return _cmd_soak_fabric(args)
    names = args.scenario or [n for n in SCENARIOS if n != "bursty-atm"]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    scenarios = [SCENARIOS[n] for n in names]
    if args.messages is not None:
        if args.messages <= 0:
            print("--messages must be positive", file=sys.stderr)
            return 2
        scenarios = [dataclasses.replace(s, messages=args.messages) for s in scenarios]
    if args.mode == "compare":
        results = compare_reliability(scenarios, seed=args.seed)
        print(render_comparison(results))
    else:
        config = adaptive_config() if args.mode == "adaptive" else fixed_config()
        results = [run_scenario(s, config=config, seed=args.seed, mode=args.mode)
                   for s in scenarios]
        print(render_soak_table(results))
        for r in results:
            for violation in r.violations:
                print(f"  !! {r.scenario}: {violation}")
    if args.stats:
        from .analysis import render_stats

        for r in results:
            print(f"\n{r.scenario} [{r.mode}] fault pipeline:")
            print(render_stats(r.fault_stats, indent=1))
    return 0 if all(r.ok for r in results) else 1


def _cmd_soak_overload(args) -> int:
    import dataclasses

    from .faults import (
        OVERLOAD_SCENARIOS,
        compare_credit,
        compare_policies,
        render_endpoint_table,
        render_overload_table,
        run_overload,
    )

    names = args.scenario or list(OVERLOAD_SCENARIOS)
    unknown = [n for n in names if n not in OVERLOAD_SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from {sorted(OVERLOAD_SCENARIOS)}",
              file=sys.stderr)
        return 2
    scenarios = [OVERLOAD_SCENARIOS[n] for n in names]
    if args.messages is not None:
        if args.messages <= 0:
            print("--messages must be positive", file=sys.stderr)
            return 2
        scenarios = [dataclasses.replace(s, messages=args.messages) for s in scenarios]
    results = []
    for scenario in scenarios:
        if scenario.shared_receiver:
            # the incast shape is the fixed-vs-credit demonstration
            results.extend(compare_credit(scenario, seed=args.seed))
        elif args.policy == "compare":
            results.extend(compare_policies(scenario, seed=args.seed))
        else:
            results.append(run_overload(scenario, policy=args.policy,
                                        credit=args.credit, seed=args.seed))
    print(render_overload_table(results))
    if args.stats:
        for r in results:
            print()
            print(render_endpoint_table(r))
    # the status-quo baselines (drop policy, fixed senders) are allowed to
    # suffer — that is the demonstration; the harness fails only when a
    # containment run breaks a delivery invariant
    contained = [r for r in results if r.policy != "drop" or r.credit]
    return 0 if all(r.ok for r in (contained or results)) else 1


def _cmd_soak_crash(args) -> int:
    import dataclasses

    from .faults.crashsoak import (
        CRASH_SCENARIOS,
        render_crash_table,
        run_crash_scenario,
        write_crash_report,
    )

    names = args.scenario or list(CRASH_SCENARIOS)
    unknown = [n for n in names if n not in CRASH_SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from {sorted(CRASH_SCENARIOS)}",
              file=sys.stderr)
        return 2
    scenarios = [CRASH_SCENARIOS[n] for n in names]
    if args.messages is not None:
        if args.messages <= 0:
            print("--messages must be positive", file=sys.stderr)
            return 2
        scenarios = [dataclasses.replace(s, messages=args.messages) for s in scenarios]
    results = [run_crash_scenario(s, seed=args.seed,
                                  progress=lambda m: print(f"  {m}"))
               for s in scenarios]
    print(render_crash_table(results))
    for r in results:
        for violation in r.violations:
            print(f"  !! {r.scenario}: {violation}")
    if args.output:
        write_crash_report(args.output, results)
        print(f"wrote {args.output}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_soak_multitenant(args) -> int:
    from .faults.multitenant import (
        MULTITENANT_SCENARIOS,
        render_multitenant_table,
        run_multitenant,
        write_multitenant_report,
    )

    names = args.scenario or [n for n in MULTITENANT_SCENARIOS if n != "churn-bench"]
    unknown = [n for n in names if n not in MULTITENANT_SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from "
              f"{sorted(MULTITENANT_SCENARIOS)}", file=sys.stderr)
        return 2
    results = []
    for name in names:
        scenario = MULTITENANT_SCENARIOS[name]
        if scenario.substrate == "live":
            from .live import available_transport_kinds

            if not available_transport_kinds():
                print(f"  {name}: skipped (no live transport on this machine)")
                continue
        print(f"  {name}: {scenario.tenants} tenants on {scenario.substrate} ...")
        results.append(run_multitenant(scenario, seed=args.seed))
    if not results:
        print("no scenarios ran", file=sys.stderr)
        return 2
    print(render_multitenant_table(results))
    if args.stats:
        for r in results:
            print(f"\n{r.scenario} hosts:")
            for host in r.hosts:
                print(f"  {host}")
    if args.output:
        write_multitenant_report(args.output, results)
        print(f"wrote {args.output}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_soak_transport(args) -> int:
    from .faults.transport import (
        TRANSPORT_SCENARIOS,
        render_transport_table,
        run_transport_suite,
        write_transport_report,
    )

    names = args.scenario or list(TRANSPORT_SCENARIOS)
    unknown = [n for n in names if n not in TRANSPORT_SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from "
              f"{sorted(TRANSPORT_SCENARIOS)}", file=sys.stderr)
        return 2
    results = run_transport_suite(seed=args.seed, scenarios=names,
                                  progress=lambda m: print(f"  {m}"))
    print(render_transport_table(results))
    for r in results:
        for violation in r.violations:
            print(f"  !! {r.scenario}[{r.mode}]: {violation}")
    if args.stats:
        from .analysis import render_stats

        for r in results:
            print(f"\n{r.scenario} [{r.mode}] fault pipeline:")
            print(render_stats(r.fault_stats, indent=1))
    if args.output:
        write_transport_report(args.output, results, seed=args.seed)
        print(f"wrote {args.output}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_soak_fabric(args) -> int:
    from .faults.fabricsoak import (
        FABRIC_SCENARIOS,
        render_fabric_table,
        run_fabric_suite,
        write_fabric_report,
    )

    names = args.scenario or list(FABRIC_SCENARIOS)
    unknown = [n for n in names if n not in FABRIC_SCENARIOS]
    if unknown:
        print(f"unknown scenario(s) {unknown}; choose from "
              f"{sorted(FABRIC_SCENARIOS)}", file=sys.stderr)
        return 2
    results = run_fabric_suite(seed=args.seed, scenarios=names,
                               progress=lambda m: print(f"  {m}"))
    print(render_fabric_table(results))
    for r in results:
        for violation in r.violations:
            print(f"  !! {r.scenario}: {violation}")
    if args.output:
        write_fabric_report(args.output, results, seed=args.seed)
        print(f"wrote {args.output}")
    return 0 if all(r.ok for r in results) else 1


def _cmd_bench(args) -> int:
    """Wall-clock benchmark rig on the live U-Net/OS substrate."""
    if args.compare:
        from .analysis.benchcmp import compare_bench_files, render_compare

        deltas, problems = compare_bench_files(args.compare[0], args.compare[1],
                                               threshold=args.threshold)
        print(render_compare(deltas, problems, threshold=args.threshold))
        return 0 if not problems else 1
    if args.collectives:
        from .collectives.bench import (
            NODE_COUNTS, render_collectives_bench, run_collectives_bench,
            write_collectives_bench,
        )

        payload = run_collectives_bench(
            node_counts=tuple(args.nodes) if args.nodes else NODE_COUNTS,
            progress=lambda m: print(f"  {m}"),
        )
        print(render_collectives_bench(payload))
        output = args.output
        if output == "BENCH_live.json":  # the live rig's default, not ours
            output = "BENCH_collectives.json"
        if output:
            write_collectives_bench(output, payload)
            print(f"wrote {output}")
        return 0
    if not args.live:
        print("the simulated figures live under `fig5` / `fig6`; pass --live "
              "to run the wall-clock rig on real sockets", file=sys.stderr)
        return 2
    from .live import available_transport_kinds, render_bench, run_bench, write_bench

    kinds = available_transport_kinds()
    kind = args.transport if args.transport != "auto" else (kinds[0] if kinds else None)
    if kind is None or kind not in kinds:
        msg = (f"live transport {args.transport!r} is not available on this "
               f"machine (available: {list(kinds) or 'none'})")
        if args.skip_missing:
            print(f"skipped: {msg}")
            return 0
        print(msg, file=sys.stderr)
        return 2
    payload = run_bench(
        kind,
        rtt_samples=args.rtt_samples,
        bw_messages=args.bw_messages,
        incast_senders=args.senders,
        incast_messages=args.incast_messages,
        burst_messages=args.burst_messages,
        burst_size=args.burst_size,
        doorbell_mode=args.doorbell,
        progress=lambda m: print(f"  {m}"),
    )
    print(render_bench(payload))
    if args.output:
        write_bench(args.output, payload)
        print(f"wrote {args.output}")
    return 0


def _cmd_conformance(args) -> int:
    """Differential conformance sweep / single-case replay."""
    from .conformance import (
        BUGS, FABRIC_BUGS, generate_case, load_artifact_meta, render_fabric_case,
        render_report, run_case, run_fabric_case, save_artifact, shrink_case,
    )
    from .core.substrates import SubstrateUnavailable, ensure_available

    substrates = tuple(args.substrate) if args.substrate else ("atm", "ethernet")
    if args.bug and args.bug not in BUGS and args.bug not in FABRIC_BUGS:
        print(f"unknown bug {args.bug!r}; choose from "
              f"{sorted(BUGS) + sorted(FABRIC_BUGS)}", file=sys.stderr)
        return 2

    if args.replay:
        meta = load_artifact_meta(args.replay)
        # the artifact's recorded substrate set is the replay contract;
        # an explicit --substrate overrides it knowingly
        replay_substrates = (tuple(args.substrate) if args.substrate
                             else tuple(meta["substrates"] or ()) or substrates)
        bug = args.bug or meta["bug"]
        try:
            for name in replay_substrates:
                ensure_available(name)
        except (SubstrateUnavailable, ValueError) as exc:
            print(f"replay refused: {exc}", file=sys.stderr)
            print(f"the artifact records its divergence against "
                  f"{list(replay_substrates)}; silently re-verifying on a "
                  f"subset would not reproduce it", file=sys.stderr)
            return 3
        report = run_case(meta["case"], substrates=replay_substrates, bug=bug)
        print(render_report(report))
        return 0 if report.ok else 1

    try:
        for name in substrates:
            ensure_available(name)
    except (SubstrateUnavailable, ValueError) as exc:
        print(f"cannot sweep: {exc}", file=sys.stderr)
        return 2

    configs = tuple(args.config) if args.config else ("fixed", "adaptive",
                                                      "credit", "crash",
                                                      "sack", "ecn")
    # the fabric preset runs its own sim-only healing harness, not the
    # AM-level differential loop
    fabric_sweep = "fabric" in configs or (args.bug in FABRIC_BUGS)
    configs = tuple(c for c in configs if c != "fabric")
    if args.bug:
        # a bug only shows where its machinery is engaged
        if args.bug in FABRIC_BUGS:
            configs = ()
        else:
            fabric_sweep = False
            configs = tuple(c for c in configs if c in BUGS[args.bug]["configs"]) or configs
    failures = []
    ran = 0
    for seed in range(args.seed_base, args.seed_base + args.seeds):
        for config_name in configs:
            case = generate_case(seed, config_name, n_messages=args.messages)
            report = run_case(case, substrates=substrates, bug=args.bug)
            ran += 1
            if report.ok:
                if args.verbose:
                    print(render_report(report, context=False))
                continue
            failures.append(report)
            print(render_report(report))
            if args.shrink:
                print(f"  shrinking (budget {args.budget} runs)...")
                result = shrink_case(report, substrates=substrates, budget=args.budget,
                                     progress=lambda m: print(f"    {m}"))
                print(f"  minimized {result.original_size} -> {result.case.size} events "
                      f"in {result.attempts} attempts; divergence kinds: "
                      f"{', '.join(result.kinds)}")
                print(render_report(result.report))
                if args.artifact:
                    save_artifact(args.artifact, result)
                    print(f"  reproducer written to {args.artifact} "
                          f"(replay: python -m repro conformance --replay {args.artifact})")
            if args.fail_fast:
                break
        if args.fail_fast and failures:
            break
    if fabric_sweep and not (args.fail_fast and failures):
        fabric_bug = args.bug if args.bug in FABRIC_BUGS else None
        for seed in range(args.seed_base, args.seed_base + args.seeds):
            report = run_fabric_case(seed, bug=fabric_bug)
            ran += 1
            if report.ok:
                if args.verbose:
                    print(render_fabric_case(report, context=False))
                continue
            failures.append(report)
            print(render_fabric_case(report))
            if args.fail_fast:
                break
    swept = list(configs) + (["fabric"] if fabric_sweep else [])
    verdict = "no divergences" if not failures else f"{len(failures)} divergent case(s)"
    print(f"conformance: {ran} differential runs over {swept} "
          f"on {list(substrates)}: {verdict}")
    return 0 if not failures else 1


def _cmd_validate(_args) -> int:
    from .analysis import render_validation, validate_reproduction

    claims = validate_reproduction()
    print(render_validation(claims))
    return 0 if all(c.passed for c in claims) else 1


def _cmd_report(args) -> int:
    """Everything, in paper order."""
    banner = "=" * 72
    sections = [
        ("Figure 3 - U-Net/FE transmit timeline", _cmd_fig3),
        ("Figure 4 - U-Net/FE receive timelines", _cmd_fig4),
        ("Figure 5 - round-trip latency", _cmd_fig5),
        ("Figure 6 - bandwidth", _cmd_fig6),
        ("Table 1 - Split-C execution times", _cmd_table1),
        ("Table 2 - speedups", _cmd_table2),
        ("Figure 7 - relative times, cpu/net split", _cmd_fig7),
    ]

    class _Defaults:
        sizes = None
        keys = args.keys

    for title, fn in sections:
        print(banner)
        print(title)
        print(banner)
        fn(_Defaults)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'ATM and Fast Ethernet Network "
                    "Interfaces for User-level Communication' (HPCA 1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help=_EXPERIMENTS["list"]).set_defaults(func=_cmd_list)
    sub.add_parser("fig3", help=_EXPERIMENTS["fig3"]).set_defaults(func=_cmd_fig3)
    sub.add_parser("fig4", help=_EXPERIMENTS["fig4"]).set_defaults(func=_cmd_fig4)
    pat = sub.add_parser("atm-timeline", help="i960 firmware path timelines (no paper figure)")
    pat.add_argument("--size", type=int, default=40)
    pat.set_defaults(func=_cmd_atm_timeline)
    pj = sub.add_parser("journey", help="end-to-end timeline of one message, every stage")
    pj.add_argument("--substrate", default="fe", choices=("fe", "atm"))
    pj.add_argument("--size", type=int, default=40)
    pj.set_defaults(func=_cmd_journey)
    p5 = sub.add_parser("fig5", help=_EXPERIMENTS["fig5"])
    p5.add_argument("--sizes", type=int, nargs="+")
    p5.add_argument("--svg", metavar="FILE", help="write an SVG chart instead of text")
    p5.set_defaults(func=_cmd_fig5)
    p6 = sub.add_parser("fig6", help=_EXPERIMENTS["fig6"])
    p6.add_argument("--sizes", type=int, nargs="+")
    p6.add_argument("--svg", metavar="FILE", help="write an SVG chart instead of text")
    p6.set_defaults(func=_cmd_fig6)
    for name, fn in (("table1", _cmd_table1), ("table2", _cmd_table2), ("fig7", _cmd_fig7)):
        p = sub.add_parser(name, help=_EXPERIMENTS[name])
        p.add_argument("--keys", type=int, default=512 * 1024,
                       help="keys per node for the sort benchmarks")
        if name == "table1":
            p.add_argument("--des", action="store_true",
                           help="measure in the event-level simulator at reduced scale")
        p.set_defaults(func=fn)
    pr = sub.add_parser("rtt", help=_EXPERIMENTS["rtt"])
    pr.add_argument("--config", default="hub")
    pr.add_argument("--size", type=int, default=40)
    pr.set_defaults(func=_cmd_rtt)
    pb = sub.add_parser("bandwidth", help=_EXPERIMENTS["bandwidth"])
    pb.add_argument("--config", default="hub")
    pb.add_argument("--size", type=int, default=1498)
    pb.set_defaults(func=_cmd_bandwidth)
    ps = sub.add_parser("splitc", help=_EXPERIMENTS["splitc"])
    ps.add_argument("benchmark", help=f"one of {', '.join(_SPLITC_BENCHMARKS)}")
    ps.add_argument("--nodes", type=int, default=4)
    ps.add_argument("--substrate", default="fe-switch",
                    choices=("fe-hub", "fe-switch", "fe-beowulf", "fe-clos",
                             "atm", "atm-clos", "mixed"))
    ps.add_argument("--collectives", default="host", choices=("host", "nic"),
                    help="barrier/broadcast/reduce implementation: host-"
                         "coordinated node-0 scheme or NIC-resident trees")
    ps.add_argument("--keys", type=int, default=2048, help="keys per node (sorts)")
    ps.add_argument("--blocks", type=int, default=4, help="blocks per side (mm)")
    ps.add_argument("--block-size", type=int, default=16, help="block side (mm)")
    ps.add_argument("--prefetch", action="store_true", help="split-phase fetches (mm)")
    ps.add_argument("--stats", action="store_true", help="dump simulation counters")
    ps.set_defaults(func=_cmd_splitc)
    pk = sub.add_parser("soak", help=_EXPERIMENTS["soak"])
    pk.add_argument("--suite", default="chaos",
                    choices=("chaos", "overload", "crash", "multitenant",
                             "transport", "fabric"),
                    help="chaos soaks the wire; overload soaks the receiver's "
                         "service capacity (incast, sick endpoints); crash "
                         "kills and restarts the receiver mid-stream; "
                         "multitenant churns hundreds of QoS-classed tenants "
                         "through misbehave/crash/recover cycles; transport "
                         "races go-back-N vs SACK vs ECN through bursty loss, "
                         "reordering, and an incast bottleneck; fabric kills "
                         "spines, flaps trunks, partitions and heals Clos "
                         "fabrics under NIC-resident collectives")
    pk.add_argument("--scenario", action="append",
                    help="scenario name (repeatable; default: every scenario of the suite)")
    pk.add_argument("--mode", default="compare", choices=("compare", "adaptive", "fixed"),
                    help="chaos suite: compare runs each scenario under both reliability stacks")
    pk.add_argument("--policy", default="compare",
                    choices=("compare", "drop", "backpressure", "quarantine"),
                    help="overload suite: containment policy (compare runs all three)")
    pk.add_argument("--credit", action="store_true",
                    help="overload suite: AM receiver-credit flow on single-policy runs")
    pk.add_argument("--messages", type=int, default=None,
                    help="override messages per scenario (default: each scenario's own)")
    pk.add_argument("--seed", type=int, default=0xC0FFEE, help="fault-pattern master seed")
    pk.add_argument("--stats", action="store_true",
                    help="dump fault-pipeline / per-endpoint telemetry")
    pk.add_argument("--output", metavar="FILE", default=None,
                    help="crash/multitenant/transport suites: write the JSON "
                         "artifact here")
    pk.set_defaults(func=_cmd_soak)
    pn = sub.add_parser("bench", help=_EXPERIMENTS["bench"])
    pn.add_argument("--live", action="store_true",
                    help="run on real OS sockets and the wall clock")
    pn.add_argument("--transport", default="auto", choices=("auto", "unix", "udp"),
                    help="live transport (auto prefers AF_UNIX when available)")
    pn.add_argument("--output", metavar="FILE", default="BENCH_live.json",
                    help="write the schema-validated JSON payload here "
                         "('' to skip)")
    pn.add_argument("--rtt-samples", type=int, default=40,
                    help="measured round trips per message size")
    pn.add_argument("--bw-messages", type=int, default=200,
                    help="messages per bandwidth point")
    pn.add_argument("--senders", type=int, default=4,
                    help="incast fan-in (sender count)")
    pn.add_argument("--incast-messages", type=int, default=100,
                    help="messages per incast sender")
    pn.add_argument("--burst-messages", type=int, default=20000,
                    help="messages for the burst fast-path A/B")
    pn.add_argument("--burst-size", type=int, default=256,
                    help="payload bytes for the burst fast-path A/B")
    pn.add_argument("--doorbell", default="busy-poll",
                    choices=("busy-poll", "event", "batched"),
                    help="doorbell discipline for the AM-level phases "
                         "(the burst A/B always compares per-syscall vs "
                         "batched)")
    pn.add_argument("--skip-missing", action="store_true",
                    help="exit 0 (not 2) when no live transport exists here")
    pn.add_argument("--collectives", action="store_true",
                    help="run the deterministic collective-latency sweep "
                         "(host vs NIC trees on fat-tree clusters) instead "
                         "of the live rig; writes BENCH_collectives.json")
    pn.add_argument("--nodes", type=int, nargs="+", default=None,
                    help="node counts for --collectives (default 8 32 128 256)")
    pn.add_argument("--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                    default=None,
                    help="diff two BENCH snapshots instead of running: exit 1 "
                         "when a headline metric regresses past --threshold")
    pn.add_argument("--threshold", type=float, default=0.15,
                    help="allowed bad-direction drift fraction for --compare")
    pn.set_defaults(func=_cmd_bench)
    pc = sub.add_parser("conformance", help=_EXPERIMENTS["conformance"])
    pc.add_argument("--seeds", type=int, default=10,
                    help="number of generated cases per config preset")
    pc.add_argument("--seed-base", type=int, default=0, help="first seed of the sweep")
    pc.add_argument("--messages", type=int, default=12, help="workload length per case")
    pc.add_argument("--config", action="append",
                    choices=("fixed", "adaptive", "credit", "crash",
                             "sack", "ecn", "fabric"),
                    help="config preset (repeatable; default: the six "
                         "AM-level presets; fabric adds the collective-"
                         "healing oracle cases)")
    from .core.substrates import substrate_names

    pc.add_argument("--substrate", action="append", choices=substrate_names(),
                    help="substrate (repeatable; default: atm + ethernet; "
                         "live/live-unix/live-udp run on real sockets)")
    pc.add_argument("--bug", default=None,
                    help="inject a named protocol bug (the harness must catch it)")
    pc.add_argument("--shrink", action="store_true",
                    help="minimize each failing case to its smallest reproducer")
    pc.add_argument("--budget", type=int, default=160,
                    help="max differential runs the shrinker may spend per failure")
    pc.add_argument("--artifact", metavar="FILE", default=None,
                    help="write the shrunk reproducer JSON here")
    pc.add_argument("--replay", metavar="FILE", default=None,
                    help="re-run one saved reproducer instead of sweeping")
    pc.add_argument("--fail-fast", action="store_true",
                    help="stop the sweep at the first divergent case")
    pc.add_argument("--verbose", action="store_true", help="print passing cases too")
    pc.set_defaults(func=_cmd_conformance)
    pr2 = sub.add_parser("report", help=_EXPERIMENTS["report"])
    pr2.add_argument("--keys", type=int, default=512 * 1024)
    pr2.set_defaults(func=_cmd_report)
    sub.add_parser("validate", help=_EXPERIMENTS["validate"]).set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
