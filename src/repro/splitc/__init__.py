"""Split-C runtime over Active Messages, plus cluster construction."""

from .cluster import ENDPOINT_CONFIG, Cluster, atm_cluster_cpus, fe_cluster_cpus
from .costs import DEFAULT_COSTS, KernelCosts
from .memory import GlobalHeap, HeapError
from .runtime import SplitCError, SplitCRuntime

__all__ = [
    "Cluster",
    "fe_cluster_cpus",
    "atm_cluster_cpus",
    "ENDPOINT_CONFIG",
    "SplitCRuntime",
    "SplitCError",
    "GlobalHeap",
    "HeapError",
    "KernelCosts",
    "DEFAULT_COSTS",
]
