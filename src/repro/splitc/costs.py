"""Computation cost models for the Split-C benchmark kernels.

The paper's Section 5.2 analysis hinges on two machine facts — Pentium
integer ops beat the SPARC's, SPARC floating point beats the Pentium's —
and on each kernel's operation counts.  The constants below express each
local phase of the benchmarks as integer-op / flop counts per element,
which the runtime converts to time through the node's
:class:`~repro.hw.cpu.CpuModel`.

Operation counts are the textbook values for the kernels (Culler et al.,
"Fast Parallel Sorting: from LogP to Split-C"): a radix-sort pass reads
each key, extracts a digit and bumps a counter (~histogram), then moves
the key (~permute); sample sort partitions by binary-searching splitters
and ends with a local comparison sort.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["KernelCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class KernelCosts:
    """Integer-op / flop counts per element for each benchmark phase."""

    # radix sort, per key per pass
    radix_histogram_ops: float = 6.0
    radix_rank_ops: float = 8.0
    # global-histogram arithmetic, per bucket
    radix_scan_ops: float = 4.0
    # sample sort
    sample_select_ops: float = 3.0
    partition_ops_per_probe: float = 4.0  # per key per log2(splitters) probe
    #: the Split-C suite's local sort is itself a radix sort (Culler et
    #: al.): a fixed number of passes, not an n log n comparison sort
    local_sort_passes: int = 3
    #: per-pair cost of the receiver-side indexed scatter in radix sort
    scatter_ops_per_pair: float = 3.0
    # matrix multiply: multiply-add = 2 flops
    matmul_flops_per_madd: float = 2.0
    # generic marshalling (per byte costs live in the CpuModel memcpy)

    def radix_pass_ops(self, keys: int, buckets: int) -> float:
        """Integer ops for one local radix pass over ``keys`` keys."""
        return keys * (self.radix_histogram_ops + self.radix_rank_ops) + buckets * self.radix_scan_ops

    def partition_ops(self, keys: int, splitters: int) -> float:
        probes = max(1.0, math.log2(max(2, splitters)))
        return keys * self.partition_ops_per_probe * probes

    def local_sort_ops(self, keys: int) -> float:
        if keys <= 1:
            return float(keys)
        per_pass = self.radix_histogram_ops + self.radix_rank_ops
        return keys * self.local_sort_passes * per_pass

    def matmul_flops(self, n: int, m: int, k: int) -> float:
        """Flops for an (n x k) @ (k x m) block multiply-accumulate.

        >>> DEFAULT_COSTS.matmul_flops(16, 16, 16)
        8192.0
        >>> DEFAULT_COSTS.local_sort_ops(1000) == 1000 * 3 * (6 + 8)
        True
        """
        return self.matmul_flops_per_madd * n * m * k


DEFAULT_COSTS = KernelCosts()
