"""Cluster builder: N Split-C nodes over a chosen substrate.

Reproduces the paper's two experimental platforms (Section 5):

* the Fast Ethernet cluster — "one 90 MHz and seven 120-MHz Pentium
  workstations ... connected by a Bay Networks 28115 switch";
* the ATM cluster — "4 SPARCStation 20s and 4 SPARCStation 10s ...
  connected by a Fore ASX-200 switch to a 140 Mb/s ATM network".
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..am.am import AmConfig, AmEndpoint
from ..atm.network import AtmNetwork
from ..atm.phy import TAXI_140, AtmPhy
from ..core.api import Host, UserEndpoint
from ..core.endpoint import EndpointConfig
from ..ethernet.network import HubNetwork, SwitchedNetwork
from ..ethernet.switch import BAY_28115, SwitchModel
from ..hw.cpu import (
    PENTIUM_90,
    PENTIUM_120,
    SPARCSTATION_10,
    SPARCSTATION_20,
    CpuModel,
)
from ..sim import Simulator
from .costs import DEFAULT_COSTS, KernelCosts
from .runtime import SplitCRuntime

__all__ = ["Cluster", "fe_cluster_cpus", "atm_cluster_cpus", "ENDPOINT_CONFIG"]

#: generous endpoint sizing for the AM traffic of parallel programs
ENDPOINT_CONFIG = EndpointConfig(
    num_buffers=512, buffer_size=2048, send_queue_depth=256, recv_queue_depth=512
)
RX_BUFFERS = 128


def fe_cluster_cpus(n: int) -> List[CpuModel]:
    """The paper's FE cluster: one Pentium-90, the rest Pentium-120s."""
    return [PENTIUM_90] + [PENTIUM_120] * (n - 1)


def atm_cluster_cpus(n: int) -> List[CpuModel]:
    """The paper's ATM cluster: half SPARCstation-20s, half -10s."""
    half = (n + 1) // 2
    return ([SPARCSTATION_20] * half + [SPARCSTATION_10] * (n - half))[:n]


class Cluster:
    """N workstations, fully channel-connected, running Split-C."""

    def __init__(
        self,
        n: int,
        substrate: str = "fe-switch",
        cpus: Optional[Sequence[CpuModel]] = None,
        am_config: Optional[AmConfig] = None,
        costs: KernelCosts = DEFAULT_COSTS,
        switch_model: SwitchModel = BAY_28115,
        atm_phy: AtmPhy = TAXI_140,
        sim: Optional[Simulator] = None,
    ) -> None:
        if n < 1:
            raise ValueError("cluster needs at least one node")
        self.n = n
        self.substrate = substrate
        self.sim = sim or Simulator()
        if cpus is None:
            cpus = fe_cluster_cpus(n) if substrate.startswith("fe") else atm_cluster_cpus(n)
        if len(cpus) != n:
            raise ValueError("need one CpuModel per node")
        self.cpus = list(cpus)
        self.network = self._build_network(substrate, switch_model, atm_phy)
        self.hosts: List[Host] = [
            self.network.add_host(f"node{i}", self.cpus[i]) for i in range(n)
        ]
        self.endpoints: List[UserEndpoint] = [
            host.create_endpoint(config=ENDPOINT_CONFIG, rx_buffers=RX_BUFFERS) for host in self.hosts
        ]
        self.ams: List[AmEndpoint] = [
            AmEndpoint(i, self.endpoints[i], config=am_config) for i in range(n)
        ]
        # full mesh of channels
        for i in range(n):
            for j in range(i + 1, n):
                ch_i, ch_j = self.network.connect(self.endpoints[i], self.endpoints[j])
                self.ams[i].connect_peer(j, ch_i)
                self.ams[j].connect_peer(i, ch_j)
        self.runtimes: List[SplitCRuntime] = [
            SplitCRuntime(i, n, self.ams[i], self.cpus[i], costs=costs) for i in range(n)
        ]

    def _build_network(self, substrate: str, switch_model: SwitchModel, atm_phy: AtmPhy):
        if substrate == "fe-hub":
            return HubNetwork(self.sim)
        if substrate == "fe-switch":
            return SwitchedNetwork(self.sim, model=switch_model)
        if substrate == "fe-beowulf":
            from ..ethernet.bonding import BeowulfNetwork

            return BeowulfNetwork(self.sim)
        if substrate == "atm":
            network = AtmNetwork(self.sim)
            original_add = network.add_host
            network.add_host = lambda name, cpu: original_add(name, cpu, phy=atm_phy)
            return network
        raise ValueError(
            f"unknown substrate {substrate!r} (fe-hub, fe-switch, fe-beowulf, atm)"
        )

    # ---------------------------------------------------------------- run
    def run(self, program: Callable[[SplitCRuntime], Generator], limit: float = 5e9) -> List[Any]:
        """Run one SPMD ``program`` on every node; returns per-node results.

        The program is a generator function taking the node's runtime.
        """
        processes = [
            self.sim.process(program(runtime), name=f"splitc.node{runtime.node}")
            for runtime in self.runtimes
        ]
        results = []
        for process in processes:
            results.append(self.sim.run_until_complete(process, limit=limit))
        for am in self.ams:
            am.shutdown()
        return results

    @property
    def elapsed(self) -> float:
        """Simulation time so far (microseconds)."""
        return self.sim.now

    def time_breakdown(self) -> List[dict]:
        """Per-node cpu/net split (drives the paper's Figure 7)."""
        return [
            {
                "node": rt.node,
                "cpu_us": rt.compute_time,
                "net_us": rt.comm_time,
            }
            for rt in self.runtimes
        ]
