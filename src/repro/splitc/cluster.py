"""Cluster builder: N Split-C nodes over a chosen substrate.

Reproduces the paper's two experimental platforms (Section 5):

* the Fast Ethernet cluster — "one 90 MHz and seven 120-MHz Pentium
  workstations ... connected by a Bay Networks 28115 switch";
* the ATM cluster — "4 SPARCStation 20s and 4 SPARCStation 10s ...
  connected by a Fore ASX-200 switch to a 140 Mb/s ATM network".
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..am.am import AmConfig, AmEndpoint
from ..atm.network import AtmNetwork
from ..atm.phy import TAXI_140, AtmPhy
from ..core.api import Host, UserEndpoint
from ..core.endpoint import EndpointConfig
from ..ethernet.network import HubNetwork, SwitchedNetwork
from ..ethernet.switch import BAY_28115, SwitchModel
from ..hw.cpu import (
    PENTIUM_90,
    PENTIUM_120,
    SPARCSTATION_10,
    SPARCSTATION_20,
    CpuModel,
)
from ..sim import Simulator
from .costs import DEFAULT_COSTS, KernelCosts
from .runtime import SplitCRuntime

__all__ = ["Cluster", "fe_cluster_cpus", "atm_cluster_cpus", "ENDPOINT_CONFIG"]

#: generous endpoint sizing for the AM traffic of parallel programs
ENDPOINT_CONFIG = EndpointConfig(
    num_buffers=512, buffer_size=2048, send_queue_depth=256, recv_queue_depth=512
)
RX_BUFFERS = 128

#: past this node count the cluster switches to a leaner per-endpoint
#: sizing — 256 nodes x 512 buffers of 2 KB would be a gigabyte of
#: simulated buffer space nobody touches
LEAN_THRESHOLD = 64


def _lean_endpoint_config(n: int) -> EndpointConfig:
    """Endpoint sizing for large clusters.

    The receive queue must still absorb the host-coordinated barrier
    incast at node 0 (every peer's arrival packet plus an announce), so
    it scales with ``n``; the buffer area shrinks from 1 MB to 384 KB
    per node but keeps room for the :data:`RX_BUFFERS` donated at
    endpoint creation plus a working set of send buffers.
    """
    return EndpointConfig(
        num_buffers=RX_BUFFERS + 64,
        buffer_size=2048,
        send_queue_depth=64,
        recv_queue_depth=max(512, 2 * n),
    )


def fe_cluster_cpus(n: int) -> List[CpuModel]:
    """The paper's FE cluster: one Pentium-90, the rest Pentium-120s."""
    return [PENTIUM_90] + [PENTIUM_120] * (n - 1)


def atm_cluster_cpus(n: int) -> List[CpuModel]:
    """The paper's ATM cluster: half SPARCstation-20s, half -10s."""
    half = (n + 1) // 2
    return ([SPARCSTATION_20] * half + [SPARCSTATION_10] * (n - half))[:n]


def _clos_shape(n: int) -> tuple:
    """(leaves, spines, hosts_per_leaf) for an ``n``-host fat tree.

    Leaves hold up to 16 hosts (a realistic leaf port budget) and the
    spine tier is half the leaf tier, capped at 8 — e.g. 256 hosts on
    16 leaves x 8 spines.
    """
    leaves = max(2, -(-n // 16))
    per_leaf = -(-n // leaves)
    spines = max(2, min(8, -(-leaves // 2)))
    return leaves, spines, per_leaf


class Cluster:
    """N workstations, channel-connected on demand, running Split-C."""

    SUBSTRATES = ("fe-hub", "fe-switch", "fe-beowulf", "fe-clos", "atm", "atm-clos", "mixed")

    def __init__(
        self,
        n: int,
        substrate: str = "fe-switch",
        cpus: Optional[Sequence[CpuModel]] = None,
        am_config: Optional[AmConfig] = None,
        costs: KernelCosts = DEFAULT_COSTS,
        switch_model: SwitchModel = BAY_28115,
        atm_phy: AtmPhy = TAXI_140,
        sim: Optional[Simulator] = None,
        collectives: str = "host",
        collective_fanout: int = 4,
        lazy_channels: bool = True,
        endpoint_config: Optional[EndpointConfig] = None,
    ) -> None:
        if n < 1:
            raise ValueError("cluster needs at least one node")
        if collectives not in ("host", "nic"):
            raise ValueError(f"unknown collectives mode {collectives!r} (host, nic)")
        self.n = n
        self.substrate = substrate
        self.collectives = collectives
        self.sim = sim or Simulator()
        if cpus is None:
            cpus = fe_cluster_cpus(n) if substrate.startswith("fe") else atm_cluster_cpus(n)
        if len(cpus) != n:
            raise ValueError("need one CpuModel per node")
        self.cpus = list(cpus)
        self.network = self._build_network(substrate, switch_model, atm_phy)
        if endpoint_config is None:
            endpoint_config = ENDPOINT_CONFIG if n <= LEAN_THRESHOLD else _lean_endpoint_config(n)
        self.hosts: List[Host] = [
            self.network.add_host(f"node{i}", self.cpus[i]) for i in range(n)
        ]
        self.endpoints: List[UserEndpoint] = [
            host.create_endpoint(config=endpoint_config, rx_buffers=RX_BUFFERS) for host in self.hosts
        ]
        self.ams: List[AmEndpoint] = [
            AmEndpoint(i, self.endpoints[i], config=am_config) for i in range(n)
        ]
        self._connected_pairs: set = set()
        if lazy_channels:
            # channels come up on first use: O(active pairs), not O(N^2)
            for i, am in enumerate(self.ams):
                am.peer_resolver = self._make_resolver(i)
        else:
            for i in range(n):
                for j in range(i + 1, n):
                    self._ensure_channel(i, j)
        self.collective_engines = (
            self._wire_collectives(collective_fanout) if collectives == "nic" else []
        )
        self.runtimes: List[SplitCRuntime] = [
            SplitCRuntime(i, n, self.ams[i], self.cpus[i], costs=costs) for i in range(n)
        ]
        for runtime, engine in zip(self.runtimes, self.collective_engines):
            runtime.use_nic_collectives(engine)

    # ------------------------------------------------------------- channels
    def _make_resolver(self, i: int):
        def resolve(j: int) -> None:
            if 0 <= j < self.n and j != i:
                self._ensure_channel(i, j)
        return resolve

    def _ensure_channel(self, i: int, j: int) -> None:
        key = (i, j) if i < j else (j, i)
        if key in self._connected_pairs:
            return
        self._connected_pairs.add(key)
        ch_i, ch_j = self.network.connect(self.endpoints[i], self.endpoints[j])
        self.ams[i].connect_peer(j, ch_i)
        self.ams[j].connect_peer(i, ch_j)

    # -------------------------------------------------------------- fabric
    def _build_network(self, substrate: str, switch_model: SwitchModel, atm_phy: AtmPhy):
        if substrate == "fe-hub":
            return HubNetwork(self.sim)
        if substrate == "fe-switch":
            return SwitchedNetwork(self.sim, model=switch_model)
        if substrate == "fe-beowulf":
            from ..ethernet.bonding import BeowulfNetwork

            return BeowulfNetwork(self.sim)
        if substrate == "fe-clos":
            from ..fabric import ClosFeNetwork

            leaves, spines, per_leaf = _clos_shape(self.n)
            return ClosFeNetwork(self.sim, leaves=leaves, spines=spines,
                                 hosts_per_leaf=per_leaf, model=switch_model)
        if substrate == "atm":
            network = AtmNetwork(self.sim)
            original_add = network.add_host
            network.add_host = lambda name, cpu: original_add(name, cpu, phy=atm_phy)
            return network
        if substrate == "atm-clos":
            from ..fabric import ClosAtmFabric

            leaves, spines, per_leaf = _clos_shape(self.n)
            fabric = ClosAtmFabric(self.sim, leaves=leaves, spines=spines,
                                   hosts_per_leaf=per_leaf, trunk_phy=atm_phy)
            original_add = fabric.add_host
            fabric.add_host = lambda name, cpu: original_add(name, cpu, phy=atm_phy)
            return fabric
        if substrate == "mixed":
            from ..fabric import MixedFabric

            per_leaf = max(2, -(-self.n // 4))  # half per side, two leaves each
            return MixedFabric(self.sim, hosts_per_leaf=per_leaf)
        raise ValueError(f"unknown substrate {substrate!r} {self.SUBSTRATES}")

    def _wire_collectives(self, fanout: int):
        from ..collectives import wire_atm_collectives, wire_fe_collectives

        if self.substrate in ("atm", "atm-clos"):
            return wire_atm_collectives(self.network, self.hosts, fanout=fanout)
        if self.substrate in ("fe-hub", "fe-switch", "fe-clos"):
            return wire_fe_collectives(self.network, self.hosts, fanout=fanout)
        raise ValueError(
            f"collectives='nic' is not supported on substrate {self.substrate!r} "
            "(the engine cannot span the mixed relay or bonded rails)"
        )

    # ---------------------------------------------------------------- run
    def run(self, program: Callable[[SplitCRuntime], Generator], limit: float = 5e9) -> List[Any]:
        """Run one SPMD ``program`` on every node; returns per-node results.

        The program is a generator function taking the node's runtime.
        """
        processes = [
            self.sim.process(program(runtime), name=f"splitc.node{runtime.node}")
            for runtime in self.runtimes
        ]
        results = []
        for process in processes:
            results.append(self.sim.run_until_complete(process, limit=limit))
        for am in self.ams:
            am.shutdown()
        return results

    @property
    def elapsed(self) -> float:
        """Simulation time so far (microseconds)."""
        return self.sim.now

    def time_breakdown(self) -> List[dict]:
        """Per-node cpu/net split (drives the paper's Figure 7)."""
        return [
            {
                "node": rt.node,
                "cpu_us": rt.compute_time,
                "net_us": rt.comm_time,
            }
            for rt in self.runtimes
        ]
