"""The Split-C runtime: SPMD global-address-space operations over AM.

Provides what the benchmark suite needs of Split-C (Culler et al.):

* spread arrays with ``(node, array, index)`` global pointers;
* blocking ``get``/``put`` of array slices;
* split-phase one-way ``store`` with :meth:`all_store_sync`;
* reductions and broadcasts;
* barriers;
* explicit computation charging against the host CPU model, with
  separate accounting of computation vs communication time (the paper's
  Figure 7 splits execution into "cpu" and "net" portions).

All communication compiles down to Active Messages, exactly as the real
Split-C implementation over U-Net did (Section 5).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from ..am.am import AmConfig, AmEndpoint, RequestContext
from ..collectives.engine import reduce_wire_dtype
from ..hw.cpu import CpuModel
from ..sim import Event, Simulator
from .costs import DEFAULT_COSTS, KernelCosts
from .memory import GlobalHeap

__all__ = ["SplitCRuntime", "SplitCError"]

# runtime handler ids (0xB0 is reserved by repro.am.bulk)
H_STORE = 0x10
H_ADD = 0x11
H_ANNOUNCE = 0x12
H_BARRIER_ARRIVE = 0x13
H_BARRIER_RELEASE = 0x14
H_BCAST = 0x15
H_FETCH = 0x16
H_FETCH_DONE = 0x17
H_GET_SMALL = 0x18
H_PUT_SMALL = 0x19


class SplitCError(Exception):
    """Split-C runtime usage or protocol error."""


class SplitCRuntime:
    """One node's view of the Split-C machine."""

    def __init__(
        self,
        node: int,
        nprocs: int,
        am: AmEndpoint,
        cpu: CpuModel,
        costs: KernelCosts = DEFAULT_COSTS,
    ) -> None:
        self.node = node
        self.nprocs = nprocs
        self.am = am
        self.cpu = cpu
        self.costs = costs
        self.sim: Simulator = am.sim
        self.heap = GlobalHeap(node)
        # split-phase store accounting: stores are counted per epoch
        # (between announces); _announce_balance tolerates peers racing
        # ahead into their next epoch
        self._stores_sent: Dict[int, int] = {p: 0 for p in range(nprocs) if p != node}
        self._stores_received: Dict[int, int] = {p: 0 for p in range(nprocs) if p != node}
        self._announce_balance: Dict[int, int] = {p: 0 for p in range(nprocs) if p != node}
        self._sync_event: Optional[Event] = None
        # barrier state (node 0 coordinates)
        self._barrier_generation = 0
        self._barrier_arrivals: Dict[int, int] = {}
        self._barrier_release: Dict[int, Event] = {}
        # broadcast state
        self._bcast_events: Dict[int, Event] = {}
        self._bcast_data: Dict[int, bytes] = {}
        # fetch (split-phase bulk get) state
        self._next_fetch_tag = 0
        self._fetch_events: Dict[int, Event] = {}
        #: NIC-resident collective engine (None = host-coordinated)
        self.nic_collectives = None
        # time accounting (Figure 7's cpu/net split)
        self.compute_time = 0.0
        self.comm_time = 0.0
        # operation counters (observability)
        self.barriers_entered = 0
        self.syncs_completed = 0
        self.gets_issued = 0
        self.puts_issued = 0
        self.fetches_issued = 0
        self._register_handlers()

    # ----------------------------------------------------------- accounting
    def compute(self, *, int_ops: float = 0.0, flops: float = 0.0, us: float = 0.0) -> Generator:
        """Process: charge local computation time."""
        duration = us + self.cpu.int_op_time(int_ops) + self.cpu.flop_time(flops)
        self.compute_time += duration
        yield self.sim.timeout(duration)

    def _comm(self, gen: Generator) -> Generator:
        """Run a communication step, attributing its time to 'net'."""
        start = self.sim.now
        result = yield from gen
        self.comm_time += self.sim.now - start
        return result

    # ----------------------------------------------------------- allocation
    def all_spread_malloc(self, name: str, length: int, dtype=np.uint32) -> np.ndarray:
        """SPMD-symmetric allocation of this node's slice of ``name``."""
        return self.heap.allocate(name, length, dtype=dtype)

    def local(self, name: str) -> np.ndarray:
        return self.heap.array(name)

    # ------------------------------------------------------------- handlers
    def _register_handlers(self) -> None:
        am = self.am
        am.register_handler(H_STORE, self._h_store)
        am.register_handler(H_ADD, self._h_add)
        am.register_handler(H_ANNOUNCE, self._h_announce)
        am.register_handler(H_BARRIER_ARRIVE, self._h_barrier_arrive)
        am.register_handler(H_BARRIER_RELEASE, self._h_barrier_release)
        am.register_handler(H_BCAST, self._h_bcast)
        am.register_handler(H_FETCH, self._h_fetch)
        am.register_handler(H_FETCH_DONE, self._h_fetch_done)
        am.register_handler(H_GET_SMALL, self._h_get_small)
        am.register_handler(H_PUT_SMALL, self._h_put_small)

    def _h_store(self, ctx: RequestContext) -> Generator:
        name_id, byte_offset, _a2, _a3 = ctx.args
        yield self.sim.timeout(self.cpu.copy_time(len(ctx.data)))
        self.heap.write_bytes(name_id, byte_offset, ctx.data)
        self._count_store(ctx.src_node)

    _REDUCE_OPS = ("sum", "max", "min")

    def _h_add(self, ctx: RequestContext) -> Generator:
        name_id, elem_offset, op_code, _a3 = ctx.args
        op = self._REDUCE_OPS[op_code] if op_code < len(self._REDUCE_OPS) else "sum"
        elements = len(ctx.data) // 8
        yield self.sim.timeout(self.cpu.int_op_time(2 * max(1, elements)))
        self.heap.combine_bytes(name_id, elem_offset, ctx.data, op=op)
        self._count_store(ctx.src_node)

    def _count_store(self, src: int) -> None:
        self._stores_received[src] += 1

    def _h_announce(self, ctx: RequestContext) -> None:
        expected = ctx.args[0]
        src = ctx.src_node
        # AM delivery is FIFO per peer, so every store the peer sent
        # before this announce has already been applied; a surplus means
        # the peer already raced into its next epoch, so carry it over
        if self._stores_received[src] < expected:
            raise SplitCError(
                f"node {self.node}: store sync mismatch from {src}: "
                f"got {self._stores_received[src]}, announced {expected}"
            )
        self._stores_received[src] -= expected
        self._announce_balance[src] += 1
        self._maybe_finish_sync()

    def _maybe_finish_sync(self) -> None:
        if self._sync_event is None:
            return
        if all(balance >= 1 for balance in self._announce_balance.values()):
            for peer in self._announce_balance:
                self._announce_balance[peer] -= 1
            event, self._sync_event = self._sync_event, None
            self.syncs_completed += 1
            event.succeed()

    def _h_barrier_arrive(self, ctx: RequestContext) -> None:
        generation = ctx.args[0]
        self._note_barrier_arrival(generation)

    def _note_barrier_arrival(self, generation: int) -> None:
        assert self.node == 0, "only node 0 coordinates barriers"
        count = self._barrier_arrivals.get(generation, 0) + 1
        self._barrier_arrivals[generation] = count
        if count == self.nprocs:
            del self._barrier_arrivals[generation]
            self.sim.process(self._release_barrier(generation), name="barrier.release")

    def _release_barrier(self, generation: int) -> Generator:
        for peer in range(1, self.nprocs):
            yield from self.am.request(peer, H_BARRIER_RELEASE, args=(generation,))
        self._signal_release(generation)

    def _h_barrier_release(self, ctx: RequestContext) -> None:
        self._signal_release(ctx.args[0])

    def _signal_release(self, generation: int) -> None:
        event = self._barrier_release.pop(generation, None)
        if event is not None:
            event.succeed()
        else:
            # release beat the local barrier() call: pre-arm the event
            armed = self.sim.event(name=f"barrier{generation}")
            armed.succeed()
            self._barrier_release[generation] = armed

    def _h_bcast(self, ctx: RequestContext) -> None:
        generation = ctx.args[1]
        self._bcast_data[generation] = ctx.data
        event = self._bcast_events.pop(generation, None)
        if event is not None:
            event.succeed()

    def _h_fetch(self, ctx: RequestContext) -> None:
        name_id, byte_offset, nbytes, packed = ctx.args
        dst_name_id = packed & 0xFFFF
        tag = packed >> 16
        data = self.heap.read_bytes(name_id, byte_offset, nbytes)
        # served in a separate process: a window-blocked reply must not
        # stall the dispatch loop (deadlock avoidance)
        self.sim.process(
            self._serve_fetch(ctx.src_node, dst_name_id, tag, data), name=f"sc{self.node}.fetch"
        )

    def _serve_fetch(self, requester: int, dst_name_id: int, tag: int, data: bytes) -> Generator:
        yield self.sim.timeout(self.cpu.copy_time(len(data)))
        max_data = self.am.max_data
        for offset in range(0, max(1, len(data)), max_data):
            chunk = data[offset : offset + max_data]
            yield from self.am.request(requester, H_STORE, args=(dst_name_id, offset), data=chunk)
            self._stores_sent[requester] += 1
        yield from self.am.request(requester, H_FETCH_DONE, args=(tag,))

    def _h_fetch_done(self, ctx: RequestContext) -> None:
        event = self._fetch_events.pop(ctx.args[0], None)
        if event is not None:
            event.succeed()

    def _h_get_small(self, ctx: RequestContext) -> Generator:
        name_id, byte_offset, nbytes, _a3 = ctx.args
        data = self.heap.read_bytes(name_id, byte_offset, nbytes)
        yield from ctx.reply(data=data)

    def _h_put_small(self, ctx: RequestContext) -> Generator:
        name_id, byte_offset, _a2, _a3 = ctx.args
        self.heap.write_bytes(name_id, byte_offset, ctx.data)
        yield from ctx.reply()

    # ----------------------------------------------- app-defined handlers
    def register_counted_handler(self, handler_id: int, fn) -> None:
        """Register an application AM handler whose messages participate
        in :meth:`all_store_sync` accounting (the benchmarks' custom
        scatter/append handlers use this)."""

        def wrapped(ctx: RequestContext):
            self._count_store(ctx.src_node)
            return fn(ctx)

        self.am.register_handler(handler_id, wrapped)

    def counted_request(self, node: int, handler_id: int, args=(), data: bytes = b"") -> Generator:
        """Process: one-way request to a counted handler."""
        if node == self.node:
            raise SplitCError("counted_request cannot target the local node")
        yield from self._comm(self.am.request(node, handler_id, args=args, data=data))
        self._stores_sent[node] += 1

    def counted_bulk(self, node: int, handler_id: int, data: bytes, record_bytes: int = 8) -> Generator:
        """Process: bulk one-way transfer to a counted handler, fragmented
        on ``record_bytes`` boundaries so every packet holds whole records."""
        max_data = (self.am.max_data // record_bytes) * record_bytes
        if max_data <= 0:
            raise SplitCError("record larger than one packet")
        for offset in range(0, max(1, len(data)), max_data):
            yield from self.counted_request(node, handler_id, data=data[offset : offset + max_data])

    # ------------------------------------------------------------ data ops
    def get(self, node: int, name: str, start: int, count: int = 1) -> Generator:
        """Process: blocking read of ``count`` elements from a peer (or
        local) spread array; returns an ndarray copy."""
        array_local = self.heap.array(name)
        itemsize = array_local.itemsize
        self.gets_issued += 1
        if node == self.node:
            yield from self.compute(int_ops=4)
            return array_local[start : start + count].copy()
        name_id = self.heap.name_id(name)
        _args, data = yield from self._comm(
            self.am.rpc(node, H_GET_SMALL, args=(name_id, start * itemsize, count * itemsize))
        )
        return np.frombuffer(data, dtype=array_local.dtype).copy()

    def put(self, node: int, name: str, start: int, values: np.ndarray) -> Generator:
        """Process: blocking write of ``values`` into a peer's slice."""
        array_local = self.heap.array(name)
        values = np.asarray(values, dtype=array_local.dtype)
        self.puts_issued += 1
        if node == self.node:
            array_local[start : start + len(values)] = values
            yield from self.compute(int_ops=4)
            return
        name_id = self.heap.name_id(name)
        yield from self._comm(
            self.am.rpc(node, H_PUT_SMALL, args=(name_id, start * array_local.itemsize),
                        data=values.tobytes())
        )

    def store_bytes(self, node: int, name: str, byte_offset: int, data: bytes) -> Generator:
        """Process: split-phase one-way store (fragmenting as needed)."""
        if node == self.node:
            self.heap.write_bytes(self.heap.name_id(name), byte_offset, data)
            return
        name_id = self.heap.name_id(name)
        max_data = self.am.max_data
        for offset in range(0, max(1, len(data)), max_data):
            chunk = data[offset : offset + max_data]
            yield from self._comm(
                self.am.request(node, H_STORE, args=(name_id, byte_offset + offset), data=chunk)
            )
            self._stores_sent[node] += 1

    def store_array(self, node: int, name: str, elem_offset: int, values: np.ndarray) -> Generator:
        itemsize = self.heap.array(name).itemsize
        yield from self.store_bytes(node, name, elem_offset * itemsize, np.ascontiguousarray(values).tobytes())

    def store_add(self, node: int, name: str, elem_offset: int, values: np.ndarray,
                  op: str = "sum") -> Generator:
        """Process: one-way element-wise combine into a peer's slice."""
        if op not in self._REDUCE_OPS:
            raise SplitCError(f"unknown reduction op {op!r}")
        if node == self.node:
            array = self.heap.array(name)
            self.heap.combine_bytes(
                self.heap.name_id(name), elem_offset,
                np.ascontiguousarray(values, dtype=array.dtype).tobytes(), op=op,
            )
            return
        name_id = self.heap.name_id(name)
        array = self.heap.array(name)
        data = np.ascontiguousarray(values, dtype=array.dtype).tobytes()
        max_data = self.am.max_data
        itemsize = array.itemsize
        per_packet = (max_data // itemsize) * itemsize
        op_code = self._REDUCE_OPS.index(op)
        for offset in range(0, max(1, len(data)), per_packet):
            chunk = data[offset : offset + per_packet]
            yield from self._comm(
                self.am.request(node, H_ADD,
                                args=(name_id, elem_offset + offset // itemsize, op_code),
                                data=chunk)
            )
            self._stores_sent[node] += 1

    def all_store_sync(self) -> Generator:
        """Process: global completion of all outstanding stores."""
        if self.nprocs == 1:
            return
        if self._sync_event is not None:
            raise SplitCError("concurrent all_store_sync calls on one node")
        self._sync_event = self.sim.event(name=f"sc{self.node}.sync")
        event = self._sync_event
        start = self.sim.now
        for peer in sorted(self._stores_sent):
            count = self._stores_sent[peer]
            self._stores_sent[peer] = 0  # our next epoch starts now
            yield from self.am.request(peer, H_ANNOUNCE, args=(count,))
        self._maybe_finish_sync()
        yield event
        self.comm_time += self.sim.now - start

    def bulk_get_async(self, node: int, src_name: str, src_elem: int, count: int,
                       dst_name: str, dst_elem: int):
        """Split-phase bulk read: starts the fetch and returns a process
        to ``yield`` on later — the Split-C idiom for overlapping
        communication with computation."""
        return self.sim.process(
            self.bulk_get(node, src_name, src_elem, count, dst_name, dst_elem),
            name=f"sc{self.node}.prefetch",
        )

    def bulk_get(self, node: int, src_name: str, src_elem: int, count: int,
                 dst_name: str, dst_elem: int) -> Generator:
        """Process: split-phase bulk read into a local array (the owner
        streams the data back as stores)."""
        src_array = self.heap.array(src_name)
        dst_array = self.heap.array(dst_name)
        itemsize = src_array.itemsize
        if node == self.node:
            dst_array[dst_elem : dst_elem + count] = src_array[src_elem : src_elem + count]
            yield from self.compute(us=self.cpu.copy_time(count * itemsize))
            return
        self.fetches_issued += 1
        tag = self._next_fetch_tag
        self._next_fetch_tag = (self._next_fetch_tag + 1) % (1 << 15)
        event = self.sim.event(name=f"sc{self.node}.fetch{tag}")
        self._fetch_events[tag] = event
        name_id = self.heap.name_id(src_name)
        dst_id = self.heap.name_id(dst_name)
        packed = (tag << 16) | dst_id
        start = self.sim.now
        yield from self.am.request(
            node, H_FETCH, args=(name_id, src_elem * itemsize, count * itemsize, packed)
        )
        yield event
        self.comm_time += self.sim.now - start
        # note: the H_STOREs the owner sent count toward OUR inbound
        # store tally; the owner counted them as outbound.  Fetches are
        # therefore compatible with a following all_store_sync.

    # --------------------------------------------------------- collectives
    def use_nic_collectives(self, engine) -> None:
        """Route barrier/broadcast/reduce through a NIC-resident
        collective engine instead of the host-coordinated node-0 scheme
        (the ``collectives="nic"`` ablation)."""
        self.nic_collectives = engine

    def barrier(self) -> Generator:
        """Process: global barrier (NIC tree, or node-0 coordination)."""
        self.barriers_entered += 1
        if self.nprocs == 1:
            return
        if self.nic_collectives is not None:
            start = self.sim.now
            yield from self.nic_collectives.barrier()
            self.comm_time += self.sim.now - start
            return
        generation = self._barrier_generation
        self._barrier_generation += 1
        start = self.sim.now
        if generation in self._barrier_release:
            # release already arrived (we were last and slow)
            event = self._barrier_release.pop(generation)
        else:
            event = self.sim.event(name=f"sc{self.node}.bar{generation}")
            self._barrier_release[generation] = event
        if self.node == 0:
            self._note_barrier_arrival(generation)
        else:
            yield from self.am.request(0, H_BARRIER_ARRIVE, args=(generation,))
        yield event
        self.comm_time += self.sim.now - start

    def broadcast_small(self, root: int, name: str, values: Optional[np.ndarray] = None) -> Generator:
        """Process: one-packet broadcast of array ``name`` from ``root``.

        The root passes ``values``; every node returns with its local
        slice of ``name`` holding the broadcast data.
        """
        array = self.heap.array(name)
        if self.nic_collectives is not None and root == 0 and self.nprocs > 1:
            # the NIC tree is rooted at node 0; dissemination happens in
            # firmware, so no trailing barrier is needed — every non-root
            # node blocks until its payload arrives
            engine = self.nic_collectives
            start = self.sim.now
            if self.node == root:
                if values is None:
                    raise SplitCError("root must supply broadcast values")
                array[: len(values)] = values
                data = np.ascontiguousarray(values, dtype=array.dtype).tobytes()
                if len(data) > engine.max_data:
                    raise SplitCError("broadcast_small payload exceeds one packet")
                yield from engine.broadcast(data)
            else:
                data = yield from engine.broadcast()
                incoming = np.frombuffer(data, dtype=array.dtype)
                array[: len(incoming)] = incoming
            self.comm_time += self.sim.now - start
            return
        generation = self._barrier_generation  # reuse a symmetric counter
        if self.node == root:
            if values is None:
                raise SplitCError("root must supply broadcast values")
            array[: len(values)] = values
            data = np.ascontiguousarray(values, dtype=array.dtype).tobytes()
            if len(data) > self.am.max_data:
                raise SplitCError("broadcast_small payload exceeds one packet")
            start = self.sim.now
            name_id = self.heap.name_id(name)
            for peer in range(self.nprocs):
                if peer != root:
                    yield from self.am.request(peer, H_BCAST, args=(name_id, generation), data=data)
            self.comm_time += self.sim.now - start
        else:
            start = self.sim.now
            data = self._bcast_data.pop(generation, None)
            if data is None:
                event = self.sim.event(name=f"sc{self.node}.bcast{generation}")
                self._bcast_events[generation] = event
                yield event
                data = self._bcast_data.pop(generation)
            incoming = np.frombuffer(data, dtype=array.dtype)
            array[: len(incoming)] = incoming
            self.comm_time += self.sim.now - start
        yield from self.barrier()

    def all_gather(self, name: str, values: np.ndarray) -> Generator:
        """Process: every node contributes ``values``; afterwards the
        spread array ``name`` holds slot ``i * len(values)`` onward from
        node ``i``, on every node (linear all-gather over stores)."""
        array = self.heap.array(name)
        width = len(values)
        if width * self.nprocs > len(array):
            raise SplitCError(f"all_gather of {width} elements overflows {name!r}")
        array[self.node * width : (self.node + 1) * width] = values.astype(array.dtype)
        for peer in range(self.nprocs):
            if peer != self.node:
                yield from self.store_array(peer, name, self.node * width, values)
        yield from self.all_store_sync()

    def all_reduce_sum(self, name: str) -> Generator:
        """Process: element-wise global sum of spread array ``name``."""
        yield from self.all_reduce(name, op="sum")

    def all_reduce(self, name: str, op: str = "sum") -> Generator:
        """Process: element-wise global reduction (sum/max/min) of spread
        array ``name``; every node ends with the result in its slice."""
        array = self.heap.array(name)
        if self.nprocs == 1:
            return
        engine = self.nic_collectives
        wire_dtype = reduce_wire_dtype(array.dtype)
        if (engine is not None and wire_dtype is not None
                and array.nbytes <= engine.max_data):
            # combine in NIC firmware; the fallback condition is a pure
            # function of the (SPMD-symmetric) array, so all nodes agree
            start = self.sim.now
            result = yield from engine.allreduce(array.tobytes(), op=op,
                                                dtype=wire_dtype)
            array[:] = np.frombuffer(result, dtype=array.dtype)
            self.comm_time += self.sim.now - start
            return
        # combine everyone's contribution on node 0.  The entry barrier
        # fences the epoch: without it a fast peer's store_add for the
        # next reduction can land on node 0 before node 0's own program
        # has finished (re)writing its input slice, and the local write
        # then silently overwrites the remote contribution.
        yield from self.barrier()
        if self.node != 0:
            yield from self.store_add(0, name, 0, array, op=op)
        yield from self.all_store_sync()
        # node 0 now has the global result; spread it back
        if self.node == 0:
            data = array.tobytes()
            for peer in range(1, self.nprocs):
                yield from self.store_bytes(peer, name, 0, data)
        yield from self.all_store_sync()
