"""Per-node global heaps for the Split-C runtime.

Split-C programs allocate *spread* arrays: every node holds its local
slice, and global pointers name ``(node, array, index)``.  Allocation is
SPMD-symmetric, so the registration order — and therefore the small
integer ids the wire protocol uses — is identical on every node.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["GlobalHeap", "HeapError"]


class HeapError(Exception):
    """Invalid heap operation."""


class GlobalHeap:
    """The local slice of every spread allocation on one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._arrays: Dict[str, np.ndarray] = {}
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def allocate(self, name: str, length: int, dtype=np.uint32) -> np.ndarray:
        """Allocate (or re-allocate) the local slice of spread array ``name``."""
        if name in self._arrays:
            raise HeapError(f"array {name!r} already allocated on node {self.node}")
        array = np.zeros(length, dtype=dtype)
        self._arrays[name] = array
        self._ids[name] = len(self._names)
        self._names.append(name)
        return array

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise HeapError(f"array {name!r} not allocated on node {self.node}") from None

    def array_by_id(self, name_id: int) -> np.ndarray:
        if not 0 <= name_id < len(self._names):
            raise HeapError(f"bad array id {name_id} on node {self.node}")
        return self._arrays[self._names[name_id]]

    def name_id(self, name: str) -> int:
        try:
            return self._ids[name]
        except KeyError:
            raise HeapError(f"array {name!r} not allocated on node {self.node}") from None

    def write_bytes(self, name_id: int, byte_offset: int, data: bytes) -> None:
        """Raw store into an array's backing bytes (wire-side of a put)."""
        array = self.array_by_id(name_id)
        view = array.view(np.uint8)
        if byte_offset < 0 or byte_offset + len(data) > view.nbytes:
            raise HeapError(
                f"store of {len(data)} bytes at offset {byte_offset} overruns "
                f"array {self._names[name_id]!r} ({view.nbytes} bytes)"
            )
        view[byte_offset : byte_offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def read_bytes(self, name_id: int, byte_offset: int, nbytes: int) -> bytes:
        array = self.array_by_id(name_id)
        view = array.view(np.uint8)
        if byte_offset < 0 or byte_offset + nbytes > view.nbytes:
            raise HeapError("read overruns array")
        return view[byte_offset : byte_offset + nbytes].tobytes()

    def add_bytes(self, name_id: int, elem_offset: int, data: bytes) -> None:
        """Element-wise accumulate (wire-side of a reduction fragment)."""
        self.combine_bytes(name_id, elem_offset, data, op="sum")

    def combine_bytes(self, name_id: int, elem_offset: int, data: bytes, op: str) -> None:
        """Element-wise combine (wire-side of a reduction fragment)."""
        array = self.array_by_id(name_id)
        incoming = np.frombuffer(data, dtype=array.dtype)
        if elem_offset < 0 or elem_offset + len(incoming) > len(array):
            raise HeapError("combine overruns array")
        view = array[elem_offset : elem_offset + len(incoming)]
        if op == "sum":
            view += incoming
        elif op == "max":
            np.maximum(view, incoming, out=view)
        elif op == "min":
            np.minimum(view, incoming, out=view)
        else:
            raise HeapError(f"unknown reduction op {op!r}")
