"""repro — U-Net over ATM and Fast Ethernet, reproduced in simulation.

A production-quality reproduction of Welsh, Basu & von Eicken, "ATM and
Fast Ethernet Network Interfaces for User-level Communication" (HPCA
1997): the U-Net user-level network architecture implemented for real
on calibrated discrete-event models of the paper's hardware.

Quick tour::

    from repro import Simulator, HubNetwork, PENTIUM_120

    sim = Simulator()
    net = HubNetwork(sim)
    a = net.add_host("a", PENTIUM_120)
    b = net.add_host("b", PENTIUM_120)
    ep_a = a.create_endpoint(rx_buffers=16)
    ep_b = b.create_endpoint(rx_buffers=16)
    ch_a, ch_b = net.connect(ep_a, ep_b)
    # ... yield from ep_a.send(ch_a, b"hello") / ep_b.recv()

Sub-packages:

- :mod:`repro.sim` — the discrete-event kernel (time unit: microseconds)
- :mod:`repro.hw` — CPU/bus/memory/interrupt models
- :mod:`repro.core` — the U-Net architecture itself
- :mod:`repro.atm`, :mod:`repro.ethernet` — the two substrates and
  their U-Net backends
- :mod:`repro.am` — Active Messages (reliability + flow control)
- :mod:`repro.splitc`, :mod:`repro.apps` — the Split-C runtime and the
  paper's benchmark suite
- :mod:`repro.perfmodel`, :mod:`repro.analysis` — full-scale projection
  and the experiment harness

Command line: ``python -m repro list``.
"""

from .sim import Simulator

# convenience re-exports of the most common entry points; the
# sub-packages remain the canonical homes
from .hw import PENTIUM_90, PENTIUM_120, SPARCSTATION_10, SPARCSTATION_20
from .core import EndpointConfig, Host, UserEndpoint

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Host",
    "UserEndpoint",
    "EndpointConfig",
    "PENTIUM_90",
    "PENTIUM_120",
    "SPARCSTATION_10",
    "SPARCSTATION_20",
    "HubNetwork",
    "SwitchedNetwork",
    "AtmNetwork",
    "Cluster",
    "AmEndpoint",
    "__version__",
]


def __getattr__(name):
    # lazy imports keep `import repro` light while still offering the
    # headline classes at the top level
    if name == "HubNetwork":
        from .ethernet import HubNetwork

        return HubNetwork
    if name == "SwitchedNetwork":
        from .ethernet import SwitchedNetwork

        return SwitchedNetwork
    if name == "AtmNetwork":
        from .atm import AtmNetwork

        return AtmNetwork
    if name == "Cluster":
        from .splitc import Cluster

        return Cluster
    if name == "AmEndpoint":
        from .am import AmEndpoint

        return AmEndpoint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
