"""Scale-out fabric topologies: Clos/fat-tree builders for both substrates.

The paper's clusters sit behind one switch; this package grows them into
multi-stage fabrics.  :mod:`~repro.fabric.topology` declares the switch
graph and computes (parallel) shortest paths; the builders wire real
switch models along it:

* :class:`ClosAtmFabric` — leaf/spine ASX-200s, VCs programmed hop by
  hop network-wide, successive connections rotated across spines;
* :class:`ClosFeNetwork` — leaf/spine Fast Ethernet switches with a
  statically programmed (or, single-spine, learning) flat MAC space;
* :class:`MixedFabric` — one of each, bridged by a dual-homed relay.

All three expose the ``add_host``/``connect`` surface
:class:`~repro.splitc.cluster.Cluster` expects, and are registered as
cluster substrates ``atm-clos``, ``fe-clos``, and ``mixed``.
"""

from .atm_clos import ClosAtmFabric
from .fe_clos import ClosFeNetwork
from .mixed import MixedFabric
from .topology import Topology, clos_topology, leaves_for, linear_topology

__all__ = [
    "Topology",
    "linear_topology",
    "clos_topology",
    "leaves_for",
    "ClosAtmFabric",
    "ClosFeNetwork",
    "MixedFabric",
]
