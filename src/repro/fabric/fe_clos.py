"""A 2-level Clos/fat-tree of Fast Ethernet switches.

Section 4.4.3's scalability discussion stops at a single switch because
U-Net/FE addresses stations by MAC; this builder keeps the flat MAC
address space and scales it with a leaf/spine fabric: hosts attach to
leaf switches, every leaf trunks to every spine, and frames cross at
most leaf → spine → leaf.

Two forwarding regimes:

* **static** (default, any spine count) — the fabric's signaling plane
  programs every switch's MAC table when a host is added.  Destination
  hosts are spread round-robin across spines, so parallel trunks all
  carry traffic while each destination has exactly one loop-free path
  from every leaf.
* **learning** (``learning=True``, requires ``spines == 1``) — switches
  transparently bridge: they learn source MACs across the trunks and
  flood unknown destinations.  A multi-spine Clos has physical loops, so
  learning mode models the spanning-tree-pruned single-spine tree.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.api import Host, UserEndpoint
from ..core.errors import NoPathError
from ..ethernet.medium import SimplexChannel
from ..ethernet.network import _FeNetworkBase
from ..ethernet.switch import BAY_28115, EthernetSwitch, SwitchModel
from ..sim import Simulator
from .topology import clos_topology, leaves_for

__all__ = ["ClosFeNetwork"]


class ClosFeNetwork(_FeNetworkBase):
    """Hosts on a leaf/spine Fast Ethernet fabric (full duplex links)."""

    def __init__(
        self,
        sim: Simulator,
        leaves: int = 2,
        spines: int = 2,
        hosts_per_leaf: int = 8,
        model: SwitchModel = BAY_28115,
        rate_mbps: float = 100.0,
        trunk_propagation_us: float = 2.0,
        learning: bool = False,
    ) -> None:
        super().__init__(sim)
        if hosts_per_leaf < 1:
            raise ValueError("need at least one host per leaf")
        if learning and spines != 1:
            raise ValueError("learning mode floods; a multi-spine Clos has loops "
                             "(use spines=1 for the spanning-tree-pruned shape)")
        self.topology = clos_topology(leaves, spines)
        self.hosts_per_leaf = hosts_per_leaf
        self.learning = learning
        # auto-size the port count; the paper's products are too small
        # for a fabric role but their latency model still applies
        leaf_model = _sized(model, spines + hosts_per_leaf)
        spine_model = _sized(model, leaves)
        self.leaf_switches: List[EthernetSwitch] = [
            EthernetSwitch(sim, leaf_model, rate_mbps=rate_mbps, learning=learning)
            for _ in range(leaves)
        ]
        self.spine_switches: List[EthernetSwitch] = [
            EthernetSwitch(sim, spine_model, rate_mbps=rate_mbps, learning=learning)
            for _ in range(spines)
        ]
        #: (leaf, spine) -> leaf port toward that spine, and vice versa
        self._leaf_uplink: Dict[Tuple[int, int], int] = {}
        self._spine_downlink: Dict[Tuple[int, int], int] = {}
        #: trunk channels by (kind, leaf, spine); "up" = leaf->spine
        self.trunk_channels: Dict[Tuple[str, int, int], SimplexChannel] = {}
        for leaf in range(leaves):
            for spine in range(spines):
                self._join(leaf, spine, rate_mbps, trunk_propagation_us)
        self._leaf_of_backend: Dict[object, int] = {}
        self._host_count = 0
        #: every statically-programmed host: (mac, leaf, host_index)
        self._mac_programs: List[Tuple[int, int, int]] = []
        #: (mac, source leaf) -> spine its MAC entry currently routes via
        self._via: Dict[Tuple[int, int], int] = {}
        #: saved deliver callbacks of blackholed trunk channels
        self._trunk_saved: Dict[Tuple[str, int, int], Optional[Callable]] = {}
        self.reroutes = 0
        self.frames_blackholed = 0

    def _join(self, leaf: int, spine: int, rate_mbps: float, propagation_us: float) -> None:
        leaf_sw = self.leaf_switches[leaf]
        spine_sw = self.spine_switches[spine]
        up = SimplexChannel(self.sim, rate_mbps, propagation_us,
                            name=f"trunk.l{leaf}->s{spine}",
                            deliver_at_header=not spine_sw.model.store_and_forward)
        down = SimplexChannel(self.sim, rate_mbps, propagation_us,
                              name=f"trunk.s{spine}->l{leaf}",
                              deliver_at_header=not leaf_sw.model.store_and_forward)
        leaf_port = leaf_sw.attach_trunk(up)
        spine_port = spine_sw.attach_trunk(down)
        up.deliver = spine_sw.ingress(spine_port)
        down.deliver = leaf_sw.ingress(leaf_port)
        self._leaf_uplink[(leaf, spine)] = leaf_port
        self._spine_downlink[(spine, leaf)] = spine_port
        self.trunk_channels[("up", leaf, spine)] = up
        self.trunk_channels[("down", leaf, spine)] = down

    @property
    def leaves(self) -> int:
        return self.topology.leaves

    @property
    def spines(self) -> int:
        return self.topology.spines

    def add_host(self, name, cpu, leaf: Optional[int] = None,
                 timings=None, nic_timings=None, bus=None,
                 trace=None, propagation_us: float = 0.5) -> Host:
        """Attach a host; defaults to filling leaves left to right."""
        from ..hw.bus import PCI_BUS

        if leaf is None:
            leaf = self._host_count // self.hosts_per_leaf
        if not 0 <= leaf < self.leaves:
            raise ValueError(f"no such leaf {leaf} "
                             f"(cluster is full at {self.leaves * self.hosts_per_leaf} hosts)")
        backend = self._new_backend(name, cpu, timings, nic_timings,
                                    bus or PCI_BUS, trace)
        backend.attach(self.leaf_switches[leaf].attach(backend.mac,
                                                       propagation_us=propagation_us))
        if not self.learning:
            self._program_fabric(backend.mac, leaf, self._host_count)
        self._leaf_of_backend[backend] = leaf
        self._host_count += 1
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host

    def _program_fabric(self, mac: int, leaf: int, host_index: int) -> None:
        """Signaling plane: one loop-free path to ``mac`` from everywhere.

        The host's leaf knows it directly (programmed by ``attach``);
        spines point at that leaf; other leaves point at a spine chosen
        per host among the *live* trunks, spreading destinations across
        parallel paths.  Re-run by :meth:`set_trunk_state` — the static
        analogue of MAC re-learning after a topology change.
        """
        self._mac_programs.append((mac, leaf, host_index))
        for spine, switch in enumerate(self.spine_switches):
            switch.program_mac(mac, self._spine_downlink[(spine, leaf)])
        self._program_leaves(mac, leaf, host_index)

    def _program_leaves(self, mac: int, leaf: int, host_index: int) -> None:
        topo = self.topology
        for other, switch in enumerate(self.leaf_switches):
            if other == leaf:
                continue
            candidates = [s for s in range(self.spines)
                          if topo.trunk_up(other, self.leaves + s)
                          and topo.trunk_up(leaf, self.leaves + s)]
            if not candidates:
                # partitioned pair: leave the stale entry; frames die in
                # the blackholed trunk until a path returns
                continue
            via = candidates[host_index % len(candidates)]
            previous = self._via.get((mac, other))
            if previous != via:
                switch.program_mac(mac, self._leaf_uplink[(other, via)])
                self._via[(mac, other)] = via
                if previous is not None:
                    self.reroutes += 1

    # ------------------------------------------------------------ failover
    def set_trunk_state(self, a: int, b: int, up: bool) -> bool:
        """Fail or restore the trunk between topology switches ``a`` and
        ``b`` (one a leaf index, the other ``leaves + spine``).  Both
        simplex trunk channels blackhole in-flight frames while down and
        every destination MAC is re-spread across surviving spines.
        Returns True when the state changed."""
        if not self.topology.set_trunk(a, b, up):
            return False
        leaf, spine = (a, b - self.leaves) if a < self.leaves else (b, a - self.leaves)
        for kind in ("up", "down"):
            key = (kind, leaf, spine)
            channel = self.trunk_channels[key]
            if up:
                saved = self._trunk_saved.pop(key, None)
                if saved is not None:
                    channel.deliver = saved
            elif key not in self._trunk_saved:
                self._trunk_saved[key] = channel.deliver
                channel.deliver = self._blackhole
        for mac, host_leaf, host_index in self._mac_programs:
            self._program_leaves(mac, host_leaf, host_index)
        return True

    def _blackhole(self, frame) -> None:
        self.frames_blackholed += 1

    def backends_reachable(self, backend_a, backend_b) -> bool:
        """Whether a live switch path joins the two attached NICs."""
        leaf_a = self._leaf_of_backend[backend_a]
        leaf_b = self._leaf_of_backend[backend_b]
        return self.topology.connected(leaf_a, leaf_b)

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Duplex channel; refuses (typed) when the leaves are partitioned."""
        leaf_a = self._leaf_of_backend[a.host.backend]
        leaf_b = self._leaf_of_backend[b.host.backend]
        if not self.topology.connected(leaf_a, leaf_b):
            raise NoPathError(
                f"leaves {leaf_a} and {leaf_b} are partitioned",
                src=leaf_a, dst=leaf_b)
        return super().connect(a, b)

    def hops_between(self, a: UserEndpoint, b: UserEndpoint) -> int:
        """Switches a frame between ``a`` and ``b`` traverses (1 or 3)."""
        leaf_a = self._leaf_of_backend[a.host.backend]
        leaf_b = self._leaf_of_backend[b.host.backend]
        return 1 if leaf_a == leaf_b else 3

    @property
    def frames_dropped(self) -> int:
        """Egress overflows fabric-wide (switch ports + trunks)."""
        switches = self.leaf_switches + self.spine_switches
        return (sum(sw.frames_dropped for sw in switches)
                + sum(ch.frames_dropped for ch in self.trunk_channels.values()))


def _sized(model: SwitchModel, needed: int) -> SwitchModel:
    if model.ports >= needed:
        return model
    return replace(model, name=f"{model.name}x{needed}", ports=needed)
