"""Mixed ATM + Fast Ethernet clusters joined by a store-and-forward relay.

The paper measures both substrates in isolation; real machine rooms of
the era ran both at once.  A :class:`MixedFabric` holds an ATM Clos and
an FE Clos side by side and bridges them with a dual-homed relay host:
one U-Net endpoint on each fabric, with a forwarding loop that receives
on one side and re-sends on the other.  Channels within one substrate
are native (no relay hop, no encapsulation — U-Net semantics intact);
cross-substrate channels are transparently spliced through the relay,
which maps the ATM-side channel id to its FE-side twin and back.

The ATM side's PDU limit is capped at the FE PDU so a cross-substrate
message never arrives at the relay too large to forward — the classic
path-MTU rule, applied at channel setup rather than discovered.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.api import Host, UserEndpoint
from ..core.endpoint import EndpointConfig
from ..core.errors import ChannelError
from ..ethernet.frames import UNET_FE_MAX_PDU
from ..hw.cpu import PENTIUM_120, CpuModel
from ..sim import Simulator
from .atm_clos import ClosAtmFabric
from .fe_clos import ClosFeNetwork

__all__ = ["MixedFabric"]

#: relay CPU cost to shuffle one message between its two endpoints
RELAY_FORWARD_US = 5.0

_RELAY_CONFIG = EndpointConfig(
    num_buffers=256, buffer_size=2048, send_queue_depth=128, recv_queue_depth=256
)


class MixedFabric:
    """An ATM Clos plus an FE Clos with a dual-homed relay between them."""

    def __init__(
        self,
        sim: Simulator,
        atm_leaves: int = 2,
        atm_spines: int = 2,
        fe_leaves: int = 2,
        fe_spines: int = 2,
        hosts_per_leaf: int = 8,
        relay_cpu: CpuModel = PENTIUM_120,
        relay_forward_us: float = RELAY_FORWARD_US,
    ) -> None:
        self.sim = sim
        self.atm = ClosAtmFabric(sim, leaves=atm_leaves, spines=atm_spines,
                                 hosts_per_leaf=hosts_per_leaf + 1)
        self.fe = ClosFeNetwork(sim, leaves=fe_leaves, spines=fe_spines,
                                hosts_per_leaf=hosts_per_leaf + 1)
        self.relay_forward_us = relay_forward_us
        self.hosts = []
        self._side_of: Dict[object, str] = {}
        self._host_count = 0
        # the relay: one host (and endpoint) per fabric, spliced below
        self._relay_atm_host = self._attach_atm_host("relay.atm", relay_cpu)
        self._relay_fe_host = self.fe.add_host("relay.fe", relay_cpu)
        self.relay_atm = self._relay_atm_host.create_endpoint(
            config=_RELAY_CONFIG, rx_buffers=128)
        self.relay_fe = self._relay_fe_host.create_endpoint(
            config=_RELAY_CONFIG, rx_buffers=128)
        self._atm_to_fe: Dict[int, int] = {}
        self._fe_to_atm: Dict[int, int] = {}
        self.relayed_messages = 0
        sim.process(self._relay_loop(self.relay_atm, self.relay_fe, self._atm_to_fe),
                    name="relay.atm->fe")
        sim.process(self._relay_loop(self.relay_fe, self.relay_atm, self._fe_to_atm),
                    name="relay.fe->atm")

    def _attach_atm_host(self, name: str, cpu: CpuModel) -> Host:
        host = self.atm.add_host(name, cpu)
        # path-MTU cap: anything an ATM host sends must fit an FE frame
        # once it crosses the relay
        host.backend.max_pdu_cap = UNET_FE_MAX_PDU
        return host

    def add_host(self, name: str, cpu: CpuModel, side: Optional[str] = None) -> Host:
        """Attach a host; sides alternate ATM/FE unless ``side`` is given."""
        if side is None:
            side = "atm" if self._host_count % 2 == 0 else "fe"
        if side == "atm":
            host = self._attach_atm_host(name, cpu)
        elif side == "fe":
            host = self.fe.add_host(name, cpu)
        else:
            raise ValueError(f"unknown side {side!r} (atm, fe)")
        self._side_of[host.backend] = side
        self._host_count += 1
        self.hosts.append(host)
        return host

    def side_of(self, endpoint: UserEndpoint) -> str:
        side = self._side_of.get(endpoint.host.backend)
        if side is None:
            raise ChannelError(f"host {endpoint.host.name} is not on this fabric")
        return side

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Duplex channel; spliced through the relay when sides differ."""
        side_a, side_b = self.side_of(a), self.side_of(b)
        if side_a == side_b:
            network = self.atm if side_a == "atm" else self.fe
            return network.connect(a, b)
        if side_a == "fe":  # normalize: a is the ATM side below
            ch_b, ch_a = self.connect(b, a)
            return ch_a, ch_b
        ch_a, relay_in = self.atm.connect(a, self.relay_atm)
        relay_out, ch_b = self.fe.connect(self.relay_fe, b)
        self._atm_to_fe[relay_in] = relay_out
        self._fe_to_atm[relay_out] = relay_in
        return ch_a, ch_b

    def set_trunk_state(self, side: str, a: int, b: int, up: bool) -> bool:
        """Fail or restore a trunk on one substrate of the mixed fabric.

        Native channels on the touched side re-route exactly as on a
        standalone Clos; spliced cross-substrate channels survive any
        single-side failure that leaves the relay reachable, because each
        leg fails over independently."""
        if side == "atm":
            return self.atm.set_trunk_state(a, b, up)
        if side == "fe":
            return self.fe.set_trunk_state(a, b, up)
        raise ValueError(f"unknown side {side!r} (atm, fe)")

    def backends_reachable(self, backend_a, backend_b) -> bool:
        """Whether a live path (possibly through the relay) joins two hosts."""
        side_a = self._side_of[backend_a]
        side_b = self._side_of[backend_b]
        if side_a == side_b:
            network = self.atm if side_a == "atm" else self.fe
            return network.backends_reachable(backend_a, backend_b)
        atm_backend, fe_backend = ((backend_a, backend_b) if side_a == "atm"
                                   else (backend_b, backend_a))
        return (self.atm.backends_reachable(atm_backend,
                                            self._relay_atm_host.backend)
                and self.fe.backends_reachable(fe_backend,
                                               self._relay_fe_host.backend))

    def _relay_loop(self, src: UserEndpoint, dst: UserEndpoint,
                    mapping: Dict[int, int]):
        while True:
            message = yield from src.recv()
            out_channel = mapping.get(message.channel_id)
            if out_channel is None:
                continue  # not a spliced channel (stray or misdirected)
            yield self.sim.timeout(self.relay_forward_us)
            yield from dst.send(out_channel, message.data)
            self.relayed_messages += 1
