"""A 2-level Clos/fat-tree of ASX-200 ATM switches.

Thin builder over :class:`~repro.atm.fabric.AtmFabric`: the topology
layer contributes the leaf/spine graph and the fabric programs each
virtual circuit hop by hop along one of the ``spines`` parallel paths
(rotated per connection), exactly the "virtual circuits are established
network-wide" property of Section 4.4.3 at fat-tree scale.
"""

from __future__ import annotations

from typing import Optional

from ..atm.fabric import AtmFabric
from ..atm.phy import OC3_SONET, AtmPhy
from ..core.api import Host
from ..hw.cpu import CpuModel
from ..sim import Simulator
from .topology import clos_topology

__all__ = ["ClosAtmFabric"]


class ClosAtmFabric(AtmFabric):
    """Hosts on a leaf/spine ATM fabric with network-wide VCs."""

    def __init__(
        self,
        sim: Simulator,
        leaves: int = 2,
        spines: int = 2,
        hosts_per_leaf: int = 8,
        trunk_phy: AtmPhy = OC3_SONET,
        trunk_propagation_us: float = 2.0,
    ) -> None:
        if hosts_per_leaf < 1:
            raise ValueError("need at least one host per leaf")
        super().__init__(
            sim,
            trunk_phy=trunk_phy,
            trunk_propagation_us=trunk_propagation_us,
            topology=clos_topology(leaves, spines),
        )
        self.hosts_per_leaf = hosts_per_leaf
        self._host_count = 0

    @property
    def leaves(self) -> int:
        return self.topology.leaves

    @property
    def spines(self) -> int:
        return self.topology.spines

    def add_host(self, name: str, cpu: CpuModel, switch: Optional[int] = None,
                 **kwargs) -> Host:
        """Attach a host; defaults to filling leaves left to right.

        ``switch``, when given, must be a leaf index — spines carry only
        trunks.
        """
        if switch is None:
            switch = self._host_count // self.hosts_per_leaf
        if not 0 <= switch < self.leaves:
            raise ValueError(f"no such leaf {switch} "
                             f"(cluster is full at {self.leaves * self.hosts_per_leaf} hosts)")
        self._host_count += 1
        return super().add_host(name, cpu, switch=switch, **kwargs)
