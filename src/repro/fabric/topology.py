"""Declarative switch topologies for multi-stage fabrics.

A :class:`Topology` is a tiny undirected graph over switch indices plus
deterministic path computation.  It generalizes the two shapes the
substrates grew up with — a single switch and a linear chain — into
anything the builders below can describe, most importantly the 2-level
Clos/fat-tree that scale-out clusters use: a row of *leaf* switches
(hosts attach here) fully meshed to a row of *spine* switches, giving
every leaf pair ``spines`` parallel two-hop paths.

Path selection is deterministic: :meth:`Topology.path` enumerates all
shortest paths in lexicographic order and picks one by ``key``-modulo,
so callers spread successive connections across parallel spines simply
by passing an incrementing key — no RNG, fully reproducible.

Trunks carry an up/down state (:meth:`Topology.set_trunk`): path
computation walks only live trunks, so after a spine or trunk failure
``path(src, dst, key)`` transparently re-keys across the survivors.
When no live path remains the typed
:class:`~repro.core.errors.NoPathError` fires — callers distinguish a
partitioned fabric from a programming error.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..core.errors import NoPathError

__all__ = [
    "Topology",
    "linear_topology",
    "clos_topology",
    "leaves_for",
]


class Topology:
    """An undirected graph over switch indices ``0..num_switches-1``."""

    def __init__(self, num_switches: int, trunks: Sequence[Tuple[int, int]],
                 name: str = "topology") -> None:
        if num_switches < 1:
            raise ValueError("need at least one switch")
        self.num_switches = num_switches
        self.name = name
        self.trunks: List[Tuple[int, int]] = []
        self._adj: Dict[int, List[int]] = {i: [] for i in range(num_switches)}
        for a, b in trunks:
            if not (0 <= a < num_switches and 0 <= b < num_switches):
                raise ValueError(f"trunk ({a},{b}) references a missing switch")
            if a == b:
                raise ValueError(f"self-trunk on switch {a}")
            if b in self._adj[a]:
                raise ValueError(f"duplicate trunk ({a},{b})")
            self.trunks.append((a, b))
            self._adj[a].append(b)
            self._adj[b].append(a)
        for neighbours in self._adj.values():
            neighbours.sort()
        self._down: Set[Tuple[int, int]] = set()
        # keyed by (src, dst, limit): a capped result must not satisfy a
        # later query with a larger cap
        self._path_cache: Dict[Tuple[int, int, int], List[List[int]]] = {}

    def neighbours(self, switch: int) -> List[int]:
        return list(self._adj[switch])

    @staticmethod
    def _trunk_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def trunk_up(self, a: int, b: int) -> bool:
        """Whether the (undirected) trunk between ``a`` and ``b`` is live."""
        if b not in self._adj[a]:
            raise ValueError(f"no trunk between switches {a} and {b}")
        return self._trunk_key(a, b) not in self._down

    def set_trunk(self, a: int, b: int, up: bool) -> bool:
        """Mark the trunk between ``a`` and ``b`` up or down.

        Returns True when the state actually changed; a change
        invalidates the shortest-path cache so subsequent ``path``
        calls route around the failure (or rediscover a healed trunk).
        """
        if b not in self._adj[a]:
            raise ValueError(f"no trunk between switches {a} and {b}")
        key = self._trunk_key(a, b)
        changed = (key in self._down) == up
        if changed:
            if up:
                self._down.discard(key)
            else:
                self._down.add(key)
            self._path_cache.clear()
        return changed

    @property
    def down_trunks(self) -> List[Tuple[int, int]]:
        """The currently-failed trunks, sorted (normalized a < b)."""
        return sorted(self._down)

    def _live_neighbours(self, switch: int) -> List[int]:
        if not self._down:
            return self._adj[switch]
        return [n for n in self._adj[switch]
                if self._trunk_key(switch, n) not in self._down]

    def shortest_paths(self, src: int, dst: int, limit: int = 64) -> List[List[int]]:
        """All shortest src→dst switch paths, lexicographic, capped at
        ``limit`` (a Clos has ``spines`` of them; the cap only guards
        pathological hand-built meshes)."""
        if src == dst:
            return [[src]]
        cached = self._path_cache.get((src, dst, limit))
        if cached is not None:
            return cached
        # BFS distance field from dst, then walk strictly downhill from
        # src — every downhill walk is a shortest path.  Only live
        # trunks participate, so failures reshape the path set.
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbour in self._live_neighbours(node):
                    if neighbour not in dist:
                        dist[neighbour] = dist[node] + 1
                        nxt.append(neighbour)
            frontier = nxt
        if src not in dist:
            raise NoPathError(
                f"switches {src} and {dst} are not connected", src=src, dst=dst)
        paths: List[List[int]] = []
        stack: List[Tuple[int, List[int]]] = [(src, [src])]
        while stack and len(paths) < limit:
            node, walked = stack.pop()
            if node == dst:
                paths.append(walked)
                continue
            # reversed push order keeps the pop order lexicographic
            for neighbour in reversed(self._live_neighbours(node)):
                if dist.get(neighbour, -1) == dist[node] - 1:
                    stack.append((neighbour, walked + [neighbour]))
        self._path_cache[(src, dst, limit)] = paths
        return paths

    def path(self, src: int, dst: int, key: int = 0) -> List[int]:
        """One shortest path, spread across parallel choices by ``key``."""
        paths = self.shortest_paths(src, dst)
        return paths[key % len(paths)]

    def hops(self, src: int, dst: int) -> int:
        """Number of switches on a shortest path (1 when src == dst)."""
        return len(self.path(src, dst))

    def connected(self, src: int, dst: int) -> bool:
        """Whether a live path exists (cheap partition probe)."""
        try:
            self.shortest_paths(src, dst, limit=1)
        except NoPathError:
            return False
        return True


def linear_topology(switches: int) -> Topology:
    """The legacy shape: a chain ``0 - 1 - ... - n-1``."""
    return Topology(switches, [(i, i + 1) for i in range(switches - 1)],
                    name=f"chain-{switches}")


def clos_topology(leaves: int, spines: int) -> Topology:
    """A 2-level Clos/fat-tree: switches ``0..leaves-1`` are leaves,
    ``leaves..leaves+spines-1`` are spines, every leaf trunks to every
    spine.  Leaf pairs get ``spines`` parallel 3-switch paths."""
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    trunks = [(leaf, leaves + spine) for leaf in range(leaves) for spine in range(spines)]
    topo = Topology(leaves + spines, trunks, name=f"clos-{leaves}x{spines}")
    topo.leaves = leaves          # type: ignore[attr-defined]
    topo.spines = spines          # type: ignore[attr-defined]
    return topo


def leaves_for(hosts: int, hosts_per_leaf: int) -> int:
    """How many leaf switches a cluster of ``hosts`` needs."""
    if hosts < 1 or hosts_per_leaf < 1:
        raise ValueError("need at least one host and one host per leaf")
    return (hosts + hosts_per_leaf - 1) // hosts_per_leaf
