"""k-ary combining/dissemination trees for NIC-resident collectives.

Yu et al.'s NIC-based collective protocol organizes the nodes of a job
into a k-ary tree: barrier arrivals and reduce contributions *combine*
upward (each NIC waits for its children plus its own host, then sends
one message to its parent), and releases/broadcast payloads *disseminate*
downward.  The tree is the implicit array-heap shape — node ``i``'s
parent is ``(i - 1) // k`` — so every node derives its neighbours from
``(n, fanout)`` alone, with no membership protocol.

Generations are 16-bit and wrap; :func:`gen_after` compares modulo
2**16 with a half-window, so a collective sequence runs forever on a
fixed-width hardware counter.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["KAryTree", "GEN_MOD", "gen_after", "next_gen"]

#: generation counters are 16-bit, as NIC firmware would keep them
GEN_MOD = 1 << 16


def next_gen(gen: int) -> int:
    return (gen + 1) % GEN_MOD


def gen_after(a: int, b: int) -> bool:
    """True when generation ``a`` is newer than ``b`` (modulo wrap)."""
    return 0 < (a - b) % GEN_MOD < GEN_MOD // 2


class KAryTree:
    """The array-heap k-ary tree over nodes ``0..n-1`` rooted at 0."""

    def __init__(self, n: int, fanout: int = 4) -> None:
        if n < 1:
            raise ValueError("tree needs at least one node")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.n = n
        self.fanout = fanout

    @property
    def root(self) -> int:
        return 0

    def parent(self, node: int) -> Optional[int]:
        self._check(node)
        if node == 0:
            return None
        return (node - 1) // self.fanout

    def children(self, node: int) -> List[int]:
        self._check(node)
        first = node * self.fanout + 1
        return [c for c in range(first, min(first + self.fanout, self.n))]

    def depth(self, node: int) -> int:
        """Edges between ``node`` and the root."""
        self._check(node)
        hops = 0
        while node != 0:
            node = (node - 1) // self.fanout
            hops += 1
        return hops

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} outside tree of {self.n}")
