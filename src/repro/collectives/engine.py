"""The NIC-resident collective engine: barrier, broadcast, reduce in firmware.

Host-coordinated collectives (the Split-C runtime's node-0 scheme) pay
the full user-level message path — doorbell, DMA, interrupt or poll,
handler dispatch — at *every* hop of the collective, and serialize N-1
arrivals through one host.  Following the NIC-based collectives line of
work (Yu, Buntinas, Panda), this engine moves the combining and
dissemination onto the network interface itself: each NIC holds a node
of a k-ary tree; arrivals and reduce contributions combine on the
controller and travel up as a single packet per edge; releases,
broadcast payloads and reduce results fan out downward — all without
crossing the I/O bus or interrupting the host except at the local leaf
of the host's own call.

The engine is substrate-independent; an *adapter* binds it to real NIC
hardware (reserved VCIs on the PCA-200's i960, a reserved U-Net port on
the DC21140 — see :mod:`~repro.collectives.adapters`).

Reliability is per-edge stop-and-wait: every protocol packet is ACKed
and retransmitted on a timer, duplicates are suppressed with a
generation window, so collectives survive the fault stages of
``repro.faults`` on trunk links.  Generations are 16-bit and wrap.

Fault tolerance beyond lost packets is *epoch-fenced healing*: when a
peer is declared dead (see :mod:`~repro.collectives.membership`), the
membership layer re-ranks the survivors into a fresh k-ary tree and
calls :meth:`NicCollectiveEngine.install_epoch` on every live engine.
Every packet carries the installing epoch; stale-epoch traffic is
fenced at ingress, pending upward state is re-driven through the new
parent, and recently-completed releases/results/broadcast payloads are
re-pushed along the new edges so no survivor waits forever on a node
that already finished (or died).  The generation windows keep delivery
to the host exactly-once throughout.  When survivors are *partitioned*
rather than bereaved, every pending collective fails with the typed
:class:`CollectiveAborted` on every member — all-or-nothing, never a
hang.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..core.errors import UNetError
from ..sim import Simulator
from .tree import GEN_MOD, KAryTree, gen_after, next_gen

__all__ = [
    "CollectiveConfig",
    "CollectiveError",
    "CollectiveAborted",
    "NicCollectiveEngine",
    "REDUCE_OPS",
    "REDUCE_DTYPES",
]

#: packet kinds on the wire
ARRIVE = 1     # barrier: subtree fully arrived (combined upward)
RELEASE = 2    # barrier: root says go (disseminated downward)
BCAST = 3      # broadcast payload (downward)
REDUCE_UP = 4  # combined subtree contribution (upward)
RESULT = 5     # reduce result (downward)
ACK = 6        # per-edge acknowledgement (meta carries the acked kind)

#: kind(1) meta(1) generation(2) source-node(2) epoch(1), then the payload
_HEADER = struct.Struct("!BBHHB")

#: tree epochs are one wire byte and wrap; equality-compared only, so
#: wrap is safe as long as 256 heals don't race one packet's flight
EPOCH_MOD = 1 << 8

#: completed releases / results / broadcast payloads kept for re-pushing
#: along new edges after a heal (greater than any realistic in-flight depth)
_REPAIR_CACHE = 32

REDUCE_OPS = ("sum", "max", "min")
#: numpy dtype characters the one-byte meta field can carry
REDUCE_DTYPES = "bBhHiIqQfd"


def reduce_wire_dtype(dtype) -> Optional[str]:
    """The wire dtype character for ``dtype``, or None if unsupported.

    Numpy spells the same layout differently across platforms (int64 is
    ``'l'`` on LP64 Linux, ``'q'`` elsewhere); the wire format carries an
    index into :data:`REDUCE_DTYPES`, so aliases are canonicalized by
    layout equality here."""
    import numpy as np

    try:
        dt = np.dtype(dtype)
    except TypeError:
        return None
    if dt.char in REDUCE_DTYPES:
        return dt.char
    for char in REDUCE_DTYPES:
        if np.dtype(char) == dt:
            return char
    return None


class CollectiveError(UNetError):
    """A collective operation was misused or could not complete."""


class CollectiveAborted(CollectiveError):
    """The collective group aborted: the surviving members are
    partitioned (or liveness evidence is undecidable) and no tree over
    them can complete.  Raised at every member's pending call within a
    bounded time — all-or-nothing across survivors, never a hang."""

    def __init__(self, message: str = "collective aborted", *,
                 epoch: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch


@dataclass
class CollectiveConfig:
    """Engine knobs (one per node; all nodes should agree)."""

    #: host -> NIC descriptor store announcing a collective op
    doorbell_us: float = 0.5
    #: per-edge retransmit timer
    rto_us: float = 2000.0
    #: give up (loudly) after this many retransmits of one packet
    max_retries: int = 50
    #: suspect the peer to the membership layer after this many
    #: retransmits (liveness timeout = liveness_retries * rto_us)
    liveness_retries: int = 8


class _GenWindow:
    """Dedup window over wrapping 16-bit generations.

    ``floor`` plus a sparse set of generations ahead of it: everything at
    or below the floor has been seen, the set holds out-of-order arrivals
    until the floor catches up.  O(in-flight) memory, survives wrap.
    """

    __slots__ = ("floor", "ahead")

    def __init__(self) -> None:
        self.floor = GEN_MOD - 1  # i.e. "generation -1": nothing seen
        self.ahead: Set[int] = set()

    def seen(self, gen: int) -> bool:
        return not gen_after(gen, self.floor) or gen in self.ahead

    def add(self, gen: int) -> bool:
        """Record ``gen``; False if it was already in the window."""
        if self.seen(gen):
            return False
        self.ahead.add(gen)
        while next_gen(self.floor) in self.ahead:
            self.floor = next_gen(self.floor)
            self.ahead.discard(self.floor)
        return True


class _BarrierState:
    __slots__ = ("arrived", "event", "sent_up")

    def __init__(self) -> None:
        self.arrived: Set[int] = set()
        self.event = None
        self.sent_up = False


class _ReduceState:
    __slots__ = ("contrib", "op", "dtype", "event", "sent_up")

    def __init__(self) -> None:
        self.contrib: Dict[int, bytes] = {}
        self.op: Optional[str] = None
        self.dtype: Optional[str] = None
        self.event = None
        self.sent_up = False


def _combine(contrib: Dict[int, bytes], op: str, dtype: str) -> bytes:
    """Elementwise reduction over the contributions, sorted by node id.

    The sort makes the result a pure function of the *set* of
    contributions — independent of arrival order — which is what the
    property tests pin down (and, for floats, keeps it bit-exact).
    """
    import numpy as np

    arrays = []
    length = None
    for node in sorted(contrib):
        array = np.frombuffer(contrib[node], dtype=np.dtype(dtype))
        if length is None:
            length = array.shape[0]
        elif array.shape[0] != length:
            raise CollectiveError(
                f"reduce contributions disagree on length ({array.shape[0]} vs {length})"
            )
        arrays.append(array)
    out = arrays[0].copy()
    fn = {"sum": np.add, "max": np.maximum, "min": np.minimum}[op]
    for array in arrays[1:]:
        fn(out, array, out=out)
    return out.tobytes()


class NicCollectiveEngine:
    """One node's collective engine, resident on its NIC.

    The host-facing generators (:meth:`barrier`, :meth:`broadcast`,
    :meth:`allreduce`) charge one doorbell and then sleep on a simulation
    event; everything else runs in NIC firmware via the adapter.
    """

    def __init__(
        self,
        sim: Simulator,
        node: int,
        tree: KAryTree,
        adapter,
        config: Optional[CollectiveConfig] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.tree = tree
        self.adapter = adapter
        self.config = config or CollectiveConfig()
        self.parent = tree.parent(node)
        self.children = tree.children(node)
        # barrier
        self._barrier_gen = 0
        self._barrier_state: Dict[int, _BarrierState] = {}
        self._release_win = _GenWindow()
        # broadcast
        self._bcast_gen = 0
        self._bcast_win = _GenWindow()
        self._bcast_waiting: Dict[int, object] = {}
        self._bcast_payloads: Dict[int, bytes] = {}
        # reduce
        self._reduce_gen = 0
        self._reduce_state: Dict[int, _ReduceState] = {}
        self._reduce_up_win = _GenWindow()
        self._result_win = _GenWindow()
        # per-edge reliability: (peer, kind, gen) -> [packet, attempts]
        self._unacked: Dict[Tuple[int, int, int], List] = {}
        # fault tolerance: current tree epoch, liveness, repair caches
        self.epoch = 0
        self.crashed = False
        #: the membership layer (a CollectiveGroup), if any is attached
        self.group = None
        self._abort_exc: Optional[CollectiveAborted] = None
        self._suspected: Set[int] = set()
        #: recently released barrier generations (dict used as ordered set)
        self._release_cache: Dict[int, None] = {}
        #: recently delivered reduce results / broadcast payloads, by gen
        self._result_cache: Dict[int, bytes] = {}
        self._bcast_cache: Dict[int, bytes] = {}
        # statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmissions = 0
        self.barriers_completed = 0
        self.broadcasts_completed = 0
        self.reduces_completed = 0
        self.stale_epoch_drops = 0
        self.epochs_installed = 0
        self.aborts = 0

    @property
    def max_data(self) -> int:
        """Largest broadcast/reduce payload one packet carries."""
        return self.adapter.max_payload - _HEADER.size

    def _check_usable(self) -> None:
        if self.crashed:
            raise CollectiveError(f"node {self.node}: NIC has crashed")
        if self._abort_exc is not None:
            raise self._abort_exc

    # ------------------------------------------------------- host interface
    def barrier(self) -> Generator:
        """Host side of one barrier; completes when the root released it."""
        self._check_usable()
        yield self.sim.timeout(self.config.doorbell_us)
        self._check_usable()
        gen = self._barrier_gen
        self._barrier_gen = next_gen(gen)
        state = self._barrier_state.setdefault(gen, _BarrierState())
        state.event = self.sim.event(name=f"barrier.{self.node}.{gen}")
        state.arrived.add(self.node)
        if self._release_win.seen(gen):
            # theoretical straggler path: released before we asked
            self._barrier_state.pop(gen, None)
            state.event.succeed()
        else:
            self._barrier_try(gen)
        yield state.event
        self.barriers_completed += 1

    def broadcast(self, data: Optional[bytes] = None) -> Generator:
        """Host side of one broadcast; returns the payload everywhere."""
        self._check_usable()
        yield self.sim.timeout(self.config.doorbell_us)
        self._check_usable()
        gen = self._bcast_gen
        self._bcast_gen = next_gen(gen)
        if self.parent is None:
            if data is None:
                raise CollectiveError("broadcast root must supply the data")
            payload = bytes(data)
            self._check_size(payload)
            self._bcast_win.add(gen)
            self._cache_put(self._bcast_cache, gen, payload)
            for child in self.children:
                self._send_reliable(child, BCAST, gen, 0, payload)
            self.broadcasts_completed += 1
            return payload
        stashed = self._bcast_payloads.pop(gen, None)
        if stashed is None:
            event = self.sim.event(name=f"bcast.{self.node}.{gen}")
            self._bcast_waiting[gen] = event
            stashed = yield event
        self.broadcasts_completed += 1
        return stashed

    def allreduce(self, data: bytes, op: str = "sum", dtype: str = "i") -> Generator:
        """Host side of one allreduce; returns the combined payload."""
        self._check_usable()
        yield self.sim.timeout(self.config.doorbell_us)
        self._check_usable()
        if op not in REDUCE_OPS:
            raise CollectiveError(f"unknown reduce op {op!r} (use {REDUCE_OPS})")
        wire_dtype = reduce_wire_dtype(dtype)
        if wire_dtype is None:
            raise CollectiveError(f"unsupported reduce dtype {dtype!r}")
        dtype = wire_dtype
        payload = bytes(data)
        self._check_size(payload)
        gen = self._reduce_gen
        self._reduce_gen = next_gen(gen)
        state = self._reduce_state.setdefault(gen, _ReduceState())
        state.op, state.dtype = op, dtype
        state.contrib[self.node] = payload
        state.event = self.sim.event(name=f"reduce.{self.node}.{gen}")
        self._reduce_try(gen)
        result = yield state.event
        self.reduces_completed += 1
        return result

    def _check_size(self, payload: bytes) -> None:
        if len(payload) > self.max_data:
            raise CollectiveError(
                f"collective payload of {len(payload)} bytes exceeds the "
                f"engine limit of {self.max_data}"
            )

    # --------------------------------------------------- firmware: dispatch
    def on_packet(self, raw: bytes) -> None:
        """Adapter ingress: one collective packet arrived at this NIC."""
        if self.crashed:
            return  # a dead NIC neither receives nor acks
        kind, meta, gen, src, epoch = _HEADER.unpack_from(raw)
        payload = raw[_HEADER.size:]
        self.packets_received += 1
        if epoch != self.epoch:
            # fenced: traffic from before (or racing) a heal; the sender
            # either re-drives under the new epoch or is dead
            self.stale_epoch_drops += 1
            return
        if kind == ACK:
            self._unacked.pop((src, meta, gen), None)
            return
        # every data packet is acked, even duplicates (the dup means our
        # previous ack was lost or is still in flight)
        self._xmit(src, _HEADER.pack(ACK, kind, gen, self.node, self.epoch))
        if kind == ARRIVE:
            self._on_arrive(gen, src)
        elif kind == RELEASE:
            self._barrier_release(gen)
        elif kind == BCAST:
            self._on_bcast(gen, payload)
        elif kind == REDUCE_UP:
            self._on_reduce_up(gen, src, meta, payload)
        elif kind == RESULT:
            self._deliver_result(gen, payload)
        else:
            raise CollectiveError(f"node {self.node}: unknown packet kind {kind}")

    # ---------------------------------------------------- firmware: barrier
    def _on_arrive(self, gen: int, src: int) -> None:
        if self._release_win.seen(gen):
            # already released: either a stale retransmit, or an orphan
            # adopted by a heal re-driving a generation we finished —
            # answer it directly so the orphan never waits on history
            self._send_reliable(src, RELEASE, gen, 0, b"")
            return
        state = self._barrier_state.setdefault(gen, _BarrierState())
        state.arrived.add(src)
        self._barrier_try(gen)

    def _barrier_try(self, gen: int) -> None:
        state = self._barrier_state.get(gen)
        if state is None or self.node not in state.arrived:
            return
        if any(child not in state.arrived for child in self.children):
            return
        if self.parent is None:
            self._barrier_release(gen)
        elif not state.sent_up:
            state.sent_up = True
            self._send_reliable(self.parent, ARRIVE, gen, 0, b"")

    def _barrier_release(self, gen: int) -> None:
        if not self._release_win.add(gen):
            return  # duplicate release
        self._cache_put(self._release_cache, gen, None)
        for child in self.children:
            self._send_reliable(child, RELEASE, gen, 0, b"")
        state = self._barrier_state.pop(gen, None)
        if state is not None and state.event is not None:
            state.event.succeed()

    # -------------------------------------------------- firmware: broadcast
    def _on_bcast(self, gen: int, payload: bytes) -> None:
        if not self._bcast_win.add(gen):
            return  # duplicate: delivered (at most) once to the host
        self._cache_put(self._bcast_cache, gen, payload)
        for child in self.children:
            self._send_reliable(child, BCAST, gen, 0, payload)
        event = self._bcast_waiting.pop(gen, None)
        if event is not None:
            event.succeed(payload)
        else:
            self._bcast_payloads[gen] = payload

    # ----------------------------------------------------- firmware: reduce
    def _on_reduce_up(self, gen: int, src: int, meta: int, payload: bytes) -> None:
        if self._result_win.seen(gen):
            # result already out: a stale retransmit, or an orphan a heal
            # re-parented under us re-offering a finished generation —
            # answer with the cached result so it completes
            cached = self._result_cache.get(gen)
            if cached is not None:
                self._send_reliable(src, RESULT, gen, 0, cached)
            return
        state = self._reduce_state.setdefault(gen, _ReduceState())
        if state.op is None:
            state.op = REDUCE_OPS[meta & 0x3]
            state.dtype = REDUCE_DTYPES[meta >> 2]
        state.contrib[src] = payload
        self._reduce_try(gen)

    def _reduce_try(self, gen: int) -> None:
        state = self._reduce_state.get(gen)
        if state is None or state.sent_up or self.node not in state.contrib:
            return
        if any(child not in state.contrib for child in self.children):
            return
        combined = _combine(state.contrib, state.op, state.dtype)
        if self.parent is None:
            self._deliver_result(gen, combined)
        else:
            meta = REDUCE_OPS.index(state.op) | (REDUCE_DTYPES.index(state.dtype) << 2)
            state.sent_up = True
            self._reduce_up_win.add(gen)
            self._send_reliable(self.parent, REDUCE_UP, gen, meta, combined)

    def _deliver_result(self, gen: int, payload: bytes) -> None:
        if not self._result_win.add(gen):
            return  # duplicate result
        self._cache_put(self._result_cache, gen, payload)
        for child in self.children:
            self._send_reliable(child, RESULT, gen, 0, payload)
        state = self._reduce_state.pop(gen, None)
        if state is not None and state.event is not None:
            state.event.succeed(payload)

    # ----------------------------------------------- per-edge reliability
    def _send_reliable(self, peer: int, kind: int, gen: int, meta: int,
                       payload: bytes) -> None:
        key = (peer, kind, gen)
        packet = _HEADER.pack(kind, meta, gen, self.node, self.epoch) + payload
        self._unacked[key] = [packet, 0]
        self._xmit(peer, packet)
        self.sim.call_in(self.config.rto_us, self._retransmit, key)

    def _retransmit(self, key: Tuple[int, int, int]) -> None:
        if self.crashed:
            return
        entry = self._unacked.get(key)
        if entry is None:
            return  # acked in the meantime
        entry[1] += 1
        peer = key[0]
        if self.group is not None:
            if entry[1] >= self.config.liveness_retries and peer not in self._suspected:
                # liveness timeout: hand the evidence to the membership
                # layer, which heals (peer dead), aborts (partitioned),
                # or lets us keep retrying (transient, reroute coming)
                self._suspected.add(peer)
                self.group.suspect(self.node, peer)
                if self._unacked.get(key) is not entry:
                    return  # the heal/abort already rewired this edge
            if entry[1] > self.config.max_retries:
                # last resort against an undiagnosed black hole: force
                # the membership decision rather than retry forever
                self.group.suspect(self.node, peer, exhausted=True)
                return
        elif entry[1] > self.config.max_retries:
            raise CollectiveError(
                f"node {self.node}: no ACK from node {peer} for kind {key[1]} "
                f"generation {key[2]} after {self.config.max_retries} retransmits"
            )
        self.retransmissions += 1
        self._xmit(peer, entry[0])
        self.sim.call_in(self.config.rto_us, self._retransmit, key)

    def _xmit(self, peer: int, packet: bytes) -> None:
        self.packets_sent += 1
        self.adapter.send(peer, packet)

    @staticmethod
    def _cache_put(cache: Dict[int, object], gen: int, value) -> None:
        cache[gen] = value
        while len(cache) > _REPAIR_CACHE:
            cache.pop(next(iter(cache)))

    # ------------------------------------------------- faults and healing
    def crash(self) -> None:
        """SIGKILL analogue: the NIC goes silent — no ingress, no acks,
        no retransmissions.  Pending host calls never complete (the host
        died with the NIC); survivors heal around this node."""
        self.crashed = True
        self._unacked.clear()

    def install_epoch(self, epoch: int, members: List[int]) -> None:
        """Adopt the healed tree over ``members`` (sorted live nodes).

        The membership layer calls this on every survivor at the same
        instant.  Survivors keep their relative order and re-rank into a
        fresh k-ary heap; all in-flight reliability state is dropped
        (stale-epoch traffic is fenced at every receiver) and pending
        work is *re-driven*:

        * pending barriers and reduces forget everything except this
          node's own arrival/contribution, then re-run — contributions
          combined under the old tree may include dead or re-parented
          subtrees, so they cannot be trusted (keeping them is exactly
          the double-delivery bug the ``heal-reroot`` conformance preset
          injects);
        * recently completed releases, results and broadcast payloads
          are re-pushed along every current edge — a survivor that
          already finished a generation answers for it instead of going
          silent, so no re-parented orphan waits forever (the dedup
          windows make the re-push at-most-once at every host).
        """
        self.epoch = epoch % EPOCH_MOD
        self.epochs_installed += 1
        rank = {node: i for i, node in enumerate(members)}
        me = rank[self.node]
        shadow = KAryTree(len(members), fanout=self.tree.fanout)
        parent_rank = shadow.parent(me)
        self.parent = None if parent_rank is None else members[parent_rank]
        self.children = [members[c] for c in shadow.children(me)]
        self._unacked.clear()
        self._suspected.clear()
        for gen, state in sorted(self._barrier_state.items()):
            state.arrived &= {self.node}
            state.sent_up = False
            self._barrier_try(gen)
        for gen, state in sorted(self._reduce_state.items()):
            own = state.contrib.get(self.node)
            state.contrib = {} if own is None else {self.node: own}
            state.sent_up = False
            self._reduce_try(gen)
        repairs = [(RELEASE, gen, b"") for gen in self._release_cache]
        repairs += [(RESULT, gen, payload)
                    for gen, payload in self._result_cache.items()]
        repairs += [(BCAST, gen, payload)
                    for gen, payload in self._bcast_cache.items()]
        neighbours = list(self.children)
        if self.parent is not None:
            neighbours.append(self.parent)
        for peer in neighbours:
            for kind, gen, payload in repairs:
                self._send_reliable(peer, kind, gen, 0, payload)

    def abort_all(self, exc: Optional[CollectiveAborted] = None) -> None:
        """Fail every pending collective with :class:`CollectiveAborted`
        and refuse new ones until :meth:`resume` — the all-or-nothing
        arm of the heal-vs-abort decision."""
        if exc is None:
            exc = CollectiveAborted(epoch=self.epoch)
        self._abort_exc = exc
        self.aborts += 1
        self._unacked.clear()
        self._suspected.clear()
        for state in self._barrier_state.values():
            if state.event is not None and not state.event.triggered:
                state.event.fail(exc)
        self._barrier_state.clear()
        for event in self._bcast_waiting.values():
            if not event.triggered:
                event.fail(exc)
        self._bcast_waiting.clear()
        for state in self._reduce_state.values():
            if state.event is not None and not state.event.triggered:
                state.event.fail(exc)
        self._reduce_state.clear()

    def resume(self, barrier_gen: int, bcast_gen: int, reduce_gen: int) -> None:
        """Clear an abort once the fabric healed; generation counters are
        re-synced by the membership layer (aborts land between calls on
        different members, so counters drift by one)."""
        self._abort_exc = None
        self._barrier_gen = barrier_gen
        self._bcast_gen = bcast_gen
        self._reduce_gen = reduce_gen
