"""Membership and tree healing for NIC-resident collectives.

The engines of :mod:`~repro.collectives.engine` detect *silence* (a
peer that stops acking); this layer turns silence into a decision, the
way the cluster health plane of ``repro.core`` turns missed heartbeats
into quarantine:

* **peer dead** (its NIC crashed, per the liveness evidence callback) —
  *heal*: re-rank the survivors into a fresh k-ary tree, wire any
  missing edges through the fabric's signaling plane, bump the epoch
  and install it on every survivor in the same instant.  Collectives in
  flight complete over the new tree; generation windows keep host
  delivery exactly-once.
* **peer alive but unreachable** (the fabric is partitioned, per the
  reachability callback) — *abort*: no tree over the members can
  complete, so every live engine fails its pending operations with
  :class:`~repro.collectives.engine.CollectiveAborted` at once.
  All-or-nothing, bounded time, never a hang.
* **neither** — transient loss; the per-edge retransmit timer keeps
  trying while the fabric re-routes underneath.

After the fabric heals, :meth:`CollectiveGroup.resume` re-syncs the
survivors' generation counters (an abort lands between calls on
different members, so counters drift by one) and re-opens the group.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..core.errors import NoPathError
from .engine import CollectiveAborted, NicCollectiveEngine
from .tree import KAryTree, gen_after

__all__ = ["CollectiveGroup"]

#: control-plane convergence: evidence-to-install delay for one heal
HEAL_DELAY_US = 100.0


class CollectiveGroup:
    """Membership authority over one set of collective engines.

    ``is_dead(node)`` supplies liveness evidence (defaults to the
    engine's own crash flag; the cluster health plane's incarnation
    evidence plugs in here), ``reachable(i, j)`` supplies fabric
    reachability (defaults to always-true), and ``wire_edge(i, j)``
    creates a missing tree edge through the fabric's signaling plane
    (defaults to a no-op for substrates whose adapters address every
    peer already, like FE MACs).
    """

    def __init__(
        self,
        sim,
        engines: Sequence[NicCollectiveEngine],
        *,
        is_dead: Optional[Callable[[int], bool]] = None,
        reachable: Optional[Callable[[int, int], bool]] = None,
        wire_edge: Optional[Callable[[int, int], None]] = None,
        heal_delay_us: float = HEAL_DELAY_US,
    ) -> None:
        self.sim = sim
        self.engines = list(engines)
        self._is_dead = is_dead or (lambda node: self.engines[node].crashed)
        self._reachable = reachable or (lambda a, b: True)
        self._wire_edge = wire_edge
        self.heal_delay_us = heal_delay_us
        self.epoch = 0
        self.dead: Set[int] = set()
        self.aborted = False
        self._heal_pending = False
        for engine in self.engines:
            engine.group = self
        # history for recovery-time accounting
        self.heals: List[Tuple[float, int, Tuple[int, ...]]] = []
        self.abort_times: List[float] = []

    # ------------------------------------------------------------ evidence
    def live(self) -> List[int]:
        return [e.node for e in self.engines
                if e.node not in self.dead and not self._is_dead(e.node)]

    def suspect(self, reporter: int, peer: int, exhausted: bool = False) -> None:
        """An engine's liveness timer fired for ``peer``.  Decide."""
        if self.aborted:
            return
        if peer in self.dead:
            return  # already healed around; stale suspicion
        if self._is_dead(peer):
            if not self._heal_pending:
                self._heal_pending = True
                self.sim.call_in(self.heal_delay_us, self._heal)
            return
        if not self._reachable(reporter, peer) or self._split():
            self._abort(f"nodes {reporter} and {peer} are partitioned")
        elif exhausted:
            # reachable, alive, yet silent past every retry budget: the
            # evidence is undecidable — abort rather than hang
            self._abort(f"node {peer} unresponsive to node {reporter} "
                        f"past the retry budget")

    def _split(self) -> bool:
        """Whether the live members span more than one fabric component."""
        live = self.live()
        if len(live) < 2:
            return False
        seen = {live[0]}
        frontier = [live[0]]
        while frontier:
            here = frontier.pop()
            for other in live:
                if other not in seen and self._reachable(here, other):
                    seen.add(other)
                    frontier.append(other)
        return len(seen) < len(live)

    # ------------------------------------------------------------- healing
    def _heal(self) -> None:
        self._heal_pending = False
        if self.aborted:
            return
        newly_dead = {e.node for e in self.engines
                      if e.node not in self.dead and self._is_dead(e.node)}
        if not newly_dead:
            return
        self.dead |= newly_dead
        live = self.live()
        if not live:
            return
        if self._split():
            self._abort("survivors are partitioned")
            return
        try:
            self._install(live)
        except NoPathError:
            self._abort("no fabric path for the healed tree")

    def _install(self, live: List[int]) -> None:
        """Wire the re-ranked tree's missing edges, then fence the epoch."""
        self.epoch += 1
        shadow = KAryTree(len(live), fanout=self.engines[0].tree.fanout)
        if self._wire_edge is not None:
            for child_rank in range(1, len(live)):
                parent_rank = shadow.parent(child_rank)
                self._wire_edge(live[parent_rank], live[child_rank])
        for node in live:
            self.engines[node].install_epoch(self.epoch, live)
        self.heals.append((self.sim.now, self.epoch, tuple(sorted(self.dead))))

    # ------------------------------------------------------------ aborting
    def _abort(self, reason: str) -> None:
        self.aborted = True
        self.abort_times.append(self.sim.now)
        for engine in self.engines:
            if not engine.crashed:
                engine.abort_all(CollectiveAborted(
                    f"collective aborted: {reason}", epoch=self.epoch))

    def resume(self) -> List[int]:
        """Re-open the group once the fabric healed (still refusing if it
        hasn't): re-sync generation counters across survivors, install a
        fresh epoch, return the live members."""
        live = self.live()
        if self._split():
            raise CollectiveAborted("cannot resume: still partitioned",
                                    epoch=self.epoch)
        engines = [self.engines[n] for n in live]
        barrier_gen = _max_gen(e._barrier_gen for e in engines)
        bcast_gen = _max_gen(e._bcast_gen for e in engines)
        reduce_gen = _max_gen(e._reduce_gen for e in engines)
        self.aborted = False
        for engine in engines:
            engine.resume(barrier_gen, bcast_gen, reduce_gen)
        self._install(live)
        return live


def _max_gen(gens) -> int:
    """The newest generation under wrapping 16-bit comparison."""
    best = None
    for gen in gens:
        if best is None or gen_after(gen, best):
            best = gen
    return best or 0
