"""Bind the collective engine to real NIC hardware, per substrate.

* **ATM** — each tree edge gets a duplex VC programmed fabric-wide
  (:meth:`AtmFabric.connect_collective`), but the VCIs are *not*
  demultiplexed to any endpoint: the PCA-200's i960 consumes them in
  firmware (:meth:`UNetAtmBackend.register_collective_vci`) and
  originates replies itself (:meth:`UNetAtmBackend.send_collective`).
* **Fast Ethernet** — collective packets ride frames on the reserved
  U-Net port :data:`~repro.ethernet.frames.COLLECTIVE_PORT`, addressed
  by peer MAC; the (hypothetical) on-controller engine of the DC21140
  consumes and originates them without touching host memory.

``wire_atm_collectives`` / ``wire_fe_collectives`` build one engine per
host over a shared k-ary tree and return them in node order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ethernet.frames import UNET_FE_MAX_PDU
from .engine import CollectiveConfig, NicCollectiveEngine
from .membership import CollectiveGroup
from .tree import KAryTree

__all__ = [
    "AtmCollectiveAdapter",
    "FeCollectiveAdapter",
    "wire_atm_collectives",
    "wire_fe_collectives",
]

#: cap on one ATM collective packet (a few dozen cells; plenty for
#: barriers and small reduce vectors, bounded so firmware buffering is)
ATM_COLLECTIVE_MAX_PACKET = 4096


class AtmCollectiveAdapter:
    """Sends collective packets over per-edge reserved VCIs."""

    max_payload = ATM_COLLECTIVE_MAX_PACKET

    def __init__(self, backend) -> None:
        self.backend = backend
        #: peer node -> VCI whose route leads to that peer
        self.tx_vci: Dict[int, int] = {}

    def send(self, peer: int, packet: bytes) -> None:
        self.backend.send_collective(self.tx_vci[peer], packet)


class FeCollectiveAdapter:
    """Sends collective packets as frames on the reserved U-Net port."""

    max_payload = UNET_FE_MAX_PDU

    def __init__(self, backend) -> None:
        self.backend = backend
        #: peer node -> that peer's MAC address
        self.peer_mac: Dict[int, int] = {}

    def send(self, peer: int, packet: bytes) -> None:
        self.backend.send_collective(self.peer_mac[peer], packet)


def wire_atm_collectives(
    fabric,
    hosts: Sequence,
    fanout: int = 4,
    config: Optional[CollectiveConfig] = None,
    healing: bool = False,
):
    """One engine per host; tree edges become fabric-routed VCs.

    With ``healing=True`` returns ``(engines, group)``: a
    :class:`~repro.collectives.membership.CollectiveGroup` owns the
    engines, fed by the fabric's reachability and a lazy edge-wiring
    callback that signals fresh VCs for edges a heal creates.
    """
    tree = KAryTree(len(hosts), fanout=fanout)
    sim = fabric.sim
    adapters = [AtmCollectiveAdapter(host.backend) for host in hosts]
    engines = [
        NicCollectiveEngine(sim, node, tree, adapters[node], config)
        for node in range(len(hosts))
    ]

    def wire_edge(i: int, j: int) -> None:
        if j in adapters[i].tx_vci:
            return
        vci_ij, vci_ji = fabric.connect_collective(hosts[i].backend,
                                                   hosts[j].backend)
        adapters[i].tx_vci[j] = vci_ij
        adapters[j].tx_vci[i] = vci_ji
        hosts[j].backend.register_collective_vci(vci_ij, engines[j].on_packet)
        hosts[i].backend.register_collective_vci(vci_ji, engines[i].on_packet)

    for child in range(1, len(hosts)):
        wire_edge(tree.parent(child), child)
    if not healing:
        return engines
    group = CollectiveGroup(
        sim, engines, wire_edge=wire_edge,
        reachable=_reachability(fabric, hosts))
    return engines, group


def _reachability(network, hosts: Sequence):
    """Node-indexed reachability over the fabric, if it tracks any."""
    probe = getattr(network, "backends_reachable", None)
    if probe is None:
        return None
    return lambda i, j: probe(hosts[i].backend, hosts[j].backend)


def wire_fe_collectives(
    network,
    hosts: Sequence,
    fanout: int = 4,
    config: Optional[CollectiveConfig] = None,
    healing: bool = False,
):
    """One engine per host; tree edges address peers by MAC.

    With ``healing=True`` returns ``(engines, group)``; MACs are flat
    addresses, so every pair is pre-addressed and heals need no edge
    wiring — only the fabric's reachability feeds the group.
    """
    tree = KAryTree(len(hosts), fanout=fanout)
    sim = network.sim
    adapters = [FeCollectiveAdapter(host.backend) for host in hosts]
    engines = [
        NicCollectiveEngine(sim, node, tree, adapters[node], config)
        for node in range(len(hosts))
    ]
    for node, host in enumerate(hosts):
        host.backend.register_collective(engines[node].on_packet)
    if healing:
        # a healed tree can join any pair: pre-address the full mesh
        for a in range(len(hosts)):
            for b in range(len(hosts)):
                if a != b:
                    adapters[a].peer_mac[b] = hosts[b].backend.mac
        group = CollectiveGroup(sim, engines,
                                reachable=_reachability(network, hosts))
        return engines, group
    for child in range(1, len(hosts)):
        parent = tree.parent(child)
        adapters[parent].peer_mac[child] = hosts[child].backend.mac
        adapters[child].peer_mac[parent] = hosts[parent].backend.mac
    return engines
