"""Bind the collective engine to real NIC hardware, per substrate.

* **ATM** — each tree edge gets a duplex VC programmed fabric-wide
  (:meth:`AtmFabric.connect_collective`), but the VCIs are *not*
  demultiplexed to any endpoint: the PCA-200's i960 consumes them in
  firmware (:meth:`UNetAtmBackend.register_collective_vci`) and
  originates replies itself (:meth:`UNetAtmBackend.send_collective`).
* **Fast Ethernet** — collective packets ride frames on the reserved
  U-Net port :data:`~repro.ethernet.frames.COLLECTIVE_PORT`, addressed
  by peer MAC; the (hypothetical) on-controller engine of the DC21140
  consumes and originates them without touching host memory.

``wire_atm_collectives`` / ``wire_fe_collectives`` build one engine per
host over a shared k-ary tree and return them in node order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ethernet.frames import UNET_FE_MAX_PDU
from .engine import CollectiveConfig, NicCollectiveEngine
from .tree import KAryTree

__all__ = [
    "AtmCollectiveAdapter",
    "FeCollectiveAdapter",
    "wire_atm_collectives",
    "wire_fe_collectives",
]

#: cap on one ATM collective packet (a few dozen cells; plenty for
#: barriers and small reduce vectors, bounded so firmware buffering is)
ATM_COLLECTIVE_MAX_PACKET = 4096


class AtmCollectiveAdapter:
    """Sends collective packets over per-edge reserved VCIs."""

    max_payload = ATM_COLLECTIVE_MAX_PACKET

    def __init__(self, backend) -> None:
        self.backend = backend
        #: peer node -> VCI whose route leads to that peer
        self.tx_vci: Dict[int, int] = {}

    def send(self, peer: int, packet: bytes) -> None:
        self.backend.send_collective(self.tx_vci[peer], packet)


class FeCollectiveAdapter:
    """Sends collective packets as frames on the reserved U-Net port."""

    max_payload = UNET_FE_MAX_PDU

    def __init__(self, backend) -> None:
        self.backend = backend
        #: peer node -> that peer's MAC address
        self.peer_mac: Dict[int, int] = {}

    def send(self, peer: int, packet: bytes) -> None:
        self.backend.send_collective(self.peer_mac[peer], packet)


def wire_atm_collectives(
    fabric,
    hosts: Sequence,
    fanout: int = 4,
    config: Optional[CollectiveConfig] = None,
) -> List[NicCollectiveEngine]:
    """One engine per host; tree edges become fabric-routed VCs."""
    tree = KAryTree(len(hosts), fanout=fanout)
    sim = fabric.sim
    adapters = [AtmCollectiveAdapter(host.backend) for host in hosts]
    engines = [
        NicCollectiveEngine(sim, node, tree, adapters[node], config)
        for node in range(len(hosts))
    ]
    for child in range(1, len(hosts)):
        parent = tree.parent(child)
        backend_p = hosts[parent].backend
        backend_c = hosts[child].backend
        vci_pc, vci_cp = fabric.connect_collective(backend_p, backend_c)
        adapters[parent].tx_vci[child] = vci_pc
        adapters[child].tx_vci[parent] = vci_cp
        backend_c.register_collective_vci(vci_pc, engines[child].on_packet)
        backend_p.register_collective_vci(vci_cp, engines[parent].on_packet)
    return engines


def wire_fe_collectives(
    network,
    hosts: Sequence,
    fanout: int = 4,
    config: Optional[CollectiveConfig] = None,
) -> List[NicCollectiveEngine]:
    """One engine per host; tree edges address peers by MAC."""
    tree = KAryTree(len(hosts), fanout=fanout)
    sim = network.sim
    adapters = [FeCollectiveAdapter(host.backend) for host in hosts]
    engines = [
        NicCollectiveEngine(sim, node, tree, adapters[node], config)
        for node in range(len(hosts))
    ]
    for node, host in enumerate(hosts):
        host.backend.register_collective(engines[node].on_packet)
    for child in range(1, len(hosts)):
        parent = tree.parent(child)
        adapters[parent].peer_mac[child] = hosts[child].backend.mac
        adapters[child].peer_mac[parent] = hosts[parent].backend.mac
    return engines
