"""NIC-resident collective operations (barrier, broadcast, reduce).

The engine (:mod:`~repro.collectives.engine`) runs a k-ary
combining/dissemination tree (:mod:`~repro.collectives.tree`) in NIC
firmware, with per-edge ACK/retransmit reliability; the adapters
(:mod:`~repro.collectives.adapters`) bind it to the PCA-200's i960
(reserved VCIs) and the DC21140 (reserved U-Net port).  The Split-C
runtime selects between this and its host-coordinated node-0 scheme
with the one-flag ``collectives="nic" | "host"`` ablation.
"""

from .bench import (
    COLLECTIVES_BENCH_FORMAT,
    render_collectives_bench,
    run_collectives_bench,
    validate_collectives_bench,
    write_collectives_bench,
)
from .adapters import (
    AtmCollectiveAdapter,
    FeCollectiveAdapter,
    wire_atm_collectives,
    wire_fe_collectives,
)
from .engine import (
    REDUCE_DTYPES,
    REDUCE_OPS,
    CollectiveAborted,
    CollectiveConfig,
    CollectiveError,
    NicCollectiveEngine,
)
from .membership import CollectiveGroup
from .tree import GEN_MOD, KAryTree, gen_after, next_gen

__all__ = [
    "KAryTree",
    "GEN_MOD",
    "gen_after",
    "next_gen",
    "CollectiveConfig",
    "CollectiveError",
    "CollectiveAborted",
    "CollectiveGroup",
    "NicCollectiveEngine",
    "REDUCE_OPS",
    "REDUCE_DTYPES",
    "AtmCollectiveAdapter",
    "FeCollectiveAdapter",
    "wire_atm_collectives",
    "wire_fe_collectives",
    "COLLECTIVES_BENCH_FORMAT",
    "run_collectives_bench",
    "validate_collectives_bench",
    "write_collectives_bench",
    "render_collectives_bench",
]
