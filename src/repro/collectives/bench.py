"""Collective-latency sweep: host node-0 scheme vs NIC-resident trees.

The ablation behind the scale-out story: the same SPMD program runs a
barrier phase and an all-reduce phase on fat-tree clusters of 8 to 256
nodes, once with Split-C's host-coordinated collectives (every node
talks to node 0) and once with the NIC-resident k-ary trees.  All
latencies are *simulated* time, so the snapshot is deterministic and
CI can byte-compare it; the wall-clock side of the story — how fast
the event kernel chews through a 256-node sweep — rides along in the
``engine`` section as events/sec, which is informational and never a
headline metric.

Two cells of the grid are impossible by construction, and the bench
records *why* instead of silently shrinking the sweep:

* Fast Ethernet host mode at 256 nodes — the one-byte U-Net port ID
  (Section 4.3) cannot hold the 255-channel mesh that node-0
  coordination builds, so the run dies allocating ports.  A protocol
  limit, not a simulator one.
* host-mode reduce above 32 nodes — ``all_store_sync`` announces to
  every peer, so one reduction costs O(N^2) packets (a 256-node
  iteration is ~9M simulated events).  The point of the NIC trees is
  that this storm disappears; the bench documents the cliff at small N
  and does not burn minutes proving the same asymptote at large N.

The output is one JSON document (``BENCH_collectives.json``),
schema-checked by :func:`validate_collectives_bench` before it is
written, with headline metrics gated by ``bench --compare``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "COLLECTIVES_BENCH_FORMAT",
    "NODE_COUNTS",
    "SUBSTRATES",
    "MODES",
    "run_collectives_bench",
    "validate_collectives_bench",
    "write_collectives_bench",
    "render_collectives_bench",
]

COLLECTIVES_BENCH_FORMAT = "repro-bench-collectives/1"

NODE_COUNTS = (8, 32, 128, 256)
SUBSTRATES = ("atm-clos", "fe-clos")
MODES = ("host", "nic")

BARRIER_ITERS = 100
REDUCE_ITERS = 100
#: host-mode reduce is O(N^2) per iteration; fewer samples suffice
HOST_REDUCE_ITERS = 20
HOST_REDUCE_MAX_NODES = 32

_PORT_REASON = ("one-byte U-Net port IDs cannot hold the node-0 mesh "
                "(needs n-1 channels per node)")
_STORM_REASON = ("host reduce rides all_store_sync, O(N^2) announces per "
                 "iteration; measured up to 32 nodes only")


def point_support(substrate: str, mode: str, nodes: int, op: str) -> Tuple[bool, str]:
    """Whether a grid cell can run, and the reason when it cannot."""
    if mode == "host":
        if substrate.startswith("fe") and nodes - 1 >= 0xFF:
            return False, _PORT_REASON
        if op == "reduce" and nodes > HOST_REDUCE_MAX_NODES:
            return False, _STORM_REASON
    return True, ""


def _sweep_program(nodes: int, barrier_iters: int, reduce_iters: int) -> Callable:
    """SPMD measurement kernel; node 0's return value is the record."""
    expected = nodes * (nodes + 1) // 2

    def program(runtime):
        values = runtime.heap.allocate("v", 4, np.int64)
        # warm-up: brings lazy channels / collective trees into steady state
        yield from runtime.barrier()
        t0 = runtime.sim.now
        for _ in range(barrier_iters):
            yield from runtime.barrier()
        t1 = runtime.sim.now
        for _ in range(reduce_iters):
            values[:] = runtime.node + 1
            yield from runtime.all_reduce("v", op="sum")
        t2 = runtime.sim.now
        if reduce_iters and int(values[0]) != expected:
            raise AssertionError(
                f"node {runtime.node}: reduce produced {int(values[0])}, "
                f"expected {expected}")
        return {
            "barrier_us": (t1 - t0) / barrier_iters,
            "reduce_us": (t2 - t1) / reduce_iters if reduce_iters else None,
        }

    return program


def _run_point(substrate: str, mode: str, nodes: int,
               barrier_iters: int, reduce_iters: int) -> Dict:
    from ..live.clock import WallClock
    from ..splitc.cluster import Cluster

    wall_clock = WallClock()
    cluster = Cluster(nodes, substrate=substrate, collectives=mode)
    results = cluster.run(_sweep_program(nodes, barrier_iters, reduce_iters),
                          limit=5e9)
    wall = wall_clock.now_us() / 1e6
    events = cluster.sim.events_processed
    return {
        "barrier_us": results[0]["barrier_us"],
        "reduce_us": results[0]["reduce_us"],
        "wall_s": wall,
        "sim_events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def run_collectives_bench(node_counts: Sequence[int] = NODE_COUNTS,
                          substrates: Sequence[str] = SUBSTRATES,
                          barrier_iters: int = BARRIER_ITERS,
                          reduce_iters: int = REDUCE_ITERS,
                          progress: Optional[Callable[[str], None]] = None,
                          ) -> Dict:
    """Run the sweep and assemble the ``BENCH_collectives.json`` payload."""
    from ..live.clock import WallClock

    say = progress or (lambda message: None)
    points: List[Dict] = []
    skipped: List[Dict] = []
    engine: List[Dict] = []
    wall_clock = WallClock()
    for substrate in substrates:
        for nodes in node_counts:
            for mode in MODES:
                barrier_ok, why = point_support(substrate, mode, nodes, "barrier")
                if not barrier_ok:
                    skipped.append({"substrate": substrate, "mode": mode,
                                    "nodes": nodes, "op": "barrier", "reason": why})
                    skipped.append({"substrate": substrate, "mode": mode,
                                    "nodes": nodes, "op": "reduce", "reason": why})
                    say(f"{substrate} n={nodes} {mode}: skipped ({why})")
                    continue
                reduce_ok, why = point_support(substrate, mode, nodes, "reduce")
                r_iters = (0 if not reduce_ok
                           else HOST_REDUCE_ITERS if mode == "host"
                           else reduce_iters)
                if not reduce_ok:
                    skipped.append({"substrate": substrate, "mode": mode,
                                    "nodes": nodes, "op": "reduce", "reason": why})
                record = _run_point(substrate, mode, nodes, barrier_iters, r_iters)
                points.append({"substrate": substrate, "mode": mode,
                               "nodes": nodes, "op": "barrier",
                               "iterations": barrier_iters,
                               "mean_us": record["barrier_us"]})
                if record["reduce_us"] is not None:
                    points.append({"substrate": substrate, "mode": mode,
                                   "nodes": nodes, "op": "reduce",
                                   "iterations": r_iters,
                                   "mean_us": record["reduce_us"]})
                engine.append({"substrate": substrate, "mode": mode,
                               "nodes": nodes, "wall_s": record["wall_s"],
                               "sim_events": record["sim_events"],
                               "events_per_sec": record["events_per_sec"]})
                say(f"{substrate} n={nodes} {mode}: "
                    f"barrier {record['barrier_us']:.1f}us"
                    + (f", reduce {record['reduce_us']:.1f}us"
                       if record["reduce_us"] is not None else "")
                    + f" ({record['events_per_sec']:,.0f} ev/s)")
    speedups = _speedups(points)
    return {
        "format": COLLECTIVES_BENCH_FORMAT,
        "elapsed_s": wall_clock.now_us() / 1e6,
        "node_counts": list(node_counts),
        "substrates": list(substrates),
        "points": points,
        "skipped": skipped,
        "speedups": speedups,
        "engine": engine,
    }


def _speedups(points: List[Dict]) -> List[Dict]:
    """host/nic latency ratio wherever both modes measured a cell."""
    index = {(p["substrate"], p["mode"], p["nodes"], p["op"]): p["mean_us"]
             for p in points}
    out: List[Dict] = []
    for (substrate, mode, nodes, op), host_us in sorted(index.items()):
        if mode != "host":
            continue
        nic_us = index.get((substrate, "nic", nodes, op))
        if nic_us is None:
            continue
        out.append({"substrate": substrate, "nodes": nodes, "op": op,
                    "host_us": host_us, "nic_us": nic_us,
                    "speedup": host_us / nic_us})
    return out


# ---------------------------------------------------------------- validation
_POINT = {"substrate": str, "mode": str, "nodes": int, "op": str,
          "iterations": int, "mean_us": float}
_SKIP = {"substrate": str, "mode": str, "nodes": int, "op": str, "reason": str}
_SPEEDUP = {"substrate": str, "nodes": int, "op": str,
            "host_us": float, "nic_us": float, "speedup": float}
_ENGINE = {"substrate": str, "mode": str, "nodes": int,
           "wall_s": float, "sim_events": int, "events_per_sec": float}

COLLECTIVES_BENCH_SCHEMA = {
    "format": str,
    "elapsed_s": float,
    "node_counts": [int],
    "substrates": [str],
    "points": [_POINT],
    "skipped": [_SKIP],
    "speedups": [_SPEEDUP],
    "engine": [_ENGINE],
}


def _check(value, spec, path: str, errors: List[str]) -> None:
    if isinstance(spec, list):
        if not isinstance(value, list):
            errors.append(f"{path}: expected a list")
            return
        for i, item in enumerate(value):
            _check(item, spec[0], f"{path}[{i}]", errors)
    elif isinstance(spec, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected an object")
            return
        for key, sub in spec.items():
            if key not in value:
                errors.append(f"{path}.{key}: missing")
            else:
                _check(value[key], sub, f"{path}.{key}", errors)
    elif spec is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{path}: expected a number, got {type(value).__name__}")
    elif not isinstance(value, spec) or (isinstance(value, bool) and spec is int):
        errors.append(f"{path}: expected {spec.__name__}, got {type(value).__name__}")


def validate_collectives_bench(payload: Dict) -> List[str]:
    """Schema-check a BENCH_collectives payload; empty list means valid."""
    errors: List[str] = []
    _check(payload, COLLECTIVES_BENCH_SCHEMA, "$", errors)
    if not errors and payload["format"] != COLLECTIVES_BENCH_FORMAT:
        errors.append(f"$.format: {payload['format']!r} != "
                      f"{COLLECTIVES_BENCH_FORMAT!r}")
    if not errors and not payload["points"]:
        errors.append("$.points: empty sweep")
    return errors


def write_collectives_bench(path: str, payload: Dict) -> None:
    """Validate, then write ``BENCH_collectives.json``."""
    errors = validate_collectives_bench(payload)
    if errors:
        raise ValueError("refusing to write an invalid benchmark payload:\n  "
                         + "\n  ".join(errors))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_collectives_bench(payload: Dict) -> str:
    """Terminal summary: latency grid, speedups, engine throughput."""
    from ..analysis.report import format_table

    index = {(p["substrate"], p["mode"], p["nodes"], p["op"]): p["mean_us"]
             for p in payload["points"]}
    skipped = {(s["substrate"], s["mode"], s["nodes"], s["op"])
               for s in payload["skipped"]}
    rows = []
    for substrate in payload["substrates"]:
        for nodes in payload["node_counts"]:
            row = [substrate, str(nodes)]
            for op in ("barrier", "reduce"):
                for mode in MODES:
                    key = (substrate, mode, nodes, op)
                    if key in index:
                        row.append(f"{index[key]:.1f}")
                    else:
                        row.append("--" if key in skipped else "")
            rows.append(row)
    lines = [format_table(
        ("substrate", "nodes", "barrier host", "barrier nic",
         "reduce host", "reduce nic"),
        rows,
        title="Collective latency, mean us per op (-- = unsupported)")]
    for entry in payload["speedups"]:
        lines.append(f"  {entry['op']}[{entry['substrate']},n{entry['nodes']}]: "
                     f"nic is {entry['speedup']:.2f}x the host scheme "
                     f"({entry['host_us']:.1f} -> {entry['nic_us']:.1f} us)")
    total_events = sum(e["sim_events"] for e in payload["engine"])
    total_wall = sum(e["wall_s"] for e in payload["engine"])
    if total_wall > 0:
        lines.append(f"  engine: {total_events:,} events in {total_wall:.1f}s "
                     f"wall ({total_events / total_wall:,.0f} events/sec)")
    reasons = {s["reason"] for s in payload["skipped"]}
    for reason in sorted(reasons):
        lines.append(f"  unsupported cells: {reason}")
    return "\n".join(lines)
