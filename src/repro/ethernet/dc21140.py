"""The DECchip 21140 Fast Ethernet controller.

A straightforward bus-master NIC (Section 4.3): circular transmit and
receive descriptor rings live in host memory; each descriptor points at
up to two buffers.  The kernel pushes send descriptors and issues a
*transmit poll demand*; the chip then DMAs the chained buffers and puts
the frame on the wire.  Received frames are DMAed into fixed kernel
buffers in FIFO order and an interrupt is raised.  The chip assumes a
single operating-system agent — which is exactly why U-Net/FE must live
in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..hw.bus import PCI_BUS, BusModel, DmaEngine
from ..sim import BoundedRing, Simulator, Store, TraceRecorder
from .frames import COLLECTIVE_PORT, ETH_HEADER_SIZE, EthernetFrame, MacAddress
from .medium import Attachment, ExcessiveCollisions

__all__ = ["Dc21140", "NicTimings", "TxRingDescriptor", "RxRingBuffer"]


@dataclass
class NicTimings:
    """DC21140 internal costs (microseconds)."""

    #: response to a poll demand: descriptor fetch from host memory
    tx_descriptor_fetch_us: float = 3.2
    #: FIFO fill threshold before transmission starts
    tx_fifo_threshold_us: float = 1.6
    #: end-of-frame to DMA start on receive
    rx_dma_start_us: float = 2.1
    #: DMA completion to interrupt assertion; together with the CPU's
    #: interrupt-entry cost this reproduces the paper's "roughly 2 us"
    #: between frame data in memory and the handler running
    rx_interrupt_delay_us: float = 1.44
    #: hypothetical on-NIC collective engine: process one collective
    #: packet on the controller (no bus crossing, no interrupt)
    collective_op_us: float = 2.0


@dataclass
class TxRingDescriptor:
    """One entry of the transmit descriptor ring."""

    frame: EthernetFrame
    #: U-Net bookkeeping: the user-area buffer indices to reclaim and the
    #: send descriptor to mark completed once the chip is done with them
    on_complete: Optional[Callable[[], None]] = None
    completed: bool = False


@dataclass
class RxRingBuffer:
    """One fixed kernel receive buffer (filled in FIFO order)."""

    frame: Optional[EthernetFrame] = None


class Dc21140:
    """One DC21140 chip wired to an attachment (hub tap or switch link)."""

    def __init__(
        self,
        sim: Simulator,
        mac: MacAddress,
        bus: BusModel = PCI_BUS,
        timings: Optional[NicTimings] = None,
        tx_ring_size: int = 64,
        rx_ring_size: int = 64,
        name: str = "dc21140",
    ) -> None:
        self.sim = sim
        self.mac = mac
        self.name = name
        self.timings = timings or NicTimings()
        self.dma = DmaEngine(sim, bus, name=f"{name}.dma")
        self.attachment: Optional[Attachment] = None
        #: host-memory transmit ring (kernel pushes, chip pops)
        self.tx_ring: BoundedRing[TxRingDescriptor] = BoundedRing(tx_ring_size, name=f"{name}.txring")
        #: filled receive buffers awaiting the kernel's interrupt handler
        self.rx_ring: BoundedRing[RxRingBuffer] = BoundedRing(rx_ring_size, name=f"{name}.rxring")
        self.rx_ring_capacity = rx_ring_size
        #: kernel installs this to be interrupted on receive
        self.interrupt: Optional[Callable[[], None]] = None
        #: collective engine handler: frames on COLLECTIVE_PORT are
        #: consumed here on the controller — no ring, no interrupt
        self.collective_rx: Optional[Callable[[bytes], None]] = None
        #: kernel installs this to learn of freed TX ring slots
        self.on_tx_space: Optional[Callable[[], None]] = None
        self._poll_demand: Store[bool] = Store(sim, name=f"{name}.polldemand")
        self._tx_running = False
        #: staging between the DMA engine and the wire: the chip prefetches
        #: the next frame into its FIFO while the current one transmits
        self._tx_fifo: Store[TxRingDescriptor] = Store(sim, capacity=2, name=f"{name}.txfifo")
        self.frames_sent = 0
        self.frames_received = 0
        self.rx_overflow_drops = 0
        self.rx_crc_drops = 0
        self.tx_collision_drops = 0
        #: optional step tracing (the end-to-end journey tracer uses it)
        self.trace = TraceRecorder(enabled=False)
        sim.process(self._tx_engine(), name=f"{name}.tx")
        sim.process(self._tx_wire(), name=f"{name}.txwire")

    def _span(self, label: str, start: float) -> None:
        self.trace.record(start, self.sim.now - start, "nic", f"{self.name}: {label}")

    def attach(self, attachment: Attachment) -> None:
        self.attachment = attachment
        # late-bound so fault injectors can interpose on _on_frame
        attachment.set_receiver(lambda frame: self._on_frame(frame))

    # ------------------------------------------------------------- transmit
    def poll_demand(self) -> None:
        """Kernel side: tell the chip to scan its transmit ring."""
        if not self._tx_running:
            self._poll_demand.try_put(True)

    def _tx_engine(self):
        t = self.timings
        while True:
            yield self._poll_demand.get()
            self._tx_running = True
            while True:
                was_full = self.tx_ring.is_full
                descriptor = self.tx_ring.try_pop()
                if descriptor is None:
                    break
                if was_full and self.on_tx_space is not None:
                    self.on_tx_space()
                t0 = self.sim.now
                yield self.sim.timeout(t.tx_descriptor_fetch_us)
                self._span("fetch TX descriptor", t0)
                # DMA the kernel header buffer + the user data buffer
                frame_bytes = ETH_HEADER_SIZE + len(descriptor.frame.payload)
                t0 = self.sim.now
                yield self.sim.process(self.dma.transfer(frame_bytes))
                self._span("DMA frame into FIFO", t0)
                yield self.sim.timeout(t.tx_fifo_threshold_us)
                # the frame now sits in the chip FIFO: the host buffers are
                # no longer needed even though the wire may lag behind
                descriptor.completed = True
                if descriptor.on_complete is not None:
                    descriptor.on_complete()
                yield self._tx_fifo.put(descriptor)
            self._tx_running = False
            # a poll demand issued while running is honoured by the loop
            # above; drain any stale doorbells
            while self._poll_demand.try_get() is not None:
                pass

    def _tx_wire(self):
        while True:
            descriptor = yield self._tx_fifo.get()
            try:
                t0 = self.sim.now
                yield self.sim.process(self.attachment.transmit(descriptor.frame))
                self._span("serialize frame onto the wire", t0)
                self.frames_sent += 1
            except ExcessiveCollisions:
                self.tx_collision_drops += 1

    # -------------------------------------------------------------- receive
    def _on_frame(self, frame: EthernetFrame) -> None:
        if frame.dst_mac != self.mac:
            return  # hub broadcast not addressed to us: filtered in hardware
        if frame.corrupted:
            # the chip's CRC checker rejects damaged frames in hardware
            self.rx_crc_drops += 1
            return
        if self.collective_rx is not None and frame.dst_port == COLLECTIVE_PORT:
            self.sim.process(self._rx_collective(frame), name=f"{self.name}.collrx")
            return
        self.sim.process(self._rx_frame(frame), name=f"{self.name}.rx")

    # ---------------------------------------------------- collective engine
    # A what-if extension (the DC21140 itself has no programmable core):
    # a small on-controller engine consumes and originates collective
    # packets without touching host memory.  See DESIGN.md.
    def _rx_collective(self, frame: EthernetFrame):
        yield self.sim.timeout(self.timings.collective_op_us)
        self.collective_rx(frame.payload)

    def send_collective(self, frame: EthernetFrame) -> None:
        """Collective engine TX: the controller originates the frame —
        no trap, no descriptor ring, no host DMA."""
        self.sim.process(self._tx_collective(frame), name=f"{self.name}.colltx")

    def _tx_collective(self, frame: EthernetFrame):
        yield self.sim.timeout(self.timings.collective_op_us)
        yield self._tx_fifo.put(TxRingDescriptor(frame=frame, completed=True))

    def _rx_frame(self, frame: EthernetFrame):
        t = self.timings
        if self.rx_ring.is_full:
            self.rx_overflow_drops += 1
            return
        t0 = self.sim.now
        yield self.sim.timeout(t.rx_dma_start_us)
        yield self.sim.process(self.dma.transfer(ETH_HEADER_SIZE + len(frame.payload)))
        self._span("DMA frame into host ring buffer", t0)
        if not self.rx_ring.try_push(RxRingBuffer(frame=frame)):
            self.rx_overflow_drops += 1
            return
        self.frames_received += 1
        t0 = self.sim.now
        yield self.sim.timeout(t.rx_interrupt_delay_us)
        self._span("raise receive interrupt", t0)
        if self.interrupt is not None:
            self.interrupt()
