"""Fast Ethernet switches.

The paper benchmarks two: a Bay Networks 28115 16-port switch and a
Cabletron FastNet-100 8-port switch; their different per-frame
forwarding behaviour separates the three U-Net/FE round-trip curves in
Figure 5.  We model the Bay 28115 as a cut-through switch (forwarding
begins once the header is in) and the FN100 as store-and-forward
(forwarding begins after the full frame), each with its own processing
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim import Simulator
from .frames import EthernetFrame, MacAddress
from .medium import DuplexLink, SimplexChannel

__all__ = ["SwitchModel", "BAY_28115", "FN100", "EthernetSwitch", "TrunkPort"]


@dataclass(frozen=True)
class SwitchModel:
    """Forwarding characteristics of one switch product."""

    name: str
    ports: int
    #: per-frame processing/lookup latency
    latency_us: float
    #: True: wait for the whole frame before forwarding
    store_and_forward: bool


#: Bay Networks 28115 16-port switch (cut-through class device)
BAY_28115 = SwitchModel(name="Bay-28115", ports=16, latency_us=4.0, store_and_forward=False)

#: Cabletron FastNet-100 8-port switch (store-and-forward; the slowest
#: of the three Figure-5 configurations at 91 us for 40 bytes)
FN100 = SwitchModel(name="Cabletron-FN100", ports=8, latency_us=10.0, store_and_forward=True)


class TrunkPort:
    """A switch-to-switch port: just an egress channel, no station.

    Quacks enough like :class:`~repro.ethernet.medium.DuplexLink` (a
    ``downlink`` egress the switch submits into) for the forwarding and
    drop-accounting paths not to care which kind of port they hit.
    """

    __slots__ = ("downlink",)

    def __init__(self, egress: SimplexChannel) -> None:
        self.downlink = egress


class EthernetSwitch:
    """A learning-free (statically configured) output-queued switch."""

    def __init__(
        self,
        sim: Simulator,
        model: SwitchModel,
        rate_mbps: float = 100.0,
        output_buffer_frames: int = None,
        learning: bool = False,
    ) -> None:
        self.sim = sim
        self.model = model
        self.rate_mbps = rate_mbps
        #: if set, each egress port queues at most this many frames
        self.output_buffer_frames = output_buffer_frames
        #: transparent-bridge mode: learn source MACs from traffic and
        #: flood unknown destinations, instead of the static table the
        #: topology builders program
        self.learning = learning
        self._links: Dict[int, DuplexLink] = {}
        self._mac_table: Dict[MacAddress, int] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.unknown_mac_drops = 0

    @property
    def ports_used(self) -> int:
        return len(self._links)

    @property
    def frames_dropped(self) -> int:
        """Total egress-buffer overflows across all ports."""
        return sum(link.downlink.frames_dropped for link in self._links.values())

    def attach(self, mac: MacAddress, propagation_us: float = 0.5) -> DuplexLink:
        """Connect a station; returns the NIC-side attachment."""
        if len(self._links) >= self.model.ports:
            raise ValueError(f"{self.model.name} has only {self.model.ports} ports")
        port = len(self._links)
        link = DuplexLink(
            self.sim,
            self.rate_mbps,
            propagation_us,
            name=f"{self.model.name}.p{port}",
            uplink_delivers_at_header=not self.model.store_and_forward,
        )
        if self.output_buffer_frames is not None:
            link.downlink.buffer_frames = self.output_buffer_frames
        self._links[port] = link
        if not self.learning:
            self._mac_table[mac] = port
        # frames the station sends arrive at the switch through its uplink
        link.uplink.deliver = lambda frame, _port=port: self._on_frame(frame, _port)
        return link

    def attach_trunk(self, egress: SimplexChannel) -> int:
        """Connect a switch-to-switch trunk; returns its port number.

        ``egress`` carries frames away from this switch; the fabric
        builder wires its ``deliver`` into the far switch's
        :meth:`ingress` and wires the reverse trunk symmetrically.
        """
        if len(self._links) >= self.model.ports:
            raise ValueError(f"{self.model.name} has only {self.model.ports} ports")
        if self.output_buffer_frames is not None:
            egress.buffer_frames = self.output_buffer_frames
        port = len(self._links)
        self._links[port] = TrunkPort(egress)
        return port

    def ingress(self, port: int):
        """The frame-arrival callback for trunk wiring (binds ``port``)."""
        return lambda frame: self._on_frame(frame, port)

    def program_mac(self, mac: MacAddress, port: int) -> None:
        """Statically program a forwarding entry (fabric signaling plane)."""
        if port not in self._links:
            raise ValueError(f"{self.model.name}: no such port {port}")
        self._mac_table[mac] = port

    def knows(self, mac: MacAddress) -> bool:
        """True once the bridge has a forwarding entry for ``mac``."""
        return mac in self._mac_table

    def _on_frame(self, frame: EthernetFrame, ingress_port: int) -> None:
        if self.learning:
            # transparent bridging: remember where the sender lives
            self._mac_table[frame.src_mac] = ingress_port
        egress_port = self._mac_table.get(frame.dst_mac)
        if egress_port == ingress_port:
            self.unknown_mac_drops += 1
            return
        if egress_port is None:
            if not self.learning:
                self.unknown_mac_drops += 1
                return
            # unknown destination: flood every other port
            self.sim.call_in(self.model.latency_us, self._flood, frame, ingress_port)
            return
        # cut-through switches receive the frame at header time (the
        # ingress channel is configured to deliver early); store-and-
        # forward switches receive it at end-of-frame.  Either way the
        # address lookup costs the model's latency before the egress
        # port starts serializing.  One bare callback per frame — no
        # forwarding process — keeps big fabrics cheap.
        self.sim.call_in(self.model.latency_us, self._forward, frame, egress_port)

    def _flood(self, frame: EthernetFrame, ingress_port: int) -> None:
        self.frames_flooded += 1
        for port, link in self._links.items():
            if port != ingress_port:
                link.downlink.submit(frame)

    def _forward(self, frame: EthernetFrame, egress_port: int) -> None:
        self.frames_forwarded += 1
        self._links[egress_port].downlink.submit(frame)
