"""IPv4/UDP encapsulation for U-Net/FE messages (Section 4.4.3).

"The use of Ethernet MAC addresses and port IDs to address endpoints
does not allow messages to traverse multiple switches or IP routers.
One solution would be to use a simple IPv4 encapsulation for U-Net
messages; however, this would add considerable communication overhead."

This module implements that proposal so the overhead can be measured:
a real 20-byte IPv4 header plus an 8-byte UDP header (checksummed for
real), a software-router model that forwards between Ethernet segments,
and a routed-topology builder.  The ablation benchmark quantifies the
paper's "considerable overhead" claim.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim import Simulator, Store
from .frames import ETH_MAX_PAYLOAD, UNET_FE_HEADER_SIZE, EthernetFrame, MacAddress
from .switch import EthernetSwitch

__all__ = [
    "IpTag",
    "IPV4_HEADER_SIZE",
    "UDP_HEADER_SIZE",
    "IP_ENCAP_OVERHEAD",
    "UNET_FE_IP_MAX_PDU",
    "internet_checksum",
    "build_ipv4_udp",
    "parse_ipv4_udp",
    "IpHeaderError",
    "IpRouter",
]

IPV4_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
IP_ENCAP_OVERHEAD = IPV4_HEADER_SIZE + UDP_HEADER_SIZE
#: encapsulation shrinks the largest U-Net PDU accordingly
UNET_FE_IP_MAX_PDU = ETH_MAX_PAYLOAD - UNET_FE_HEADER_SIZE - IP_ENCAP_OVERHEAD

_DEFAULT_TTL = 64
_PROTO_UDP = 17


class IpHeaderError(Exception):
    """Malformed or corrupted IP/UDP header."""


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum.

    >>> hex(internet_checksum(bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])))
    '0x220d'
    >>> datagram = build_ipv4_udp(0x0a000001, 0x0a000102, 7, 9, b"payload")
    >>> internet_checksum(datagram[:20])  # a valid header sums to zero
    0
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def build_ipv4_udp(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes,
    ttl: int = _DEFAULT_TTL,
) -> bytes:
    """An IPv4+UDP datagram around ``payload``, checksummed for real."""
    total_length = IPV4_HEADER_SIZE + UDP_HEADER_SIZE + len(payload)
    header_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,  # version 4, IHL 5
        0,
        total_length,
        0,  # identification
        0,  # flags/fragment offset (U-Net never IP-fragments)
        ttl,
        _PROTO_UDP,
        0,  # checksum placeholder
        src_ip.to_bytes(4, "big"),
        dst_ip.to_bytes(4, "big"),
    )
    checksum = internet_checksum(header_wo_checksum)
    ip_header = header_wo_checksum[:10] + checksum.to_bytes(2, "big") + header_wo_checksum[12:]
    udp_header = struct.pack("!HHHH", src_port, dst_port, UDP_HEADER_SIZE + len(payload), 0)
    return ip_header + udp_header + payload


def parse_ipv4_udp(datagram: bytes) -> Tuple[int, int, int, int, int, bytes]:
    """Validate and strip the headers.

    Returns (src_ip, dst_ip, src_port, dst_port, ttl, payload).
    Raises :class:`IpHeaderError` on any inconsistency.
    """
    if len(datagram) < IP_ENCAP_OVERHEAD:
        raise IpHeaderError("datagram shorter than IP+UDP headers")
    if internet_checksum(datagram[:IPV4_HEADER_SIZE]) != 0:
        raise IpHeaderError("IPv4 header checksum mismatch")
    version_ihl, _tos, total_length, _ident, _frag, ttl, proto, _csum = struct.unpack(
        "!BBHHHBBH", datagram[:12]
    )
    if version_ihl != 0x45:
        raise IpHeaderError(f"unsupported version/IHL {version_ihl:#x}")
    if proto != _PROTO_UDP:
        raise IpHeaderError(f"unexpected protocol {proto}")
    if total_length != len(datagram):
        raise IpHeaderError("IP total length disagrees with datagram size")
    src_ip = int.from_bytes(datagram[12:16], "big")
    dst_ip = int.from_bytes(datagram[16:20], "big")
    src_port, dst_port, udp_length, _udp_csum = struct.unpack(
        "!HHHH", datagram[IPV4_HEADER_SIZE : IPV4_HEADER_SIZE + UDP_HEADER_SIZE]
    )
    if udp_length != len(datagram) - IPV4_HEADER_SIZE:
        raise IpHeaderError("UDP length disagrees with datagram size")
    return src_ip, dst_ip, src_port, dst_port, ttl, datagram[IP_ENCAP_OVERHEAD:]


def _decrement_ttl(datagram: bytes) -> bytes:
    """Forwarding: TTL-1 and a recomputed header checksum."""
    ttl = datagram[8]
    if ttl <= 1:
        raise IpHeaderError("TTL expired")
    header = bytearray(datagram[:IPV4_HEADER_SIZE])
    header[8] = ttl - 1
    header[10:12] = b"\x00\x00"
    header[10:12] = internet_checksum(bytes(header)).to_bytes(2, "big")
    return bytes(header) + datagram[IPV4_HEADER_SIZE:]


@dataclass(frozen=True)
class IpTag:
    """Message tag for IPv4-encapsulated U-Net/FE channels."""

    dst_ip: int
    dst_udp: int
    src_ip: int
    src_udp: int
    #: MAC to put on the wire: the peer directly, or the router port
    next_hop_mac: MacAddress


@dataclass
class _RouterPort:
    switch: EthernetSwitch
    mac: MacAddress
    #: IP prefix served by this port: (network, mask)
    network: int
    mask: int


class IpRouter:
    """A mid-1990s software IP router between Ethernet segments.

    Each attached segment (switch) gets a router port with its own MAC
    and an IP prefix.  Frames addressed to the port MAC are parsed,
    routed by longest (here: only) prefix, and re-framed toward the
    destination host's MAC on the egress segment.  Per-packet forwarding
    cost is charged on the router CPU, which serializes all ports —
    exactly why the paper calls this path expensive.
    """

    def __init__(self, sim: Simulator, forward_us: float = 55.0, name: str = "router") -> None:
        self.sim = sim
        self.forward_us = forward_us
        self.name = name
        self._ports: Dict[int, _RouterPort] = {}
        self._links: Dict[int, object] = {}
        #: static ARP: IP -> (port index, MAC)
        self._arp: Dict[int, Tuple[int, MacAddress]] = {}
        self._work: Store = Store(sim, name=f"{name}.queue")
        self.packets_forwarded = 0
        self.drops_no_route = 0
        self.drops_bad_header = 0
        self.drops_ttl = 0
        sim.process(self._forwarding_engine(), name=f"{name}.cpu")

    def attach_segment(self, switch: EthernetSwitch, mac: MacAddress, network: int, mask: int) -> None:
        """Connect one router port to ``switch`` serving ``network``."""
        port = len(self._ports)
        link = switch.attach(mac)
        link.set_receiver(lambda frame, _port=port: self._on_frame(frame, _port))
        self._ports[port] = _RouterPort(switch=switch, mac=mac, network=network, mask=mask)
        self._links[port] = link

    def register_host(self, ip: int, mac: MacAddress) -> None:
        """Static ARP entry for a host (set up by the topology builder)."""
        for port, p in self._ports.items():
            if ip & p.mask == p.network:
                self._arp[ip] = (port, mac)
                return
        raise ValueError(f"no router port serves IP {ip:#010x}")

    def port_mac(self, segment_index: int) -> MacAddress:
        return self._ports[segment_index].mac

    def _on_frame(self, frame: EthernetFrame, port: int) -> None:
        if frame.dst_mac != self._ports[port].mac:
            return
        self._work.try_put(frame)

    def _forwarding_engine(self):
        while True:
            frame = yield self._work.get()
            yield self.sim.timeout(self.forward_us)
            try:
                _src, dst_ip, _sp, _dp, _ttl, _payload = parse_ipv4_udp(frame.payload)
            except IpHeaderError:
                self.drops_bad_header += 1
                continue
            route = self._arp.get(dst_ip)
            if route is None:
                self.drops_no_route += 1
                continue
            egress_port, dst_mac = route
            try:
                datagram = _decrement_ttl(frame.payload)
            except IpHeaderError:
                self.drops_ttl += 1
                continue
            out = EthernetFrame(
                dst_mac=dst_mac,
                src_mac=self._ports[egress_port].mac,
                dst_port=frame.dst_port,
                src_port=frame.src_port,
                payload=datagram,
            )
            self.packets_forwarded += 1
            link = self._links[egress_port]
            yield self.sim.process(link.transmit(out))
