"""Beowulf-style dual-NIC channel bonding (Section 2.2).

"The Beowulf project has constructed a workstation cluster ... Each
system consists of two Fast Ethernet controllers operating in a
round-robin fashion to double the aggregate bandwidth per node."
Beowulf did this through the kernel sockets interface; here the same
trick is applied to U-Net/FE: two DC21140s per host, each on its own
hub, with the kernel's send-queue service striping frames round-robin
across them and one interrupt path draining both receive rings.

Caveat (and the reason Beowulf ran this under TCP): two independent
FIFO rails accumulate skew under backlog, so striped frames can arrive
out of order.  U-Net itself promises nothing about ordering; a protocol
above must tolerate it.  Our go-back-N Active Messages layer delivers
exactly-once-in-order regardless, but pays retransmissions when the
rails drift — use bonding for bandwidth, not for latency-sensitive
small-message traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..core.api import Host, UserEndpoint
from ..core.channels import register_channel
from ..core.descriptors import SMALL_MESSAGE_MAX
from ..core.endpoint import Endpoint
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel
from ..sim import RngRegistry, Simulator
from .dc21140 import Dc21140, NicTimings, TxRingDescriptor
from .frames import EthernetFrame
from .medium import SharedMedium
from .unet_fe import TX_TRACE, FeTimings, UNetFeBackend

__all__ = ["BondedTag", "DualNicFeBackend", "BeowulfNetwork"]


@dataclass(frozen=True)
class BondedTag:
    """Message tag of a bonded channel: one (MAC, MAC) pair per rail."""

    dst_macs: Tuple[int, int]
    src_macs: Tuple[int, int]
    dst_port: int
    src_port: int


class DualNicFeBackend(UNetFeBackend):
    """U-Net/FE over two DC21140s, striped round-robin."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu: CpuModel,
        macs: Tuple[int, int],
        timings: Optional[FeTimings] = None,
        nic_timings: Optional[NicTimings] = None,
        bus: BusModel = PCI_BUS,
    ) -> None:
        super().__init__(sim, name, cpu, macs[0], timings=timings, nic_timings=nic_timings, bus=bus)
        self.macs = macs
        self.nic_b = Dc21140(sim, macs[1], bus=bus, timings=nic_timings, name=f"{name}.nicB")
        self.nic_b.interrupt = self._interrupt
        self.nic_b.on_tx_space = self._tx_space_available
        self.nics.append(self.nic_b)
        self._rail = 0

    def attach_rails(self, attachment_a, attachment_b) -> None:
        self.nic.attach(attachment_a)
        self.nic_b.attach(attachment_b)

    def _service_send(self, endpoint: Endpoint, descriptor) -> Generator:
        binding = endpoint.channels.get(descriptor.channel_id)
        if binding is None or not isinstance(binding.tag, BondedTag):
            yield from super()._service_send(endpoint, descriptor)
            return
        t = self.timings
        yield from self._step(TX_TRACE, "check U-Net send parameters", t.check_send_params_us)
        tag: BondedTag = binding.tag
        payload = b"".join(
            endpoint.buffers.buffer(idx).read(length) for idx, length in descriptor.segments
        )
        rail = self._rail
        self._rail = 1 - self._rail
        yield from self._step(TX_TRACE, "Ethernet header set-up", t.ethernet_header_setup_us)
        frame = EthernetFrame(
            dst_mac=tag.dst_macs[rail],
            src_mac=tag.src_macs[rail],
            dst_port=tag.dst_port,
            src_port=tag.src_port,
            payload=payload,
        )
        yield from self._step(TX_TRACE, "device send ring descriptor set-up", t.ring_descriptor_setup_us)

        def complete(d=descriptor, ep=endpoint):
            ep.send_completed(d)

        nic = self.nics[rail]
        nic.tx_ring.push(TxRingDescriptor(frame=frame, on_complete=complete))
        nic.poll_demand()
        binding.messages_sent += 1
        self.messages_sent += 1


class BeowulfNetwork:
    """Hosts with two NICs on two parallel shared-media channels."""

    def __init__(self, sim: Simulator, rate_mbps: float = 100.0, rng: Optional[RngRegistry] = None) -> None:
        self.sim = sim
        registry = rng or RngRegistry()
        self.medium_a = SharedMedium(sim, rate_mbps=rate_mbps, rng=registry)
        self.medium_b = SharedMedium(sim, rate_mbps=rate_mbps, rng=registry)
        self.hosts: List[Host] = []
        self._next_mac = 0x02_00_00_0B_00_01

    def add_host(self, name: str, cpu: CpuModel) -> Host:
        mac_a = self._next_mac
        mac_b = self._next_mac + 1
        self._next_mac += 2
        backend = DualNicFeBackend(self.sim, name=f"{name}.unet_fe2", cpu=cpu, macs=(mac_a, mac_b))
        backend.attach_rails(self.medium_a.attach(), self.medium_b.attach())
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Bonded duplex channel across both rails."""
        backend_a: DualNicFeBackend = a.host.backend
        backend_b: DualNicFeBackend = b.host.backend
        port_a = backend_a.allocate_port()
        port_b = backend_b.allocate_port()
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        tag_a = BondedTag(dst_macs=backend_b.macs, src_macs=backend_a.macs,
                          dst_port=port_b, src_port=port_a)
        tag_b = BondedTag(dst_macs=backend_a.macs, src_macs=backend_b.macs,
                          dst_port=port_a, src_port=port_b)
        register_channel(a.endpoint, channel_a, tag_a, peer=b.host.name)
        register_channel(b.endpoint, channel_b, tag_b, peer=a.host.name)
        # frames may arrive on either rail: register both source MACs
        for rail in (0, 1):
            backend_a.demux.register((backend_b.macs[rail], port_b, port_a), a.endpoint, channel_a)
            backend_b.demux.register((backend_a.macs[rail], port_a, port_b), b.endpoint, channel_b)
        return channel_a, channel_b
