"""Ethernet media: the shared CSMA/CD bus (hub) and full-duplex links.

The paper contrasts Ethernet's traditionally shared medium — "all
stations compete for use of the wire, using exponential backoff
algorithms for retransmission in case of collision" — with switched
full-duplex links.  Both are modelled here behind one tiny attachment
interface so the DC21140 does not care what it is plugged into.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Event, Simulator
from ..sim.rng import RngRegistry
from .frames import EthernetFrame, wire_time_us

__all__ = [
    "Attachment",
    "SharedMedium",
    "HubAttachment",
    "SimplexChannel",
    "DuplexLink",
    "ExcessiveCollisions",
    "SLOT_TIME_US",
    "IFG_US",
    "JAM_US",
    "MAX_ATTEMPTS",
]

#: 512-bit slot time at 100 Mb/s
SLOT_TIME_US = 5.12
#: 96-bit inter-frame gap at 100 Mb/s
IFG_US = 0.96
#: 32-bit jam sequence plus abort overhead
JAM_US = 3.2
#: transmit attempts before the controller gives up (16, per 802.3)
MAX_ATTEMPTS = 16
#: carrier-sense blind window: a station cannot sense a transmission that
#: began less than one propagation time ago, so it starts anyway and
#: collides (64 bit times at 100 Mb/s)
COLLISION_WINDOW_US = 0.512


class ExcessiveCollisions(Exception):
    """A frame was dropped after 16 failed transmission attempts."""


class Attachment:
    """What a NIC plugs into.

    ``transmit`` is a simulation process that completes when the frame
    has been put on the wire; ``receive`` is a callback the NIC installs
    to learn about inbound frames.
    """

    def transmit(self, frame: EthernetFrame):
        raise NotImplementedError

    def set_receiver(self, receive: Callable[[EthernetFrame], None]) -> None:
        raise NotImplementedError


class _ActiveTx:
    __slots__ = ("station", "collision", "start")

    def __init__(self, station: "HubAttachment", collision: Event, start: float) -> None:
        self.station = station
        self.collision = collision
        self.start = start


class SharedMedium:
    """Half-duplex CSMA/CD broadcast bus (a 100BaseTX hub).

    Stations that find the medium idle after the same inter-frame gap
    start in the same simulation instant and collide; each jams, backs
    off by a random number of slot times (binary exponential backoff),
    and retries, exactly the classic algorithm.
    """

    def __init__(self, sim: Simulator, rate_mbps: float = 100.0, rng: Optional[RngRegistry] = None) -> None:
        self.sim = sim
        self.rate_mbps = rate_mbps
        self.rng = (rng or RngRegistry()).stream("ethernet.backoff")
        self.stations: List["HubAttachment"] = []
        self._active: List[_ActiveTx] = []
        self._idle_waiters: List[Event] = []
        self.collisions = 0
        self.frames_carried = 0
        self.drops_excessive_collisions = 0

    def attach(self) -> "HubAttachment":
        station = HubAttachment(self)
        self.stations.append(station)
        return station

    @property
    def busy(self) -> bool:
        return bool(self._active)

    def _wait_idle(self) -> Event:
        event = self.sim.event(name="medium.idle")
        if not self.busy:
            event.succeed()
        else:
            self._idle_waiters.append(event)
        return event

    def _gone_idle(self) -> None:
        if not self._active:
            waiters, self._idle_waiters = self._idle_waiters, []
            for event in waiters:
                event.succeed()

    def _in_blind_window(self) -> bool:
        """True when an active transmission is too young to be sensed."""
        return any(self.sim.now - tx.start < COLLISION_WINDOW_US for tx in self._active)

    def _transmit(self, station: "HubAttachment", frame: EthernetFrame):
        attempts = 0
        while True:
            # carrier sense, then wait the inter-frame gap
            while self.busy and not self._in_blind_window():
                yield self._wait_idle()
            yield self.sim.timeout(IFG_US)
            if self.busy and not self._in_blind_window():
                continue
            tx = _ActiveTx(station, self.sim.event(name="collision"), self.sim.now)
            self._active.append(tx)
            if len(self._active) > 1:
                # starts within the blind window: everyone active collides
                self.collisions += 1
                for active in list(self._active):
                    if not active.collision.triggered:
                        active.collision.succeed()
            finish = self.sim.timeout(wire_time_us(frame, self.rate_mbps))
            yield self.sim.any_of([finish, tx.collision])
            if tx.collision.triggered:
                self._active.remove(tx)
                self._gone_idle()
                yield self.sim.timeout(JAM_US)
                attempts += 1
                if attempts >= MAX_ATTEMPTS:
                    self.drops_excessive_collisions += 1
                    raise ExcessiveCollisions(f"frame dropped after {attempts} attempts")
                backoff_slots = self.rng.randrange(0, 2 ** min(attempts, 10))
                yield self.sim.timeout(backoff_slots * SLOT_TIME_US)
                continue
            # success: broadcast to every other station
            self._active.remove(tx)
            self._gone_idle()
            self.frames_carried += 1
            for other in self.stations:
                if other is not station and other.receive is not None:
                    other.receive(frame)
            return


class HubAttachment(Attachment):
    """One station's tap on a :class:`SharedMedium`."""

    def __init__(self, medium: SharedMedium) -> None:
        self.medium = medium
        self.receive: Optional[Callable[[EthernetFrame], None]] = None

    def transmit(self, frame: EthernetFrame):
        yield from self.medium._transmit(self, frame)

    def set_receiver(self, receive: Callable[[EthernetFrame], None]) -> None:
        self.receive = receive


class SimplexChannel:
    """One direction of a full-duplex link: serialize, propagate, deliver.

    Like :class:`~repro.atm.phy.CellLink` this is analytic: ``submit``
    computes the serialization window from a running busy-until clock
    and schedules the delivery callback and completion event directly —
    no pump process, no store, a fraction of the kernel events per
    frame.  The late-bound ``deliver`` attribute is read at fire time so
    fault pipelines can interpose.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_mbps: float = 100.0,
        propagation_us: float = 0.5,
        name: str = "chan",
        deliver_at_header: bool = False,
        buffer_frames: Optional[int] = None,
    ) -> None:
        from .frames import ETH_HEADER_SIZE, ETH_PREAMBLE_BYTES

        self.sim = sim
        self.rate_mbps = rate_mbps
        self.propagation_us = propagation_us
        self.name = name
        #: deliver as soon as the header has arrived (feeds a cut-through
        #: switch, which starts forwarding before end-of-frame); the
        #: channel still stays busy for the full serialization time.
        self.deliver_at_header = deliver_at_header
        #: finite output buffering: frames beyond this depth are dropped
        self.buffer_frames = buffer_frames
        self._header_time = (ETH_PREAMBLE_BYTES + ETH_HEADER_SIZE) * 8 / rate_mbps
        self._busy_until = 0.0
        self._pending = 0
        self.deliver: Optional[Callable[[EthernetFrame], None]] = None
        self.frames_carried = 0
        self.frames_dropped = 0

    def submit(self, frame: EthernetFrame) -> Event:
        """Queue ``frame``; the returned event fires when it has fully
        serialized onto the wire (immediately, if the buffer drops it).

        One frame may be serializing plus ``buffer_frames`` queued
        behind it; a queue slot frees at that frame's end-of-wire time.
        """
        sim = self.sim
        if self.buffer_frames is not None and self._pending > self.buffer_frames:
            self.frames_dropped += 1
            return sim.timeout(0.0)  # dropped: the sender's wire time is over
        now = sim.now
        start = self._busy_until if self._busy_until > now else now
        total = wire_time_us(frame, self.rate_mbps)
        end = start + total
        self._busy_until = end
        if self.buffer_frames is not None:
            self._pending += 1
            sim.call_in(end - now, self._serialized_one)
        deliver_at = (start + min(self._header_time, total)
                      if self.deliver_at_header else end)
        sim.call_in(deliver_at + self.propagation_us - now, self._deliver_one, frame)
        return sim.timeout(end - now)

    @property
    def queued(self) -> int:
        """Frames accepted but not yet fully serialized (incl. in flight)."""
        if self.buffer_frames is not None:
            return self._pending
        return 1 if self._busy_until > self.sim.now else 0

    def _serialized_one(self) -> None:
        self._pending -= 1

    def _deliver_one(self, frame: EthernetFrame) -> None:
        self.frames_carried += 1
        if self.deliver is not None:
            self.deliver(frame)


class DuplexLink(Attachment):
    """The NIC side of a full-duplex point-to-point link (to a switch).

    ``uplink`` carries frames away from the NIC; the switch pushes
    frames for the NIC into ``downlink``, whose deliver callback feeds
    the NIC's receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_mbps: float = 100.0,
        propagation_us: float = 0.5,
        name: str = "link",
        uplink_delivers_at_header: bool = False,
    ) -> None:
        self.sim = sim
        self.uplink = SimplexChannel(
            sim, rate_mbps, propagation_us, name=f"{name}.up", deliver_at_header=uplink_delivers_at_header
        )
        self.downlink = SimplexChannel(sim, rate_mbps, propagation_us, name=f"{name}.down")

    def transmit(self, frame: EthernetFrame):
        # full duplex: the only wait is our own uplink serialization
        yield self.uplink.submit(frame)

    def set_receiver(self, receive: Callable[[EthernetFrame], None]) -> None:
        self.downlink.deliver = receive
