"""U-Net/FE: the in-kernel U-Net implementation over the DC21140.

"The in-kernel implementation of U-Net is best described as a protected
co-routine available to user processes" (Section 4.3).  Sending is a
fast trap into the kernel, which services the user's U-Net send queue
onto the device descriptor ring and issues a transmit poll demand
(Figure 3, ~4.2 us of processor time).  Receiving is interrupt driven:
the handler demultiplexes each frame by its U-Net port, copies the data
into the destination endpoint's buffer area (or, under 64 bytes,
directly into the receive descriptor), and bumps the device ring
(Figure 4, ~4.1 us for 40 bytes / ~5.6 us for 100 bytes).

Every step of both paths is traced, which is how the benchmark harness
regenerates the two timeline figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..core.base import UNetBackend
from ..core.channels import EthernetTag
from ..core.descriptors import SMALL_MESSAGE_MAX, RecvDescriptor
from ..core.endpoint import Endpoint
from ..core.mux import ShardedDemux
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel
from ..hw.interrupts import InterruptController
from ..sim import Resource, Simulator, TraceRecorder
from .dc21140 import Dc21140, NicTimings, TxRingDescriptor
from .frames import COLLECTIVE_PORT, UNET_FE_MAX_PDU, EthernetFrame, MacAddress
from .ip import UNET_FE_IP_MAX_PDU, IpHeaderError, build_ipv4_udp, parse_ipv4_udp

__all__ = ["FeTimings", "UNetFeBackend", "TX_TRACE", "RX_TRACE"]

#: trace categories for the two kernel paths
TX_TRACE = "unet_fe.tx"
RX_TRACE = "unet_fe.rx"


@dataclass
class FeTimings:
    """Kernel service-path costs on the 120 MHz Pentium (microseconds).

    The per-step values reproduce the Figure 3 transmit timeline (total
    4.2 us with ~20% trap overhead) and the Figure 4 receive timelines
    (4.1 us for 40 bytes inline, 5.6 us for 100 bytes with a buffer
    allocation; copy cost growing 1.42 us per 100 bytes).
    """

    # -- transmit trap (Figure 3) --
    check_send_params_us: float = 0.74
    ethernet_header_setup_us: float = 0.37
    ring_descriptor_setup_us: float = 0.56
    issue_poll_demand_us: float = 0.29
    free_ring_descriptor_us: float = 0.92
    free_send_queue_entry_us: float = 0.42
    # -- receive interrupt handler (Figure 4) --
    poll_recv_ring_us: float = 0.52
    demux_us: float = 0.30
    alloc_init_recv_descriptor_us: float = 0.60
    alloc_unet_buffer_us: float = 0.71
    copy_fixed_us: float = 0.55
    bump_recv_ring_us: float = 0.40
    # -- optional IPv4 encapsulation (Section 4.4.3's proposal) --
    ip_encap_us: float = 4.5
    ip_parse_us: float = 4.0

    #: the clock these constants were measured at (Figure 3/4's host)
    REFERENCE_CLOCK_MHZ = 120.0

    def scaled(self, factor: float) -> "FeTimings":
        """Kernel-path costs on a ``factor``-times-faster host."""
        from dataclasses import fields, replace

        changes = {
            f.name: getattr(self, f.name) / factor
            for f in fields(self)
            if isinstance(getattr(self, f.name), float)
        }
        return replace(self, **changes)

    @classmethod
    def for_cpu(cls, cpu: CpuModel) -> "FeTimings":
        """Constants scaled to ``cpu``'s clock (they are all CPU work)."""
        return cls().scaled(cpu.clock_mhz / cls.REFERENCE_CLOCK_MHZ)


class UNetFeBackend(UNetBackend):
    """U-Net over a DC21140 on one host (kernel + NIC together)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu: CpuModel,
        mac: MacAddress,
        timings: Optional[FeTimings] = None,
        nic_timings: Optional[NicTimings] = None,
        bus: BusModel = PCI_BUS,
        trace: Optional[TraceRecorder] = None,
        ip_address: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name)
        #: host IP address when the interface runs IPv4-encapsulated
        #: channels (Section 4.4.3's multi-switch/router proposal)
        self.ip_address = ip_address
        self.cpu = cpu
        self.mac = mac
        self.timings = timings or FeTimings.for_cpu(cpu)
        self.trace = trace or TraceRecorder(enabled=False)
        self.nic = Dc21140(sim, mac, bus=bus, timings=nic_timings, name=f"{name}.nic")
        self.nic.interrupt = self._interrupt
        #: all controllers this kernel services (Beowulf-style bonding
        #: appends a second one; see ethernet.bonding)
        self.nics = [self.nic]
        self.demux = ShardedDemux(name=f"{name}.demux")
        #: the host processor is one resource: traps and interrupt
        #: handlers serialize on it
        self.kernel_cpu = Resource(sim, capacity=1, name=f"{name}.cpu")
        self._irq = InterruptController(sim, cpu, self._rx_handler, name=f"{name}.irq")
        #: endpoints whose send queues could not be fully serviced
        #: because the device ring filled; drained on TX-done
        self._deferred_service: set = set()
        self.nic.on_tx_space = self._tx_space_available
        #: small-message receive optimization (ablation knob)
        self.small_message_optimization = True
        #: next U-Net port ID to hand out
        self._next_port = 1
        self.messages_sent = 0
        self.messages_received = 0
        self.no_buffer_drops = 0
        self.recv_queue_drops = 0
        self.quarantine_drops = 0
        self.ip_header_drops = 0

    # ------------------------------------------------------------------ API
    @property
    def max_pdu(self) -> int:
        # encapsulation headers shrink the usable PDU
        return UNET_FE_IP_MAX_PDU if self.ip_address is not None else UNET_FE_MAX_PDU

    @property
    def host_send_overhead_us(self) -> float:
        t = self.timings
        return (
            self.cpu.trap_entry_us
            + t.check_send_params_us
            + t.ethernet_header_setup_us
            + t.ring_descriptor_setup_us
            + t.issue_poll_demand_us
            + t.free_ring_descriptor_us
            + t.free_send_queue_entry_us
            + self.cpu.trap_return_us
        )

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if port >= COLLECTIVE_PORT:
            # 0xFF belongs to the NIC-resident collective engine
            raise RuntimeError("out of U-Net port IDs on this interface")
        return port

    # ---------------------------------------------------- collective engine
    def register_collective(self, handler) -> None:
        """Install the NIC-resident collective engine's packet handler."""
        self.nic.collective_rx = handler

    def send_collective(self, dst_mac: MacAddress, payload: bytes) -> None:
        """NIC-originated collective send (no trap, no kernel service)."""
        self.nic.send_collective(EthernetFrame(
            dst_mac=dst_mac, src_mac=self.mac,
            dst_port=COLLECTIVE_PORT, src_port=COLLECTIVE_PORT,
            payload=payload,
        ))

    def attach(self, attachment) -> None:
        self.nic.attach(attachment)

    def rx_fault_hooks(self):
        """Delivery hook points a fault pipeline may interpose on.

        One per controller, so bonded (dual-NIC) hosts are perturbed on
        both rails.  Returns ``(owner, attribute_name)`` pairs.
        """
        return [(nic, "_on_frame") for nic in self.nics]

    # ------------------------------------------------------------- transmit
    def kick(self, endpoint: Endpoint) -> Generator:
        """The fast trap: service the endpoint's entire send queue."""
        t = self.timings
        yield self.kernel_cpu.acquire()
        try:
            start = self.sim.now
            yield self.sim.timeout(self.cpu.trap_entry_us)
            self.trace.record(start, self.cpu.trap_entry_us, TX_TRACE, "trap entry overhead", begin=True)
            serviced = 0
            while True:
                if self.nic.tx_ring.is_full:
                    # device ring exhausted: leave the rest on the U-Net
                    # send queue; the TX-done path resumes service
                    self._deferred_service.add(endpoint.id)
                    break
                descriptor = endpoint.take_send_descriptor()
                if descriptor is None:
                    break
                yield from self._service_send(endpoint, descriptor)
                serviced += 1
            if serviced:
                yield from self._step(TX_TRACE, "issue poll demand to DC21140", t.issue_poll_demand_us)
                self.nic.poll_demand()
                # steady state: each trap also reclaims the rings entries
                # of previously transmitted messages (Fig. 3 steps 6-7)
                yield from self._step(TX_TRACE, "free send ring descriptor of previous message", t.free_ring_descriptor_us)
                yield from self._step(TX_TRACE, "free U-Net send queue entry of previous message", t.free_send_queue_entry_us)
            yield from self._step(TX_TRACE, "return from trap", self.cpu.trap_return_us)
        finally:
            self.kernel_cpu.release()

    def _service_send(self, endpoint: Endpoint, descriptor) -> Generator:
        t = self.timings
        yield from self._step(TX_TRACE, "check U-Net send parameters", t.check_send_params_us)
        binding = endpoint.channels.get(descriptor.channel_id)
        if binding is None:
            return  # protection: drop silently, as hardware would
        payload = b"".join(
            endpoint.buffers.buffer(idx).read(length) for idx, length in descriptor.segments
        )
        yield from self._step(TX_TRACE, "Ethernet header set-up", t.ethernet_header_setup_us)
        from .ip import IpTag  # local import: optional feature

        if isinstance(binding.tag, IpTag):
            tag: IpTag = binding.tag
            yield from self._step(TX_TRACE, "IPv4/UDP encapsulation", t.ip_encap_us)
            datagram = build_ipv4_udp(tag.src_ip, tag.dst_ip, tag.src_udp, tag.dst_udp, payload)
            # U-Net port 0 marks IP-encapsulated traffic on the wire
            frame = EthernetFrame(
                dst_mac=tag.next_hop_mac,
                src_mac=self.mac,
                dst_port=0,
                src_port=0,
                payload=datagram,
            )
        else:
            eth_tag: EthernetTag = binding.tag
            frame = EthernetFrame(
                dst_mac=eth_tag.dst_mac,
                src_mac=eth_tag.src_mac,
                dst_port=eth_tag.dst_port,
                src_port=eth_tag.src_port,
                payload=payload,
            )
        yield from self._step(TX_TRACE, "device send ring descriptor set-up", t.ring_descriptor_setup_us)

        def complete(d=descriptor, ep=endpoint):
            ep.send_completed(d)

        self.nic.tx_ring.push(TxRingDescriptor(frame=frame, on_complete=complete))
        binding.messages_sent += 1
        self.messages_sent += 1

    def _tx_space_available(self) -> None:
        """TX-done: resume servicing send queues the ring cut short."""
        if not self._deferred_service or self.nic.tx_ring.is_full:
            return
        pending, self._deferred_service = self._deferred_service, set()
        for endpoint_id in pending:
            endpoint = next((e for e in self.endpoints if e.id == endpoint_id), None)
            if endpoint is not None and not endpoint.send_queue.is_empty:
                self.sim.process(self.kick(endpoint), name=f"{self.name}.txdone-service")

    def _step(self, category: str, label: str, duration: float) -> Generator:
        start = self.sim.now
        yield self.sim.timeout(duration)
        self.trace.record(start, duration, category, label)

    # -------------------------------------------------------------- receive
    def _interrupt(self) -> None:
        self._irq.assert_irq()

    def _rx_handler(self) -> Generator:
        """The kernel receive interrupt routine (Figure 4)."""
        t = self.timings
        yield self.kernel_cpu.acquire()
        try:
            self.trace.record(self.sim.now - self.cpu.interrupt_entry_us, self.cpu.interrupt_entry_us,
                              RX_TRACE, "interrupt handler entry", begin=True)
            while True:
                yield from self._step(RX_TRACE, "poll device recv ring", t.poll_recv_ring_us)
                slot = None
                for nic in self.nics:
                    slot = nic.rx_ring.try_pop()
                    if slot is not None:
                        break
                if slot is None:
                    break
                frame = slot.frame
                payload = frame.payload
                if frame.dst_port == 0:
                    # IPv4-encapsulated traffic (port 0 marker)
                    yield from self._step(RX_TRACE, "IPv4/UDP validation", t.ip_parse_us)
                    try:
                        src_ip, dst_ip, src_udp, dst_udp, _ttl, payload = parse_ipv4_udp(payload)
                    except IpHeaderError:
                        self.ip_header_drops += 1
                        continue
                    yield from self._step(RX_TRACE, "demux to correct endpoint", t.demux_us)
                    target = self.demux.lookup((src_ip, src_udp, dst_udp))
                else:
                    yield from self._step(RX_TRACE, "demux to correct endpoint", t.demux_us)
                    target = self.demux.lookup((frame.src_mac, frame.src_port, frame.dst_port))
                if target is None:
                    continue
                endpoint, channel_id = target
                if endpoint.quarantined:
                    # containment: shed before any alloc/copy work so a
                    # misbehaving endpoint stops consuming kernel time
                    self.quarantine_drops += 1
                    endpoint.note_drop("quarantine_drops")
                    continue
                yield from self._step(RX_TRACE, "alloc+init U-Net recv descr", t.alloc_init_recv_descriptor_us)
                yield from self._deliver_payload(endpoint, channel_id, payload)
                yield from self._step(RX_TRACE, "bump device recv ring", t.bump_recv_ring_us)
            self.trace.record(self.sim.now, self.cpu.interrupt_return_us, RX_TRACE, "return from interrupt")
        finally:
            self.kernel_cpu.release()

    def _deliver_payload(self, endpoint: Endpoint, channel_id: int, payload: bytes) -> Generator:
        t = self.timings
        if self.small_message_optimization and len(payload) <= SMALL_MESSAGE_MAX:
            copy_us = t.copy_fixed_us + self.cpu.copy_time(len(payload))
            yield from self._step(RX_TRACE, f"copy {len(payload)} byte message", copy_us)
            descriptor = RecvDescriptor(channel_id=channel_id, length=len(payload), inline=payload)
        else:
            segments = []
            offset = 0
            size = endpoint.buffers.buffer_size
            while offset < len(payload):
                yield from self._step(RX_TRACE, "allocate U-Net recv buffer", t.alloc_unet_buffer_us)
                index = endpoint.take_free_buffer()
                if index is None:
                    self.no_buffer_drops += 1
                    endpoint.note_drop("no_buffer_drops")
                    for idx, _l in segments:
                        endpoint.free_queue.try_push(idx)
                    return
                chunk = payload[offset : offset + size]
                copy_us = t.copy_fixed_us + self.cpu.copy_time(len(chunk))
                yield from self._step(RX_TRACE, f"copy {len(chunk)} byte message", copy_us)
                buf = endpoint.buffers.buffer(index)
                buf.clear()
                buf.write(chunk)
                segments.append((index, len(chunk)))
                offset += len(chunk)
            descriptor = RecvDescriptor(channel_id=channel_id, length=len(payload), segments=segments)
        if not endpoint.deliver(descriptor):
            self.recv_queue_drops += 1
            for idx, _l in descriptor.segments:
                endpoint.free_queue.try_push(idx)
        else:
            self.messages_received += 1
