"""Ethernet framing.

U-Net/FE message tags are a 48-bit MAC address plus a one-byte U-Net
port ID (Section 4.3.1).  The two port bytes (destination and source)
ride in the frame ahead of the user payload, which is why the maximum
U-Net/FE PDU is 1498 bytes of user data inside the 1500-byte Ethernet
payload, and why a 40-byte message becomes a 60-byte (minimum-size)
Ethernet frame: 14 bytes of Ethernet header + 46 bytes of padded
payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EthernetFrame",
    "MacAddress",
    "ETH_HEADER_SIZE",
    "ETH_CRC_SIZE",
    "ETH_MIN_PAYLOAD",
    "ETH_MAX_PAYLOAD",
    "ETH_PREAMBLE_BYTES",
    "ETH_IFG_BYTES",
    "UNET_FE_HEADER_SIZE",
    "UNET_FE_MAX_PDU",
    "COLLECTIVE_PORT",
    "wire_time_us",
]

ETH_HEADER_SIZE = 14
ETH_CRC_SIZE = 4
ETH_MIN_PAYLOAD = 46
ETH_MAX_PAYLOAD = 1500
ETH_PREAMBLE_BYTES = 8
ETH_IFG_BYTES = 12

#: the two U-Net port bytes (destination, source) inside the payload
UNET_FE_HEADER_SIZE = 2
#: "1498 bytes, the maximum PDU supported by U-Net/FE" (Section 4.4.2)
UNET_FE_MAX_PDU = ETH_MAX_PAYLOAD - UNET_FE_HEADER_SIZE

#: U-Net port reserved for the NIC-resident collective engine: frames
#: addressed to it are consumed on the controller itself and never cross
#: the bus (port 0 is likewise reserved, for IP encapsulation)
COLLECTIVE_PORT = 0xFF

MacAddress = int  # 48-bit addresses kept as ints for cheap hashing


@dataclass
class EthernetFrame:
    """One Ethernet frame carrying a U-Net/FE message."""

    dst_mac: MacAddress
    src_mac: MacAddress
    dst_port: int
    src_port: int
    payload: bytes
    corrupted: bool = False

    def __post_init__(self) -> None:
        if len(self.payload) > UNET_FE_MAX_PDU:
            raise ValueError(f"payload of {len(self.payload)} bytes exceeds U-Net/FE PDU {UNET_FE_MAX_PDU}")
        for port in (self.dst_port, self.src_port):
            if not 0 <= port <= 0xFF:
                raise ValueError(f"U-Net port {port} outside one byte")

    @property
    def frame_payload_bytes(self) -> int:
        """Ethernet payload: the U-Net header plus the user data, padded."""
        return max(ETH_MIN_PAYLOAD, UNET_FE_HEADER_SIZE + len(self.payload))

    @property
    def frame_bytes(self) -> int:
        """Header-to-CRC frame size (what 'a 60-byte frame' counts)."""
        return ETH_HEADER_SIZE + self.frame_payload_bytes

    @property
    def wire_bytes(self) -> int:
        """Bytes of medium occupancy, including preamble, CRC and the IFG."""
        return ETH_PREAMBLE_BYTES + self.frame_bytes + ETH_CRC_SIZE + ETH_IFG_BYTES


def wire_time_us(frame: EthernetFrame, rate_mbps: float = 100.0) -> float:
    """Medium occupancy time of ``frame`` at ``rate_mbps``.

    A 40-byte message rides a minimum-size 60-byte frame (the paper's
    Figure 3 caption):

    >>> f = EthernetFrame(dst_mac=1, src_mac=2, dst_port=1, src_port=1,
    ...                   payload=b"m" * 40)
    >>> f.frame_bytes
    60
    >>> round(wire_time_us(f), 2)  # + preamble, CRC, inter-frame gap
    6.72
    """
    return frame.wire_bytes * 8 / rate_mbps
