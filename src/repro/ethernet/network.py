"""Fast Ethernet cluster topology builders.

The paper benchmarks three configurations: a 100BaseTX broadcast hub, a
Bay Networks 28115 switch, and a Cabletron FN100 switch.  Both builders
share a channel-setup service: a communication channel is created by
registering the (MAC address, U-Net port) tag pairs with the kernel on
both hosts (Section 4.3.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.api import Host, UserEndpoint
from ..core.channels import EthernetTag, register_channel
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel
from ..sim import RngRegistry, Simulator, TraceRecorder
from .dc21140 import NicTimings
from .medium import SharedMedium
from .switch import BAY_28115, FN100, EthernetSwitch, SwitchModel
from .unet_fe import FeTimings, UNetFeBackend

__all__ = ["EthernetChannelService", "HubNetwork", "SwitchedNetwork", "RoutedFeNetwork"]


class EthernetChannelService:
    """The OS service that sets up U-Net/FE communication channels."""

    @staticmethod
    def connect(a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Create a duplex channel; returns channel ids on (a, b)."""
        backend_a: UNetFeBackend = a.host.backend
        backend_b: UNetFeBackend = b.host.backend
        port_a = backend_a.allocate_port()
        port_b = backend_b.allocate_port()
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        tag_a = EthernetTag(dst_mac=backend_b.mac, dst_port=port_b, src_mac=backend_a.mac, src_port=port_a)
        tag_b = EthernetTag(dst_mac=backend_a.mac, dst_port=port_a, src_mac=backend_b.mac, src_port=port_b)
        register_channel(a.endpoint, channel_a, tag_a, peer=b.host.name)
        register_channel(b.endpoint, channel_b, tag_b, peer=a.host.name)
        backend_a.demux.register((backend_b.mac, port_b, port_a), a.endpoint, channel_a)
        backend_b.demux.register((backend_a.mac, port_a, port_b), b.endpoint, channel_b)
        return channel_a, channel_b


class _FeNetworkBase:
    """Shared host bookkeeping for the two topologies."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.hosts: List[Host] = []
        self._next_mac = 0x02_00_00_00_00_01  # locally administered

    def _new_backend(
        self,
        name: str,
        cpu: CpuModel,
        timings: Optional[FeTimings],
        nic_timings: Optional[NicTimings],
        bus: BusModel,
        trace: Optional[TraceRecorder],
    ) -> UNetFeBackend:
        mac = self._next_mac
        self._next_mac += 1
        return UNetFeBackend(
            self.sim,
            name=f"{name}.unet_fe",
            cpu=cpu,
            mac=mac,
            timings=timings,
            nic_timings=nic_timings,
            bus=bus,
            trace=trace,
        )

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        return EthernetChannelService.connect(a, b)


class HubNetwork(_FeNetworkBase):
    """Hosts on a shared 100BaseTX broadcast hub (half duplex, CSMA/CD)."""

    def __init__(self, sim: Simulator, rate_mbps: float = 100.0, rng: Optional[RngRegistry] = None) -> None:
        super().__init__(sim)
        self.medium = SharedMedium(sim, rate_mbps=rate_mbps, rng=rng)

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        timings: Optional[FeTimings] = None,
        nic_timings: Optional[NicTimings] = None,
        bus: BusModel = PCI_BUS,
        trace: Optional[TraceRecorder] = None,
    ) -> Host:
        backend = self._new_backend(name, cpu, timings, nic_timings, bus, trace)
        backend.attach(self.medium.attach())
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host


class RoutedFeNetwork(_FeNetworkBase):
    """Multiple switched segments joined by a software IP router.

    Implements the scalability extension of Section 4.4.3: U-Net/FE
    channels are IPv4/UDP-encapsulated so messages can cross IP routers
    (at the "considerable communication overhead" the paper predicts —
    measured by ``benchmarks/test_ablation_ip_encap.py``).
    """

    def __init__(
        self,
        sim: Simulator,
        segments: int = 2,
        model: SwitchModel = BAY_28115,
        router_forward_us: float = 55.0,
        rate_mbps: float = 100.0,
    ) -> None:
        from .ip import IpRouter  # optional feature

        super().__init__(sim)
        if segments < 1:
            raise ValueError("need at least one segment")
        self.switches = [EthernetSwitch(sim, model, rate_mbps=rate_mbps) for _ in range(segments)]
        self.router = IpRouter(sim, forward_us=router_forward_us)
        for index, switch in enumerate(self.switches):
            mac = self._next_mac
            self._next_mac += 1
            # segment index -> 10.0.<index>.0/24
            network = (10 << 24) | (index << 8)
            self.router.attach_segment(switch, mac, network=network, mask=0xFFFFFF00)
        self._hosts_per_segment = [0] * segments
        self._segment_of = {}
        self._next_udp = {}

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        segment: int = 0,
        timings: Optional[FeTimings] = None,
        nic_timings: Optional[NicTimings] = None,
        bus: BusModel = PCI_BUS,
        trace: Optional[TraceRecorder] = None,
    ) -> Host:
        if not 0 <= segment < len(self.switches):
            raise ValueError(f"no such segment {segment}")
        self._hosts_per_segment[segment] += 1
        ip = (10 << 24) | (segment << 8) | self._hosts_per_segment[segment]
        backend = self._new_backend(name, cpu, timings, nic_timings, bus, trace)
        backend.ip_address = ip
        backend.attach(self.switches[segment].attach(backend.mac))
        self.router.register_host(ip, backend.mac)
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        self._segment_of[backend] = segment
        self._next_udp[backend] = 0x4000
        return host

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """IPv4-encapsulated duplex channel, routed if segments differ."""
        from .ip import IpTag  # optional feature

        backend_a: UNetFeBackend = a.host.backend
        backend_b: UNetFeBackend = b.host.backend
        udp_a = self._alloc_udp(backend_a)
        udp_b = self._alloc_udp(backend_b)
        seg_a = self._segment_of[backend_a]
        seg_b = self._segment_of[backend_b]
        next_hop_ab = backend_b.mac if seg_a == seg_b else self.router.port_mac(seg_a)
        next_hop_ba = backend_a.mac if seg_a == seg_b else self.router.port_mac(seg_b)
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        tag_a = IpTag(dst_ip=backend_b.ip_address, dst_udp=udp_b,
                      src_ip=backend_a.ip_address, src_udp=udp_a, next_hop_mac=next_hop_ab)
        tag_b = IpTag(dst_ip=backend_a.ip_address, dst_udp=udp_a,
                      src_ip=backend_b.ip_address, src_udp=udp_b, next_hop_mac=next_hop_ba)
        register_channel(a.endpoint, channel_a, tag_a, peer=b.host.name)
        register_channel(b.endpoint, channel_b, tag_b, peer=a.host.name)
        backend_a.demux.register((backend_b.ip_address, udp_b, udp_a), a.endpoint, channel_a)
        backend_b.demux.register((backend_a.ip_address, udp_a, udp_b), b.endpoint, channel_b)
        return channel_a, channel_b

    def _alloc_udp(self, backend: UNetFeBackend) -> int:
        port = self._next_udp[backend]
        self._next_udp[backend] += 1
        return port


class SwitchedNetwork(_FeNetworkBase):
    """Hosts on a Fast Ethernet switch (full duplex links)."""

    def __init__(self, sim: Simulator, model: SwitchModel = BAY_28115, rate_mbps: float = 100.0) -> None:
        super().__init__(sim)
        self.switch = EthernetSwitch(sim, model, rate_mbps=rate_mbps)

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        timings: Optional[FeTimings] = None,
        nic_timings: Optional[NicTimings] = None,
        bus: BusModel = PCI_BUS,
        trace: Optional[TraceRecorder] = None,
        propagation_us: float = 0.5,
    ) -> Host:
        backend = self._new_backend(name, cpu, timings, nic_timings, bus, trace)
        backend.attach(self.switch.attach(backend.mac, propagation_us=propagation_us))
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host
