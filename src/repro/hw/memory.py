"""Buffer areas and pinned memory regions.

A U-Net *buffer area* (Section 3.1) is a contiguous region of pinned
memory owned by one endpoint, divided by the application into fixed-size
buffers.  The architecture deliberately leaves buffer management to the
application; this module provides the storage plus the simple fixed-size
allocator our Active Messages layer uses on top.

Buffers hold real bytes so that corruption, CRC checking, and message
reassembly are exercised for real.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["Buffer", "BufferArea", "BufferAreaError"]


class BufferAreaError(Exception):
    """Invalid buffer-area operation (bad offset, double free, exhaustion)."""


class Buffer:
    """A view of one fixed-size buffer within a :class:`BufferArea`."""

    __slots__ = ("area", "index", "offset", "size", "length")

    def __init__(self, area: "BufferArea", index: int) -> None:
        self.area = area
        self.index = index
        self.offset = index * area.buffer_size
        self.size = area.buffer_size
        #: number of valid payload bytes currently stored
        self.length = 0

    def write(self, data: bytes, at: int = 0) -> None:
        """Store ``data`` into the buffer starting at byte ``at``."""
        if at < 0 or at + len(data) > self.size:
            raise BufferAreaError(
                f"write of {len(data)} bytes at {at} overruns buffer of {self.size}"
            )
        self.area._storage[self.offset + at : self.offset + at + len(data)] = data
        self.length = max(self.length, at + len(data))

    def append(self, data: bytes) -> None:
        """Append ``data`` after the bytes already stored (cell reassembly)."""
        self.write(data, at=self.length)

    def read(self, nbytes: Optional[int] = None) -> bytes:
        """The first ``nbytes`` (default: all valid) payload bytes."""
        n = self.length if nbytes is None else nbytes
        if n < 0 or n > self.size:
            raise BufferAreaError(f"read of {n} bytes from buffer of {self.size}")
        return bytes(self.area._storage[self.offset : self.offset + n])

    def view(self, nbytes: Optional[int] = None) -> memoryview:
        """Like :meth:`read` but zero-copy: a memoryview into the pinned
        area, valid until the buffer is rewritten or recycled."""
        n = self.length if nbytes is None else nbytes
        if n < 0 or n > self.size:
            raise BufferAreaError(f"view of {n} bytes from buffer of {self.size}")
        return self.area.storage_view[self.offset : self.offset + n]

    def clear(self) -> None:
        self.length = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Buffer #{self.index} len={self.length}/{self.size}>"


class BufferArea:
    """Pinned message-buffer region of one U-Net endpoint."""

    def __init__(self, num_buffers: int, buffer_size: int) -> None:
        if num_buffers <= 0 or buffer_size <= 0:
            raise ValueError("num_buffers and buffer_size must be positive")
        self.num_buffers = num_buffers
        self.buffer_size = buffer_size
        self._storage = bytearray(num_buffers * buffer_size)
        self._buffers = [Buffer(self, i) for i in range(num_buffers)]
        self._free: List[int] = list(range(num_buffers))
        self._allocated = [False] * num_buffers
        self._view: Optional[memoryview] = None

    @property
    def storage_view(self) -> memoryview:
        """One cached memoryview over the whole area (created on first
        zero-copy access; the export pins the storage, which is the
        point — buffer areas are pinned memory)."""
        if self._view is None:
            self._view = memoryview(self._storage)
        return self._view

    @property
    def total_bytes(self) -> int:
        return len(self._storage)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def buffer(self, index: int) -> Buffer:
        """Direct access to buffer ``index`` (no allocation bookkeeping)."""
        if not 0 <= index < self.num_buffers:
            raise BufferAreaError(f"buffer index {index} out of range")
        return self._buffers[index]

    def alloc(self) -> Buffer:
        """Take a buffer from the free pool."""
        if not self._free:
            raise BufferAreaError("buffer area exhausted")
        index = self._free.pop()
        self._allocated[index] = True
        buf = self._buffers[index]
        buf.clear()
        return buf

    def try_alloc(self) -> Optional[Buffer]:
        return self.alloc() if self._free else None

    def free(self, buf: Buffer) -> None:
        """Return ``buf`` to the free pool."""
        if buf.area is not self:
            raise BufferAreaError("buffer belongs to a different area")
        if not self._allocated[buf.index]:
            raise BufferAreaError(f"double free of buffer {buf.index}")
        self._allocated[buf.index] = False
        self._free.append(buf.index)
