"""Host and co-processor CPU cost models.

The paper's performance analysis is phrased entirely in per-operation
costs on its machines (120 MHz Pentium trap/copy costs in Figures 3-4,
the 25 MHz i960's ~10 us send / ~13 us receive overheads, SPARC vs
Pentium integer/floating-point ratios in Section 5.2).  This module
gathers those constants so every device/OS model charges time from a
single calibrated source.

Calibration notes (all values from the paper unless cited otherwise):

* Pentium memcpy speed is "about 70 Mbytes/sec", and measured copy cost
  grows "1.42 us for every additional 100 bytes" -- 70.4 MB/s.
* A null x86 trap gate is "under 1 us" on the 120 MHz Pentium; the
  Figure 3 analysis attributes ~20% of the 4.2 us send path to trap
  entry + return.
* Frame-in-memory to interrupt-handler invocation is "roughly 2 us".
* Split-C discussion: "SPARC floating-point operations outperform those
  of the Pentium" and "Pentium integer operations outperform those of
  the SPARC".  The per-op rates below encode that ordering; absolute
  values are era-plausible (SuperSPARC ~1 flop/cycle peak vs Pentium's
  weaker FPU pipeline; Pentium's dual integer pipes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CpuModel",
    "PENTIUM_90",
    "PENTIUM_120",
    "SPARCSTATION_10",
    "SPARCSTATION_20",
    "I960_25",
]


@dataclass(frozen=True)
class CpuModel:
    """Per-operation timing model of a processor.

    All times are microseconds; rates are per-microsecond.
    """

    name: str
    clock_mhz: float
    #: sustained memory-copy bandwidth, MB/s (drives receive-path copies)
    memcpy_mbytes_per_s: float
    #: fixed cost of entering a copy loop (function call, setup)
    memcpy_setup_us: float
    #: fast trap gate entry / return (U-Net/FE send path, Fig. 3)
    trap_entry_us: float
    trap_return_us: float
    #: device interrupt to handler entry (U-Net/FE receive path, Fig. 4)
    interrupt_entry_us: float
    interrupt_return_us: float
    #: sustained integer-operation rate (sort kernels), ops/us
    int_ops_per_us: float
    #: sustained double-precision FP rate (matmul kernel), flops/us
    flops_per_us: float

    def cycles(self, n_cycles: float) -> float:
        """Time for ``n_cycles`` clock cycles, in microseconds."""
        return n_cycles / self.clock_mhz

    def copy_time(self, nbytes: int) -> float:
        """Time for an in-memory copy of ``nbytes`` bytes."""
        if nbytes <= 0:
            return 0.0
        return self.memcpy_setup_us + nbytes / self.memcpy_mbytes_per_s

    def int_op_time(self, ops: float) -> float:
        """Time for ``ops`` integer operations."""
        return ops / self.int_ops_per_us

    def flop_time(self, flops: float) -> float:
        """Time for ``flops`` double-precision floating point operations."""
        return flops / self.flops_per_us

    def scaled(self, factor: float) -> "CpuModel":
        """A uniformly ``factor``-times-faster variant (for what-if runs)."""
        return replace(
            self,
            name=f"{self.name} x{factor:g}",
            clock_mhz=self.clock_mhz * factor,
            memcpy_mbytes_per_s=self.memcpy_mbytes_per_s * factor,
            memcpy_setup_us=self.memcpy_setup_us / factor,
            trap_entry_us=self.trap_entry_us / factor,
            trap_return_us=self.trap_return_us / factor,
            interrupt_entry_us=self.interrupt_entry_us / factor,
            interrupt_return_us=self.interrupt_return_us / factor,
            int_ops_per_us=self.int_ops_per_us * factor,
            flops_per_us=self.flops_per_us * factor,
        )


#: 120 MHz Pentium (the seven fast FE-cluster nodes and the microbenchmark
#: host).  memcpy 70.4 MB/s reproduces the 1.42 us / 100 B copy slope.
PENTIUM_120 = CpuModel(
    name="Pentium-120",
    clock_mhz=120.0,
    memcpy_mbytes_per_s=70.4,
    memcpy_setup_us=0.18,
    trap_entry_us=0.60,
    trap_return_us=0.30,
    interrupt_entry_us=0.56,
    interrupt_return_us=0.40,
    int_ops_per_us=68.0,
    flops_per_us=7.0,
)

#: The one slower node in the paper's FE cluster.
PENTIUM_90 = CpuModel(
    name="Pentium-90",
    clock_mhz=90.0,
    memcpy_mbytes_per_s=55.0,
    memcpy_setup_us=0.24,
    trap_entry_us=0.80,
    trap_return_us=0.40,
    interrupt_entry_us=0.75,
    interrupt_return_us=0.53,
    int_ops_per_us=51.0,
    flops_per_us=5.3,
)

#: SPARCstation 20 (four of the ATM-cluster nodes).  Slower integer,
#: faster double-precision FP than the Pentium (paper Section 5.2).
SPARCSTATION_20 = CpuModel(
    name="SPARCstation-20",
    clock_mhz=60.0,
    memcpy_mbytes_per_s=45.0,
    memcpy_setup_us=0.30,
    trap_entry_us=1.20,
    trap_return_us=0.60,
    interrupt_entry_us=1.50,
    interrupt_return_us=0.80,
    # sort kernels are memory-bound, which narrows the SPARC's
    # SPECint-ratio deficit against the Pentium (paper Section 5.2 still
    # holds: Pentium integer beats SPARC)
    int_ops_per_us=58.0,
    flops_per_us=11.0,
)

#: SPARCstation 10 (the other four ATM-cluster nodes).
SPARCSTATION_10 = CpuModel(
    name="SPARCstation-10",
    clock_mhz=50.0,
    memcpy_mbytes_per_s=38.0,
    memcpy_setup_us=0.35,
    trap_entry_us=1.40,
    trap_return_us=0.70,
    interrupt_entry_us=1.80,
    interrupt_return_us=0.95,
    int_ops_per_us=47.0,
    flops_per_us=9.5,
)

#: The 25 MHz Intel i960 on the Fore SBA-200/PCA-200.  "significantly
#: slower than the Pentium host"; its firmware costs live in
#: repro.atm.pca200, charged in i960 cycles through this model.
I960_25 = CpuModel(
    name="i960-25",
    clock_mhz=25.0,
    memcpy_mbytes_per_s=25.0,
    memcpy_setup_us=0.4,
    trap_entry_us=0.0,
    trap_return_us=0.0,
    interrupt_entry_us=2.0,
    interrupt_return_us=1.0,
    int_ops_per_us=12.0,
    flops_per_us=0.5,
)
