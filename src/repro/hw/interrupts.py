"""Interrupt delivery from devices to the (simulated) kernel.

The DC21140 raises an interrupt per received frame; the kernel's U-Net
receive routine then drains the device ring, amortizing one handler
invocation over every pending frame (Section 4.3.3).  The controller
models exactly that: an assertion while the handler is pending or
running is *coalesced* — the handler re-checks the ring before
returning, so no frame is lost and no redundant handler runs.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..sim import Simulator
from .cpu import CpuModel

__all__ = ["InterruptController"]


class InterruptController:
    """Delivers device interrupts to a kernel handler process.

    ``handler_factory`` returns a fresh generator for each handler
    invocation; the generator runs with the interrupt-entry latency
    already charged.  Devices call :meth:`assert_irq`.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuModel,
        handler_factory: Callable[[], Generator],
        name: str = "irq",
    ) -> None:
        self.sim = sim
        self.cpu = cpu
        self.handler_factory = handler_factory
        self.name = name
        self._pending = False
        self._running = False
        self._rerun = False
        self.interrupts_asserted = 0
        self.handler_runs = 0

    @property
    def busy(self) -> bool:
        return self._pending or self._running

    def assert_irq(self) -> None:
        """Signal the interrupt line.

        Coalesced if a handler run is already pending or in progress.
        """
        self.interrupts_asserted += 1
        if self._running:
            self._rerun = True
            return
        if self._pending:
            return
        self._pending = True
        self.sim.process(self._dispatch(), name=f"{self.name}-dispatch")

    def _dispatch(self) -> Generator:
        yield self.sim.timeout(self.cpu.interrupt_entry_us)
        self._pending = False
        self._running = True
        while True:
            self._rerun = False
            self.handler_runs += 1
            yield self.sim.process(self.handler_factory(), name=f"{self.name}-handler")
            if not self._rerun:
                break
        yield self.sim.timeout(self.cpu.interrupt_return_us)
        self._running = False
