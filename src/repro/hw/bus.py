"""I/O bus and DMA timing models.

The PCA-200 sits on PCI (96-byte DMA bursts, per the paper); the older
SBA-200 used SBus (32-byte bursts).  The DC21140 is a PCI bus master.
DMA time is modelled as a fixed per-transfer setup cost plus a per-burst
arbitration cost plus serialization at the bus's sustained bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim import Resource, Simulator

__all__ = ["BusModel", "PCI_BUS", "SBUS", "DmaEngine"]


@dataclass(frozen=True)
class BusModel:
    """Timing parameters of an I/O bus."""

    name: str
    bandwidth_mbytes_per_s: float
    burst_bytes: int
    #: one-time transfer setup (descriptor fetch, address phase)
    setup_us: float
    #: re-arbitration cost paid once per burst
    per_burst_us: float

    def transfer_time(self, nbytes: int) -> float:
        """Bus time occupied by a DMA of ``nbytes`` bytes."""
        if nbytes <= 0:
            return self.setup_us
        bursts = max(1, math.ceil(nbytes / self.burst_bytes))
        return self.setup_us + bursts * self.per_burst_us + nbytes / self.bandwidth_mbytes_per_s


#: 32-bit 33 MHz PCI: 132 MB/s peak; the paper notes 96-byte bursts for
#: the PCA-200 and full-frame bus-master DMA for the DC21140.
PCI_BUS = BusModel(
    name="PCI-32/33",
    bandwidth_mbytes_per_s=110.0,
    burst_bytes=96,
    setup_us=0.30,
    per_burst_us=0.12,
)

#: SBus (SPARCstation hosts, SBA-200): 32-byte bursts, lower throughput.
SBUS = BusModel(
    name="SBus",
    bandwidth_mbytes_per_s=45.0,
    burst_bytes=32,
    setup_us=0.45,
    per_burst_us=0.18,
)


class DmaEngine:
    """A DMA master on a shared bus.

    Transfers from different devices on the same bus serialize through a
    shared :class:`~repro.sim.Resource`, modelling bus arbitration.
    """

    def __init__(self, sim: Simulator, bus: BusModel, shared_bus: Resource = None, name: str = "dma") -> None:
        self.sim = sim
        self.bus = bus
        self.name = name
        self._bus_resource = shared_bus or Resource(sim, capacity=1, name=f"{bus.name}-arb")
        self.bytes_transferred = 0
        self.transfers = 0

    @property
    def bus_resource(self) -> Resource:
        return self._bus_resource

    def transfer(self, nbytes: int):
        """Process: acquire the bus and move ``nbytes`` across it."""
        yield self._bus_resource.acquire()
        try:
            yield self.sim.timeout(self.bus.transfer_time(nbytes))
            self.bytes_transferred += max(0, nbytes)
            self.transfers += 1
        finally:
            self._bus_resource.release()
