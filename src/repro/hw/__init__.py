"""Host hardware models: CPUs, buses/DMA, buffer memory, interrupts."""

from .bus import PCI_BUS, SBUS, BusModel, DmaEngine
from .cpu import (
    I960_25,
    PENTIUM_90,
    PENTIUM_120,
    SPARCSTATION_10,
    SPARCSTATION_20,
    CpuModel,
)
from .interrupts import InterruptController
from .memory import Buffer, BufferArea, BufferAreaError

__all__ = [
    "CpuModel",
    "PENTIUM_90",
    "PENTIUM_120",
    "SPARCSTATION_10",
    "SPARCSTATION_20",
    "I960_25",
    "BusModel",
    "PCI_BUS",
    "SBUS",
    "DmaEngine",
    "Buffer",
    "BufferArea",
    "BufferAreaError",
    "InterruptController",
]
