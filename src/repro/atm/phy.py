"""ATM physical links.

Two PHYs from the paper:

* **OC-3c SONET** — 155.52 Mb/s gross, of which SONET section/line/path
  overhead leaves a 149.76 Mb/s payload envelope for cells.  With the
  5/53 cell-header tax the maximum AAL5 payload rate is ~135.6 Mb/s; the
  paper quotes "not 155 Mbps, but rather 138 Mbps" — same ballpark.
* **140 Mb/s TAXI** — no SONET framing; cells go at 140 Mb/s line rate,
  for a ~126.8 Mb/s AAL5 payload ceiling ("the maximum achievable
  bandwidth for the 140Mbps TAXI link" is quoted as 120 Mb/s once
  firmware costs are added).

A :class:`CellLink` is a unidirectional cell pipe: cells serialize at
the line's cell time, then arrive after the propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Simulator
from .cells import CELL_PAYLOAD_SIZE, CELL_SIZE, Cell

__all__ = ["AtmPhy", "OC3_SONET", "TAXI_140", "CellLink"]


@dataclass(frozen=True)
class AtmPhy:
    """Line-rate model of an ATM PHY."""

    name: str
    gross_mbps: float
    #: fraction of the gross rate available to carry cells (SONET tax)
    payload_fraction: float
    #: fixed per-link-traversal latency of the framer/delineation logic.
    #: The paper measures 89 us RTT over OC-3c SONET against 65 us for the
    #: same firmware over TAXI and attributes the difference to "OC-3c
    #: SONET framing"; this constant carries that overhead.
    framer_latency_us: float = 0.0

    @property
    def cell_rate_mbps(self) -> float:
        return self.gross_mbps * self.payload_fraction

    @property
    def cell_time_us(self) -> float:
        """Time to serialize one 53-byte cell."""
        return CELL_SIZE * 8 / self.cell_rate_mbps

    @property
    def max_payload_mbps(self) -> float:
        """AAL5 payload ceiling (cell-header tax applied)."""
        return self.cell_rate_mbps * CELL_PAYLOAD_SIZE / CELL_SIZE


OC3_SONET = AtmPhy(
    name="OC-3c/SONET",
    gross_mbps=155.52,
    payload_fraction=149.76 / 155.52,
    framer_latency_us=4.0,
)
TAXI_140 = AtmPhy(name="TAXI-140", gross_mbps=140.0, payload_fraction=1.0, framer_latency_us=0.0)


class CellLink:
    """Unidirectional point-to-point cell pipe.

    Cells serialize back to back at the PHY's cell time; delivery happens
    ``propagation_us`` (plus the framer latency) later through the
    ``deliver`` callback (set by whoever owns the receiving end).

    The pipe is *analytic*: instead of a pump process blocking on a
    store (roughly six kernel events per cell), ``submit`` computes the
    serialization window from a running ``busy-until`` clock and
    schedules a single delivery callback.  The late-bound ``deliver``
    attribute is read at fire time, so fault pipelines and link-flap
    stages that swap it keep working.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: AtmPhy,
        propagation_us: float = 0.5,
        name: str = "cell-link",
        buffer_cells: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.phy = phy
        self.propagation_us = propagation_us
        self.name = name
        self.deliver: Optional[Callable[[Cell], None]] = None
        #: finite output buffering (switch egress ports): cells beyond
        #: this queue depth are dropped, as in a real switch under incast
        self.buffer_cells = buffer_cells
        self._busy_until = 0.0
        self._pending = 0
        self.cells_carried = 0
        self.cells_dropped = 0

    def submit(self, cell: Cell) -> None:
        """Queue a cell for transmission (sender side, non-blocking).

        Drops (and counts) the cell when the output buffer is full: one
        cell may be serializing onto the wire plus ``buffer_cells``
        queued behind it, matching a real switch egress port under
        incast.  A queue slot frees when its cell finishes serializing.
        """
        if self.buffer_cells is not None and self._pending > self.buffer_cells:
            self.cells_dropped += 1
            return
        sim = self.sim
        now = sim.now
        start = self._busy_until if self._busy_until > now else now
        end = start + self.phy.cell_time_us
        self._busy_until = end
        if self.buffer_cells is not None:
            self._pending += 1
            sim.call_in(end - now, self._serialized_one)
        sim.call_in(end + self.propagation_us + self.phy.framer_latency_us - now,
                    self._deliver_one, cell)

    @property
    def queued(self) -> int:
        """Cells accepted but not yet fully serialized (incl. in flight)."""
        if self.buffer_cells is not None:
            return self._pending
        remaining = self._busy_until - self.sim.now
        if remaining <= 0.0:
            return 0
        cells = int(remaining / self.phy.cell_time_us)
        return cells + (1 if remaining - cells * self.phy.cell_time_us > 1e-12 else 0)

    def _serialized_one(self) -> None:
        self._pending -= 1

    def _deliver_one(self, cell: Cell) -> None:
        self.cells_carried += 1
        if self.deliver is not None:
            self.deliver(cell)
