"""The Fore ASX-200 ATM switch model.

The ASX-200 "forwards cells in about 7 us" (Section 4.1).  We model an
output-queued switch: a cell arriving on any input port is looked up in
the VCI routing table, charged the forwarding latency, and queued on the
output port's :class:`~repro.atm.phy.CellLink`, which serializes it at
the egress line rate.  Unknown VCIs are counted and dropped.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Simulator
from .cells import Cell
from .phy import CellLink

__all__ = ["AtmSwitch", "ASX200_FORWARD_US"]

#: per-cell forwarding latency of the ASX-200
ASX200_FORWARD_US = 7.0


class AtmSwitch:
    """Output-queued VCI-routing cell switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "asx200",
        forward_us: float = ASX200_FORWARD_US,
        output_buffer_cells: int = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.forward_us = forward_us
        #: if set, attach_port caps each egress queue at this many cells
        self.output_buffer_cells = output_buffer_cells
        #: output ports by number; each is the egress CellLink toward a host
        self._ports: Dict[int, CellLink] = {}
        #: VCI -> output port routing table (programmed by signaling)
        self._routes: Dict[int, int] = {}
        self.cells_forwarded = 0
        self.unknown_vci_drops = 0

    def attach_port(self, port: int, egress: CellLink) -> None:
        if port in self._ports:
            raise ValueError(f"{self.name}: port {port} already attached")
        if self.output_buffer_cells is not None:
            egress.buffer_cells = self.output_buffer_cells
        self._ports[port] = egress

    @property
    def cells_dropped(self) -> int:
        """Total egress-buffer overflows across all ports."""
        return sum(link.cells_dropped for link in self._ports.values())

    def program_route(self, vci: int, port: int) -> None:
        """Signaling-plane: route cells on ``vci`` out of ``port``."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: no such port {port}")
        self._routes[vci] = port

    def route_for(self, vci: int) -> Optional[int]:
        return self._routes.get(vci)

    def on_cell(self, cell: Cell) -> None:
        """Ingress: called by the delivering CellLink."""
        port = self._routes.get(cell.vci)
        if port is None:
            self.unknown_vci_drops += 1
            return
        # one bare callback per cell instead of a forwarding process —
        # the switch fabric is the hottest path in fat-tree sweeps
        self.sim.call_in(self.forward_us, self._forward, cell, port)

    def _forward(self, cell: Cell, port: int) -> None:
        self.cells_forwarded += 1
        self._ports[port].submit(cell)
