"""ATM substrate: cells, AAL5, PHYs, the ASX-200 switch, and U-Net/ATM."""

from .cells import (
    AAL5_MAX_PDU,
    AAL5_TRAILER_SIZE,
    CELL_HEADER_SIZE,
    CELL_PAYLOAD_SIZE,
    CELL_SIZE,
    SINGLE_CELL_MAX_PAYLOAD,
    Aal5CrcError,
    Aal5Error,
    Aal5LengthError,
    Cell,
    aal5_reassemble,
    aal5_segment,
    cells_for_pdu,
)
from .fabric import AtmFabric
from .network import AtmNetwork
from .phy import OC3_SONET, TAXI_140, AtmPhy, CellLink
from .signaling import AtmSignaling
from .switch import ASX200_FORWARD_US, AtmSwitch
from .unet_atm import ATM_RX_TRACE, ATM_TX_TRACE, SBA200_TIMINGS, AtmTimings, UNetAtmBackend

__all__ = [
    "Cell",
    "aal5_segment",
    "aal5_reassemble",
    "cells_for_pdu",
    "Aal5Error",
    "Aal5CrcError",
    "Aal5LengthError",
    "CELL_SIZE",
    "CELL_HEADER_SIZE",
    "CELL_PAYLOAD_SIZE",
    "AAL5_TRAILER_SIZE",
    "AAL5_MAX_PDU",
    "SINGLE_CELL_MAX_PAYLOAD",
    "AtmPhy",
    "OC3_SONET",
    "TAXI_140",
    "CellLink",
    "AtmSwitch",
    "ASX200_FORWARD_US",
    "AtmSignaling",
    "AtmTimings",
    "UNetAtmBackend",
    "ATM_TX_TRACE",
    "ATM_RX_TRACE",
    "SBA200_TIMINGS",
    "AtmNetwork",
    "AtmFabric",
]
