"""Multi-switch ATM fabrics.

Section 4.4.3 notes that, unlike MAC-addressed U-Net/FE, "U-Net/ATM
does not suffer this problem as virtual circuits are established
network-wide."  This module provides that: a chain of ASX-200 switches
joined by trunk links, with signaling that programs the VCI route on
every switch along the path, so endpoints communicate across the fabric
with no encapsulation and only the per-switch forwarding latency added.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.api import Host, UserEndpoint
from ..core.channels import AtmTag, register_channel
from ..core.errors import ChannelError
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel
from ..sim import Simulator
from .phy import OC3_SONET, AtmPhy, CellLink
from .switch import AtmSwitch
from .unet_atm import AtmTimings, UNetAtmBackend

__all__ = ["AtmFabric"]


class AtmFabric:
    """A linear chain of ATM switches with network-wide VCs.

    Hosts attach to any switch; :meth:`connect` sets up a duplex virtual
    circuit whose VCI is programmed hop by hop along the chain.
    """

    def __init__(
        self,
        sim: Simulator,
        switches: int = 2,
        trunk_phy: AtmPhy = OC3_SONET,
        trunk_propagation_us: float = 2.0,
    ) -> None:
        if switches < 1:
            raise ValueError("need at least one switch")
        self.sim = sim
        self.switches: List[AtmSwitch] = [AtmSwitch(sim, name=f"asx200-{i}") for i in range(switches)]
        self._next_port: List[int] = [0] * switches
        #: per switch: trunk port numbers toward the previous / next switch
        self._trunk_up: Dict[int, int] = {}
        self._trunk_down: Dict[int, int] = {}
        self._host_port: Dict[UNetAtmBackend, Tuple[int, int]] = {}
        self._next_vci = 32
        self.hosts: List[Host] = []
        for i in range(switches - 1):
            self._join(i, i + 1, trunk_phy, trunk_propagation_us)

    def _allocate_port(self, switch_index: int) -> int:
        port = self._next_port[switch_index]
        self._next_port[switch_index] += 1
        return port

    def _join(self, a: int, b: int, phy: AtmPhy, propagation_us: float) -> None:
        """Duplex trunk between adjacent switches ``a`` and ``b``."""
        toward_b = CellLink(self.sim, phy, propagation_us, name=f"trunk{a}->{b}")
        toward_b.deliver = self.switches[b].on_cell
        port_a = self._allocate_port(a)
        self.switches[a].attach_port(port_a, toward_b)
        self._trunk_up[a] = port_a

        toward_a = CellLink(self.sim, phy, propagation_us, name=f"trunk{b}->{a}")
        toward_a.deliver = self.switches[a].on_cell
        port_b = self._allocate_port(b)
        self.switches[b].attach_port(port_b, toward_a)
        self._trunk_down[b] = port_b

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        switch: int = 0,
        phy: AtmPhy = OC3_SONET,
        timings: Optional[AtmTimings] = None,
        bus: BusModel = PCI_BUS,
        propagation_us: float = 0.5,
    ) -> Host:
        if not 0 <= switch < len(self.switches):
            raise ValueError(f"no such switch {switch}")
        backend = UNetAtmBackend(self.sim, name=f"{name}.pca200", timings=timings, bus=bus)
        uplink = CellLink(self.sim, phy, propagation_us, name=f"{name}->sw{switch}")
        uplink.deliver = self.switches[switch].on_cell
        backend.tx_link = uplink
        downlink = CellLink(self.sim, phy, propagation_us, name=f"sw{switch}->{name}")
        # late-bound so fault injectors can interpose on on_cell
        downlink.deliver = lambda cell: backend.on_cell(cell)
        port = self._allocate_port(switch)
        self.switches[switch].attach_port(port, downlink)
        self._host_port[backend] = (switch, port)
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host

    # ----------------------------------------------------------- signaling
    def _allocate_vci(self) -> int:
        vci = self._next_vci
        self._next_vci += 1
        return vci

    def _program_path(self, vci: int, src_switch: int, dst_switch: int, dst_port: int) -> None:
        """Program ``vci`` hop by hop from src toward the destination."""
        current = src_switch
        while current != dst_switch:
            if current < dst_switch:
                self.switches[current].program_route(vci, self._trunk_up[current])
                current += 1
            else:
                self.switches[current].program_route(vci, self._trunk_down[current])
                current -= 1
        self.switches[dst_switch].program_route(vci, dst_port)

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Network-wide duplex VC between two endpoints."""
        backend_a: UNetAtmBackend = a.host.backend
        backend_b: UNetAtmBackend = b.host.backend
        if backend_a not in self._host_port or backend_b not in self._host_port:
            raise ChannelError("both hosts must be attached to the fabric")
        switch_a, port_a = self._host_port[backend_a]
        switch_b, port_b = self._host_port[backend_b]
        vci_ab = self._allocate_vci()
        vci_ba = self._allocate_vci()
        self._program_path(vci_ab, switch_a, switch_b, port_b)
        self._program_path(vci_ba, switch_b, switch_a, port_a)
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        register_channel(a.endpoint, channel_a, AtmTag(tx_vci=vci_ab, rx_vci=vci_ba), peer=b.host.name)
        register_channel(b.endpoint, channel_b, AtmTag(tx_vci=vci_ba, rx_vci=vci_ab), peer=a.host.name)
        backend_a.demux.register(vci_ba, a.endpoint, channel_a)
        backend_b.demux.register(vci_ab, b.endpoint, channel_b)
        return channel_a, channel_b

    def hops_between(self, a: UserEndpoint, b: UserEndpoint) -> int:
        """Number of switches a message between a and b traverses."""
        switch_a, _ = self._host_port[a.host.backend]
        switch_b, _ = self._host_port[b.host.backend]
        return abs(switch_a - switch_b) + 1
