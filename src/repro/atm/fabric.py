"""Multi-switch ATM fabrics.

Section 4.4.3 notes that, unlike MAC-addressed U-Net/FE, "U-Net/ATM
does not suffer this problem as virtual circuits are established
network-wide."  This module provides that: a fabric of ASX-200 switches
joined by trunk links, with signaling that programs the VCI route on
every switch along the path, so endpoints communicate across the fabric
with no encapsulation and only the per-switch forwarding latency added.

The switch graph is any :class:`~repro.fabric.topology.Topology` — the
default is the legacy linear chain, and the Clos builders in
``repro.fabric`` pass a leaf/spine graph.  Route programming walks an
arbitrary switch path computed by the topology layer, and successive
VCs are spread round-robin across parallel shortest paths, so a Clos
fabric's spines all carry traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..core.api import Host, UserEndpoint
from ..core.channels import AtmTag, register_channel
from ..core.errors import ChannelError, NoPathError
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel
from ..sim import Simulator
from .phy import OC3_SONET, AtmPhy, CellLink
from .switch import AtmSwitch
from .unet_atm import AtmTimings, UNetAtmBackend

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..fabric.topology import Topology

__all__ = ["AtmFabric"]


@dataclass
class _VcRoute:
    """Signaling-plane record of one directional VC, kept so the route
    can be re-programmed when a trunk on its path fails."""

    src_switch: int
    dst_switch: int
    dst_port: int
    key: int
    path: List[int] = field(default_factory=list)


class AtmFabric:
    """ATM switches joined per a declarative topology, with network-wide VCs.

    Hosts attach to any switch; :meth:`connect` sets up a duplex virtual
    circuit whose VCI is programmed hop by hop along a shortest switch
    path, rotating across parallel paths connection by connection.
    """

    def __init__(
        self,
        sim: Simulator,
        switches: int = 2,
        trunk_phy: AtmPhy = OC3_SONET,
        trunk_propagation_us: float = 2.0,
        topology: Optional["Topology"] = None,
    ) -> None:
        if topology is None:
            # imported lazily: repro.fabric imports this module back
            from ..fabric.topology import linear_topology

            if switches < 1:
                raise ValueError("need at least one switch")
            topology = linear_topology(switches)
        self.sim = sim
        self.topology = topology
        self.switches: List[AtmSwitch] = [
            AtmSwitch(sim, name=f"asx200-{i}") for i in range(topology.num_switches)
        ]
        self._next_port: List[int] = [0] * topology.num_switches
        #: (switch, neighbour) -> port on ``switch`` whose egress trunk
        #: leads to ``neighbour``
        self._trunk_port: Dict[Tuple[int, int], int] = {}
        self._trunk_links: Dict[Tuple[int, int], CellLink] = {}
        self._host_port: Dict[UNetAtmBackend, Tuple[int, int]] = {}
        self._next_vci = 32
        self._path_key = 0
        self.hosts: List[Host] = []
        #: vci -> signaling record enabling failover re-programming
        self._vc_routes: Dict[int, _VcRoute] = {}
        #: VCs whose endpoints are currently partitioned (retried on heal)
        self._stranded: Set[int] = set()
        #: saved deliver callbacks of blackholed trunks
        self._trunk_saved: Dict[Tuple[int, int], Optional[Callable]] = {}
        self.reroutes = 0
        self.cells_blackholed = 0
        for a, b in topology.trunks:
            self._join(a, b, trunk_phy, trunk_propagation_us)

    def _allocate_port(self, switch_index: int) -> int:
        port = self._next_port[switch_index]
        self._next_port[switch_index] += 1
        return port

    def _join(self, a: int, b: int, phy: AtmPhy, propagation_us: float) -> None:
        """Duplex trunk between switches ``a`` and ``b``."""
        toward_b = CellLink(self.sim, phy, propagation_us, name=f"trunk{a}->{b}")
        toward_b.deliver = self.switches[b].on_cell
        port_a = self._allocate_port(a)
        self.switches[a].attach_port(port_a, toward_b)
        self._trunk_port[(a, b)] = port_a
        self._trunk_links[(a, b)] = toward_b

        toward_a = CellLink(self.sim, phy, propagation_us, name=f"trunk{b}->{a}")
        toward_a.deliver = self.switches[a].on_cell
        port_b = self._allocate_port(b)
        self.switches[b].attach_port(port_b, toward_a)
        self._trunk_port[(b, a)] = port_b
        self._trunk_links[(b, a)] = toward_a

    def trunk_link(self, a: int, b: int) -> CellLink:
        """The egress trunk from switch ``a`` toward adjacent ``b``
        (fault injection and tests interpose on its ``deliver``)."""
        return self._trunk_links[(a, b)]

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        switch: int = 0,
        phy: AtmPhy = OC3_SONET,
        timings: Optional[AtmTimings] = None,
        bus: BusModel = PCI_BUS,
        propagation_us: float = 0.5,
    ) -> Host:
        if not 0 <= switch < len(self.switches):
            raise ValueError(f"no such switch {switch}")
        backend = UNetAtmBackend(self.sim, name=f"{name}.pca200", timings=timings, bus=bus)
        uplink = CellLink(self.sim, phy, propagation_us, name=f"{name}->sw{switch}")
        uplink.deliver = self.switches[switch].on_cell
        backend.tx_link = uplink
        downlink = CellLink(self.sim, phy, propagation_us, name=f"sw{switch}->{name}")
        # late-bound so fault injectors can interpose on on_cell
        downlink.deliver = lambda cell: backend.on_cell(cell)
        port = self._allocate_port(switch)
        self.switches[switch].attach_port(port, downlink)
        self._host_port[backend] = (switch, port)
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host

    # ----------------------------------------------------------- signaling
    def _allocate_vci(self) -> int:
        vci = self._next_vci
        self._next_vci += 1
        return vci

    def _program_path(self, vci: int, path: List[int], dst_port: int) -> None:
        """Program ``vci`` hop by hop along an arbitrary switch path."""
        for here, nxt in zip(path, path[1:]):
            self.switches[here].program_route(vci, self._trunk_port[(here, nxt)])
        self.switches[path[-1]].program_route(vci, dst_port)

    def _connect_backends(
        self, backend_a: UNetAtmBackend, backend_b: UNetAtmBackend
    ) -> Tuple[int, int]:
        """Duplex VC between two attached NICs; returns (vci a→b, vci b→a).

        Both directions ride the same switch path (symmetric RTT); the
        path key rotates per connection to spread VCs across parallel
        spines.
        """
        if backend_a not in self._host_port or backend_b not in self._host_port:
            raise ChannelError("both hosts must be attached to the fabric")
        switch_a, port_a = self._host_port[backend_a]
        switch_b, port_b = self._host_port[backend_b]
        key = self._path_key
        path = self.topology.path(switch_a, switch_b, key=key)
        self._path_key += 1
        vci_ab = self._allocate_vci()
        vci_ba = self._allocate_vci()
        self._program_path(vci_ab, path, port_b)
        self._program_path(vci_ba, list(reversed(path)), port_a)
        self._vc_routes[vci_ab] = _VcRoute(switch_a, switch_b, port_b, key, list(path))
        self._vc_routes[vci_ba] = _VcRoute(switch_b, switch_a, port_a, key,
                                           list(reversed(path)))
        return vci_ab, vci_ba

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Network-wide duplex VC between two endpoints."""
        backend_a: UNetAtmBackend = a.host.backend
        backend_b: UNetAtmBackend = b.host.backend
        vci_ab, vci_ba = self._connect_backends(backend_a, backend_b)
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        register_channel(a.endpoint, channel_a, AtmTag(tx_vci=vci_ab, rx_vci=vci_ba), peer=b.host.name)
        register_channel(b.endpoint, channel_b, AtmTag(tx_vci=vci_ba, rx_vci=vci_ab), peer=a.host.name)
        backend_a.demux.register(vci_ba, a.endpoint, channel_a)
        backend_b.demux.register(vci_ab, b.endpoint, channel_b)
        return channel_a, channel_b

    def connect_collective(
        self, backend_a: UNetAtmBackend, backend_b: UNetAtmBackend
    ) -> Tuple[int, int]:
        """A duplex VC for NIC-resident collectives: routes are
        programmed fabric-wide but the VCIs are *not* demuxed to any
        endpoint — the NIC firmware's collective engine owns them."""
        return self._connect_backends(backend_a, backend_b)

    def hops_between(self, a: UserEndpoint, b: UserEndpoint) -> int:
        """Number of switches a message between a and b traverses."""
        switch_a, _ = self._host_port[a.host.backend]
        switch_b, _ = self._host_port[b.host.backend]
        return self.topology.hops(switch_a, switch_b)

    # ------------------------------------------------------------ failover
    def set_trunk_state(self, a: int, b: int, up: bool) -> bool:
        """Fail (``up=False``) or restore the duplex trunk ``a — b``.

        Going down, both directional links start blackholing in-flight
        cells (counted in :attr:`cells_blackholed`, as a yanked fiber
        would) and the signaling plane re-programs every VC whose path
        crossed the trunk along a surviving shortest path — keeping the
        VC's original spreading key, so re-keying stays deterministic.
        VCs with no surviving path are *stranded* and re-programmed when
        a trunk comes back.  Returns True when the state changed.
        """
        if not self.topology.set_trunk(a, b, up):
            return False
        for x, y in ((a, b), (b, a)):
            link = self._trunk_links[(x, y)]
            if up:
                saved = self._trunk_saved.pop((x, y), None)
                if saved is not None:
                    link.deliver = saved
            elif (x, y) not in self._trunk_saved:
                self._trunk_saved[(x, y)] = link.deliver
                link.deliver = self._blackhole
        if up:
            for vci in sorted(self._stranded):
                self._reprogram(vci)
        else:
            for vci in sorted(self._vc_routes):
                if _uses_trunk(self._vc_routes[vci].path, a, b):
                    self._reprogram(vci)
        return True

    def _blackhole(self, cell) -> None:
        self.cells_blackholed += 1

    def _reprogram(self, vci: int) -> None:
        route = self._vc_routes[vci]
        try:
            path = self.topology.path(route.src_switch, route.dst_switch,
                                      key=route.key)
        except NoPathError:
            self._stranded.add(vci)
            return
        self._program_path(vci, path, route.dst_port)
        route.path = list(path)
        self._stranded.discard(vci)
        self.reroutes += 1

    def backends_reachable(self, backend_a: UNetAtmBackend,
                           backend_b: UNetAtmBackend) -> bool:
        """Whether a live switch path joins the two attached NICs."""
        switch_a, _ = self._host_port[backend_a]
        switch_b, _ = self._host_port[backend_b]
        return self.topology.connected(switch_a, switch_b)


def _uses_trunk(path: List[int], a: int, b: int) -> bool:
    return any((x == a and y == b) or (x == b and y == a)
               for x, y in zip(path, path[1:]))
