"""ATM signaling: connection setup and VCI management.

The operating-system service of Section 3.1 footnote 1: it performs
route discovery and switch-path setup, runs the authentication checks,
registers the resulting tags with U-Net, and returns channel identifiers
to the applications.  Connection setup is off the critical path, so it
is modelled functionally (no simulated time).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.api import UserEndpoint
from ..core.channels import AtmTag, register_channel
from ..core.errors import ChannelError
from .switch import AtmSwitch
from .unet_atm import UNetAtmBackend

__all__ = ["AtmSignaling"]

#: VCIs 0-31 are reserved for signaling/OAM in real ATM deployments
FIRST_USER_VCI = 32


class AtmSignaling:
    """Allocates VCIs and programs switch + NIC demux tables."""

    def __init__(self, switch: AtmSwitch) -> None:
        self.switch = switch
        self._next_vci = FIRST_USER_VCI
        #: backend -> switch port carrying traffic toward that backend
        self._ports: Dict[UNetAtmBackend, int] = {}

    def register_host(self, backend: UNetAtmBackend, port: int) -> None:
        self._ports[backend] = port

    def _allocate_vci(self) -> int:
        vci = self._next_vci
        self._next_vci += 1
        return vci

    def connect(self, a: UserEndpoint, b: UserEndpoint) -> Tuple[int, int]:
        """Create a duplex communication channel between two endpoints.

        Returns the channel identifiers assigned on (a, b) respectively.
        """
        backend_a = a.host.backend
        backend_b = b.host.backend
        if backend_a not in self._ports or backend_b not in self._ports:
            raise ChannelError("both hosts must be attached to the switch before connecting")
        vci_ab = self._allocate_vci()  # traffic a -> b
        vci_ba = self._allocate_vci()  # traffic b -> a
        self.switch.program_route(vci_ab, self._ports[backend_b])
        self.switch.program_route(vci_ba, self._ports[backend_a])
        channel_a = len(a.endpoint.channels)
        channel_b = len(b.endpoint.channels)
        register_channel(a.endpoint, channel_a, AtmTag(tx_vci=vci_ab, rx_vci=vci_ba), peer=b.host.name)
        register_channel(b.endpoint, channel_b, AtmTag(tx_vci=vci_ba, rx_vci=vci_ab), peer=a.host.name)
        backend_a.demux.register(vci_ba, a.endpoint, channel_a)
        backend_b.demux.register(vci_ab, b.endpoint, channel_b)
        return channel_a, channel_b

    def connect_collective(self, backend_a: UNetAtmBackend, backend_b: UNetAtmBackend) -> Tuple[int, int]:
        """A duplex VC for NIC-resident collectives: switch routes are
        programmed but the VCIs are *not* demuxed to any endpoint — the
        NIC firmware's collective engine owns them."""
        if backend_a not in self._ports or backend_b not in self._ports:
            raise ChannelError("both hosts must be attached to the switch before connecting")
        vci_ab = self._allocate_vci()
        vci_ba = self._allocate_vci()
        self.switch.program_route(vci_ab, self._ports[backend_b])
        self.switch.program_route(vci_ba, self._ports[backend_a])
        return vci_ab, vci_ba
