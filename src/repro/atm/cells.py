"""ATM cells and AAL5 segmentation/reassembly.

ATM carries everything in 53-byte cells: a 5-byte header (we model the
VCI and the AAL5 end-of-PDU indication from the PTI field) plus 48 bytes
of payload.  AAL5 packs a PDU by appending a pad and an 8-byte trailer
(length + CRC-32) so the total is a multiple of 48 bytes; the last cell
of a PDU is flagged, and the receiver checks length and CRC (the PCA-200
accumulates the CRC in hardware).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

__all__ = [
    "Cell",
    "Aal5Error",
    "Aal5CrcError",
    "Aal5LengthError",
    "CELL_SIZE",
    "CELL_HEADER_SIZE",
    "CELL_PAYLOAD_SIZE",
    "AAL5_TRAILER_SIZE",
    "AAL5_MAX_PDU",
    "SINGLE_CELL_MAX_PAYLOAD",
    "cells_for_pdu",
    "aal5_segment",
    "aal5_reassemble",
]

CELL_SIZE = 53
CELL_HEADER_SIZE = 5
CELL_PAYLOAD_SIZE = 48
AAL5_TRAILER_SIZE = 8
#: AAL5 length field is 16 bits -> 65535-byte maximum PDU ("the maximum
#: packet size is 65KBytes", Section 4).
AAL5_MAX_PDU = 65535
#: the largest user payload that fits a single cell with its trailer —
#: this bound drives the single-cell fast path and the latency
#: discontinuity above 40 bytes in Figure 5.
SINGLE_CELL_MAX_PAYLOAD = CELL_PAYLOAD_SIZE - AAL5_TRAILER_SIZE


class Aal5Error(Exception):
    """AAL5 reassembly failure."""


class Aal5CrcError(Aal5Error):
    """CRC-32 mismatch over the reassembled PDU."""


class Aal5LengthError(Aal5Error):
    """Trailer length field inconsistent with the received cells."""


@dataclass
class Cell:
    """One ATM cell on the wire."""

    vci: int
    payload: bytes
    #: AAL5 end-of-PDU flag (PTI bit)
    last: bool = False
    #: set by fault injection to model wire corruption; the payload bytes
    #: are already corrupted when this is set (the flag only aids tests)
    corrupted: bool = False

    def __post_init__(self) -> None:
        if len(self.payload) != CELL_PAYLOAD_SIZE:
            raise ValueError(f"cell payload must be {CELL_PAYLOAD_SIZE} bytes, got {len(self.payload)}")

    @property
    def wire_bytes(self) -> int:
        return CELL_SIZE


def cells_for_pdu(payload_len: int) -> int:
    """Number of cells AAL5 uses for a ``payload_len``-byte PDU."""
    if payload_len < 0:
        raise ValueError("negative payload length")
    total = payload_len + AAL5_TRAILER_SIZE
    return max(1, -(-total // CELL_PAYLOAD_SIZE))


def aal5_segment(payload: bytes, vci: int) -> List[Cell]:
    """Segment ``payload`` into AAL5 cells for ``vci``.

    >>> cells = aal5_segment(b"hello", vci=42)
    >>> len(cells), cells[0].last, len(cells[0].payload)
    (1, True, 48)
    >>> aal5_reassemble(cells)
    b'hello'
    >>> [c.last for c in aal5_segment(b"x" * 100, vci=42)]
    [False, False, True]
    """
    if len(payload) > AAL5_MAX_PDU:
        raise ValueError(f"PDU of {len(payload)} bytes exceeds AAL5 maximum {AAL5_MAX_PDU}")
    pad = (-(len(payload) + AAL5_TRAILER_SIZE)) % CELL_PAYLOAD_SIZE
    # the pad sits between payload and trailer so the trailer occupies the
    # final 8 bytes of the last cell; the CRC-32 covers payload + pad +
    # the first four trailer bytes (UU, CPI, length), as in real AAL5.
    head = payload + bytes(pad) + b"\x00\x00" + len(payload).to_bytes(2, "big")
    crc = zlib.crc32(head) & 0xFFFFFFFF
    body = head + crc.to_bytes(4, "big")
    cells = []
    n_cells = len(body) // CELL_PAYLOAD_SIZE
    for i in range(n_cells):
        chunk = body[i * CELL_PAYLOAD_SIZE : (i + 1) * CELL_PAYLOAD_SIZE]
        cells.append(Cell(vci=vci, payload=chunk, last=(i == n_cells - 1)))
    return cells


def aal5_reassemble(cells: List[Cell]) -> bytes:
    """Reassemble and validate an AAL5 PDU from its cells.

    Raises :class:`Aal5LengthError` or :class:`Aal5CrcError` on damage —
    the same checks the PCA-200's hardware CRC unit performs.
    """
    if not cells:
        raise Aal5Error("no cells to reassemble")
    if not cells[-1].last or any(c.last for c in cells[:-1]):
        raise Aal5Error("end-of-PDU flag misplaced")
    vci = cells[0].vci
    if any(c.vci != vci for c in cells):
        raise Aal5Error("cells from different VCIs interleaved into one PDU")
    body = b"".join(c.payload for c in cells)
    trailer = body[-AAL5_TRAILER_SIZE:]
    length = int.from_bytes(trailer[2:4], "big")
    crc = int.from_bytes(trailer[4:8], "big")
    if length > len(body) - AAL5_TRAILER_SIZE:
        raise Aal5LengthError(f"trailer length {length} exceeds received {len(body)} bytes")
    if len(cells) != cells_for_pdu(length):
        raise Aal5LengthError(f"{len(cells)} cells received for a {length}-byte PDU")
    if (zlib.crc32(body[:-4]) & 0xFFFFFFFF) != crc:
        raise Aal5CrcError("AAL5 CRC-32 mismatch")
    return body[:length]
