"""U-Net/ATM: custom i960 firmware on the Fore PCA-200.

This backend reproduces the firmware behaviour of Section 4.2:

* The host enqueues a send descriptor into the *i960-resident* transmit
  queue with a cheap doorbell store (host overhead ~1.5 us total
  including descriptor composition); the i960 polls transmit queues —
  "endpoints with recent activity are polled more frequently" — picks
  the descriptor up, DMAs the user buffer across PCI, and segments it
  into AAL5 cells.
* On receive the i960 processes cells one at a time, demultiplexes on
  the VCI, and either (fast path) transfers a single-cell message
  directly into the next receive-queue entry, or (slow path) allocates a
  buffer from the endpoint's free queue, appends cells into it, checks
  the hardware-accumulated CRC on the last cell, and pushes a descriptor
  onto the receive queue in host memory.

The timing constants below are calibrated to the paper's measurements:
i960 send overhead ~10 us, i960 receive overhead ~13 us for a single-cell
message, 89 us application round-trip for 40 bytes over OC-3c, the
multi-cell latency discontinuity above 40 bytes, and the ~118-120 Mb/s
bandwidth ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from ..core.base import UNetBackend
from ..core.descriptors import RecvDescriptor
from ..core.endpoint import Endpoint
from ..core.errors import ChannelError
from ..core.mux import ShardedDemux
from ..hw.bus import PCI_BUS, BusModel, DmaEngine
from ..sim import Simulator, Store, TraceRecorder
from .cells import (
    AAL5_MAX_PDU,
    SINGLE_CELL_MAX_PAYLOAD,
    Aal5Error,
    Cell,
    aal5_reassemble,
    aal5_segment,
)
from .phy import CellLink

__all__ = ["AtmTimings", "UNetAtmBackend", "ATM_TX_TRACE", "ATM_RX_TRACE"]

#: trace categories for the two firmware paths
ATM_TX_TRACE = "unet_atm.tx"
ATM_RX_TRACE = "unet_atm.rx"

#: bytes DMAed per receive-queue descriptor write
DESCRIPTOR_DMA_BYTES = 16


@dataclass
class AtmTimings:
    """i960 firmware and host doorbell costs (microseconds).

    Calibration targets (paper Section 4.4): host send overhead ~1.5 us,
    i960 send overhead ~10 us, i960 single-cell receive ~13 us; Figure 5:
    89 us single-cell RTT, ~130 us at 44 bytes; Figure 6: 118-120 Mb/s.
    """

    #: host double-word store of the descriptor into NI memory
    host_doorbell_us: float = 0.40
    #: polling-discovery latency before the i960 notices new TX work
    tx_poll_pickup_us: float = 1.2
    #: per-message TX descriptor parse + DMA setup on the i960
    tx_per_message_us: float = 7.7
    #: per-cell TX work on the i960: segmentation is hardware-assisted
    #: (the AAL5 CRC unit and DMA engine do the framing), so the i960
    #: only paces the DMA bursts
    tx_per_cell_us: float = 0.35
    #: per-cell RX work: FIFO pop, VCI table lookup, bookkeeping
    rx_per_cell_us: float = 1.55
    #: single-cell fast path: direct transfer into the receive-queue entry
    rx_single_cell_us: float = 5.8
    #: slow path, first cell: free-queue pop and buffer mapping
    rx_buffer_alloc_us: float = 14.0
    #: slow path, last cell: CRC check and receive-descriptor construction
    rx_last_cell_us: float = 10.0
    #: NIC-resident collective engine: combine/forward one packet entirely
    #: in firmware — no bus crossing, no descriptor, no host interrupt
    collective_op_us: float = 2.6


#: The SBus-based SBA-200 used by the paper's Split-C ATM cluster
#: (Section 5: "using the FORE Systems SBA-200 SBus adaptor.  The
#: SBA-200 implementation of U-Net is largely identical to that for the
#: PCA-200").  Identical firmware costs; the difference is the bus —
#: build it with ``bus=SBUS`` (32-byte bursts, Section 4.2.2) — plus a
#: slightly slower doorbell across SBus.
SBA200_TIMINGS = AtmTimings(host_doorbell_us=0.6)


class _Reassembly:
    """Per-VCI AAL5 reassembly state inside the firmware."""

    __slots__ = ("cells", "buffer_indices", "dropping")

    def __init__(self) -> None:
        self.cells: List[Cell] = []
        self.buffer_indices: List[int] = []
        self.dropping = False


class UNetAtmBackend(UNetBackend):
    """The PCA-200 NIC with U-Net firmware, attached to one host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timings: Optional[AtmTimings] = None,
        bus: BusModel = PCI_BUS,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(sim, name)
        self.timings = timings or AtmTimings()
        self.trace = trace or TraceRecorder(enabled=False)
        self.dma = DmaEngine(sim, bus, name=f"{name}.dma")
        self.demux = ShardedDemux(name=f"{name}.demux")
        #: egress cell link toward the switch (set by the network builder)
        self.tx_link: Optional[CellLink] = None
        #: single-cell receive fast path enabled (ablation knob)
        self.single_cell_fast_path = True
        #: optional PDU-size cap below AAL5 (path-MTU rule in mixed fabrics)
        self.max_pdu_cap: Optional[int] = None
        #: reserved VCIs owned by the NIC-resident collective engine
        self._collective_vcis: Dict[int, "Callable[[bytes], None]"] = {}
        self._collective_reasm: Dict[int, List[Cell]] = {}
        self._collective_txq: Optional[Store] = None
        self._tx_doorbell: Store[Endpoint] = Store(sim, name=f"{name}.doorbell")
        self._tx_pending: Dict[int, bool] = {}
        self._reassembly: Dict[int, _Reassembly] = {}
        self._rx_cells: Store[Cell] = Store(sim, name=f"{name}.rxcells")
        # statistics
        self.pdus_sent = 0
        self.pdus_received = 0
        self.crc_errors = 0
        self.no_buffer_drops = 0
        self.recv_queue_drops = 0
        self.quarantine_drops = 0
        sim.process(self._tx_firmware(), name=f"{name}.i960-tx")
        sim.process(self._rx_firmware(), name=f"{name}.i960-rx")

    # ------------------------------------------------------------------ API
    @property
    def max_pdu(self) -> int:
        if self.max_pdu_cap is not None:
            return min(AAL5_MAX_PDU, self.max_pdu_cap)
        return AAL5_MAX_PDU

    @property
    def host_send_overhead_us(self) -> float:
        # descriptor push is charged by the API layer; the doorbell here.
        return self.timings.host_doorbell_us

    def kick(self, endpoint: Endpoint) -> Generator:
        """Host side: the doorbell store into NI memory."""
        yield self.sim.timeout(self.timings.host_doorbell_us)
        if not self._tx_pending.get(endpoint.id):
            self._tx_pending[endpoint.id] = True
            self._tx_doorbell.try_put(endpoint)

    def _step(self, category: str, label: str, duration: float, begin: bool = False) -> Generator:
        start = self.sim.now
        yield self.sim.timeout(duration)
        self.trace.record(start, duration, category, label, begin=begin)

    def _timed_dma(self, category: str, label: str, nbytes: int) -> Generator:
        start = self.sim.now
        yield self.sim.process(self.dma.transfer(nbytes))
        self.trace.record(start, self.sim.now - start, category, label)

    # ------------------------------------------------------------- transmit
    def _tx_firmware(self) -> Generator:
        t = self.timings
        while True:
            endpoint = yield self._tx_doorbell.get()
            self._tx_pending[endpoint.id] = False
            yield from self._step(ATM_TX_TRACE, "i960 polls transmit queue", t.tx_poll_pickup_us,
                                  begin=True)
            while True:
                descriptor = endpoint.take_send_descriptor()
                if descriptor is None:
                    break
                yield from self._step(ATM_TX_TRACE, "parse descriptor, set up DMA", t.tx_per_message_us)
                payload = b"".join(
                    endpoint.buffers.buffer(idx).read(length) for idx, length in descriptor.segments
                )
                binding = endpoint.channels.get(descriptor.channel_id)
                if binding is None:
                    continue  # protection: unregistered channel, drop
                # DMA the user buffer(s) from host memory to the output FIFO.
                yield from self._timed_dma(ATM_TX_TRACE, "DMA user buffer to output FIFO",
                                           max(1, len(payload)))
                endpoint.send_completed(descriptor)
                binding.messages_sent += 1
                cells = aal5_segment(payload, vci=binding.tag.tx_vci)
                segment_start = self.sim.now
                for cell in cells:
                    yield self.sim.timeout(t.tx_per_cell_us)
                    if self.tx_link is not None:
                        self.tx_link.submit(cell)
                self.trace.record(segment_start, self.sim.now - segment_start, ATM_TX_TRACE,
                                  f"segment {len(cells)} cell(s) onto the fiber")
                self.pdus_sent += 1

    def rx_fault_hooks(self):
        """Delivery hook points a fault pipeline may interpose on.

        Cells funnel through :meth:`on_cell`; returns the single
        ``(owner, attribute_name)`` pair naming it.
        """
        return [(self, "on_cell")]

    # -------------------------------------------------------------- receive
    def on_cell(self, cell: Cell) -> None:
        """Ingress callback wired to the switch-egress CellLink."""
        self._rx_cells.try_put(cell)

    def _rx_firmware(self) -> Generator:
        t = self.timings
        while True:
            cell = yield self._rx_cells.get()
            is_first = self._reassembly.get(cell.vci) is None
            yield from self._step(ATM_RX_TRACE, "pop cell, VCI table lookup", t.rx_per_cell_us,
                                  begin=is_first)
            target = self.demux.lookup(cell.vci)
            if target is None:
                handler = self._collective_vcis.get(cell.vci)
                if handler is not None:
                    yield from self._rx_collective(cell, handler)
                continue
            endpoint, channel_id = target
            if endpoint.quarantined:
                # containment: drop the cell right after the VCI lookup so
                # a misbehaving endpoint stops consuming i960 service time
                # (no buffer allocation, no DMA); one drop counted per PDU
                state = self._reassembly.pop(cell.vci, None)
                if state is not None:
                    for idx in state.buffer_indices:
                        endpoint.free_queue.try_push(idx)
                if cell.last:
                    self.quarantine_drops += 1
                    endpoint.note_drop("quarantine_drops")
                continue
            state = self._reassembly.get(cell.vci)
            if state is None and cell.last and self.single_cell_fast_path:
                yield from self._rx_single_cell(cell, endpoint, channel_id)
                continue
            if state is None:
                state = _Reassembly()
                self._reassembly[cell.vci] = state
                yield from self._step(ATM_RX_TRACE, "allocate buffer from free queue",
                                      t.rx_buffer_alloc_us)
                taken = endpoint.take_free_buffer()
                if taken is None:
                    state.dropping = True
                    self.no_buffer_drops += 1
                    endpoint.note_drop("no_buffer_drops")
                else:
                    state.buffer_indices.append(taken)
            if not state.dropping:
                state.cells.append(cell)
                # cells are DMAed into the host buffer in 96-byte PCI
                # bursts (Section 4.2.2), i.e. two cells per transfer
                if len(state.cells) % 2 == 0 or cell.last:
                    yield from self._timed_dma(ATM_RX_TRACE, "DMA cell burst into buffer",
                                               2 * len(cell.payload))
            if cell.last:
                del self._reassembly[cell.vci]
                if not state.dropping:
                    yield from self._rx_complete(state, endpoint, channel_id)

    # ---------------------------------------------------- collective engine
    def register_collective_vci(self, vci: int, handler: Callable[[bytes], None]) -> None:
        """Reserve ``vci`` for the NIC-resident collective engine.

        Cells arriving on it are reassembled and consumed inside the
        firmware — no buffer allocation, no DMA, no host interrupt.
        """
        if self.demux.lookup(vci) is not None:
            raise ChannelError(f"VCI {vci} already demultiplexes to an endpoint")
        self._collective_vcis[vci] = handler

    def send_collective(self, vci: int, payload: bytes) -> None:
        """Firmware-originated send: segment and transmit, no host at all."""
        if self._collective_txq is None:
            self._collective_txq = Store(self.sim, name=f"{self.name}.colltx")
            self.sim.process(self._collective_tx_firmware(),
                             name=f"{self.name}.i960-coll")
        self._collective_txq.try_put((vci, payload))

    def _collective_tx_firmware(self) -> Generator:
        t = self.timings
        while True:
            vci, payload = yield self._collective_txq.get()
            yield from self._step(ATM_TX_TRACE, "collective engine send",
                                  t.collective_op_us)
            for cell in aal5_segment(payload, vci=vci):
                yield self.sim.timeout(t.tx_per_cell_us)
                if self.tx_link is not None:
                    self.tx_link.submit(cell)

    def _rx_collective(self, cell: Cell, handler: Callable[[bytes], None]) -> Generator:
        cells = self._collective_reasm.setdefault(cell.vci, [])
        cells.append(cell)
        if not cell.last:
            return
        del self._collective_reasm[cell.vci]
        yield from self._step(ATM_RX_TRACE, "collective engine combine",
                              self.timings.collective_op_us)
        try:
            payload = aal5_reassemble(cells)
        except Aal5Error:
            self.crc_errors += 1
            return
        handler(payload)

    def _rx_single_cell(self, cell: Cell, endpoint: Endpoint, channel_id: int) -> Generator:
        """Fast path: the whole message lands in the receive descriptor."""
        t = self.timings
        yield from self._step(ATM_RX_TRACE, "single-cell fast path (no buffer alloc)",
                              t.rx_single_cell_us)
        try:
            payload = aal5_reassemble([cell])
        except Aal5Error:
            self.crc_errors += 1
            return
        yield from self._timed_dma(ATM_RX_TRACE, "DMA message into receive descriptor",
                                   DESCRIPTOR_DMA_BYTES + len(payload))
        descriptor = RecvDescriptor(channel_id=channel_id, length=len(payload), inline=payload)
        if not endpoint.deliver(descriptor):
            self.recv_queue_drops += 1
        else:
            self.pdus_received += 1

    def _rx_complete(self, state: _Reassembly, endpoint: Endpoint, channel_id: int) -> Generator:
        """Slow path completion: CRC check, buffer fill, descriptor push."""
        t = self.timings
        yield from self._step(ATM_RX_TRACE, "check hardware CRC, build descriptor",
                              t.rx_last_cell_us)
        try:
            payload = aal5_reassemble(state.cells)
        except Aal5Error:
            self.crc_errors += 1
            for idx in state.buffer_indices:
                endpoint.free_queue.try_push(idx)
            return
        # spill across additional free-queue buffers if the PDU is larger
        # than one buffer (chained-buffer receive).
        segments = []
        offset = 0
        buffer_size = endpoint.buffers.buffer_size
        indices = list(state.buffer_indices)
        while offset < len(payload) or (not segments and not payload):
            if not indices:
                yield from self._step(ATM_RX_TRACE, "allocate buffer from free queue",
                                      t.rx_buffer_alloc_us)
                idx = endpoint.take_free_buffer()
                if idx is None:
                    self.no_buffer_drops += 1
                    endpoint.note_drop("no_buffer_drops")
                    for used_idx, _len in segments:
                        endpoint.free_queue.try_push(used_idx)
                    return
                indices.append(idx)
            idx = indices.pop(0)
            chunk = payload[offset : offset + buffer_size]
            buf = endpoint.buffers.buffer(idx)
            buf.clear()
            buf.write(chunk)
            segments.append((idx, len(chunk)))
            offset += len(chunk)
            if not payload:
                break
        yield from self._timed_dma(ATM_RX_TRACE, "DMA descriptor into receive queue",
                                   DESCRIPTOR_DMA_BYTES)
        descriptor = RecvDescriptor(channel_id=channel_id, length=len(payload), segments=segments)
        if not endpoint.deliver(descriptor):
            self.recv_queue_drops += 1
            for idx, _length in segments:
                endpoint.free_queue.try_push(idx)
        else:
            self.pdus_received += 1
