"""ATM cluster topology builder.

Builds the paper's ATM experimental setup: hosts with PCA-200 (or
SBA-200-style) adapters, each connected by a duplex fiber to one port of
a Fore ASX-200 switch.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.api import Host
from ..hw.bus import PCI_BUS, SBUS, BusModel
from ..hw.cpu import CpuModel
from ..sim import Simulator
from .phy import OC3_SONET, AtmPhy, CellLink
from .signaling import AtmSignaling
from .switch import AtmSwitch
from .unet_atm import AtmTimings, UNetAtmBackend

__all__ = ["AtmNetwork"]


class AtmNetwork:
    """One ATM switch plus the hosts hanging off it."""

    def __init__(self, sim: Simulator, switch_name: str = "asx200", forward_us: Optional[float] = None) -> None:
        self.sim = sim
        kwargs = {} if forward_us is None else {"forward_us": forward_us}
        self.switch = AtmSwitch(sim, name=switch_name, **kwargs)
        self.signaling = AtmSignaling(self.switch)
        self.hosts: List[Host] = []
        self._next_port = 0

    def add_host(
        self,
        name: str,
        cpu: CpuModel,
        phy: AtmPhy = OC3_SONET,
        timings: Optional[AtmTimings] = None,
        bus: BusModel = PCI_BUS,
        propagation_us: float = 0.5,
        trace=None,
    ) -> Host:
        """Attach a new workstation to the next free switch port.

        ``phy`` sets both directions of the host's fiber (the paper's
        bandwidth test received on a 140 Mb/s TAXI link; pass
        ``TAXI_140`` for that configuration).
        """
        backend = UNetAtmBackend(self.sim, name=f"{name}.pca200", timings=timings, bus=bus,
                                 trace=trace)
        port = self._next_port
        self._next_port += 1
        uplink = CellLink(self.sim, phy, propagation_us, name=f"{name}->sw")
        uplink.deliver = self.switch.on_cell
        backend.tx_link = uplink
        downlink = CellLink(self.sim, phy, propagation_us, name=f"sw->{name}")
        # late-bound so fault injectors can interpose on on_cell
        downlink.deliver = lambda cell: backend.on_cell(cell)
        self.switch.attach_port(port, downlink)
        self.signaling.register_host(backend, port)
        host = Host(self.sim, name, cpu, backend)
        self.hosts.append(host)
        return host

    def connect(self, a, b):
        """Duplex channel between two user endpoints (signaling service)."""
        return self.signaling.connect(a, b)

    def connect_collective(self, backend_a, backend_b):
        """Duplex VC owned by the NIC-resident collective engines."""
        return self.signaling.connect_collective(backend_a, backend_b)
