"""One-call reproduction self-check.

``validate_reproduction()`` measures every headline number of the paper
on the simulator and reports paper-vs-measured with a pass/fail flag —
the distilled version of the benchmark suite, usable as a smoke test
after any modification to the device models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .microbench import FIGURE5_CONFIGS, FIGURE6_CONFIGS, measure_bandwidth, measure_rtt
from .report import format_table
from .timelines import figure3_timeline, figure4_timeline

__all__ = ["Claim", "validate_reproduction", "render_validation"]


@dataclass
class Claim:
    """One checkable paper claim."""

    name: str
    paper: float
    measured: float
    tolerance: float  # relative

    @property
    def passed(self) -> bool:
        if self.paper == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.paper) / abs(self.paper) <= self.tolerance

    @property
    def deviation(self) -> float:
        return (self.measured - self.paper) / self.paper if self.paper else 0.0


def validate_reproduction(rounds: int = 4) -> List[Claim]:
    """Measure every headline number; returns the list of claims."""
    claims: List[Claim] = []

    def rtt(config: str, size: int) -> float:
        return measure_rtt(FIGURE5_CONFIGS[config](), size, rounds=rounds)

    def bandwidth(config: str, size: int) -> float:
        return measure_bandwidth(FIGURE6_CONFIGS[config](), size)

    claims.append(Claim("FE hub 40B RTT (us)", 57.0, rtt("hub", 40), 0.10))
    claims.append(Claim("FE FN100 40B RTT (us)", 91.0, rtt("fn100", 40), 0.10))
    claims.append(Claim("ATM 40B RTT (us)", 89.0, rtt("atm", 40), 0.10))
    claims.append(Claim("ATM 44B RTT, multi-cell (us)", 130.0, rtt("atm", 44), 0.15))
    claims.append(Claim("ATM 1500B RTT (us)", 351.0, rtt("atm", 1498), 0.12))
    claims.append(Claim("FE saturation bandwidth (Mb/s)", 96.5, bandwidth("hub", 1498), 0.05))
    claims.append(Claim("ATM peak bandwidth (Mb/s)", 118.0, bandwidth("atm", 1498), 0.08))
    claims.append(Claim("FE TX trap path (us)", 4.2, figure3_timeline().total, 0.02))
    # our receive spans include one trailing empty ring poll (0.52 us)
    claims.append(Claim("FE RX handler, 40B (us)", 4.1, figure4_timeline(40).total - 0.52, 0.06))
    claims.append(Claim("FE RX handler, 100B (us)", 5.6, figure4_timeline(100).total - 0.52, 0.06))
    # latency slopes (measured over the linear upper range)
    fe_slope = (rtt("hub", 1024) - rtt("hub", 128)) / 8.96
    claims.append(Claim("FE RTT slope (us/100B)", 25.0, fe_slope, 0.20))
    atm_slope = (rtt("atm", 1498) - rtt("atm", 44)) / 14.54
    claims.append(Claim("ATM RTT slope (us/100B)", 17.0, atm_slope, 0.20))
    return claims


def render_validation(claims: List[Claim]) -> str:
    rows = [
        (c.name, c.paper, c.measured, f"{c.deviation * 100:+.0f}%",
         "ok" if c.passed else "FAIL")
        for c in claims
    ]
    passed = sum(1 for c in claims if c.passed)
    return format_table(
        ("claim", "paper", "measured", "dev", ""),
        rows,
        title=f"Reproduction self-check: {passed}/{len(claims)} claims within tolerance",
    )
