"""ASCII tables and line plots for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["engine_rate_line", "format_table", "ascii_plot", "format_comparison"]


def engine_rate_line(results: Sequence) -> str:
    """One-line sim-engine throughput summary for the soak tables.

    Sums ``sim_events``/``wall_s`` over ``results`` (results without the
    attributes — e.g. live-wire runs with no simulator — contribute
    nothing) and reports events per wall-clock second, the metric the
    kernel fast path moves.  Empty string when nothing was simulated.
    """
    events = sum(getattr(r, "sim_events", 0) or 0 for r in results)
    wall = sum(getattr(r, "wall_s", 0.0) or 0.0 for r in results)
    if events <= 0 or wall <= 0.0:
        return ""
    return (f"sim engine: {events:,} events in {wall:.2f} s wall "
            f"({events / wall:,.0f} events/s)")


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Multi-series ASCII scatter/line plot (one glyph per series)."""
    glyphs = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, pts) in zip(glyphs, series.items()):
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.1f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_min:10.1f} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_min:<10.0f}{xlabel:^{max(0, width - 20)}}{x_max:>10.0f}")
    legend = "   ".join(f"{glyph}={label}" for glyph, label in zip(glyphs, series.keys()))
    lines.append(" " * 12 + legend)
    if ylabel:
        lines.insert(1 if title else 0, f"[y: {ylabel}]")
    return "\n".join(lines)


def format_comparison(rows: Sequence[Tuple[str, float, float]], label_a: str = "paper",
                      label_b: str = "measured", title: str = "") -> str:
    """Side-by-side paper-vs-measured table with relative deviation."""
    table_rows = []
    for name, paper, measured in rows:
        if paper:
            deviation = f"{(measured - paper) / paper * 100:+.0f}%"
        else:
            deviation = "n/a"
        table_rows.append((name, f"{paper:.1f}", f"{measured:.1f}", deviation))
    return format_table(("experiment", label_a, label_b, "dev"), table_rows, title=title)
