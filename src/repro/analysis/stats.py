"""Observability: harvest counters from a running simulation.

Every device and protocol layer keeps plain counter attributes
(messages sent, drops, retransmissions, cells forwarded...).  This
module gathers them into one nested dict — handy for debugging
simulations, asserting invariants in tests, and reporting experiment
health (e.g. "were there drops during this bandwidth run?").
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["backend_stats", "am_stats", "cluster_stats", "network_stats", "render_stats"]


def backend_stats(backend: Any) -> Dict[str, Any]:
    """Counters of one U-Net backend (either substrate)."""
    stats: Dict[str, Any] = {"name": backend.name}
    for attr in (
        "pdus_sent",
        "pdus_received",
        "crc_errors",
        "no_buffer_drops",
        "recv_queue_drops",
        "messages_sent",
        "messages_received",
        "ip_header_drops",
    ):
        if hasattr(backend, attr):
            stats[attr] = getattr(backend, attr)
    if hasattr(backend, "demux"):
        stats["unknown_tag_drops"] = backend.demux.unknown_tag_drops
    if hasattr(backend, "nic"):
        nic = backend.nic
        stats["nic"] = {
            "frames_sent": nic.frames_sent,
            "frames_received": nic.frames_received,
            "rx_overflow_drops": nic.rx_overflow_drops,
            "rx_crc_drops": nic.rx_crc_drops,
            "tx_collision_drops": nic.tx_collision_drops,
            "dma_bytes": nic.dma.bytes_transferred,
        }
    elif hasattr(backend, "dma"):
        stats["dma_bytes"] = backend.dma.bytes_transferred
    endpoints = getattr(backend, "endpoints", [])
    stats["endpoints"] = [
        {
            "id": ep.id,
            "messages_sent": ep.messages_sent,
            "messages_received": ep.messages_received,
            "bytes_sent": ep.bytes_sent,
            "bytes_received": ep.bytes_received,
            "receive_drops": ep.receive_drops,
        }
        for ep in endpoints
    ]
    return stats


def am_stats(am: Any) -> Dict[str, Any]:
    """Counters of one Active Messages endpoint."""
    peers = {
        node: {
            "retransmissions": peer.retransmissions,
            "duplicates": peer.duplicates,
            "unacked": len(peer.unacked),
            "timeouts": peer.timeouts,
            "fast_retransmits": peer.fast_retransmits,
            "rtt_samples": peer.rtt_samples,
            "srtt_us": round(peer.srtt, 2) if peer.srtt is not None else None,
            "rto_us": round(peer.rto_us, 2) if peer.srtt is not None else None,
            "cwnd": round(peer.cwnd, 2),
        }
        for node, peer in am._peers_by_node.items()
    }
    return {
        "node": am.node,
        "requests_sent": am.requests_sent,
        "replies_sent": am.replies_sent,
        "acks_sent": am.acks_sent,
        "requests_delivered": am.requests_delivered,
        "peers": peers,
    }


def network_stats(network: Any) -> Dict[str, Any]:
    """Counters of a topology (switch / hub / router, when present)."""
    stats: Dict[str, Any] = {}
    if hasattr(network, "switch"):
        switch = network.switch
        if hasattr(switch, "cells_forwarded"):
            stats["switch"] = {
                "cells_forwarded": switch.cells_forwarded,
                "unknown_vci_drops": switch.unknown_vci_drops,
            }
        else:
            stats["switch"] = {
                "frames_forwarded": switch.frames_forwarded,
                "unknown_mac_drops": switch.unknown_mac_drops,
            }
    if hasattr(network, "switches"):
        stats["switches"] = [
            {"cells_forwarded": s.cells_forwarded, "unknown_vci_drops": s.unknown_vci_drops}
            if hasattr(s, "cells_forwarded")
            else {"frames_forwarded": s.frames_forwarded, "unknown_mac_drops": s.unknown_mac_drops}
            for s in network.switches
        ]
    if hasattr(network, "medium"):
        medium = network.medium
        stats["medium"] = {
            "frames_carried": medium.frames_carried,
            "collisions": medium.collisions,
            "drops_excessive_collisions": medium.drops_excessive_collisions,
        }
    if hasattr(network, "router"):
        router = network.router
        stats["router"] = {
            "packets_forwarded": router.packets_forwarded,
            "drops_no_route": router.drops_no_route,
            "drops_bad_header": router.drops_bad_header,
            "drops_ttl": router.drops_ttl,
        }
    return stats


def cluster_stats(cluster: Any) -> Dict[str, Any]:
    """Everything about a Split-C cluster run."""
    return {
        "nodes": cluster.n,
        "substrate": cluster.substrate,
        "elapsed_us": cluster.elapsed,
        "network": network_stats(cluster.network),
        "backends": [backend_stats(host.backend) for host in cluster.hosts],
        "am": [am_stats(am) for am in cluster.ams],
        "runtime_ops": [
            {
                "node": rt.node,
                "barriers": rt.barriers_entered,
                "syncs": rt.syncs_completed,
                "gets": rt.gets_issued,
                "puts": rt.puts_issued,
                "fetches": rt.fetches_issued,
            }
            for rt in cluster.runtimes
        ],
        "time_breakdown": cluster.time_breakdown(),
    }


def render_stats(stats: Dict[str, Any], indent: int = 0) -> str:
    """Human-readable nested rendering."""
    lines = []
    pad = "  " * indent
    for key, value in stats.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(render_stats(value, indent + 1))
        elif isinstance(value, list):
            lines.append(f"{pad}{key}: [{len(value)} entries]")
            for item in value:
                if isinstance(item, dict):
                    lines.append(render_stats(item, indent + 1))
                    lines.append(f"{'  ' * (indent + 1)}---")
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(line for line in lines if line)
