"""End-to-end message journey tracing.

Figures 3 and 4 show the two kernel paths in isolation; this module
stitches *every* stage of one message's life — application compose,
trap/doorbell, NIC DMA, wire serialization, switch forwarding, receive
path, application consume — into a single annotated timeline, for
either substrate.  Useful for teaching and for sanity-checking where a
microsecond actually goes.
"""

from __future__ import annotations

from typing import List

from ..core.endpoint import EndpointConfig
from ..hw.cpu import PENTIUM_120, CpuModel
from ..sim import Simulator, Timeline, TraceRecord, TraceRecorder

__all__ = ["trace_journey", "render_journey"]

_CONFIG = EndpointConfig(num_buffers=64, buffer_size=2048)


def trace_journey(substrate: str = "fe", size: int = 40, cpu: CpuModel = PENTIUM_120) -> Timeline:
    """One instrumented one-way transfer; returns the merged timeline.

    ``substrate`` is ``"fe"`` (Bay 28115 switch) or ``"atm"`` (ASX-200).
    """
    sim = Simulator()
    trace = TraceRecorder()
    if substrate == "fe":
        from ..ethernet.network import SwitchedNetwork

        net = SwitchedNetwork(sim)
        h1 = net.add_host("src", cpu, trace=trace)
        h2 = net.add_host("dst", cpu, trace=trace)
        h1.backend.nic.trace = trace
        h2.backend.nic.trace = trace
    elif substrate == "atm":
        from ..atm.network import AtmNetwork

        net = AtmNetwork(sim)
        h1 = net.add_host("src", cpu, trace=trace)
        h2 = net.add_host("dst", cpu, trace=trace)
    else:
        raise ValueError(f"unknown substrate {substrate!r} (fe, atm)")
    ep1 = h1.create_endpoint(config=_CONFIG, rx_buffers=16)
    ep2 = h2.create_endpoint(config=_CONFIG, rx_buffers=16)
    ch1, ch2 = net.connect(ep1, ep2)

    def tx():
        start = sim.now
        yield from ep1.send(ch1, bytes(size))
        # the user-level portion (compose copy + descriptor push) spans
        # from start to the backend kick; record it as one step
        trace.record(start, cpu.copy_time(size) + 0.3, "app",
                     "src app: compose message + push descriptor", begin=True)

    def rx():
        message = yield from ep2.recv()
        trace.record(sim.now - 0.25, 0.25, "app", "dst app: pop descriptor, consume")
        return message

    sim.process(tx())
    sim.run_until_complete(sim.process(rx()))
    records = sorted(trace.records, key=lambda r: (r.start, r.end))
    merged: List[TraceRecord] = [
        TraceRecord(r.start, r.duration, "journey",
                    r.step if ":" in r.step else _prefix(r, substrate), dict(r.info))
        for r in records
    ]
    return Timeline("journey", merged)


def _prefix(record: TraceRecord, substrate: str) -> str:
    category = record.category
    if category.endswith(".tx") or category == "unet_fe.tx":
        who = "src kernel" if substrate == "fe" else "src i960"
        return f"{who}: {record.step}"
    if category.endswith(".rx"):
        who = "dst kernel" if substrate == "fe" else "dst i960"
        return f"{who}: {record.step}"
    return f"{category}: {record.step}"


def render_journey(substrate: str = "fe", size: int = 40) -> str:
    timeline = trace_journey(substrate, size)
    label = "U-Net/FE (Bay 28115)" if substrate == "fe" else "U-Net/ATM (ASX-200)"
    return timeline.render(
        title=f"One-way journey of a {size}-byte message over {label} "
              f"(total {timeline.total:.1f} us)",
        width=50,
    )
