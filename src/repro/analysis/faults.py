"""Fault injection: controlled loss and corruption on simulated links.

The tests and ablations need reproducible misbehaviour: dropped frames,
corrupted cells, flaky links.  These wrappers interpose on the two
substrates' delivery points and draw from named RNG streams so that
fault patterns are deterministic per seed.
"""

from __future__ import annotations

from typing import Optional

from ..atm.cells import Cell
from ..sim.rng import RngRegistry

__all__ = ["FrameFaultInjector", "CellFaultInjector"]


class FrameFaultInjector:
    """Drops and/or corrupts Ethernet frames arriving at one NIC.

    Corrupted frames are flagged (and their bytes damaged); the DC21140's
    hardware CRC checker then rejects them, so to the layers above a
    corruption is indistinguishable from a loss — as on real Ethernet.
    """

    def __init__(
        self,
        backend,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        rng: Optional[RngRegistry] = None,
        stream: str = "faults.frames",
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0 or not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError("rates must be within [0, 1]")
        self.backend = backend
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.rng = (rng or RngRegistry()).stream(stream)
        self.dropped = 0
        self.corrupted = 0
        self._original = backend.nic._on_frame
        backend.nic._on_frame = self._interpose

    def _interpose(self, frame) -> None:
        roll = self.rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return
        if roll < self.drop_rate + self.corrupt_rate:
            from ..ethernet.frames import EthernetFrame

            body = bytearray(frame.payload)
            if body:
                body[self.rng.randrange(len(body))] ^= 0xFF
            frame = EthernetFrame(
                dst_mac=frame.dst_mac,
                src_mac=frame.src_mac,
                dst_port=frame.dst_port,
                src_port=frame.src_port,
                payload=bytes(body),
                corrupted=True,
            )
            self.corrupted += 1
        self._original(frame)

    def remove(self) -> None:
        """Uninstall the injector."""
        self.backend.nic._on_frame = self._original


class CellFaultInjector:
    """Drops and/or corrupts ATM cells arriving at one PCA-200."""

    def __init__(
        self,
        backend,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        rng: Optional[RngRegistry] = None,
        stream: str = "faults.cells",
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0 or not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError("rates must be within [0, 1]")
        self.backend = backend
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self.rng = (rng or RngRegistry()).stream(stream)
        self.dropped = 0
        self.corrupted = 0
        self._original = backend.on_cell
        backend.on_cell = self._interpose

    def _interpose(self, cell: Cell) -> None:
        roll = self.rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return
        if roll < self.drop_rate + self.corrupt_rate:
            body = bytearray(cell.payload)
            body[self.rng.randrange(len(body))] ^= 0xFF
            cell = Cell(vci=cell.vci, payload=bytes(body), last=cell.last, corrupted=True)
            self.corrupted += 1
        self._original(cell)

    def remove(self) -> None:
        self.backend.on_cell = self._original
