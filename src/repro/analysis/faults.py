"""Back-compat shim: fault injection grew into :mod:`repro.faults`.

The injectors started life here as test helpers; they are now part of a
full fault-injection subsystem (perturbation pipelines, chaos soak
harness).  Import from :mod:`repro.faults` in new code — this module
re-exports the two original names so existing callers keep working.
"""

from __future__ import annotations

from ..faults import CellFaultInjector, FrameFaultInjector

__all__ = ["FrameFaultInjector", "CellFaultInjector"]
