"""Microbenchmarks: round-trip latency and bandwidth (Figures 5 and 6).

These drive the two U-Net implementations exactly as the paper's
application-level benchmarks did: a user process composes each message
into its endpoint buffer area, pushes a descriptor, kicks the NI, and
polls/blocks on its receive queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..atm.network import AtmNetwork
from ..atm.phy import OC3_SONET, TAXI_140, AtmPhy
from ..core.api import UserEndpoint
from ..core.endpoint import EndpointConfig
from ..ethernet.network import HubNetwork, SwitchedNetwork
from ..ethernet.switch import BAY_28115, FN100, SwitchModel
from ..hw.cpu import PENTIUM_120, CpuModel
from ..sim import Simulator

__all__ = [
    "MicrobenchSetup",
    "setup_fe_hub",
    "setup_fe_switch",
    "setup_atm",
    "measure_rtt",
    "measure_bandwidth",
    "measure_send_overhead",
    "rtt_series",
    "bandwidth_series",
    "FIGURE5_CONFIGS",
    "FIGURE6_CONFIGS",
]

_ENDPOINT = EndpointConfig(num_buffers=256, buffer_size=2048, send_queue_depth=128, recv_queue_depth=256)


@dataclass
class MicrobenchSetup:
    """A fresh two-host network plus connected endpoints."""

    label: str
    sim: Simulator
    ep1: UserEndpoint
    ep2: UserEndpoint
    ch1: int
    ch2: int


def setup_fe_hub(cpu: CpuModel = PENTIUM_120) -> MicrobenchSetup:
    sim = Simulator()
    net = HubNetwork(sim)
    return _finish("FE hub", sim, net, cpu)


def setup_fe_switch(model: SwitchModel = BAY_28115, cpu: CpuModel = PENTIUM_120) -> MicrobenchSetup:
    sim = Simulator()
    net = SwitchedNetwork(sim, model=model)
    return _finish(f"FE {model.name}", sim, net, cpu)


def setup_atm(phy: AtmPhy = OC3_SONET, cpu: CpuModel = PENTIUM_120) -> MicrobenchSetup:
    sim = Simulator()
    net = AtmNetwork(sim)
    h1 = net.add_host("h1", cpu, phy=phy)
    h2 = net.add_host("h2", cpu, phy=phy)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ch1, ch2 = net.connect(ep1, ep2)
    return MicrobenchSetup(f"ATM {phy.name}", sim, ep1, ep2, ch1, ch2)


def _finish(label: str, sim: Simulator, net, cpu: CpuModel) -> MicrobenchSetup:
    h1 = net.add_host("h1", cpu)
    h2 = net.add_host("h2", cpu)
    ep1 = h1.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ep2 = h2.create_endpoint(config=_ENDPOINT, rx_buffers=64)
    ch1, ch2 = net.connect(ep1, ep2)
    return MicrobenchSetup(label, sim, ep1, ep2, ch1, ch2)


def measure_rtt(setup: MicrobenchSetup, size: int, rounds: int = 5) -> float:
    """Application-level round-trip time for ``size``-byte messages."""
    sim = setup.sim
    payload = bytes(size)

    def ponger():
        while True:
            message = yield from setup.ep2.recv()
            yield from setup.ep2.send(setup.ch2, message.data)

    def pinger():
        rtts = []
        for _ in range(rounds):
            t0 = sim.now
            yield from setup.ep1.send(setup.ch1, payload)
            yield from setup.ep1.recv()
            rtts.append(sim.now - t0)
        # drop the cold-start round
        return sum(rtts[1:]) / (len(rtts) - 1)

    sim.process(ponger(), name="ponger")
    return sim.run_until_complete(sim.process(pinger(), name="pinger"))


def measure_send_overhead(setup: MicrobenchSetup, size: int = 40, sends: int = 20) -> float:
    """Host-processor time consumed per send, measured in the simulator.

    The sending process's elapsed time per ``send()`` call *is* the host
    overhead (compose copy + descriptor push + doorbell/trap): the NIC
    and wire work happens in other processes.  Reproduces the Section
    4.4 comparison (FE ~4.2 us trap + user costs vs ATM ~1.5 us).
    """
    sim = setup.sim
    payload = bytes(size)

    def sender():
        t0 = sim.now
        for _ in range(sends):
            yield from setup.ep1.send(setup.ch1, payload)
        return (sim.now - t0) / sends

    return sim.run_until_complete(sim.process(sender(), name="overhead"))


def measure_bandwidth(setup: MicrobenchSetup, size: int, messages: int = 60) -> float:
    """One-way application-level goodput in Mb/s for ``size``-byte messages."""
    sim = setup.sim
    payload = bytes(max(1, size))

    def sender():
        for _ in range(messages):
            yield from setup.ep1.send(setup.ch1, payload)

    def receiver():
        for _ in range(messages):
            yield from setup.ep2.recv()
        return sim.now

    sim.process(sender(), name="sender")
    end = sim.run_until_complete(sim.process(receiver(), name="receiver"))
    return messages * size * 8 / end if end > 0 else 0.0


#: the four Figure-5 configurations (paper: hub, Bay 28115, FN100, ATM),
#: plus the 140 Mb/s TAXI PHY of the paper's reference [16] (U-Net/ATM
#: without SONET framing measured 65 us there)
FIGURE5_CONFIGS: Dict[str, Callable[[], MicrobenchSetup]] = {
    "hub": setup_fe_hub,
    "bay28115": lambda: setup_fe_switch(BAY_28115),
    "fn100": lambda: setup_fe_switch(FN100),
    "atm": lambda: setup_atm(OC3_SONET),
    "atm-taxi": lambda: setup_atm(TAXI_140),
}

#: the Figure-6 configurations (bandwidth; ATM receives on 140 Mb/s TAXI)
FIGURE6_CONFIGS: Dict[str, Callable[[], MicrobenchSetup]] = {
    "hub": setup_fe_hub,
    "bay28115": lambda: setup_fe_switch(BAY_28115),
    "atm": lambda: setup_atm(TAXI_140),
}


def rtt_series(config: str, sizes: List[int], rounds: int = 5) -> List[Tuple[int, float]]:
    """(size, RTT us) points for one Figure-5 series."""
    factory = FIGURE5_CONFIGS[config]
    return [(size, measure_rtt(factory(), size, rounds)) for size in sizes]


def bandwidth_series(config: str, sizes: List[int], messages: int = 60) -> List[Tuple[int, float]]:
    """(size, Mb/s) points for one Figure-6 series."""
    factory = FIGURE6_CONFIGS[config]
    return [(size, measure_bandwidth(factory(), size, messages)) for size in sizes]
