"""Experiment harness: microbenchmarks, timelines, tables, reporting."""

from .microbench import (
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    MicrobenchSetup,
    bandwidth_series,
    measure_bandwidth,
    measure_rtt,
    measure_send_overhead,
    rtt_series,
    setup_atm,
    setup_fe_hub,
    setup_fe_switch,
)
from .benchcmp import (
    MetricDelta,
    compare_bench,
    compare_bench_files,
    headline_metrics,
    render_compare,
)
from .report import ascii_plot, format_comparison, format_table
from .faults import CellFaultInjector, FrameFaultInjector
from .stats import am_stats, backend_stats, cluster_stats, network_stats, render_stats
from .splitc_bench import (
    BENCHMARKS,
    PAPER_KEYS_PER_NODE,
    Table1Entry,
    figure7,
    table1,
    table1_des,
    table2,
)
from .timelines import atm_trace_transfer, figure3_timeline, figure4_timeline, trace_transfer
from .journey import render_journey, trace_journey
from .svgfig import line_chart_svg, save_figure5_svg, save_figure6_svg
from .validate import Claim, render_validation, validate_reproduction

__all__ = [
    "MicrobenchSetup",
    "setup_fe_hub",
    "setup_fe_switch",
    "setup_atm",
    "measure_rtt",
    "measure_bandwidth",
    "measure_send_overhead",
    "rtt_series",
    "bandwidth_series",
    "FIGURE5_CONFIGS",
    "FIGURE6_CONFIGS",
    "trace_transfer",
    "atm_trace_transfer",
    "figure3_timeline",
    "figure4_timeline",
    "format_table",
    "format_comparison",
    "ascii_plot",
    "backend_stats",
    "am_stats",
    "network_stats",
    "cluster_stats",
    "render_stats",
    "FrameFaultInjector",
    "CellFaultInjector",
    "Claim",
    "MetricDelta",
    "compare_bench",
    "compare_bench_files",
    "headline_metrics",
    "render_compare",
    "validate_reproduction",
    "render_validation",
    "line_chart_svg",
    "save_figure5_svg",
    "save_figure6_svg",
    "trace_journey",
    "render_journey",
    "table1",
    "table1_des",
    "table2",
    "figure7",
    "Table1Entry",
    "BENCHMARKS",
    "PAPER_KEYS_PER_NODE",
]
