"""Static SVG renditions of the paper's figures.

A dependency-free SVG line-chart renderer for Figures 5 and 6, following
a small, validated visual system (print-class artifact: no interaction
layer):

* categorical series colors in fixed slot order (validated: lightness
  band, chroma, CVD adjacent-pair separation; the two low-contrast slots
  are relieved by direct labels);
* thin 2-px lines with 8-px markers, recessive 1-px grid;
* all text in ink tokens (never the series color); identity is carried
  by a legend *and* direct end-of-line labels with color chips;
* one y-axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["line_chart_svg", "save_figure5_svg", "save_figure6_svg"]

# validated categorical slots (light mode, surface #fcfcfb)
SERIES_COLORS = ("#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7")
SURFACE = "#fcfcfb"
INK_PRIMARY = "#0b0b0b"
INK_SECONDARY = "#52514e"
GRID = "#e7e6e2"

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / count
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            step_size = step * magnitude
            break
    else:  # pragma: no cover - loop always breaks
        step_size = raw
    first = int(lo / step_size) * step_size
    ticks = []
    tick = first
    while tick <= hi + step_size * 0.01:
        if tick >= lo - step_size * 0.01:
            ticks.append(round(tick, 10))
        tick += step_size
    return ticks


def line_chart_svg(
    series: Dict[str, List[Tuple[float, float]]],
    title: str,
    xlabel: str,
    ylabel: str,
    width: int = 720,
    height: int = 440,
    subtitle: str = "",
) -> str:
    """Render a multi-series line chart as an SVG document string."""
    if not series:
        raise ValueError("no series to plot")
    if len(series) > len(SERIES_COLORS):
        raise ValueError(f"at most {len(SERIES_COLORS)} series supported")
    margin_left, margin_right = 64, 128
    margin_top, margin_bottom = 64, 56
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    xs = [x for pts in series.values() for x, _y in pts]
    ys = [y for pts in series.values() for _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_ticks = _nice_ticks(0.0, max(ys))
    y_lo, y_hi = 0.0, max(y_ticks[-1], max(ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x: float) -> float:
        return margin_left + (x - x_lo) / x_span * plot_w

    def sy(y: float) -> float:
        return margin_top + plot_h - (y - y_lo) / y_span * plot_h

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" aria-label="{title}">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')
    parts.append(
        f'<text x="{margin_left}" y="26" {_FONT} font-size="16" font-weight="bold" '
        f'fill="{INK_PRIMARY}">{title}</text>'
    )
    if subtitle:
        parts.append(
            f'<text x="{margin_left}" y="44" {_FONT} font-size="12" '
            f'fill="{INK_SECONDARY}">{subtitle}</text>'
        )
    # recessive grid + y tick labels
    for tick in y_ticks:
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" x2="{margin_left + plot_w}" '
            f'y2="{y:.1f}" stroke="{GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" {_FONT} font-size="11" '
            f'fill="{INK_SECONDARY}" text-anchor="end">{tick:g}</text>'
        )
    # x ticks
    for tick in _nice_ticks(x_lo, x_hi, count=6):
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h + 4}" stroke="{INK_SECONDARY}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 18}" {_FONT} font-size="11" '
            f'fill="{INK_SECONDARY}" text-anchor="middle">{tick:g}</text>'
        )
    # axis labels
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.0f}" y="{height - 12}" {_FONT} '
        f'font-size="12" fill="{INK_SECONDARY}" text-anchor="middle">{xlabel}</text>'
    )
    parts.append(
        f'<text x="18" y="{margin_top + plot_h / 2:.0f}" {_FONT} font-size="12" '
        f'fill="{INK_SECONDARY}" text-anchor="middle" '
        f'transform="rotate(-90 18 {margin_top + plot_h / 2:.0f})">{ylabel}</text>'
    )
    # baseline
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        f'stroke="{INK_SECONDARY}" stroke-width="1"/>'
    )
    # series: 2px lines, 8px markers, direct end labels in ink + chip
    label_slots: List[float] = []
    for index, (name, points) in enumerate(series.items()):
        color = SERIES_COLORS[index]
        ordered = sorted(points)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(ordered)
        )
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in ordered:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" fill="{color}" '
                f'stroke="{SURFACE}" stroke-width="2"/>'
            )
        # direct label at line end, nudged to avoid collisions
        end_x, end_y = ordered[-1]
        label_y = sy(end_y)
        while any(abs(label_y - used) < 14 for used in label_slots):
            label_y += 14
        label_slots.append(label_y)
        parts.append(
            f'<rect x="{margin_left + plot_w + 8}" y="{label_y - 5:.1f}" width="10" '
            f'height="10" rx="2" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{margin_left + plot_w + 22}" y="{label_y + 4:.1f}" {_FONT} '
            f'font-size="11" fill="{INK_PRIMARY}">{name}</text>'
        )
    # legend row (top right)
    legend_x = margin_left
    legend_y = margin_top - 10
    for index, name in enumerate(series):
        color = SERIES_COLORS[index]
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" height="10" rx="2" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y}" {_FONT} font-size="11" '
            f'fill="{INK_PRIMARY}">{name}</text>'
        )
        legend_x += 20 + 7 * len(name)
    parts.append("</svg>")
    return "\n".join(parts)


def save_figure5_svg(path: str, sizes: Optional[Sequence[int]] = None) -> str:
    """Measure and render Figure 5 (RTT vs size) to ``path``."""
    from .microbench import FIGURE5_CONFIGS, measure_rtt

    sizes = list(sizes or (0, 16, 40, 44, 64, 128, 256, 512, 1024, 1498))
    series = {}
    for name, factory in FIGURE5_CONFIGS.items():
        if name == "atm-taxi":
            continue  # the paper's Figure 5 shows four configurations
        series[name] = [(float(s), measure_rtt(factory(), s)) for s in sizes]
    svg = line_chart_svg(
        series,
        title="Figure 5 — round-trip latency vs message size",
        subtitle="U-Net/FE (hub, Bay 28115, FN100) and U-Net/ATM (ASX-200, OC-3c)",
        xlabel="message size (bytes)",
        ylabel="round-trip time (µs)",
    )
    with open(path, "w") as f:
        f.write(svg)
    return path


def save_figure6_svg(path: str, sizes: Optional[Sequence[int]] = None) -> str:
    """Measure and render Figure 6 (bandwidth vs size) to ``path``."""
    from .microbench import FIGURE6_CONFIGS, measure_bandwidth

    sizes = list(sizes or (16, 64, 128, 256, 384, 512, 768, 1024, 1280, 1498))
    series = {
        name: [(float(s), measure_bandwidth(factory(), s)) for s in sizes]
        for name, factory in FIGURE6_CONFIGS.items()
    }
    svg = line_chart_svg(
        series,
        title="Figure 6 — bandwidth vs message size",
        subtitle="FE saturates near the 100 Mb/s wire; ATM reaches ~118 Mb/s on TAXI",
        xlabel="message size (bytes)",
        ylabel="bandwidth (Mb/s)",
    )
    with open(path, "w") as f:
        f.write(svg)
    return path
