"""Split-C application results: Table 1, Table 2, and Figure 7.

Full-scale numbers (512K keys/node, 1024x1024 / 256x256 matrices) come
from the analytic projections (see ``repro.perfmodel``); the same
functions also run the real DES benchmarks at reduced scale for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..apps import PAPER_MM_128, PAPER_MM_16, MatmulConfig, RadixConfig, SampleConfig
from ..hw.cpu import PENTIUM_120, SPARCSTATION_20
from ..perfmodel import (
    Projection,
    atm_stage_costs,
    fe_stage_costs,
    project_matmul,
    project_radix,
    project_sample,
)
from ..splitc import atm_cluster_cpus, fe_cluster_cpus

__all__ = [
    "BENCHMARKS",
    "PAPER_KEYS_PER_NODE",
    "table1",
    "table1_des",
    "table2",
    "figure7",
    "Table1Entry",
]

PAPER_KEYS_PER_NODE = 512 * 1024
NODE_COUNTS = (2, 4, 8)

#: benchmark order as printed in the paper's tables
BENCHMARKS = ("mm 128x128", "mm 16x16", "ssortsm512K", "ssortlg512K", "rsortsm512K", "rsortlg512K")


@dataclass
class Table1Entry:
    benchmark: str
    nodes: int
    substrate: str  # "FE" or "ATM"
    seconds: float
    cpu_seconds: float
    net_seconds: float


def _project(benchmark: str, n: int, substrate: str, keys: int) -> Projection:
    if substrate == "FE":
        costs = fe_stage_costs(PENTIUM_120)
        cpus = fe_cluster_cpus(n)
    else:
        costs = atm_stage_costs(SPARCSTATION_20)
        cpus = atm_cluster_cpus(n)
    if benchmark == "mm 128x128":
        return project_matmul(PAPER_MM_128, n, costs, cpus, substrate=substrate)
    if benchmark == "mm 16x16":
        return project_matmul(PAPER_MM_16, n, costs, cpus, substrate=substrate)
    if benchmark == "ssortsm512K":
        return project_sample(SampleConfig(keys, True), n, costs, cpus, substrate=substrate)
    if benchmark == "ssortlg512K":
        return project_sample(SampleConfig(keys, False), n, costs, cpus, substrate=substrate)
    if benchmark == "rsortsm512K":
        return project_radix(RadixConfig(keys, True), n, costs, cpus, substrate=substrate)
    if benchmark == "rsortlg512K":
        return project_radix(RadixConfig(keys, False), n, costs, cpus, substrate=substrate)
    raise ValueError(f"unknown benchmark {benchmark!r}")


def table1(keys_per_node: int = PAPER_KEYS_PER_NODE) -> List[Table1Entry]:
    """Execution times for the 6 benchmarks x {2,4,8} nodes x {FE, ATM}."""
    entries = []
    for benchmark in BENCHMARKS:
        for n in NODE_COUNTS:
            for substrate in ("FE", "ATM"):
                projection = _project(benchmark, n, substrate, keys_per_node)
                entries.append(
                    Table1Entry(
                        benchmark=benchmark,
                        nodes=n,
                        substrate=substrate,
                        seconds=projection.total_s,
                        cpu_seconds=projection.cpu_us / 1e6,
                        net_seconds=projection.net_us / 1e6,
                    )
                )
    return entries


def table1_des(
    keys_per_node: int = 2048,
    node_counts: Tuple[int, ...] = (2, 4),
    mm_blocks: int = 4,
    mm_block_size: int = 16,
) -> List[Table1Entry]:
    """Table 1 measured in the event-level simulator at reduced scale.

    Complements the analytic full-scale :func:`table1`: same benchmarks,
    same clusters, every message simulated.  Key counts and the matrix
    size are scaled down to keep pure-Python event processing tractable
    (see DESIGN.md); use it to sanity-check orderings, not absolutes.
    """
    from ..apps import run_matmul, run_radix_sort, run_sample_sort
    from ..splitc import Cluster

    runners = [
        (f"mm {mm_blocks * mm_block_size}^2 (scaled)",
         lambda cl: run_matmul(cl, MatmulConfig(blocks=mm_blocks, block_size=mm_block_size))),
        (f"ssortsm{keys_per_node}",
         lambda cl: run_sample_sort(cl, SampleConfig(keys_per_node, True))),
        (f"ssortlg{keys_per_node}",
         lambda cl: run_sample_sort(cl, SampleConfig(keys_per_node, False))),
        (f"rsortsm{keys_per_node}",
         lambda cl: run_radix_sort(cl, RadixConfig(keys_per_node, True))),
        (f"rsortlg{keys_per_node}",
         lambda cl: run_radix_sort(cl, RadixConfig(keys_per_node, False))),
    ]
    entries = []
    for name, runner in runners:
        for n in node_counts:
            for substrate, label in (("fe-switch", "FE"), ("atm", "ATM")):
                cluster = Cluster(n, substrate=substrate)
                result = runner(cluster)
                breakdown = cluster.time_breakdown()
                entries.append(Table1Entry(
                    benchmark=name,
                    nodes=n,
                    substrate=label,
                    seconds=result.elapsed_us / 1e6,
                    cpu_seconds=sum(b["cpu_us"] for b in breakdown) / n / 1e6,
                    net_seconds=sum(b["net_us"] for b in breakdown) / n / 1e6,
                ))
    return entries


def table2(entries: Optional[List[Table1Entry]] = None) -> List[Tuple[str, float, float]]:
    """Speedups from 2 to 8 nodes for both clusters (Table 2).

    The matrix multiplies keep total problem size constant (speedup =
    T2/T8); the sorts keep keys *per processor* constant, so the scaled
    speedup is 4 x T2/T8.
    """
    entries = entries if entries is not None else table1()
    index: Dict[Tuple[str, int, str], float] = {
        (e.benchmark, e.nodes, e.substrate): e.seconds for e in entries
    }
    rows = []
    for benchmark in BENCHMARKS:
        scale = 1.0 if benchmark.startswith("mm") else 4.0
        atm_speedup = scale * index[(benchmark, 2, "ATM")] / index[(benchmark, 8, "ATM")]
        fe_speedup = scale * index[(benchmark, 2, "FE")] / index[(benchmark, 8, "FE")]
        rows.append((benchmark, atm_speedup, fe_speedup))
    return rows


def figure7(entries: Optional[List[Table1Entry]] = None) -> List[dict]:
    """Relative execution times with the cpu/net split (Figure 7).

    Times are normalized to the 2-node ATM cluster for each benchmark.
    """
    entries = entries if entries is not None else table1()
    index: Dict[Tuple[str, int, str], Table1Entry] = {
        (e.benchmark, e.nodes, e.substrate): e for e in entries
    }
    bars = []
    for benchmark in BENCHMARKS:
        reference = index[(benchmark, 2, "ATM")].seconds
        for substrate in ("ATM", "FE"):
            for n in NODE_COUNTS:
                entry = index[(benchmark, n, substrate)]
                bars.append(
                    {
                        "benchmark": benchmark,
                        "substrate": substrate,
                        "nodes": n,
                        "relative_total": entry.seconds / reference,
                        "relative_cpu": entry.cpu_seconds / reference,
                        "relative_net": entry.net_seconds / reference,
                    }
                )
    return bars
