"""Step timelines of the U-Net/FE kernel paths (Figures 3 and 4).

Runs one instrumented message transfer and extracts the traced step
sequence of the transmit trap and the receive interrupt handler.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.endpoint import EndpointConfig
from ..ethernet.network import HubNetwork
from ..ethernet.unet_fe import RX_TRACE, TX_TRACE
from ..hw.cpu import PENTIUM_120, CpuModel
from ..sim import Simulator, Timeline, TraceRecorder

__all__ = ["trace_transfer", "figure3_timeline", "figure4_timeline", "atm_trace_transfer"]


def trace_transfer(size: int, cpu: CpuModel = PENTIUM_120) -> Tuple[Timeline, Timeline]:
    """Send one ``size``-byte message; returns (tx trap, rx handler) timelines."""
    sim = Simulator()
    trace = TraceRecorder()
    net = HubNetwork(sim)
    h1 = net.add_host("h1", cpu, trace=trace)
    h2 = net.add_host("h2", cpu, trace=trace)
    config = EndpointConfig(num_buffers=64, buffer_size=2048)
    ep1 = h1.create_endpoint(config=config, rx_buffers=16)
    ep2 = h2.create_endpoint(config=config, rx_buffers=16)
    ch1, ch2 = net.connect(ep1, ep2)

    def tx():
        yield from ep1.send(ch1, bytes(size))

    def rx():
        return (yield from ep2.recv())

    sim.process(tx())
    sim.run_until_complete(sim.process(rx()))
    tx_span = trace.last_span(TX_TRACE)
    rx_span = trace.last_span(RX_TRACE)
    if tx_span is None or rx_span is None:
        raise RuntimeError("transfer produced no trace")
    return tx_span, rx_span


def atm_trace_transfer(size: int, cpu: CpuModel = PENTIUM_120) -> Tuple[Timeline, Timeline]:
    """One traced U-Net/ATM transfer; returns (i960 TX, i960 RX) timelines.

    There is no ATM timeline figure in the paper (Section 4.2 describes
    the firmware in prose), but the same instrumentation that produces
    Figures 3 and 4 applies; useful for inspecting the single-cell fast
    path versus the reassembly slow path.
    """
    from ..atm.network import AtmNetwork
    from ..atm.unet_atm import ATM_RX_TRACE, ATM_TX_TRACE

    sim = Simulator()
    trace = TraceRecorder()
    net = AtmNetwork(sim)
    h1 = net.add_host("h1", cpu, trace=trace)
    h2 = net.add_host("h2", cpu, trace=trace)
    config = EndpointConfig(num_buffers=64, buffer_size=2048)
    ep1 = h1.create_endpoint(config=config, rx_buffers=16)
    ep2 = h2.create_endpoint(config=config, rx_buffers=16)
    ch1, ch2 = net.connect(ep1, ep2)

    def tx():
        yield from ep1.send(ch1, bytes(size))

    def rx():
        return (yield from ep2.recv())

    sim.process(tx())
    sim.run_until_complete(sim.process(rx()))
    tx_span = trace.last_span(ATM_TX_TRACE)
    rx_span = trace.last_span(ATM_RX_TRACE)
    if tx_span is None or rx_span is None:
        raise RuntimeError("transfer produced no trace")
    return tx_span, rx_span


def figure3_timeline(size: int = 40) -> Timeline:
    """The Figure-3 transmit timeline (40-byte message, 4.2 us)."""
    tx_span, _rx = trace_transfer(size)
    return tx_span


def figure4_timeline(size: int) -> Timeline:
    """A Figure-4 receive timeline (40 bytes -> 4.1 us, 100 -> 5.6 us)."""
    _tx, rx_span = trace_transfer(size)
    return rx_span
