"""Benchmark snapshot comparison: catch regressions before they land.

``python -m repro bench --compare BASELINE.json CANDIDATE.json`` diffs
two committed BENCH snapshots and exits nonzero when any *headline*
metric regressed by more than the threshold (15% by default).  The
headline set is format-dispatched, so the same command guards both the
wall-clock rig (``repro-bench-live/2``: p50 latency per size, goodput
per size, incast goodput, and the batched fast path's throughput,
syscalls-per-message, and speedup), the deterministic transport
ablation (``repro-bench-transport/1``: goodput per scenario and mode),
the collective-latency sweep (``repro-bench-collectives/1``: mean
barrier/reduce latency per substrate, mode, and node count, plus the
host-vs-NIC speedup ratios), and the fabric fault-tolerance soak
(``repro-bench-fabric/1``: recovery time and post-recovery round
latency per fault scenario).

Direction matters: latency regresses *up*, goodput regresses *down*.
Improvements of any size and regressions inside the threshold are
reported but never fail the comparison — wall-clock numbers wobble,
and the threshold is the contract for how much wobble CI tolerates.
The transport snapshot is deterministic, so any drift there is a real
behaviour change; CI additionally byte-diffs it, and this comparison
is the human-readable explanation of what moved.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "headline_metrics",
    "compare_bench",
    "compare_bench_files",
    "render_compare",
]

#: a headline metric may drift this fraction in the bad direction
#: before the comparison fails
DEFAULT_THRESHOLD = 0.15


@dataclass
class MetricDelta:
    """One headline metric, baseline vs candidate."""

    name: str
    #: ``"higher"`` or ``"lower"`` — which direction is better
    better: str
    baseline: float
    candidate: float

    @property
    def change_frac(self) -> float:
        """Signed relative change, positive = moved in the bad direction."""
        if self.baseline == 0.0:
            return 0.0 if self.candidate == 0.0 else float("inf")
        drift = (self.candidate - self.baseline) / abs(self.baseline)
        return (drift if self.better == "lower" else -drift) + 0.0  # no -0.0

    def regressed(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        return self.change_frac > threshold


def _live_headlines(payload: dict) -> List[Tuple[str, str, float]]:
    metrics: List[Tuple[str, str, float]] = []
    for row in payload["round_trip"]:
        metrics.append((f"rtt[{row['size']}B].p50_us", "lower", row["p50_us"]))
    for row in payload["bandwidth"]:
        metrics.append((f"bandwidth[{row['size']}B].goodput_mbps", "higher",
                        row["goodput_mbps"]))
    metrics.append(("incast.goodput_mbps", "higher",
                    payload["incast"]["goodput_mbps"]))
    return metrics


def _live_v2_headlines(payload: dict) -> List[Tuple[str, str, float]]:
    """live/1 plus the burst fast path: the batched throughput and its
    syscalls-per-message ratio are first-class regression gates, as is
    the speedup over the per-syscall baseline."""
    metrics = _live_headlines(payload)
    burst = payload["burst"]
    metrics.append(("burst.batched.msgs_per_sec", "higher",
                    burst["batched"]["msgs_per_sec"]))
    metrics.append(("burst.batched.syscalls_per_message", "lower",
                    burst["batched"]["syscalls_per_message"]))
    metrics.append(("burst.speedup", "higher", burst["speedup"]))
    return metrics


def _transport_headlines(payload: dict) -> List[Tuple[str, str, float]]:
    metrics: List[Tuple[str, str, float]] = []
    for entry in payload["scenarios"]:
        for mode, row in sorted(entry["modes"].items()):
            metrics.append((f"{entry['scenario']}[{mode}].goodput_mbps",
                            "higher", row["goodput_mbps"]))
    return metrics


def _collectives_headlines(payload: dict) -> List[Tuple[str, str, float]]:
    """Every measured latency cell, plus the host/nic speedup ratios.

    All values are simulated time, so they are deterministic and any
    drift is a real behaviour change.  The ``engine`` events/sec
    snapshot is deliberately *not* a headline — it is wall-clock and
    machine-dependent."""
    metrics: List[Tuple[str, str, float]] = []
    for p in payload["points"]:
        metrics.append((f"{p['op']}[{p['substrate']},{p['mode']},"
                        f"n{p['nodes']}].mean_us", "lower", p["mean_us"]))
    for s in payload["speedups"]:
        metrics.append((f"speedup[{s['substrate']},n{s['nodes']}].{s['op']}",
                        "higher", s["speedup"]))
    return metrics


def _fabric_headlines(payload: dict) -> List[Tuple[str, str, float]]:
    """Recovery time and steady-state round latency per fault scenario.

    Both are simulated time — deterministic, so any drift is a real
    behaviour change; CI additionally byte-diffs the snapshot."""
    metrics: List[Tuple[str, str, float]] = []
    for entry in payload["scenarios"]:
        row = entry["row"]
        metrics.append((f"{entry['scenario']}.recovery_us", "lower",
                        row["recovery_us"]))
        metrics.append((f"{entry['scenario']}.post_recovery_mean_us", "lower",
                        row["post_recovery_mean_us"]))
    return metrics


_HEADLINES = {
    "repro-bench-live/1": _live_headlines,
    "repro-bench-live/2": _live_v2_headlines,
    "repro-bench-transport/1": _transport_headlines,
    "repro-bench-collectives/1": _collectives_headlines,
    "repro-bench-fabric/1": _fabric_headlines,
}


def headline_metrics(payload: dict) -> List[Tuple[str, str, float]]:
    """``(name, better-direction, value)`` triples for one snapshot."""
    fmt = payload.get("format")
    if fmt not in _HEADLINES:
        raise ValueError(f"no headline metrics defined for format {fmt!r}; "
                         f"known: {sorted(_HEADLINES)}")
    return _HEADLINES[fmt](payload)


def compare_bench(baseline: dict, candidate: dict,
                  threshold: float = DEFAULT_THRESHOLD,
                  ) -> Tuple[List[MetricDelta], List[str]]:
    """Diff two snapshots; returns (all deltas, fatal problems).

    Problems cover format mismatches and headline metrics present on
    one side only — a silently vanished metric must not read as "no
    regression"."""
    problems: List[str] = []
    if baseline.get("format") != candidate.get("format"):
        problems.append(f"format mismatch: baseline {baseline.get('format')!r} "
                        f"vs candidate {candidate.get('format')!r}")
        return [], problems
    base = {name: (better, value)
            for name, better, value in headline_metrics(baseline)}
    cand = {name: (better, value)
            for name, better, value in headline_metrics(candidate)}
    deltas: List[MetricDelta] = []
    for name, (better, value) in base.items():
        if name not in cand:
            problems.append(f"{name}: present in baseline, missing in candidate")
            continue
        deltas.append(MetricDelta(name=name, better=better,
                                  baseline=value, candidate=cand[name][1]))
    for name in cand:
        if name not in base:
            problems.append(f"{name}: new in candidate, absent in baseline")
    problems.extend(f"{d.name}: regressed {d.change_frac * 100.0:+.1f}% "
                    f"({d.baseline:.2f} -> {d.candidate:.2f}, "
                    f"{d.better} is better, threshold {threshold * 100.0:.0f}%)"
                    for d in deltas if d.regressed(threshold))
    return deltas, problems


def compare_bench_files(baseline_path: str, candidate_path: str,
                        threshold: float = DEFAULT_THRESHOLD,
                        ) -> Tuple[List[MetricDelta], List[str]]:
    """File-level entry point used by ``bench --compare``."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(candidate_path, "r", encoding="utf-8") as fh:
        candidate = json.load(fh)
    return compare_bench(baseline, candidate, threshold=threshold)


def render_compare(deltas: List[MetricDelta], problems: List[str],
                   threshold: float = DEFAULT_THRESHOLD) -> str:
    """Terminal report: every headline metric, worst drift first."""
    from .report import format_table

    rows = []
    for d in sorted(deltas, key=lambda d: -d.change_frac):
        drift = d.change_frac
        verdict = ("REGRESSED" if d.regressed(threshold)
                   else "ok" if drift <= 0.0 else "drift")
        rows.append([d.name, f"{d.baseline:.2f}", f"{d.candidate:.2f}",
                     "inf" if drift == float("inf") else f"{drift * 100.0:+.1f}%",
                     verdict])
    lines = [format_table(
        ("metric", "baseline", "candidate", "bad-drift", "verdict"),
        rows,
        title=f"Benchmark comparison (threshold {threshold * 100.0:.0f}%)")]
    for problem in problems:
        lines.append(f"  !! {problem}")
    if not problems:
        lines.append(f"  no headline metric regressed beyond "
                     f"{threshold * 100.0:.0f}%")
    return "\n".join(lines)
