"""Parallel sample sort (the paper's ``ssort`` benchmark).

"Instead of alternating computation and communication phases, the
sample sort algorithm uses a single key distribution phase.  The
algorithm selects a fixed number of samples from keys on each node,
sorts all samples from all nodes on a single processor, and selects
splitters ... The splitters are broadcast to all nodes.  The main
communication phase consists of sending each key to the appropriate
node based on splitter values.  Finally, each node sorts its values
locally" (Section 5.1).

Small-message variant sends two keys per message; the large-message
variant transmits a single bulk message per destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..splitc.cluster import Cluster
from ..splitc.runtime import SplitCRuntime
from .radix_sort import NO_KEY, SortResult

__all__ = ["SampleConfig", "run_sample_sort", "verify_sample_sorted"]

#: app-level AM handler: append keys to the destination's receive area
H_SS_APPEND = 0x41

#: receive head-room factor over the expected keys_per_node (sample sort
#: balances only approximately)
RECV_SLACK = 3


@dataclass(frozen=True)
class SampleConfig:
    keys_per_node: int
    small_messages: bool
    oversampling: int = 32
    seed: int = 11


def initial_keys(cfg: SampleConfig, node: int) -> np.ndarray:
    rng = np.random.RandomState(cfg.seed * 1000 + node)
    return rng.randint(0, 2**32, size=cfg.keys_per_node, dtype=np.uint32)


def sample_program(cfg: SampleConfig):
    """SPMD program factory for one sample-sort run."""

    def program(rt: SplitCRuntime):
        n = rt.nprocs
        kpn = cfg.keys_per_node
        samples_per_node = min(cfg.oversampling, kpn)
        keys = rt.all_spread_malloc("ss_keys", kpn, np.uint32)
        recv = rt.all_spread_malloc("ss_recv", max(16, RECV_SLACK * kpn), np.uint32)
        count_arr = rt.all_spread_malloc("ss_count", 1, np.int64)
        samples = rt.all_spread_malloc("ss_samples", samples_per_node * n, np.uint32)
        splitters = rt.all_spread_malloc("ss_split", max(1, n - 1), np.uint32)
        keys[:] = initial_keys(cfg, rt.node)

        def append_handler(ctx):
            if ctx.data:
                incoming = np.frombuffer(ctx.data, dtype=np.uint32)
            else:
                k1, k2, _a2, a3 = ctx.args
                incoming = np.array([k1] if a3 == NO_KEY else [k1, k2], dtype=np.uint32)
            cursor = int(count_arr[0])
            if cursor + len(incoming) > len(recv):
                raise RuntimeError(f"node {rt.node}: sample-sort receive area overflow")
            recv[cursor : cursor + len(incoming)] = incoming
            count_arr[0] = cursor + len(incoming)

        rt.register_counted_handler(H_SS_APPEND, append_handler)
        count_arr[0] = 0
        yield from rt.barrier()

        # phase 1: sample selection, gathered on node 0
        stride = max(1, kpn // samples_per_node)
        my_samples = keys[::stride][:samples_per_node].copy()
        yield from rt.compute(int_ops=rt.costs.sample_select_ops * samples_per_node)
        if rt.node == 0:
            samples[:samples_per_node] = my_samples
        else:
            yield from rt.store_array(0, "ss_samples", rt.node * samples_per_node, my_samples)
        yield from rt.all_store_sync()

        # phase 2: node 0 sorts the samples and broadcasts the splitters
        if rt.node == 0:
            all_samples = np.sort(samples[: samples_per_node * n])
            yield from rt.compute(int_ops=rt.costs.local_sort_ops(len(all_samples)))
            step = max(1, len(all_samples) // n)
            chosen = all_samples[step::step][: n - 1]
            if len(chosen) < n - 1:  # degenerate tiny inputs
                chosen = np.pad(chosen, (0, n - 1 - len(chosen)), constant_values=2**32 - 1)
            yield from rt.broadcast_small(0, "ss_split", chosen.astype(np.uint32))
        else:
            yield from rt.broadcast_small(0, "ss_split")

        # phase 3: the single key-distribution phase
        dest = np.searchsorted(splitters[: n - 1], keys, side="right")
        yield from rt.compute(int_ops=rt.costs.partition_ops(kpn, n - 1))
        for peer in range(n):
            to_peer = keys[dest == peer]
            if peer == rt.node:
                cursor = int(count_arr[0])
                recv[cursor : cursor + len(to_peer)] = to_peer
                count_arr[0] = cursor + len(to_peer)
                yield from rt.compute(us=rt.cpu.copy_time(4 * len(to_peer)))
            elif len(to_peer) == 0:
                continue
            elif cfg.small_messages:
                for i in range(0, len(to_peer) - 1, 2):
                    args = (int(to_peer[i]), int(to_peer[i + 1]), 0, 0)
                    yield from rt.counted_request(peer, H_SS_APPEND, args=args)
                if len(to_peer) % 2:
                    yield from rt.counted_request(
                        peer, H_SS_APPEND, args=(int(to_peer[-1]), 0, 0, NO_KEY)
                    )
            else:
                yield from rt.counted_bulk(peer, H_SS_APPEND, to_peer.tobytes(), record_bytes=4)
        yield from rt.all_store_sync()

        # phase 4: local sort of everything received
        received = int(count_arr[0])
        recv[:received] = np.sort(recv[:received])
        yield from rt.compute(int_ops=rt.costs.local_sort_ops(received))
        yield from rt.barrier()
        return received

    return program


def run_sample_sort(cluster: Cluster, cfg: SampleConfig) -> SortResult:
    start = cluster.sim.now
    cluster.run(sample_program(cfg))
    breakdown = cluster.time_breakdown()
    return SortResult(
        elapsed_us=cluster.sim.now - start,
        per_node_cpu_us=[b["cpu_us"] for b in breakdown],
        per_node_net_us=[b["net_us"] for b in breakdown],
        nprocs=cluster.n,
        keys_per_node=cfg.keys_per_node,
    )


def verify_sample_sorted(cluster: Cluster, cfg: SampleConfig) -> bool:
    """Check the distributed result is a sorted permutation of the input."""
    pieces = []
    for rt in cluster.runtimes:
        received = int(rt.local("ss_count")[0])
        pieces.append(rt.local("ss_recv")[:received].copy())
    merged = np.concatenate(pieces)
    if np.any(np.diff(merged.astype(np.int64)) < 0):
        return False
    original = np.concatenate([initial_keys(cfg, i) for i in range(cluster.n)])
    return np.array_equal(np.sort(merged), np.sort(original))
