"""Blocked matrix multiply (the paper's ``mm`` benchmark).

"The main loop in the matrix multiply algorithm repeatedly fetches a
block from each of the two matrices to be multiplied, performs the
multiplication, and stores the result locally" (Section 5.1).  The
paper runs two configurations: 8x8 blocks of 128x128 doubles and 16x16
blocks of 16x16 doubles.

Blocks of A, B and C are distributed round-robin over the nodes by
block index; each node computes its C blocks, bulk-fetching the A and B
blocks it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..splitc.cluster import Cluster
from ..splitc.runtime import SplitCRuntime

__all__ = ["MatmulConfig", "MatmulResult", "run_matmul", "PAPER_MM_128", "PAPER_MM_16"]


@dataclass(frozen=True)
class MatmulConfig:
    """One matmul problem instance.

    With ``prefetch`` the program issues the next step's block fetches
    split-phase while multiplying the current blocks — the overlap of
    communication and computation that Section 4.4.3 says U-Net/ATM's
    co-processor architecture is built for.
    """

    blocks: int  # blocks per side
    block_size: int  # elements per block side
    seed: int = 1
    prefetch: bool = False

    @property
    def n(self) -> int:
        return self.blocks * self.block_size

    def owner(self, bi: int, bj: int, nprocs: int) -> int:
        return (bi * self.blocks + bj) % nprocs

    def slot(self, bi: int, bj: int, nprocs: int) -> int:
        return (bi * self.blocks + bj) // nprocs

    def blocks_owned(self, node: int, nprocs: int) -> int:
        total = self.blocks * self.blocks
        return (total - node + nprocs - 1) // nprocs


#: the paper's two configurations
PAPER_MM_128 = MatmulConfig(blocks=8, block_size=128)
PAPER_MM_16 = MatmulConfig(blocks=16, block_size=16)


@dataclass
class MatmulResult:
    elapsed_us: float
    per_node_cpu_us: List[float]
    per_node_net_us: List[float]
    config: MatmulConfig
    nprocs: int

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def _block_of(matrix: np.ndarray, cfg: MatmulConfig, bi: int, bj: int) -> np.ndarray:
    b = cfg.block_size
    return matrix[bi * b : (bi + 1) * b, bj * b : (bj + 1) * b]


def reference_matrices(cfg: MatmulConfig):
    """The deterministic full A and B used across all nodes."""
    rng = np.random.RandomState(cfg.seed)
    a = rng.rand(cfg.n, cfg.n)
    b = rng.rand(cfg.n, cfg.n)
    return a, b


def matmul_program(cfg: MatmulConfig):
    """SPMD program factory for one matmul run."""
    a_full, b_full = reference_matrices(cfg)
    bsz = cfg.block_size
    elems = bsz * bsz

    def program(rt: SplitCRuntime):
        n = rt.nprocs
        owned = cfg.blocks_owned(rt.node, n)
        a_loc = rt.all_spread_malloc("mm_a", max(1, owned) * elems, np.float64)
        b_loc = rt.all_spread_malloc("mm_b", max(1, owned) * elems, np.float64)
        c_loc = rt.all_spread_malloc("mm_c", max(1, owned) * elems, np.float64)
        # two scratch pairs: the prefetch variant double-buffers fetches
        scratch_a = [rt.all_spread_malloc("mm_sa0", elems, np.float64),
                     rt.all_spread_malloc("mm_sa1", elems, np.float64)]
        scratch_b = [rt.all_spread_malloc("mm_sb0", elems, np.float64),
                     rt.all_spread_malloc("mm_sb1", elems, np.float64)]
        # distribute the input blocks (free: initial data placement)
        for bi in range(cfg.blocks):
            for bj in range(cfg.blocks):
                if cfg.owner(bi, bj, n) == rt.node:
                    slot = cfg.slot(bi, bj, n)
                    a_loc[slot * elems : (slot + 1) * elems] = _block_of(a_full, cfg, bi, bj).ravel()
                    b_loc[slot * elems : (slot + 1) * elems] = _block_of(b_full, cfg, bi, bj).ravel()
        yield from rt.barrier()
        def start_fetch(bi, bj, k, parity):
            owner_a = cfg.owner(bi, k, n)
            owner_b = cfg.owner(k, bj, n)
            pa = rt.bulk_get_async(owner_a, "mm_a", cfg.slot(bi, k, n) * elems, elems,
                                   f"mm_sa{parity}", 0)
            pb = rt.bulk_get_async(owner_b, "mm_b", cfg.slot(k, bj, n) * elems, elems,
                                   f"mm_sb{parity}", 0)
            return pa, pb

        for bi in range(cfg.blocks):
            for bj in range(cfg.blocks):
                if cfg.owner(bi, bj, n) != rt.node:
                    continue
                slot = cfg.slot(bi, bj, n)
                acc = np.zeros((bsz, bsz))
                if cfg.prefetch:
                    pending = start_fetch(bi, bj, 0, 0)
                    for k in range(cfg.blocks):
                        parity = k % 2
                        yield pending[0]
                        yield pending[1]
                        if k + 1 < cfg.blocks:
                            # split-phase: fetch the next blocks while we
                            # multiply the current ones
                            pending = start_fetch(bi, bj, k + 1, (k + 1) % 2)
                        yield from rt.compute(flops=rt.costs.matmul_flops(bsz, bsz, bsz))
                        acc += (scratch_a[parity].reshape(bsz, bsz)
                                @ scratch_b[parity].reshape(bsz, bsz))
                else:
                    for k in range(cfg.blocks):
                        owner_a = cfg.owner(bi, k, n)
                        owner_b = cfg.owner(k, bj, n)
                        yield from rt.bulk_get(owner_a, "mm_a", cfg.slot(bi, k, n) * elems,
                                               elems, "mm_sa0", 0)
                        yield from rt.bulk_get(owner_b, "mm_b", cfg.slot(k, bj, n) * elems,
                                               elems, "mm_sb0", 0)
                        yield from rt.compute(flops=rt.costs.matmul_flops(bsz, bsz, bsz))
                        acc += scratch_a[0].reshape(bsz, bsz) @ scratch_b[0].reshape(bsz, bsz)
                c_loc[slot * elems : (slot + 1) * elems] = acc.ravel()
        yield from rt.barrier()
        return rt.node

    return program


def run_matmul(cluster: Cluster, cfg: MatmulConfig) -> MatmulResult:
    """Run the benchmark on ``cluster`` and collect timings."""
    start = cluster.sim.now
    cluster.run(matmul_program(cfg))
    breakdown = cluster.time_breakdown()
    return MatmulResult(
        elapsed_us=cluster.sim.now - start,
        per_node_cpu_us=[b["cpu_us"] for b in breakdown],
        per_node_net_us=[b["net_us"] for b in breakdown],
        config=cfg,
        nprocs=cluster.n,
    )


def verify_matmul(cluster: Cluster, cfg: MatmulConfig) -> bool:
    """Check every C block against the numpy reference product."""
    a_full, b_full = reference_matrices(cfg)
    c_ref = a_full @ b_full
    elems = cfg.block_size * cfg.block_size
    for bi in range(cfg.blocks):
        for bj in range(cfg.blocks):
            owner = cfg.owner(bi, bj, cluster.n)
            slot = cfg.slot(bi, bj, cluster.n)
            c_loc = cluster.runtimes[owner].local("mm_c")
            got = c_loc[slot * elems : (slot + 1) * elems].reshape(cfg.block_size, cfg.block_size)
            if not np.allclose(got, _block_of(c_ref, cfg, bi, bj)):
                return False
    return True
