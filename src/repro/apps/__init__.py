"""The Split-C benchmark suite (Section 5.1 of the paper)."""

from .matmul import (
    PAPER_MM_16,
    PAPER_MM_128,
    MatmulConfig,
    MatmulResult,
    matmul_program,
    run_matmul,
    verify_matmul,
)
from .radix_sort import RadixConfig, SortResult, radix_program, run_radix_sort, verify_sorted
from .sample_sort import SampleConfig, run_sample_sort, sample_program, verify_sample_sorted

__all__ = [
    "MatmulConfig",
    "MatmulResult",
    "PAPER_MM_128",
    "PAPER_MM_16",
    "run_matmul",
    "verify_matmul",
    "matmul_program",
    "RadixConfig",
    "SortResult",
    "run_radix_sort",
    "verify_sorted",
    "radix_program",
    "SampleConfig",
    "run_sample_sort",
    "verify_sample_sorted",
    "sample_program",
]
