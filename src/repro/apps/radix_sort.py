"""Parallel radix sort (the paper's ``rsort`` benchmark).

"The radix sort uses alternating phases of local sort and key
distribution involving irregular all-to-all communication.  The
algorithm performs a fixed number of passes over the keys ... first,
every processor computes a local histogram ...; second, a global
histogram is computed ... to determine the rank of each key in the
sorted array; and finally, every processor sends each of its local keys
to the appropriate processor based on the key's rank" (Section 5.1).

Two variants, as in the paper:

* **small-message** — "each processor transfers two keys at a time":
  every message carries two (key, position) pairs in the AM argument
  words, exercising the small-message path of both NIs;
* **large-message** — "each processor sends one message containing all
  relevant keys to every other processor": one bulk store per peer per
  pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..splitc.cluster import Cluster
from ..splitc.runtime import SplitCRuntime

__all__ = ["RadixConfig", "SortResult", "run_radix_sort", "verify_sorted"]

#: app-level AM handler: scatter (position, key) pairs into the dest array
H_RADIX_SCATTER = 0x40
#: sentinel marking an absent second pair in a small message
NO_KEY = 0xFFFFFFFF


@dataclass(frozen=True)
class RadixConfig:
    keys_per_node: int
    small_messages: bool
    radix_bits: int = 11
    seed: int = 7

    @property
    def passes(self) -> int:
        return -(-32 // self.radix_bits)

    @property
    def buckets(self) -> int:
        return 1 << self.radix_bits


@dataclass
class SortResult:
    elapsed_us: float
    per_node_cpu_us: List[float]
    per_node_net_us: List[float]
    nprocs: int
    keys_per_node: int

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def initial_keys(cfg: RadixConfig, node: int) -> np.ndarray:
    """Deterministic per-node key distribution ('arbitrary' in the paper)."""
    rng = np.random.RandomState(cfg.seed * 1000 + node)
    return rng.randint(0, 2**32, size=cfg.keys_per_node, dtype=np.uint32)


def compute_global_positions(
    digits: np.ndarray, per_node_hist: np.ndarray, node: int
) -> np.ndarray:
    """Global rank of each local key for one counting-sort pass.

    Keys are ordered by (bucket, owning node, local order) — the stable
    counting-sort invariant.  ``per_node_hist`` is the allgathered
    (nprocs x buckets) histogram matrix; ``digits`` are this node's
    bucket indices in local key order.  Returns one global position per
    local key; across all nodes the positions form a permutation of
    ``range(total_keys)``.
    """
    buckets = per_node_hist.shape[1]
    counts = per_node_hist.astype(np.int64)
    bucket_totals = counts.sum(axis=0)
    bucket_starts = np.zeros(buckets, dtype=np.int64)
    bucket_starts[1:] = np.cumsum(bucket_totals)[:-1]
    before_me = counts[:node].sum(axis=0) if node else np.zeros(buckets, dtype=np.int64)
    my_base = bucket_starts + before_me
    n = len(digits)
    order = np.argsort(digits, kind="stable")
    sorted_digits = digits[order]
    within = np.arange(n, dtype=np.int64) - np.searchsorted(sorted_digits, sorted_digits, side="left")
    positions = np.empty(n, dtype=np.int64)
    positions[order] = my_base[sorted_digits] + within
    return positions


def radix_program(cfg: RadixConfig):
    """SPMD program factory for one radix-sort run."""

    def program(rt: SplitCRuntime):
        n = rt.nprocs
        kpn = cfg.keys_per_node
        src = rt.all_spread_malloc("rx_src", kpn, np.uint32)
        dst = rt.all_spread_malloc("rx_dst", kpn, np.uint32)
        hist_all = rt.all_spread_malloc("rx_hist", cfg.buckets * n, np.uint64)
        src[:] = initial_keys(cfg, rt.node)

        def scatter_handler(ctx):
            if ctx.data:
                pairs = np.frombuffer(ctx.data, dtype=np.uint32).reshape(-1, 2)
                dst[pairs[:, 0]] = pairs[:, 1]
                count = len(pairs)
            else:
                k1, k2, p1, p2 = ctx.args
                dst[p1] = k1
                count = 1
                if p2 != NO_KEY:
                    dst[p2] = k2
                    count = 2
            return rt.compute(int_ops=rt.costs.scatter_ops_per_pair * count)

        rt.register_counted_handler(H_RADIX_SCATTER, scatter_handler)
        yield from rt.barrier()

        for p in range(cfg.passes):
            shift = p * cfg.radix_bits
            digits = ((src >> np.uint32(shift)) & np.uint32(cfg.buckets - 1)).astype(np.int64)
            local_hist = np.bincount(digits, minlength=cfg.buckets).astype(np.uint64)
            yield from rt.compute(int_ops=rt.costs.radix_pass_ops(kpn, cfg.buckets))
            # allgather per-node histograms (the 'global histogram' step)
            hist_all[:] = 0
            yield from rt.all_gather("rx_hist", local_hist)
            # rank computation: keys are globally ordered by (bucket,
            # node, local order) — the stable counting-sort invariant
            per_node = hist_all.reshape(n, cfg.buckets)
            positions = compute_global_positions(digits, per_node, rt.node)
            yield from rt.compute(int_ops=rt.costs.radix_rank_ops * kpn + 2 * cfg.buckets * n)
            # key distribution
            dest_nodes = positions // kpn
            dest_offsets = (positions % kpn).astype(np.uint32)
            for peer in range(n):
                mask = dest_nodes == peer
                if not mask.any():
                    continue
                keys_out = src[mask]
                offs_out = dest_offsets[mask]
                if peer == rt.node:
                    dst[offs_out] = keys_out
                    yield from rt.compute(int_ops=2 * len(keys_out))
                elif cfg.small_messages:
                    yield from _send_small(rt, peer, keys_out, offs_out)
                else:
                    pairs = np.empty((len(keys_out), 2), dtype=np.uint32)
                    pairs[:, 0] = offs_out
                    pairs[:, 1] = keys_out
                    yield from rt.counted_bulk(peer, H_RADIX_SCATTER, pairs.tobytes())
            yield from rt.all_store_sync()
            src[:] = dst
            yield from rt.barrier()
        return rt.node

    return program


def _send_small(rt: SplitCRuntime, peer: int, keys: np.ndarray, offsets: np.ndarray):
    """Two (key, position) pairs per message, in the header words."""
    count = len(keys)
    for i in range(0, count - 1, 2):
        args = (int(keys[i]), int(keys[i + 1]), int(offsets[i]), int(offsets[i + 1]))
        yield from rt.counted_request(peer, H_RADIX_SCATTER, args=args)
    if count % 2:
        args = (int(keys[-1]), 0, int(offsets[-1]), NO_KEY)
        yield from rt.counted_request(peer, H_RADIX_SCATTER, args=args)


def run_radix_sort(cluster: Cluster, cfg: RadixConfig) -> SortResult:
    start = cluster.sim.now
    cluster.run(radix_program(cfg))
    breakdown = cluster.time_breakdown()
    return SortResult(
        elapsed_us=cluster.sim.now - start,
        per_node_cpu_us=[b["cpu_us"] for b in breakdown],
        per_node_net_us=[b["net_us"] for b in breakdown],
        nprocs=cluster.n,
        keys_per_node=cfg.keys_per_node,
    )


def verify_sorted(cluster: Cluster, array_name: str = "rx_src", expected_multiset=None) -> bool:
    """Global sorted order + multiset preservation across node slices."""
    pieces = [rt.local(array_name).copy() for rt in cluster.runtimes]
    merged = np.concatenate(pieces)
    if np.any(np.diff(merged.astype(np.int64)) < 0):
        return False
    if expected_multiset is not None:
        if not np.array_equal(np.sort(merged), np.sort(expected_multiset)):
            return False
    return True
