"""Full-scale analytic projections of the Split-C benchmarks (Table 1).

Simulating 512K keys/node event-by-event is intractable in pure Python
(the small-message radix sort alone exchanges ~6M packets), so Table 1
is produced by the phase model: the same algorithm structure as
``repro.apps``, the same kernel cost constants, and stage costs derived
from the same calibrated device constants as the simulator.  An
ablation benchmark validates the model against full-DES runs at small
key counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..apps.matmul import MatmulConfig
from ..apps.radix_sort import RadixConfig
from ..apps.sample_sort import SampleConfig
from ..hw.cpu import CpuModel
from ..splitc.costs import DEFAULT_COSTS, KernelCosts
from .loggp import StageCosts
from .phases import (
    PhaseTimes,
    all_to_all_time,
    barrier_time,
    broadcast_time,
    fragment_messages,
    gather_time,
    sequential_fetch_time,
)

__all__ = ["Projection", "project_radix", "project_sample", "project_matmul"]

#: bytes per (position, key) record in large-message sort exchanges
PAIR_BYTES = 8
#: mild receive imbalance of splitter-based partitioning
SAMPLE_IMBALANCE = 1.12


@dataclass
class Projection:
    """Projected execution of one benchmark on one cluster."""

    benchmark: str
    nprocs: int
    substrate: str
    cpu_us: float
    net_us: float

    @property
    def total_us(self) -> float:
        return self.cpu_us + self.net_us

    @property
    def total_s(self) -> float:
        return self.total_us / 1e6

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_us / self.total_us if self.total_us else 0.0


def _slowest(cpus: Sequence[CpuModel]):
    """Compute phases finish at the slowest node (barriers synchronize)."""
    return cpus


def _max_int_time(cpus: Sequence[CpuModel], ops: float) -> float:
    return max(cpu.int_op_time(ops) for cpu in cpus)


def _max_flop_time(cpus: Sequence[CpuModel], flops: float) -> float:
    return max(cpu.flop_time(flops) for cpu in cpus)


def _max_copy_time(cpus: Sequence[CpuModel], nbytes: int) -> float:
    return max(cpu.copy_time(nbytes) for cpu in cpus)


def project_radix(
    cfg: RadixConfig,
    n: int,
    costs_net: StageCosts,
    cpus: Sequence[CpuModel],
    kernel: KernelCosts = DEFAULT_COSTS,
    substrate: str = "",
) -> Projection:
    """Analytic time for one radix-sort run."""
    kpn = cfg.keys_per_node
    buckets = cfg.buckets
    cpu_us = 0.0
    net_us = 0.0
    for _pass in range(cfg.passes):
        # local histogram + rank computation
        cpu_us += _max_int_time(cpus, kernel.radix_pass_ops(kpn, buckets))
        cpu_us += _max_int_time(cpus, kernel.radix_rank_ops * kpn + 2 * buckets * n)
        # histogram allgather: each node stores its histogram to each peer
        hist_bytes = buckets * 8
        packets, _ = fragment_messages(hist_bytes, costs_net.max_data)
        net_us += all_to_all_time(costs_net, n, packets, min(hist_bytes, costs_net.max_data)).net_us
        # key distribution: (n-1)/n of the keys leave the node
        remote_keys = kpn * (n - 1) / n
        if cfg.small_messages:
            msgs_per_peer = math.ceil(remote_keys / 2) / max(1, n - 1)
            net_us += all_to_all_time(costs_net, n, msgs_per_peer, 0).net_us
        else:
            bytes_per_peer = int(remote_keys * PAIR_BYTES / max(1, n - 1))
            packets, _ = fragment_messages(bytes_per_peer, costs_net.max_data)
            net_us += all_to_all_time(
                costs_net, n, packets, min(bytes_per_peer, costs_net.max_data)
            ).net_us
        # receiver-side indexed scatter of the incoming (pos, key) pairs
        cpu_us += _max_int_time(cpus, kernel.scatter_ops_per_pair * remote_keys)
        # self keys move by memcpy
        cpu_us += _max_int_time(cpus, 2 * kpn / n)
        # store sync + barrier + dst->src copy
        net_us += all_to_all_time(costs_net, n, 1, 0).net_us
        net_us += barrier_time(costs_net, n).net_us
        cpu_us += _max_copy_time(cpus, kpn * 4)
    name = "rsortsm" if cfg.small_messages else "rsortlg"
    return Projection(name, n, substrate, cpu_us, net_us)


def project_sample(
    cfg: SampleConfig,
    n: int,
    costs_net: StageCosts,
    cpus: Sequence[CpuModel],
    kernel: KernelCosts = DEFAULT_COSTS,
    substrate: str = "",
) -> Projection:
    """Analytic time for one sample-sort run."""
    kpn = cfg.keys_per_node
    s = min(cfg.oversampling, kpn)
    cpu_us = 0.0
    net_us = 0.0
    # sampling and gather on node 0
    cpu_us += _max_int_time(cpus, kernel.sample_select_ops * s)
    net_us += gather_time(costs_net, n, s * 4).net_us
    # splitter selection on node 0 (node 0's own CPU)
    cpu_us += cpus[0].int_op_time(kernel.local_sort_ops(s * n))
    net_us += broadcast_time(costs_net, n, max(1, (n - 1) * 4)).net_us
    net_us += barrier_time(costs_net, n).net_us
    # partition
    cpu_us += _max_int_time(cpus, kernel.partition_ops(kpn, n - 1))
    # single key-distribution phase
    remote_keys = kpn * (n - 1) / n
    if cfg.small_messages:
        msgs_per_peer = math.ceil(remote_keys / 2) / max(1, n - 1)
        net_us += all_to_all_time(costs_net, n, msgs_per_peer, 0).net_us
    else:
        bytes_per_peer = int(remote_keys * 4 / max(1, n - 1))
        packets, _ = fragment_messages(bytes_per_peer, costs_net.max_data)
        net_us += all_to_all_time(
            costs_net, n, packets, min(bytes_per_peer, costs_net.max_data)
        ).net_us
        cpu_us += _max_copy_time(cpus, int(remote_keys * 4))
    cpu_us += _max_copy_time(cpus, int(kpn / n) * 4)
    net_us += all_to_all_time(costs_net, n, 1, 0).net_us
    # final local sort, with receive imbalance
    cpu_us += _max_int_time(cpus, kernel.local_sort_ops(int(kpn * SAMPLE_IMBALANCE)))
    net_us += barrier_time(costs_net, n).net_us
    name = "ssortsm" if cfg.small_messages else "ssortlg"
    return Projection(name, n, substrate, cpu_us, net_us)


def project_matmul(
    cfg: MatmulConfig,
    n: int,
    costs_net: StageCosts,
    cpus: Sequence[CpuModel],
    kernel: KernelCosts = DEFAULT_COSTS,
    substrate: str = "",
) -> Projection:
    """Analytic time for one blocked matrix multiply."""
    b = cfg.block_size
    total_blocks = cfg.blocks * cfg.blocks
    owned_max = math.ceil(total_blocks / n)
    block_bytes = b * b * 8
    remote_fraction = (n - 1) / n
    fetch = sequential_fetch_time(costs_net, block_bytes, remote_fraction=1.0)
    # a fraction of fetches are local memcpys instead
    local_copy = _max_copy_time(cpus, block_bytes)
    per_step_net = 2 * (remote_fraction * fetch.net_us)
    per_step_cpu_copy = 2 * (1 - remote_fraction) * local_copy
    flops = kernel.matmul_flops(b, b, b)
    steps = owned_max * cfg.blocks
    cpu_us = steps * (_max_flop_time(cpus, flops) + per_step_cpu_copy)
    net_us = steps * per_step_net + barrier_time(costs_net, n).net_us
    name = f"mm{b}x{b}"
    return Projection(name, n, substrate, cpu_us, net_us)
