"""Sensitivity analysis of the Table-1 orderings.

The FE-vs-ATM winner on the large-message sorts depends on machine
constants the paper does not let us calibrate exactly — chiefly the
SPARC-to-Pentium integer-op ratio (see the deviation note in
EXPERIMENTS.md).  This module quantifies that: for a benchmark it finds
the multiplier on the SPARC cluster's integer rate at which the two
clusters' projected times cross, i.e. how far our cost model is from
flipping the ordering.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from ..hw.cpu import PENTIUM_120, SPARCSTATION_20, CpuModel
from ..splitc.costs import DEFAULT_COSTS, KernelCosts
from .analytic import Projection
from .loggp import StageCosts, atm_stage_costs, fe_stage_costs

__all__ = ["scaled_int_cpus", "projection_gap", "int_ratio_flip_point"]


def scaled_int_cpus(cpus: Sequence[CpuModel], factor: float) -> list:
    """The same machines with integer throughput scaled by ``factor``."""
    return [
        replace(cpu, name=f"{cpu.name} int x{factor:g}", int_ops_per_us=cpu.int_ops_per_us * factor)
        for cpu in cpus
    ]


def projection_gap(
    project: Callable[..., Projection],
    cfg,
    n: int,
    atm_int_factor: float = 1.0,
    kernel: KernelCosts = DEFAULT_COSTS,
) -> float:
    """FE minus ATM projected seconds (positive: ATM wins)."""
    from ..splitc.cluster import atm_cluster_cpus, fe_cluster_cpus

    fe = project(cfg, n, fe_stage_costs(PENTIUM_120), fe_cluster_cpus(n), kernel=kernel)
    atm_cpus = scaled_int_cpus(atm_cluster_cpus(n), atm_int_factor)
    atm = project(cfg, n, atm_stage_costs(SPARCSTATION_20), atm_cpus, kernel=kernel)
    return fe.total_s - atm.total_s


def int_ratio_flip_point(
    project: Callable[..., Projection],
    cfg,
    n: int,
    lo: float = 0.5,
    hi: float = 2.0,
    iterations: int = 40,
) -> float:
    """The SPARC integer-rate multiplier at which FE and ATM tie.

    Returns the factor f such that scaling every SPARC node's integer
    throughput by f makes the two clusters' projected times equal;
    > 1 means our model currently favours FE, < 1 means it favours ATM.
    Returns ``float('inf')`` / ``float('-inf')`` if no crossing exists
    in [lo, hi].
    """
    gap_lo = projection_gap(project, cfg, n, lo)
    gap_hi = projection_gap(project, cfg, n, hi)
    if gap_lo > 0 and gap_hi > 0:
        return float("-inf")  # ATM wins across the whole range
    if gap_lo < 0 and gap_hi < 0:
        return float("inf")  # FE wins across the whole range
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if projection_gap(project, cfg, n, mid) < 0:
            # FE ahead: SPARC needs to be faster
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
