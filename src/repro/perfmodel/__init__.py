"""Analytic performance model for full-scale benchmark projection."""

from .analytic import Projection, project_matmul, project_radix, project_sample
from .sensitivity import int_ratio_flip_point, projection_gap, scaled_int_cpus
from .loggp import StageCosts, atm_stage_costs, fe_stage_costs
from .phases import (
    PhaseTimes,
    all_to_all_time,
    barrier_time,
    broadcast_time,
    fragment_messages,
    gather_time,
    sequential_fetch_time,
)

__all__ = [
    "StageCosts",
    "fe_stage_costs",
    "atm_stage_costs",
    "PhaseTimes",
    "all_to_all_time",
    "gather_time",
    "broadcast_time",
    "barrier_time",
    "sequential_fetch_time",
    "fragment_messages",
    "Projection",
    "project_radix",
    "project_sample",
    "project_matmul",
    "int_ratio_flip_point",
    "projection_gap",
    "scaled_int_cpus",
]
