"""Analytic phase-time calculators.

Each communication phase is modelled as a pipeline across five stages
(sending host, sending NIC, wire, receiving NIC, receiving host); the
steady-state phase time is the per-node bottleneck stage total plus one
end-to-end latency of pipeline fill.  The host stage is shared between
sending and receiving (one CPU), as is the NIC (one i960).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .loggp import StageCosts

__all__ = ["PhaseTimes", "all_to_all_time", "gather_time", "broadcast_time",
           "barrier_time", "sequential_fetch_time", "fragment_messages"]


def fragment_messages(total_bytes: int, max_data: int) -> Tuple[int, int]:
    """(number of packets, bytes of last packet) for a bulk transfer."""
    if total_bytes <= 0:
        return (1, 0)
    n = math.ceil(total_bytes / max_data)
    last = total_bytes - (n - 1) * max_data
    return n, last


@dataclass
class PhaseTimes:
    """One phase's contribution, split the way Figure 7 needs."""

    net_us: float
    cpu_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.net_us + self.cpu_us


def _per_message_stage_costs(costs: StageCosts, m: int) -> Tuple[float, float, float]:
    """(host both directions, nic both directions, wire) for size ``m``."""
    return (costs.per_message_host(m), costs.per_message_nic(m), costs.wire(m))


def all_to_all_time(
    costs: StageCosts,
    n: int,
    messages_out_per_peer: float,
    message_size: int,
) -> PhaseTimes:
    """Balanced all-to-all: every node sends (and receives) the same
    message count; each node's time is its bottleneck stage."""
    if n <= 1 or messages_out_per_peer <= 0:
        return PhaseTimes(net_us=0.0)
    msgs = messages_out_per_peer * (n - 1)
    host, nic, wire = _per_message_stage_costs(costs, message_size)
    bottleneck = max(msgs * host, msgs * nic, msgs * wire)
    return PhaseTimes(net_us=bottleneck + costs.latency(message_size))


def gather_time(costs: StageCosts, n: int, bytes_per_node: int) -> PhaseTimes:
    """Every node bulk-stores a block to one root: the root's receive
    path is the bottleneck."""
    if n <= 1:
        return PhaseTimes(net_us=0.0)
    packets, _last = fragment_messages(bytes_per_node, costs.max_data)
    m = min(bytes_per_node, costs.max_data)
    inbound = (n - 1) * packets
    root_host = inbound * costs.host_recv(m)
    root_nic = inbound * costs.nic_rx(m)
    root_wire = inbound * costs.wire(m)
    sender = packets * (costs.host_send(m) + costs.nic_tx(m))
    return PhaseTimes(net_us=max(root_host, root_nic, root_wire, sender) + costs.latency(m))


def broadcast_time(costs: StageCosts, n: int, nbytes: int) -> PhaseTimes:
    """Root stores a block to every peer (linear broadcast, as the
    runtime implements it)."""
    if n <= 1:
        return PhaseTimes(net_us=0.0)
    packets, _ = fragment_messages(nbytes, costs.max_data)
    m = min(nbytes, costs.max_data)
    outbound = (n - 1) * packets
    root = outbound * max(costs.host_send(m), costs.nic_tx(m), costs.wire(m))
    return PhaseTimes(net_us=root + costs.latency(m) + costs.host_recv(m) + costs.nic_rx(m))


def barrier_time(costs: StageCosts, n: int) -> PhaseTimes:
    """Central-coordinator barrier: gather of arrivals + linear release."""
    if n <= 1:
        return PhaseTimes(net_us=0.0)
    arrive = (n - 1) * max(costs.host_recv(0), costs.nic_rx(0))
    release = (n - 1) * max(costs.host_send(0), costs.nic_tx(0))
    return PhaseTimes(net_us=arrive + release + 2 * costs.latency(0))


def sequential_fetch_time(costs: StageCosts, nbytes: int, remote_fraction: float = 1.0) -> PhaseTimes:
    """One blocking bulk_get of ``nbytes`` (the matmul block fetch).

    The request packet travels one way, then the owner streams the data
    back as a pipelined sequence of stores; the fetch completes one
    latency after the last fragment leaves.
    """
    packets, _ = fragment_messages(nbytes, costs.max_data)
    m = min(nbytes, costs.max_data)
    host, nic, wire = _per_message_stage_costs(costs, m)
    stream = packets * max(host, nic, wire)
    request = costs.latency(16)
    total = remote_fraction * (request + stream + costs.latency(m))
    return PhaseTimes(net_us=total)
