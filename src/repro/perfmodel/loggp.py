"""Per-substrate communication stage costs (LogGP-style parameters).

The full-scale Table-1 projections decompose every communication phase
into pipeline stages — sending host, sending NIC, wire, receiving NIC,
receiving host — and take the bottleneck.  The stage costs here are
*derived from the same calibrated constants the DES devices use*
(:class:`~repro.atm.unet_atm.AtmTimings`,
:class:`~repro.ethernet.unet_fe.FeTimings`, the CPU models), so the
analytic model and the simulator agree by construction; an ablation
benchmark cross-checks them against full-DES runs at small scale.

This captures the paper's central architectural asymmetry (Section 4.4):
U-Net/FE burns ~4.2 us of *host* CPU per send but has no NIC processor,
while U-Net/ATM burns ~1.5 us of host CPU and ~10-13 us of the slow
i960 per message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..am.am import AmConfig
from ..am.protocol import HEADER_SIZE
from ..atm.cells import AAL5_TRAILER_SIZE, CELL_PAYLOAD_SIZE, cells_for_pdu
from ..atm.phy import OC3_SONET, TAXI_140, AtmPhy
from ..atm.switch import ASX200_FORWARD_US
from ..atm.unet_atm import AtmTimings, DESCRIPTOR_DMA_BYTES
from ..core.api import DESCRIPTOR_POP_US, DESCRIPTOR_PUSH_US
from ..core.descriptors import SMALL_MESSAGE_MAX
from ..ethernet.dc21140 import NicTimings
from ..ethernet.frames import ETH_HEADER_SIZE, EthernetFrame, wire_time_us
from ..ethernet.switch import SwitchModel, BAY_28115
from ..ethernet.unet_fe import FeTimings
from ..hw.bus import PCI_BUS, BusModel
from ..hw.cpu import CpuModel

__all__ = ["StageCosts", "fe_stage_costs", "atm_stage_costs"]


@dataclass
class StageCosts:
    """Per-message stage costs for AM packets with ``m`` payload bytes.

    All callables take the AM *data* size (the packet adds HEADER_SIZE).
    """

    name: str
    host_send: Callable[[int], float]
    host_recv: Callable[[int], float]
    nic_tx: Callable[[int], float]
    nic_rx: Callable[[int], float]
    wire: Callable[[int], float]
    #: end-to-end one-way latency of an ``m``-byte message (pipeline sum)
    latency: Callable[[int], float]
    #: largest AM data payload per packet
    max_data: int

    def per_message_host(self, m: int) -> float:
        return self.host_send(m) + self.host_recv(m)

    def per_message_nic(self, m: int) -> float:
        return self.nic_tx(m) + self.nic_rx(m)


def fe_stage_costs(
    cpu: CpuModel,
    timings: FeTimings = None,
    nic: NicTimings = None,
    am: AmConfig = None,
    switch: SwitchModel = BAY_28115,
    bus: BusModel = PCI_BUS,
) -> StageCosts:
    """Stage costs of U-Net/FE on ``cpu`` through ``switch``."""
    t = timings or FeTimings.for_cpu(cpu)
    nt = nic or NicTimings()
    ac = am or AmConfig()
    max_data = 1498 - HEADER_SIZE

    def packet(m: int) -> int:
        return m + HEADER_SIZE

    def host_send(m: int) -> float:
        trap = (
            cpu.trap_entry_us
            + t.check_send_params_us
            + t.ethernet_header_setup_us
            + t.ring_descriptor_setup_us
            + t.issue_poll_demand_us
            + t.free_ring_descriptor_us
            + t.free_send_queue_entry_us
            + cpu.trap_return_us
        )
        return cpu.copy_time(packet(m)) + DESCRIPTOR_PUSH_US + trap

    def host_recv(m: int) -> float:
        handler = cpu.interrupt_entry_us + t.poll_recv_ring_us + t.demux_us + t.alloc_init_recv_descriptor_us
        if packet(m) <= SMALL_MESSAGE_MAX:
            handler += t.copy_fixed_us + cpu.copy_time(packet(m))
        else:
            handler += t.alloc_unet_buffer_us + t.copy_fixed_us + cpu.copy_time(packet(m))
        handler += t.bump_recv_ring_us + cpu.interrupt_return_us
        return handler + ac.dispatch_overhead_us + DESCRIPTOR_POP_US

    def nic_tx(m: int) -> float:
        return nt.tx_descriptor_fetch_us + bus.transfer_time(ETH_HEADER_SIZE + packet(m)) + nt.tx_fifo_threshold_us

    def nic_rx(m: int) -> float:
        return nt.rx_dma_start_us + bus.transfer_time(ETH_HEADER_SIZE + packet(m)) + nt.rx_interrupt_delay_us

    def wire(m: int) -> float:
        frame = EthernetFrame(dst_mac=0, src_mac=1, dst_port=1, src_port=1, payload=b"\0" * packet(m))
        # store-and-forward switches serialize the frame twice
        hops = 2 if switch.store_and_forward else 1
        return hops * wire_time_us(frame) + switch.latency_us

    def latency(m: int) -> float:
        return host_send(m) + nic_tx(m) + wire(m) + nic_rx(m) + host_recv(m)

    return StageCosts(
        name=f"U-Net/FE({switch.name})",
        host_send=host_send,
        host_recv=host_recv,
        nic_tx=nic_tx,
        nic_rx=nic_rx,
        wire=wire,
        latency=latency,
        max_data=max_data,
    )


def atm_stage_costs(
    cpu: CpuModel,
    timings: AtmTimings = None,
    am: AmConfig = None,
    phy: AtmPhy = TAXI_140,
    bus: BusModel = PCI_BUS,
) -> StageCosts:
    """Stage costs of U-Net/ATM on ``cpu`` through the ASX-200."""
    t = timings or AtmTimings()
    ac = am or AmConfig()
    max_data = 65535 - HEADER_SIZE

    def packet(m: int) -> int:
        return m + HEADER_SIZE

    def cells(m: int) -> int:
        return cells_for_pdu(packet(m))

    def host_send(m: int) -> float:
        return cpu.copy_time(packet(m)) + DESCRIPTOR_PUSH_US + t.host_doorbell_us

    def host_recv(m: int) -> float:
        return ac.dispatch_overhead_us + DESCRIPTOR_POP_US

    def nic_tx(m: int) -> float:
        return (
            t.tx_poll_pickup_us
            + t.tx_per_message_us
            + bus.transfer_time(packet(m))
            + cells(m) * t.tx_per_cell_us
        )

    def nic_rx(m: int) -> float:
        n_cells = cells(m)
        if n_cells == 1 and packet(m) <= CELL_PAYLOAD_SIZE - AAL5_TRAILER_SIZE:
            return t.rx_per_cell_us + t.rx_single_cell_us + bus.transfer_time(DESCRIPTOR_DMA_BYTES + packet(m))
        # cells DMA to the host in 96-byte PCI bursts: two cells per transfer
        per_cell = t.rx_per_cell_us + bus.transfer_time(2 * CELL_PAYLOAD_SIZE) / 2
        return (
            t.rx_buffer_alloc_us
            + n_cells * per_cell
            + t.rx_last_cell_us
            + bus.transfer_time(DESCRIPTOR_DMA_BYTES)
        )

    def wire(m: int) -> float:
        # two link traversals (host-switch, switch-host) pipelined per
        # cell: the message's wire occupancy is one serialization plus
        # the fixed switch/framer latency
        return cells(m) * phy.cell_time_us + ASX200_FORWARD_US + 2 * phy.framer_latency_us

    def latency(m: int) -> float:
        return host_send(m) + nic_tx(m) + wire(m) + nic_rx(m) + host_recv(m)

    return StageCosts(
        name=f"U-Net/ATM({phy.name})",
        host_send=host_send,
        host_recv=host_recv,
        nic_tx=nic_tx,
        nic_rx=nic_rx,
        wire=wire,
        latency=latency,
        max_data=max_data,
    )
