"""Tenant QoS classes and endpoint admission control.

The paper's U-Net multiplexes many user-level applications onto one NI;
this module adds the policy layer a *population* of tenants needs.  A
:class:`QosClass` bundles what a tenant's service tier means in U-Net
terms: endpoint sizing (receive-queue depth and buffer count — the
receiver-paced knobs that decide who drops first under overload), a
per-tenant credit budget for the AM layer's credit-carrying flow
control, a drain weight for QoS-aware service order, and the
:class:`~repro.core.health.HealthConfig` policy defaults the watchdog
applies (best-effort tenants are quarantined outright; paid tiers get
self-relieving backpressure).

:class:`AdmissionController` guards endpoint creation: a host has a
finite endpoint capacity (real NIs have finite demux/doorbell
resources), a slice of which is reserved for the paid classes, and each
tenant has its own quota.  Refusal is a *typed* error raised in the
caller's own system call (:class:`~repro.core.errors.AdmissionRejected`)
and counted under the shared drop vocabulary as
``admission_rejected_drops`` — owned by the backend, since no endpoint
exists to own it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .endpoint import EndpointConfig
from .errors import AdmissionRejected
from .health import POLICIES, POLICY_BACKPRESSURE, POLICY_QUARANTINE, HealthConfig

__all__ = [
    "QOS_GOLD",
    "QOS_SILVER",
    "QOS_BEST_EFFORT",
    "QOS_CLASSES",
    "QosClass",
    "qos_class",
    "AdmissionConfig",
    "AdmissionController",
]

QOS_GOLD = "gold"
QOS_SILVER = "silver"
QOS_BEST_EFFORT = "best_effort"


@dataclass(frozen=True)
class QosClass:
    """What one service tier means, in U-Net terms."""

    name: str
    #: AM credit window granted to each of the tenant's channels
    credit_budget: int
    #: receive-queue depth — the receiver-paced knob that decides who
    #: drops first when the host is overloaded
    recv_queue_depth: int
    #: buffers in the endpoint's communication segment
    num_buffers: int
    #: relative drain weight for QoS-aware service order (a weight-4
    #: class is drained 4x as often as a weight-1 class under pressure)
    drain_weight: int
    #: containment policy the health watchdog applies by default
    health_policy: str = POLICY_BACKPRESSURE
    #: True when admission may refuse this class to protect paid tiers
    preemptable: bool = False

    def __post_init__(self) -> None:
        if self.credit_budget < 1:
            raise ValueError("credit_budget must be >= 1")
        if self.recv_queue_depth < 1 or self.num_buffers < 1:
            raise ValueError("endpoint sizing must be >= 1")
        if self.drain_weight < 1:
            raise ValueError("drain_weight must be >= 1")
        if self.health_policy not in POLICIES:
            raise ValueError(f"unknown health policy {self.health_policy!r}")

    def endpoint_config(self, buffer_size: int = 2048) -> EndpointConfig:
        """Endpoint sizing for this tier."""
        return EndpointConfig(
            num_buffers=self.num_buffers,
            buffer_size=buffer_size,
            recv_queue_depth=self.recv_queue_depth,
        )

    def health_config(self, **overrides) -> HealthConfig:
        """Watchdog defaults for this tier (overrides win)."""
        kwargs = dict(policy=self.health_policy)
        kwargs.update(overrides)
        return HealthConfig(**kwargs)


#: the three stock tiers; hosts may register their own
QOS_CLASSES: Dict[str, QosClass] = {
    QOS_GOLD: QosClass(
        name=QOS_GOLD, credit_budget=16, recv_queue_depth=128,
        num_buffers=128, drain_weight=4, health_policy=POLICY_BACKPRESSURE),
    QOS_SILVER: QosClass(
        name=QOS_SILVER, credit_budget=8, recv_queue_depth=64,
        num_buffers=64, drain_weight=2, health_policy=POLICY_BACKPRESSURE),
    QOS_BEST_EFFORT: QosClass(
        name=QOS_BEST_EFFORT, credit_budget=4, recv_queue_depth=32,
        num_buffers=32, drain_weight=1, health_policy=POLICY_QUARANTINE,
        preemptable=True),
}


def qos_class(name: str) -> QosClass:
    """Look up a tier by name; empty/unknown names get best-effort."""
    return QOS_CLASSES.get(name, QOS_CLASSES[QOS_BEST_EFFORT])


@dataclass
class AdmissionConfig:
    """Per-host endpoint capacity and how it is shared."""

    #: hard endpoint capacity of the host (demux/doorbell resources)
    max_endpoints: int = 1024
    #: per-tenant endpoint quota (0 disables the per-tenant check)
    max_per_tenant: int = 0
    #: fraction of capacity reserved for non-preemptable (paid) classes:
    #: preemptable tenants are refused once occupancy crosses
    #: ``(1 - reserved_fraction) * max_endpoints``
    reserved_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.max_endpoints < 1:
            raise ValueError("max_endpoints must be >= 1")
        if self.max_per_tenant < 0:
            raise ValueError("max_per_tenant must be >= 0")
        if not 0.0 <= self.reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in [0, 1)")

    @property
    def preemptable_limit(self) -> int:
        """Occupancy above which preemptable classes are refused."""
        return int((1.0 - self.reserved_fraction) * self.max_endpoints)


class AdmissionController:
    """Admission control for one host's endpoint population.

    ``admit`` either reserves a slot or raises
    :class:`~repro.core.errors.AdmissionRejected`; every rejection is
    counted (total and per QoS class) so the backend can surface it as
    ``admission_rejected_drops`` in the shared vocabulary.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.occupancy = 0
        self._per_tenant: Dict[str, int] = {}
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_class: Dict[str, int] = {}

    def _reject(self, tenant: str, qos: QosClass, reason: str) -> None:
        self.rejected += 1
        self.rejected_by_class[qos.name] = self.rejected_by_class.get(qos.name, 0) + 1
        raise AdmissionRejected(
            f"tenant {tenant!r} ({qos.name}): {reason}",
            tenant=tenant, qos=qos.name, reason=reason)

    def admit(self, tenant: str, qos: QosClass) -> None:
        """Reserve one endpoint slot for ``tenant`` or raise."""
        cfg = self.config
        if self.occupancy >= cfg.max_endpoints:
            self._reject(tenant, qos, "host at endpoint capacity")
        if qos.preemptable and self.occupancy >= cfg.preemptable_limit:
            self._reject(tenant, qos,
                         "remaining capacity reserved for paid classes")
        if cfg.max_per_tenant and self._per_tenant.get(tenant, 0) >= cfg.max_per_tenant:
            self._reject(tenant, qos, "tenant endpoint quota exhausted")
        self.occupancy += 1
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        self.admitted += 1

    def release(self, tenant: str) -> None:
        """Return a slot on endpoint destruction."""
        if self.occupancy <= 0:
            return
        self.occupancy -= 1
        held = self._per_tenant.get(tenant, 0)
        if held <= 1:
            self._per_tenant.pop(tenant, None)
        else:
            self._per_tenant[tenant] = held - 1

    def tenant_endpoints(self, tenant: str) -> int:
        return self._per_tenant.get(tenant, 0)

    def stats(self) -> dict:
        """Occupancy and rejection counters for reports."""
        return {
            "occupancy": self.occupancy,
            "max_endpoints": self.config.max_endpoints,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_by_class": dict(self.rejected_by_class),
            "tenants": len(self._per_tenant),
        }
