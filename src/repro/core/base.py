"""Backend interface between the U-Net API and a network substrate.

A backend is the combination of NI hardware and whatever firmware or
kernel code implements U-Net on it.  Two live in this repository:
:class:`repro.atm.unet_atm.UNetAtmBackend` (custom i960 firmware on the
PCA-200) and :class:`repro.ethernet.unet_fe.UNetFeBackend` (in-kernel
service routines driving the DC21140).
"""

from __future__ import annotations

import abc
from typing import Generator, List, Optional

from ..sim import Simulator
from .endpoint import Endpoint, EndpointConfig

__all__ = ["UNetBackend"]


class UNetBackend(abc.ABC):
    """What a substrate must provide to host U-Net endpoints."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.endpoints: List[Endpoint] = []
        self._next_endpoint_id = 0
        #: optional :class:`~repro.core.tenancy.AdmissionController`;
        #: when set, ``create_endpoint`` may refuse with a typed
        #: :class:`~repro.core.errors.AdmissionRejected` error
        self.admission = None
        #: endpoint creations refused by admission control — counted on
        #: the backend because no endpoint exists to own the drop
        self.admission_rejected_drops = 0

    # -- endpoint lifecycle (OS-mediated system calls) ---------------------
    def create_endpoint(self, config: Optional[EndpointConfig] = None, owner: str = "",
                        tenant: str = "", qos: str = "") -> Endpoint:
        """System call: validate, pass admission control, create.

        ``tenant``/``qos`` carry the caller's multi-tenant identity; when
        an admission controller is attached, a refused creation raises
        :class:`~repro.core.errors.AdmissionRejected` in the caller's
        own system call and is counted as ``admission_rejected_drops``.
        """
        if self.admission is not None:
            from .errors import AdmissionRejected
            from .tenancy import qos_class
            try:
                self.admission.admit(tenant, qos_class(qos))
            except AdmissionRejected:
                self.admission_rejected_drops += 1
                raise
        endpoint = Endpoint(self.sim, self._next_endpoint_id, config or EndpointConfig(),
                            owner=owner, tenant=tenant, qos=qos)
        self._next_endpoint_id += 1
        self.endpoints.append(endpoint)
        self._endpoint_created(endpoint)
        return endpoint

    def _endpoint_created(self, endpoint: Endpoint) -> None:
        """Hook for backend-side per-endpoint state (demux rows, queues)."""

    def destroy_endpoint(self, endpoint: Endpoint) -> None:
        """System call: tear an endpoint down.

        The kernel/firmware stops demultiplexing to it (its demux rows
        vanish) and forgets its queues; in-flight messages addressed to
        it are dropped with the protection counters, exactly as traffic
        to a dead process should be.
        """
        if endpoint not in self.endpoints:
            raise ValueError(f"endpoint {endpoint.id} does not belong to {self.name}")
        self.endpoints.remove(endpoint)
        if hasattr(self, "demux"):
            self.demux.unregister_endpoint(endpoint)
        if self.admission is not None:
            self.admission.release(endpoint.tenant)
        self._endpoint_destroyed(endpoint)

    def _endpoint_destroyed(self, endpoint: Endpoint) -> None:
        """Hook for backend-specific teardown."""

    # -- data path ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def max_pdu(self) -> int:
        """Largest message the substrate carries without fragmentation."""

    @abc.abstractmethod
    def kick(self, endpoint: Endpoint) -> Generator:
        """Process run by the application after pushing send descriptors.

        On U-Net/ATM this is the cheap doorbell store into NI memory
        (~host overhead only); on U-Net/FE it is the fast trap into the
        kernel, which synchronously services the send queue.
        """

    # -- instrumentation -----------------------------------------------------
    @property
    def host_send_overhead_us(self) -> float:
        """Host-processor time consumed per small-message send (Section 4.4)."""
        raise NotImplementedError

    def drop_stats(self) -> dict:
        """NI/kernel-level drop counters, one entry per shared name.

        Every backend keeps ``recv_queue_drops``/``no_buffer_drops``/
        ``quarantine_drops`` attributes and a ``demux`` table; the same
        vocabulary (:data:`repro.core.endpoint.DROP_COUNTERS`) is spoken
        by :meth:`Endpoint.drop_stats` and :meth:`DemuxTable.drop_stats`,
        so reports can merge accounting across layers without per-class
        attribute spelunking.
        """
        stats = {
            "recv_queue_drops": getattr(self, "recv_queue_drops", 0),
            "no_buffer_drops": getattr(self, "no_buffer_drops", 0),
            "unknown_tag_drops": 0,
            "quarantine_drops": getattr(self, "quarantine_drops", 0),
            "stale_epoch_drops": getattr(self, "stale_epoch_drops", 0),
            "peer_dead_drops": getattr(self, "peer_dead_drops", 0),
            "admission_rejected_drops": getattr(self, "admission_rejected_drops", 0),
        }
        demux = getattr(self, "demux", None)
        if demux is not None:
            stats["unknown_tag_drops"] = demux.unknown_tag_drops
        return stats
