"""Cluster-wide health aggregation and coordinated quarantine.

Per-endpoint :class:`~repro.core.health.HealthMonitor` verdicts are
host-local: host A quarantining tenant T's endpoint says nothing to
host B, which keeps burning service time on the same tenant's traffic.
This module adds the controller tier — deliberately tiny, in the spirit
of the paper's "keep the shared path cheap": hosts register their
monitors, :meth:`ClusterHealthAggregator.poll` merges the per-endpoint
verdicts into per-host views and a per-tenant cluster verdict, and two
coordinated actions fall out:

* **coordinated quarantine** — when a tenant is quarantined on at least
  ``quorum`` hosts by local evidence, the aggregator latches the
  tenant's remaining endpoints on *every* host (the tenant is
  misbehaving as a workload, not as one endpoint);
* **coordinated release** — when a crashed tenant returns with a new
  incarnation epoch (PR 5's recovery handshake), the aggregator lifts
  the tenant's quarantine latches cluster-wide via
  :meth:`~repro.core.health.HealthMonitor.note_epoch_advance`.  The new
  incarnation starts with a clean evaluation; each host's watchdog
  re-latches locally if the new process still misbehaves.

The aggregator is transport-agnostic: it reads monitors directly, so it
models either a central controller or the converged state of a gossip
exchange.  It never touches the data path — all actions route through
the monitors' existing operator surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .health import STATE_QUARANTINED, STATE_SHED, EndpointHealth, HealthMonitor

__all__ = ["HostView", "ClusterHealthAggregator"]


class HostView:
    """One host's merged health verdict (a poll-time snapshot)."""

    __slots__ = ("host", "endpoints", "states", "quarantined_tenants")

    def __init__(self, host: str) -> None:
        self.host = host
        self.endpoints = 0
        #: state name -> endpoint count
        self.states: Dict[str, int] = {}
        #: tenants with at least one locally quarantined endpoint
        self.quarantined_tenants: set = set()

    def as_dict(self) -> dict:
        return {
            "host": self.host,
            "endpoints": self.endpoints,
            "states": dict(self.states),
            "quarantined_tenants": sorted(self.quarantined_tenants),
        }


class ClusterHealthAggregator:
    """Merge host monitors into cluster verdicts; drive coordinated
    quarantine and release."""

    def __init__(self, quorum: int = 2,
                 escalate_shed_after: Optional[int] = None) -> None:
        if quorum < 1:
            raise ValueError("quorum must be >= 1")
        if escalate_shed_after is not None and escalate_shed_after < 1:
            raise ValueError("escalate_shed_after must be >= 1 (or None)")
        self.quorum = quorum
        #: when set, an endpoint seen in the self-relieving ``shed``
        #: state for this many consecutive polls is escalated to a
        #: quarantine latch: transient overload relieves itself within a
        #: few polls, so an endpoint that *stays* shed is not overloaded
        #: but dead or wedged — controller policy, not watchdog policy
        self.escalate_shed_after = escalate_shed_after
        self._shed_streak: Dict[Tuple[str, int], int] = {}
        self.escalations = 0
        self._monitors: Dict[str, HealthMonitor] = {}
        #: tenants currently under a cluster-wide latch
        self.cluster_quarantined: set = set()
        #: highest incarnation epoch seen per tenant
        self._epochs: Dict[str, int] = {}
        self.coordinated_quarantines = 0
        self.coordinated_releases = 0

    # ------------------------------------------------------------ membership
    def attach_host(self, host: str, monitor: HealthMonitor) -> None:
        """Register one host's monitor (idempotent per name)."""
        self._monitors[host] = monitor

    def detach_host(self, host: str) -> None:
        self._monitors.pop(host, None)

    def hosts(self) -> List[str]:
        return sorted(self._monitors)

    # -------------------------------------------------------------- internals
    def _tenant_records(self, tenant: str) -> List[Tuple[HealthMonitor, EndpointHealth]]:
        out = []
        for monitor in self._monitors.values():
            for record in monitor.records():
                if record.endpoint.tenant == tenant:
                    out.append((monitor, record))
        return out

    # ------------------------------------------------------------------ poll
    def poll(self) -> Dict[str, HostView]:
        """One gossip/controller round: snapshot every host, then apply
        coordinated quarantine to tenants past the quorum."""
        views: Dict[str, HostView] = {}
        locally_quarantined: Dict[str, set] = {}
        for host, monitor in self._monitors.items():
            view = HostView(host)
            for record in monitor.records():
                if self.escalate_shed_after is not None:
                    key = (host, record.endpoint.id)
                    if record.state == STATE_SHED:
                        streak = self._shed_streak.get(key, 0) + 1
                        self._shed_streak[key] = streak
                        if streak >= self.escalate_shed_after:
                            monitor.quarantine(record.endpoint)
                            self.escalations += 1
                    else:
                        self._shed_streak.pop(key, None)
                view.endpoints += 1
                view.states[record.state] = view.states.get(record.state, 0) + 1
                if record.state == STATE_QUARANTINED and record.endpoint.tenant:
                    view.quarantined_tenants.add(record.endpoint.tenant)
                    locally_quarantined.setdefault(record.endpoint.tenant, set()).add(host)
            views[host] = view
        for tenant, hosts in locally_quarantined.items():
            if len(hosts) >= self.quorum and tenant not in self.cluster_quarantined:
                self._quarantine_everywhere(tenant)
        return views

    def _quarantine_everywhere(self, tenant: str) -> None:
        self.cluster_quarantined.add(tenant)
        self.coordinated_quarantines += 1
        for monitor, record in self._tenant_records(tenant):
            if record.state != STATE_QUARANTINED:
                monitor.quarantine(record.endpoint)

    # ------------------------------------------------------------ recovery
    def note_incarnation(self, tenant: str, epoch: int) -> int:
        """A tenant endpoint reappeared under incarnation ``epoch``.

        On an epoch *advance* (a genuine restart, not a replay) the
        cluster latch is lifted and every host re-evaluates the tenant
        via :meth:`HealthMonitor.note_epoch_advance`; returns how many
        endpoint latches were released.  Stale or repeated epochs do
        nothing — a replayed HELLO must not unlatch anything."""
        last = self._epochs.get(tenant)
        if last is not None and epoch <= last:
            return 0
        self._epochs[tenant] = epoch
        if last is None:
            # first sighting establishes the baseline; nothing to release
            return 0
        released = 0
        for monitor, record in self._tenant_records(tenant):
            if monitor.note_epoch_advance(record.endpoint):
                released += 1
        # the old incarnation's shed streaks must not escalate the new
        # one: without this, a restart that lands while the endpoint is
        # still merely shed gets latched a poll later with no future
        # epoch advance left to release it
        for host, monitor in self._monitors.items():
            for record in monitor.records():
                if record.endpoint.tenant == tenant:
                    self._shed_streak.pop((host, record.endpoint.id), None)
        if tenant in self.cluster_quarantined:
            self.cluster_quarantined.discard(tenant)
        if released:
            self.coordinated_releases += 1
        return released

    def release_tenant(self, tenant: str) -> int:
        """Operator action: lift the tenant's latches cluster-wide."""
        released = 0
        for monitor, record in self._tenant_records(tenant):
            if record.state == STATE_QUARANTINED:
                monitor.release(record.endpoint)
                released += 1
        self.cluster_quarantined.discard(tenant)
        return released

    # ------------------------------------------------------------- reporting
    def report(self) -> dict:
        """Cluster-level summary (host views + coordination counters)."""
        views = self.poll()
        return {
            "hosts": [views[host].as_dict() for host in sorted(views)],
            "cluster_quarantined": sorted(self.cluster_quarantined),
            "coordinated_quarantines": self.coordinated_quarantines,
            "coordinated_releases": self.coordinated_releases,
        }

    def quarantined_hosts(self, tenant: str) -> List[str]:
        """Hosts where ``tenant`` currently has a quarantined endpoint."""
        out = []
        for host, monitor in self._monitors.items():
            for record in monitor.records():
                if (record.endpoint.tenant == tenant
                        and record.state == STATE_QUARANTINED):
                    out.append(host)
                    break
        return sorted(out)
