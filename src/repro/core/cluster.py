"""Cluster-wide health aggregation and coordinated quarantine.

Per-endpoint :class:`~repro.core.health.HealthMonitor` verdicts are
host-local: host A quarantining tenant T's endpoint says nothing to
host B, which keeps burning service time on the same tenant's traffic.
This module adds the controller tier — deliberately tiny, in the spirit
of the paper's "keep the shared path cheap": hosts register their
monitors, :meth:`ClusterHealthAggregator.poll` merges the per-endpoint
verdicts into per-host views and a per-tenant cluster verdict, and two
coordinated actions fall out:

* **coordinated quarantine** — when a tenant is quarantined on at least
  ``quorum`` hosts by local evidence, the aggregator latches the
  tenant's remaining endpoints on *every* host (the tenant is
  misbehaving as a workload, not as one endpoint);
* **coordinated release** — when a crashed tenant returns with a new
  incarnation epoch (PR 5's recovery handshake), the aggregator lifts
  the tenant's quarantine latches cluster-wide via
  :meth:`~repro.core.health.HealthMonitor.note_epoch_advance`.  The new
  incarnation starts with a clean evaluation; each host's watchdog
  re-latches locally if the new process still misbehaves.

The aggregator is transport-agnostic: it reads monitors directly, so it
models either a central controller or the converged state of a gossip
exchange.  It never touches the data path — all actions route through
the monitors' existing operator surface.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .errors import ClusterPartitionError
from .health import STATE_QUARANTINED, STATE_SHED, EndpointHealth, HealthMonitor

__all__ = ["HostView", "ClusterHealthAggregator", "ClusterPartitionMonitor",
           "MODE_NORMAL", "MODE_DEGRADED", "MODE_ISOLATED"]


class HostView:
    """One host's merged health verdict (a poll-time snapshot)."""

    __slots__ = ("host", "endpoints", "states", "quarantined_tenants")

    def __init__(self, host: str) -> None:
        self.host = host
        self.endpoints = 0
        #: state name -> endpoint count
        self.states: Dict[str, int] = {}
        #: tenants with at least one locally quarantined endpoint
        self.quarantined_tenants: set = set()

    def as_dict(self) -> dict:
        return {
            "host": self.host,
            "endpoints": self.endpoints,
            "states": dict(self.states),
            "quarantined_tenants": sorted(self.quarantined_tenants),
        }


class ClusterHealthAggregator:
    """Merge host monitors into cluster verdicts; drive coordinated
    quarantine and release."""

    def __init__(self, quorum: int = 2,
                 escalate_shed_after: Optional[int] = None) -> None:
        if quorum < 1:
            raise ValueError("quorum must be >= 1")
        if escalate_shed_after is not None and escalate_shed_after < 1:
            raise ValueError("escalate_shed_after must be >= 1 (or None)")
        self.quorum = quorum
        #: when set, an endpoint seen in the self-relieving ``shed``
        #: state for this many consecutive polls is escalated to a
        #: quarantine latch: transient overload relieves itself within a
        #: few polls, so an endpoint that *stays* shed is not overloaded
        #: but dead or wedged — controller policy, not watchdog policy
        self.escalate_shed_after = escalate_shed_after
        self._shed_streak: Dict[Tuple[str, int], int] = {}
        self.escalations = 0
        self._monitors: Dict[str, HealthMonitor] = {}
        #: tenants currently under a cluster-wide latch
        self.cluster_quarantined: set = set()
        #: highest incarnation epoch seen per tenant
        self._epochs: Dict[str, int] = {}
        self.coordinated_quarantines = 0
        self.coordinated_releases = 0

    # ------------------------------------------------------------ membership
    def attach_host(self, host: str, monitor: HealthMonitor) -> None:
        """Register one host's monitor (idempotent per name)."""
        self._monitors[host] = monitor

    def detach_host(self, host: str) -> None:
        self._monitors.pop(host, None)

    def hosts(self) -> List[str]:
        return sorted(self._monitors)

    # -------------------------------------------------------------- internals
    def _tenant_records(self, tenant: str) -> List[Tuple[HealthMonitor, EndpointHealth]]:
        out = []
        for monitor in self._monitors.values():
            for record in monitor.records():
                if record.endpoint.tenant == tenant:
                    out.append((monitor, record))
        return out

    # ------------------------------------------------------------------ poll
    def poll(self) -> Dict[str, HostView]:
        """One gossip/controller round: snapshot every host, then apply
        coordinated quarantine to tenants past the quorum."""
        views: Dict[str, HostView] = {}
        locally_quarantined: Dict[str, set] = {}
        for host, monitor in self._monitors.items():
            view = HostView(host)
            for record in monitor.records():
                if self.escalate_shed_after is not None:
                    key = (host, record.endpoint.id)
                    if record.state == STATE_SHED:
                        streak = self._shed_streak.get(key, 0) + 1
                        self._shed_streak[key] = streak
                        if streak >= self.escalate_shed_after:
                            monitor.quarantine(record.endpoint)
                            self.escalations += 1
                    else:
                        self._shed_streak.pop(key, None)
                view.endpoints += 1
                view.states[record.state] = view.states.get(record.state, 0) + 1
                if record.state == STATE_QUARANTINED and record.endpoint.tenant:
                    view.quarantined_tenants.add(record.endpoint.tenant)
                    locally_quarantined.setdefault(record.endpoint.tenant, set()).add(host)
            views[host] = view
        for tenant, hosts in locally_quarantined.items():
            if len(hosts) >= self.quorum and tenant not in self.cluster_quarantined:
                self._quarantine_everywhere(tenant)
        return views

    def _quarantine_everywhere(self, tenant: str) -> None:
        self.cluster_quarantined.add(tenant)
        self.coordinated_quarantines += 1
        for monitor, record in self._tenant_records(tenant):
            if record.state != STATE_QUARANTINED:
                monitor.quarantine(record.endpoint)

    # ------------------------------------------------------------ recovery
    def note_incarnation(self, tenant: str, epoch: int) -> int:
        """A tenant endpoint reappeared under incarnation ``epoch``.

        On an epoch *advance* (a genuine restart, not a replay) the
        cluster latch is lifted and every host re-evaluates the tenant
        via :meth:`HealthMonitor.note_epoch_advance`; returns how many
        endpoint latches were released.  Stale or repeated epochs do
        nothing — a replayed HELLO must not unlatch anything."""
        last = self._epochs.get(tenant)
        if last is not None and epoch <= last:
            return 0
        self._epochs[tenant] = epoch
        if last is None:
            # first sighting establishes the baseline; nothing to release
            return 0
        released = 0
        for monitor, record in self._tenant_records(tenant):
            if monitor.note_epoch_advance(record.endpoint):
                released += 1
        # the old incarnation's shed streaks must not escalate the new
        # one: without this, a restart that lands while the endpoint is
        # still merely shed gets latched a poll later with no future
        # epoch advance left to release it
        for host, monitor in self._monitors.items():
            for record in monitor.records():
                if record.endpoint.tenant == tenant:
                    self._shed_streak.pop((host, record.endpoint.id), None)
        if tenant in self.cluster_quarantined:
            self.cluster_quarantined.discard(tenant)
        if released:
            self.coordinated_releases += 1
        return released

    def release_tenant(self, tenant: str) -> int:
        """Operator action: lift the tenant's latches cluster-wide."""
        released = 0
        for monitor, record in self._tenant_records(tenant):
            if record.state == STATE_QUARANTINED:
                monitor.release(record.endpoint)
                released += 1
        self.cluster_quarantined.discard(tenant)
        return released

    # ------------------------------------------------------------- reporting
    def report(self) -> dict:
        """Cluster-level summary (host views + coordination counters)."""
        views = self.poll()
        return {
            "hosts": [views[host].as_dict() for host in sorted(views)],
            "cluster_quarantined": sorted(self.cluster_quarantined),
            "coordinated_quarantines": self.coordinated_quarantines,
            "coordinated_releases": self.coordinated_releases,
        }

    def quarantined_hosts(self, tenant: str) -> List[str]:
        """Hosts where ``tenant`` currently has a quarantined endpoint."""
        out = []
        for host, monitor in self._monitors.items():
            for record in monitor.records():
                if (record.endpoint.tenant == tenant
                        and record.state == STATE_QUARANTINED):
                    out.append(host)
                    break
        return sorted(out)


# --------------------------------------------------------------- partitions

MODE_NORMAL = "normal"
MODE_DEGRADED = "degraded"
MODE_ISOLATED = "isolated"


class ClusterPartitionMonitor:
    """Partition detection over aggregated reachability evidence.

    Hosts report which peers they can currently reach (fed from fabric
    signaling, failed heartbeats, or collective liveness timeouts); the
    monitor merges the reports into mutual-reachability components and
    applies the classic split-brain policy:

    * one component — every host runs ``normal``;
    * several components — the **majority** side (largest component;
      ties break toward the component holding the first member in sort
      order, so the verdict is deterministic) runs ``degraded`` — it
      keeps serving but knows peers are dark; every **minority** host is
      ``isolated`` and must fail fast: :meth:`check` raises the typed
      :class:`~repro.core.errors.ClusterPartitionError` there.

    Partition and heal instants are recorded (via the injected ``clock``
    callable, usually ``lambda: sim.now`` — no ambient time) and every
    healed partition leaves a recovery snapshot in :attr:`recovery_log`.
    """

    def __init__(self, members: Iterable[str],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.members: List[str] = sorted(members)
        if len(self.members) < 2:
            raise ValueError("a partition needs at least two members")
        self._clock = clock or (lambda: 0.0)
        #: host -> peers it currently claims to reach (None = all, the
        #: optimistic default before any evidence arrives)
        self._reach: Dict[str, Optional[set]] = {m: None for m in self.members}
        self.partitioned_at: Optional[float] = None
        #: healed partitions: {"partitioned_at", "healed_at",
        #:  "recovery_us", "minority": [...]}
        self.recovery_log: List[dict] = []
        self._modes: Dict[str, str] = {m: MODE_NORMAL for m in self.members}
        self._minority: List[str] = []
        self.evaluations = 0

    # ------------------------------------------------------------ evidence
    def report_reachability(self, host: str, peers: Iterable[str]) -> None:
        """``host`` claims it can currently reach exactly ``peers``."""
        if host not in self._reach:
            raise ValueError(f"unknown member {host!r}")
        self._reach[host] = {p for p in peers if p in self._reach and p != host}
        self.evaluate()

    def _mutual(self, a: str, b: str) -> bool:
        ra, rb = self._reach[a], self._reach[b]
        return (ra is None or b in ra) and (rb is None or a in rb)

    def _components(self) -> List[List[str]]:
        remaining = set(self.members)
        components: List[List[str]] = []
        while remaining:
            start = min(remaining)
            seen = {start}
            frontier = [start]
            while frontier:
                here = frontier.pop()
                for other in sorted(remaining - seen):
                    if self._mutual(here, other):
                        seen.add(other)
                        frontier.append(other)
            components.append(sorted(seen))
            remaining -= seen
        # majority first; ties break toward the earliest member
        components.sort(key=lambda c: (-len(c), c[0]))
        return components

    # ------------------------------------------------------------ verdicts
    def evaluate(self) -> List[List[str]]:
        """Recompute components, update modes, record transitions."""
        self.evaluations += 1
        components = self._components()
        if len(components) == 1:
            if self.partitioned_at is not None:
                healed_at = self._clock()
                self.recovery_log.append({
                    "partitioned_at": self.partitioned_at,
                    "healed_at": healed_at,
                    "recovery_us": healed_at - self.partitioned_at,
                    "minority": list(self._minority),
                })
                self.partitioned_at = None
            self._minority = []
            self._modes = {m: MODE_NORMAL for m in self.members}
            return components
        if self.partitioned_at is None:
            self.partitioned_at = self._clock()
        majority = components[0]
        self._minority = sorted(m for c in components[1:] for m in c)
        self._modes = {m: MODE_DEGRADED for m in majority}
        self._modes.update({m: MODE_ISOLATED for m in self._minority})
        return components

    def mode(self, host: str) -> str:
        if host not in self._modes:
            raise ValueError(f"unknown member {host!r}")
        return self._modes[host]

    def check(self, host: str) -> None:
        """Fail fast on an isolated (minority-side) host."""
        if self._modes[host] == MODE_ISOLATED:
            component = [m for m in self.members
                         if m == host
                         or (self._modes[m] == MODE_ISOLATED
                             and self._mutual(host, m))]
            raise ClusterPartitionError(
                f"host {host} is on the minority side of a partition",
                host=host, component=component)

    # ------------------------------------------------------------ reporting
    def snapshot(self) -> dict:
        return {
            "members": list(self.members),
            "modes": dict(self._modes),
            "partitioned": self.partitioned_at is not None,
            "partitioned_at": self.partitioned_at,
            "recoveries": [dict(r) for r in self.recovery_log],
        }
