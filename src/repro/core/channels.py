"""Communication channels and message tags.

A *communication channel* associates a pair of endpoints with a small
channel identifier; *message tags* (substrate-specific: VCIs for ATM,
MAC-address + one-byte U-Net port for Fast Ethernet) route outgoing
messages and demultiplex incoming ones (Section 3.1).  Channel creation
is an operating-system service: it validates the request, allocates the
tags, and registers them with the NI — applications never install tags
directly (protection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .errors import ChannelError

__all__ = ["ChannelBinding", "AtmTag", "EthernetTag", "ChannelAllocator"]


@dataclass(frozen=True)
class AtmTag:
    """ATM message tag: the VCI pair of a connection (Section 4.2.1)."""

    tx_vci: int
    rx_vci: int


@dataclass(frozen=True)
class EthernetTag:
    """U-Net/FE message tag: 48-bit MAC + one-byte port ID (Section 4.3.1)."""

    dst_mac: int
    dst_port: int
    src_mac: int
    src_port: int

    def __post_init__(self) -> None:
        for port in (self.dst_port, self.src_port):
            if not 0 <= port <= 0xFF:
                raise ChannelError(f"U-Net port ID {port} outside one byte")


@dataclass
class ChannelBinding:
    """Per-endpoint record of one registered channel."""

    channel_id: int
    tag: Any
    #: opaque peer description kept for diagnostics
    peer: Optional[str] = None
    messages_sent: int = 0
    messages_received: int = 0


class ChannelAllocator:
    """Allocates channel identifiers within one endpoint's namespace."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        cid = self._next
        self._next += 1
        return cid


def register_channel(endpoint, channel_id: int, tag: Any, peer: Optional[str] = None) -> ChannelBinding:
    """Install a channel binding on ``endpoint`` (OS-service side)."""
    if channel_id in endpoint.channels:
        raise ChannelError(f"channel {channel_id} already registered on endpoint {endpoint.id}")
    binding = ChannelBinding(channel_id=channel_id, tag=tag, peer=peer)
    endpoint.channels[channel_id] = binding
    return binding


def lookup_channel(endpoint, channel_id: int) -> ChannelBinding:
    try:
        return endpoint.channels[channel_id]
    except KeyError:
        raise ChannelError(f"channel {channel_id} not registered on endpoint {endpoint.id}") from None
