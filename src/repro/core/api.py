"""The user-level U-Net API.

This is the layer an application links against: it composes messages into
the endpoint buffer area, pushes descriptors, kicks the backend, and
consumes the receive queue.  All host-CPU costs an application pays on
the critical path (the compose copy at memcpy speed, the descriptor
pushes, the trap/doorbell) are charged here or in the backend it calls.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..hw.cpu import CpuModel
from ..sim import Simulator
from .base import UNetBackend
from .channels import lookup_channel
from .descriptors import RecvDescriptor, SendDescriptor
from .endpoint import Endpoint, EndpointConfig
from .errors import EndpointError, MessageTooLarge

__all__ = ["Host", "UserEndpoint", "ReceivedMessage"]

#: fixed user-level cost of filling in and pushing one send descriptor
DESCRIPTOR_PUSH_US = 0.30
#: fixed user-level cost of popping and parsing one receive descriptor
DESCRIPTOR_POP_US = 0.25
#: cost of returning from a blocking wait (select return + reschedule);
#: charged only when the receiver actually blocked
SELECT_WAKEUP_US = 3.5


class ReceivedMessage:
    """A message handed to the application."""

    __slots__ = ("channel_id", "data", "timestamp")

    def __init__(self, channel_id: int, data: bytes, timestamp: float) -> None:
        self.channel_id = channel_id
        self.data = data
        self.timestamp = timestamp

    def __len__(self) -> int:
        return len(self.data)


class Host:
    """A workstation: a CPU plus a U-Net backend instance.

    The host CPU is modelled as a single resource only where it matters
    for the paper's claims (kernel send/receive service occupies it); the
    Split-C layer accounts for computation explicitly.
    """

    def __init__(self, sim: Simulator, name: str, cpu: CpuModel, backend: UNetBackend) -> None:
        self.sim = sim
        self.name = name
        self.cpu = cpu
        self.backend = backend

    def create_endpoint(self, config: Optional[EndpointConfig] = None, rx_buffers: int = 32,
                        tenant: str = "", qos: str = "") -> "UserEndpoint":
        """Create an endpoint and pre-donate ``rx_buffers`` receive buffers.

        ``tenant``/``qos`` carry multi-tenant identity through to the
        backend, where an attached admission controller may refuse with
        :class:`~repro.core.errors.AdmissionRejected`."""
        endpoint = self.backend.create_endpoint(config, owner=self.name,
                                                tenant=tenant, qos=qos)
        user = UserEndpoint(self, endpoint)
        user.donate_rx_buffers(rx_buffers)
        return user

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} ({self.cpu.name}, {self.backend.name})>"


class UserEndpoint:
    """Application-side wrapper around one U-Net endpoint."""

    def __init__(self, host: Host, endpoint: Endpoint) -> None:
        self.host = host
        self.sim = host.sim
        self.endpoint = endpoint
        self._tx_inflight: List[Tuple[SendDescriptor, List[int]]] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear the endpoint down (kernel-mediated, Section 3).

        Further sends raise; in-flight traffic addressed here is dropped
        by the NI's demultiplexer.
        """
        if self._closed:
            return
        self._closed = True
        self.host.backend.destroy_endpoint(self.endpoint)

    # -- sending -------------------------------------------------------------
    def send(self, channel_id: int, payload: bytes, kick: bool = True) -> Generator:
        """Process: compose ``payload`` and hand it to the NI.

        Charges the compose copy into the buffer area at host memcpy
        speed plus the descriptor push, then runs the backend kick
        (doorbell or trap).  With ``kick=False`` the descriptor is queued
        but the backend is not notified — callers can batch several sends
        under a single trap (Section 4.3.2 services the whole queue per
        trap) by kicking once at the end via :meth:`kick`.
        """
        backend = self.host.backend
        if self._closed:
            raise EndpointError(f"endpoint {self.endpoint.id} is closed")
        if len(payload) > backend.max_pdu:
            raise MessageTooLarge(f"{len(payload)} bytes > max PDU {backend.max_pdu}")
        lookup_channel(self.endpoint, channel_id)  # protection check
        self._reclaim_completed()
        buffers = yield from self._compose_buffers(payload)
        yield self.sim.timeout(self.host.cpu.copy_time(len(payload)))
        descriptor = SendDescriptor(
            channel_id=channel_id,
            segments=[(buf.index, length) for buf, length in buffers],
        )
        yield self.sim.timeout(DESCRIPTOR_PUSH_US)
        while self.endpoint.send_queue.is_full:
            # backpressure: wait for the NI/kernel to drain the queue
            yield self.endpoint.wait_send_queue_space()
        self.endpoint.post_send(descriptor)
        self.endpoint.messages_sent += 1
        self.endpoint.bytes_sent += len(payload)
        self._tx_inflight.append((descriptor, [buf.index for buf, _l in buffers]))
        if kick:
            yield from backend.kick(self.endpoint)

    def kick(self) -> Generator:
        """Explicitly notify the backend of pending send descriptors."""
        yield from self.host.backend.kick(self.endpoint)

    def _compose_buffers(self, payload: bytes):
        """Process: split ``payload`` across as many buffers as it needs,
        blocking while the buffer area is exhausted by in-flight sends."""
        size = self.endpoint.buffers.buffer_size
        if not payload:
            buf = yield from self._alloc_tx_buffer()
            return [(buf, 0)]
        buffers = []
        for start in range(0, len(payload), size):
            chunk = payload[start : start + size]
            buf = yield from self._alloc_tx_buffer()
            buf.write(chunk)
            buffers.append((buf, len(chunk)))
        return buffers

    def _alloc_tx_buffer(self):
        while True:
            buf = self.endpoint.buffers.try_alloc()
            if buf is None:
                self._reclaim_completed()
                buf = self.endpoint.buffers.try_alloc()
            if buf is not None:
                return buf
            if not self._tx_inflight:
                raise EndpointError(
                    f"endpoint {self.endpoint.id}: buffer area exhausted with no sends in flight"
                )
            # application-managed backpressure: wait for the NI to finish
            # transmitting an earlier message, then reclaim its buffers
            yield self.endpoint.wait_send_complete()

    def _reclaim_completed(self) -> None:
        """Free buffers of sends the NI has finished transmitting."""
        still = []
        for descriptor, indices in self._tx_inflight:
            if descriptor.completed:
                for idx in indices:
                    self.endpoint.buffers.free(self.endpoint.buffers.buffer(idx))
            else:
                still.append((descriptor, indices))
        self._tx_inflight[:] = still

    # -- receiving ---------------------------------------------------------
    def donate_rx_buffers(self, count: int) -> None:
        """Allocate ``count`` buffers and push them onto the free queue."""
        for _ in range(count):
            buf = self.endpoint.buffers.try_alloc()
            if buf is None:
                raise EndpointError("buffer area exhausted while donating receive buffers")
            self.endpoint.donate_free_buffer(buf.index)

    def poll(self) -> Optional[ReceivedMessage]:
        """Non-blocking receive (the polling model of Section 3.1)."""
        descriptor = self.endpoint.poll_receive()
        if descriptor is None:
            return None
        return self._consume(descriptor)

    def recv(self) -> Generator:
        """Process: block until a message arrives, then consume it."""
        while True:
            blocked = self.endpoint.recv_queue.is_empty
            yield self.endpoint.wait_receive()
            if blocked:
                yield self.sim.timeout(SELECT_WAKEUP_US)
            descriptor = self.endpoint.poll_receive()
            if descriptor is not None:
                yield self.sim.timeout(DESCRIPTOR_POP_US)
                return self._consume(descriptor)

    def recv_all(self) -> List[ReceivedMessage]:
        """Consume every pending message in one upcall (Section 3.1's
        amortization of upcall costs)."""
        messages = []
        while True:
            descriptor = self.endpoint.poll_receive()
            if descriptor is None:
                return messages
            messages.append(self._consume(descriptor))

    def set_signal_handler(self, handler) -> None:
        self.endpoint.set_signal_handler(lambda _ep: handler(self))

    def _consume(self, descriptor: RecvDescriptor) -> ReceivedMessage:
        data = self.endpoint.read_message(descriptor)
        self.endpoint.recycle(descriptor)
        binding = self.endpoint.channels.get(descriptor.channel_id)
        if binding is not None:
            binding.messages_received += 1
        return ReceivedMessage(descriptor.channel_id, data, descriptor.timestamp)
