"""Substrate registry: every way a conformance case can be executed.

The differential checker started with two hardwired substrates (the
simulated ATM and FE networks).  The live U-Net/OS substrate made that
a registry problem: executions now differ not just in *how* they run a
case but in *whether they can run at all* on this machine (no AF_UNIX,
no loopback).  A :class:`SubstrateSpec` names one execution engine:

* ``runner(case, bug=None) -> ObservedTrace`` — run one conformance
  case and return its observable trace;
* ``available() -> bool`` — can this substrate run here, right now;
* ``relaxed_timing`` — whether the checker must compare this
  substrate's timing-derived observables (retransmission counts) only
  loosely: wall-clock executions retransmit when the OS scheduler says
  so, not when the event engine does.

Simulated substrates register themselves when :mod:`repro.conformance`
imports; live ones when :mod:`repro.live` imports.  Lookup knows which
module provides which lazy name, so ``get_substrate("live-unix")``
works without the caller importing :mod:`repro.live` first.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "SubstrateSpec",
    "SubstrateUnavailable",
    "register_substrate",
    "get_substrate",
    "substrate_names",
    "available_substrates",
    "ensure_available",
]


class SubstrateUnavailable(RuntimeError):
    """A named substrate exists but cannot run on this machine."""


def _always() -> bool:
    return True


@dataclass(frozen=True)
class SubstrateSpec:
    """One registered way of executing a conformance case."""

    name: str
    runner: Callable
    available: Callable[[], bool] = field(default=_always)
    #: compare timing-derived observables (rexmit bands) only loosely
    relaxed_timing: bool = False
    description: str = ""


_REGISTRY: Dict[str, SubstrateSpec] = {}

#: names provided by modules that register on import (lazy resolution)
_LAZY_PROVIDERS = {
    "atm": "repro.conformance.checker",
    "ethernet": "repro.conformance.checker",
    "live": "repro.live",
    "live-unix": "repro.live",
    "live-udp": "repro.live",
    "live-batched": "repro.live",
    "live-event": "repro.live",
}


def register_substrate(name: str, runner: Callable, *,
                       available: Callable[[], bool] = _always,
                       relaxed_timing: bool = False,
                       description: str = "") -> SubstrateSpec:
    """Install (or replace) the runner for substrate ``name``."""
    spec = SubstrateSpec(name=name, runner=runner, available=available,
                         relaxed_timing=relaxed_timing, description=description)
    _REGISTRY[name] = spec
    return spec


def get_substrate(name: str) -> SubstrateSpec:
    """The spec for ``name``, importing its provider module if needed."""
    if name not in _REGISTRY and name in _LAZY_PROVIDERS:
        importlib.import_module(_LAZY_PROVIDERS[name])
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown substrate {name!r}; choose from {substrate_names()}"
        ) from None


def substrate_names() -> Tuple[str, ...]:
    """Every registrable substrate name, registered or lazily known."""
    names = set(_REGISTRY) | set(_LAZY_PROVIDERS)
    return tuple(sorted(names))


def available_substrates() -> Tuple[str, ...]:
    """Names that can actually run on this machine, sorted."""
    out = []
    for name in substrate_names():
        try:
            spec = get_substrate(name)
        except (ValueError, ImportError):  # pragma: no cover - defensive
            continue
        if spec.available():
            out.append(name)
    return tuple(out)


def ensure_available(name: str) -> SubstrateSpec:
    """The spec for ``name``; raises loudly when it cannot run here.

    This is what makes a replay honest: an artifact that was produced
    against a substrate this machine cannot run must fail, not quietly
    re-verify on whatever subset happens to work.
    """
    spec = get_substrate(name)
    if not spec.available():
        raise SubstrateUnavailable(
            f"substrate {name!r} is not available on this machine"
            + (f" ({spec.description})" if spec.description else ""))
    return spec
