"""Per-endpoint health monitoring and overload containment.

The paper's U-Net is receiver-paced: when an endpoint's receive or free
queue is empty the NI/kernel silently drops (Section 3), and nothing
upstream reacts.  One dead or slow process can therefore force its
peers into pathological retransmission while its traffic keeps burning
NI firmware / kernel interrupt time — service capacity every *other*
endpoint on the host needs.  This module adds the missing reaction: a
watchdog samples each endpoint's drop counters and queue occupancy into
EWMAs, classifies the endpoint, and applies a containment policy:

* ``drop`` — the paper's status quo: keep counting, keep paying full
  service cost for traffic that will be dropped at the final queue.
* ``backpressure`` — while overloaded, the NI/kernel sheds the
  endpoint's traffic at the demux step (cheap), and restores full
  service once the application drains its queues below the exit
  thresholds (hysteresis).  Drops become a transient, self-relieving
  condition instead of a service-time leak.
* ``quarantine`` — as above, but latched: the endpoint stays shed until
  :meth:`HealthMonitor.release` (an operator action) or until its peer
  proves it restarted (:meth:`HealthMonitor.note_epoch_advance` — a new
  incarnation is a new process, so the latch converts back into a live
  evaluation instead of outliving the process that earned it).

Shedding is implemented by the substrates themselves: both
``UNetFeBackend._rx_handler`` and ``UNetAtmBackend._rx_firmware`` check
``endpoint.quarantined`` right after the demux lookup and drop shed
traffic before any buffer allocation, copy, or DMA work happens.

Multi-tenant additions: :meth:`HealthMonitor.watch` accepts a
per-endpoint :class:`HealthConfig` (QoS tiers carry different policies),
:meth:`HealthMonitor.step` exposes one sampling pass so the live
substrate — whose :class:`~repro.core.clock.ClockShim` cannot host a
watchdog process — can drive the monitor from its polling loop
(``manual=True``), and :meth:`HealthMonitor.quarantine` lets a cluster
controller latch an endpoint directly (coordinated quarantine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..sim import Simulator
from .endpoint import Endpoint

__all__ = [
    "POLICY_DROP",
    "POLICY_BACKPRESSURE",
    "POLICY_QUARANTINE",
    "POLICIES",
    "STATE_HEALTHY",
    "STATE_OVERLOADED",
    "STATE_SHED",
    "STATE_QUARANTINED",
    "STATE_PEER_DEAD",
    "HealthConfig",
    "EndpointHealth",
    "HealthMonitor",
]

POLICY_DROP = "drop"
POLICY_BACKPRESSURE = "backpressure"
POLICY_QUARANTINE = "quarantine"
POLICIES = (POLICY_DROP, POLICY_BACKPRESSURE, POLICY_QUARANTINE)

STATE_HEALTHY = "healthy"
#: drops/occupancy above threshold but policy keeps serving (``drop``)
STATE_OVERLOADED = "overloaded"
#: shed under the ``backpressure`` policy (recovers on its own)
STATE_SHED = "shed"
#: shed under the ``quarantine`` policy (latched until release)
STATE_QUARANTINED = "quarantined"
#: verdict fed by the AM liveness detector: one or more of this
#: endpoint's peers is dead (the endpoint itself is served normally;
#: the state surfaces the condition in telemetry and reports)
STATE_PEER_DEAD = "peer_dead"


@dataclass
class HealthConfig:
    """Watchdog thresholds and containment policy."""

    policy: str = POLICY_DROP
    #: sampling period of the watchdog process
    check_period_us: float = 200.0
    #: EWMA weight given to the newest sample (both estimators)
    ewma_alpha: float = 0.4
    #: enter overload when the drop-rate EWMA (service drops per check
    #: period: recv-queue + no-buffer) crosses this ...
    drop_rate_high: float = 2.0
    #: ... or the receive-queue occupancy EWMA crosses this
    occupancy_high: float = 0.9
    #: consecutive bad samples required before the policy fires
    min_unhealthy_checks: int = 2
    #: ``backpressure`` exit thresholds (hysteresis below the entry ones)
    drop_rate_low: float = 0.25
    occupancy_low: float = 0.5

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown containment policy {self.policy!r}")
        if self.check_period_us <= 0.0:
            raise ValueError("check_period_us must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_unhealthy_checks < 1:
            raise ValueError("min_unhealthy_checks must be >= 1")
        if not 0.0 <= self.drop_rate_low <= self.drop_rate_high:
            raise ValueError("need 0 <= drop_rate_low <= drop_rate_high")
        if not 0.0 <= self.occupancy_low <= self.occupancy_high:
            raise ValueError("need 0 <= occupancy_low <= occupancy_high")


class EndpointHealth:
    """The watchdog's record for one endpoint."""

    __slots__ = (
        "endpoint",
        "config",
        "state",
        "drop_ewma",
        "occupancy_ewma",
        "unhealthy_checks",
        "shed_at",
        "shed_episodes",
        "shed_time_us",
        "recovered_at",
        "dead_peers",
        "_last_service_drops",
    )

    def __init__(self, endpoint: Endpoint,
                 config: Optional[HealthConfig] = None) -> None:
        self.endpoint = endpoint
        #: per-endpoint config override (None = the monitor's default);
        #: QoS tiers watch with their own policies on one shared monitor
        self.config = config
        self.state = STATE_HEALTHY
        self.drop_ewma = 0.0
        self.occupancy_ewma = 0.0
        self.unhealthy_checks = 0
        #: sim time the endpoint was last shed (None if never)
        self.shed_at: Optional[float] = None
        self.shed_episodes = 0
        #: total time spent shed/quarantined over completed episodes
        #: (the SLO "quarantine time"; see :meth:`shed_time`)
        self.shed_time_us = 0.0
        self.recovered_at: Optional[float] = None
        #: peer nodes the AM liveness detector has declared dead
        self.dead_peers: set = set()
        self._last_service_drops = self._service_drops()

    def _service_drops(self) -> int:
        """Drops that cost the NI/kernel real service time.

        Quarantine drops are excluded: once shed, the endpoint stops
        generating the very signal that shed it, which is what lets the
        ``backpressure`` EWMAs decay toward recovery.
        """
        return self.endpoint.receive_drops + self.endpoint.no_buffer_drops

    @property
    def is_shed(self) -> bool:
        return self.state in (STATE_SHED, STATE_QUARANTINED)

    def shed_time(self, now: float) -> float:
        """Total shed/quarantine time including a still-open episode."""
        open_episode = (now - self.shed_at) if self.is_shed and self.shed_at is not None else 0.0
        return self.shed_time_us + open_episode

    def sample(self, alpha: float) -> None:
        drops = self._service_drops()
        delta = drops - self._last_service_drops
        self._last_service_drops = drops
        self.drop_ewma += alpha * (delta - self.drop_ewma)
        self.occupancy_ewma += alpha * (self.endpoint.recv_queue_occupancy - self.occupancy_ewma)

    def telemetry(self) -> dict:
        """One row of per-endpoint health telemetry for reports."""
        stats = self.endpoint.drop_stats()
        stats.update(
            endpoint=self.endpoint.id,
            owner=self.endpoint.owner,
            tenant=self.endpoint.tenant,
            qos=self.endpoint.qos,
            state=self.state,
            drop_ewma=self.drop_ewma,
            occupancy_ewma=self.occupancy_ewma,
            shed_episodes=self.shed_episodes,
            shed_time_us=self.shed_time_us,
            messages_received=self.endpoint.messages_received,
            dead_peers=sorted(self.dead_peers),
        )
        return stats


class HealthMonitor:
    """Watchdog applying :class:`HealthConfig` policies to endpoints.

    One monitor typically serves one host (all endpoints of a backend),
    mirroring where the real mechanism would live — the kernel service
    routine or NI firmware.  Endpoints join via :meth:`watch`; the
    monitor process starts lazily with the first one.

    With ``manual=True`` no simulation process is spawned: the owner
    calls :meth:`step` from its own loop.  This is how the live
    substrate runs the watchdog — its clock shim refuses to host
    processes, and live endpoints are polled, never waited on.
    """

    def __init__(self, sim: Simulator, config: Optional[HealthConfig] = None,
                 name: str = "health", manual: bool = False) -> None:
        self.sim = sim
        self.config = config or HealthConfig()
        self.name = name
        self.manual = manual
        self._records: Dict[int, EndpointHealth] = {}
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------- lifecycle
    def watch(self, endpoint: Endpoint,
              config: Optional[HealthConfig] = None) -> EndpointHealth:
        """Start monitoring ``endpoint``; returns its health record.

        ``config`` overrides the monitor default for this endpoint only
        (QoS tiers carry different containment policies)."""
        record = self._records.get(endpoint.id)
        if record is not None and record.endpoint is endpoint:
            if config is not None:
                record.config = config
            return record
        record = EndpointHealth(endpoint, config)
        self._records[endpoint.id] = record
        if not self._running and not self.manual:
            self._running = True
            self.sim.process(self._watchdog(), name=f"{self.name}.watchdog")
        return record

    def unwatch(self, endpoint: Endpoint) -> None:
        self._records.pop(endpoint.id, None)

    def stop(self) -> None:
        """Stop the watchdog process (endpoints keep their last state)."""
        self._stopped = True

    def health_of(self, endpoint: Endpoint) -> Optional[EndpointHealth]:
        record = self._records.get(endpoint.id)
        if record is not None and record.endpoint is endpoint:
            return record
        return None

    def records(self) -> List[EndpointHealth]:
        """All health records, in endpoint-id order."""
        return [self._records[key] for key in sorted(self._records)]

    def _config_for(self, record: EndpointHealth) -> HealthConfig:
        return record.config or self.config

    def _close_shed_episode(self, record: EndpointHealth) -> None:
        if record.shed_at is not None and record.is_shed:
            record.shed_time_us += self.sim.now - record.shed_at

    def _begin_shed(self, record: EndpointHealth, state: str) -> None:
        record.state = state
        record.endpoint.quarantined = True
        record.shed_at = self.sim.now
        record.shed_episodes += 1

    def release(self, endpoint: Endpoint) -> None:
        """Operator action: lift a quarantine (or shed) and start fresh."""
        record = self.health_of(endpoint)
        if record is None:
            return
        self._close_shed_episode(record)
        endpoint.quarantined = False
        record.state = STATE_PEER_DEAD if record.dead_peers else STATE_HEALTHY
        record.unhealthy_checks = 0
        record.drop_ewma = 0.0
        record.occupancy_ewma = 0.0
        record.recovered_at = self.sim.now

    def quarantine(self, endpoint: Endpoint) -> None:
        """Latch ``endpoint`` shed directly (operator or cluster
        controller action), regardless of its local EWMAs."""
        record = self.health_of(endpoint) or self.watch(endpoint)
        if record.state == STATE_QUARANTINED:
            return
        self._close_shed_episode(record)
        self._begin_shed(record, STATE_QUARANTINED)

    def note_epoch_advance(self, endpoint: Endpoint) -> bool:
        """The endpoint's peer restarted with a new incarnation epoch.

        A quarantine latch — or a shed verdict still decaying — earned
        by a previous incarnation must not outlive the process that
        earned it: convert it back into a live evaluation with fresh
        EWMAs (returns True when a shed/latched state was lifted).  The
        watchdog re-latches within ``min_unhealthy_checks`` periods if
        the *new* incarnation still misbehaves — released or re-latched,
        never stuck."""
        record = self.health_of(endpoint)
        if record is None:
            return False
        if record.is_shed:
            self.release(endpoint)
            return True
        # not shed (yet): still wipe the dead incarnation's evaluation —
        # EWMAs and consecutive-check counts are evidence against a
        # process that no longer exists, and left in place they latch
        # the new process within its first check period
        record.unhealthy_checks = 0
        record.drop_ewma = 0.0
        record.occupancy_ewma = 0.0
        return False

    # ------------------------------------------------------ peer liveness
    def report_peer_dead(self, endpoint: Endpoint, peer_node) -> None:
        """Verdict from the AM liveness detector: ``endpoint`` has lost
        its peer ``peer_node`` (ack starvation or missed heartbeats).
        The endpoint itself keeps being served — the state is a signal,
        not a containment action — but overload states take precedence
        in ``state`` if both conditions hold."""
        record = self.health_of(endpoint) or self.watch(endpoint)
        record.dead_peers.add(peer_node)
        if record.state == STATE_HEALTHY:
            record.state = STATE_PEER_DEAD

    def report_peer_alive(self, endpoint: Endpoint, peer_node) -> None:
        """The peer came back (its HELLO arrived): clear the verdict."""
        record = self.health_of(endpoint)
        if record is None:
            return
        record.dead_peers.discard(peer_node)
        if record.state == STATE_PEER_DEAD and not record.dead_peers:
            record.state = STATE_HEALTHY

    # -------------------------------------------------------------- watchdog
    def step(self) -> None:
        """One sampling + classification pass over every record.

        The simulated watchdog process calls this every
        ``check_period_us``; a live owner calls it from its polling
        loop (``manual=True``)."""
        for record in list(self._records.values()):
            record.sample(self._config_for(record).ewma_alpha)
            self._classify(record)

    def _watchdog(self) -> Generator:
        while not self._stopped:
            yield self.sim.timeout(self.config.check_period_us)
            self.step()
        self._running = False

    def _classify(self, record: EndpointHealth) -> None:
        cfg = self._config_for(record)
        if record.state == STATE_QUARANTINED:
            return  # latched: only release()/note_epoch_advance() exits
        overloaded = (record.drop_ewma >= cfg.drop_rate_high
                      or record.occupancy_ewma >= cfg.occupancy_high)
        baseline = STATE_PEER_DEAD if record.dead_peers else STATE_HEALTHY
        if record.state == STATE_SHED:
            if (record.drop_ewma <= cfg.drop_rate_low
                    and record.occupancy_ewma <= cfg.occupancy_low):
                self._close_shed_episode(record)
                record.endpoint.quarantined = False
                record.state = baseline
                record.unhealthy_checks = 0
                record.recovered_at = self.sim.now
            return
        if not overloaded:
            record.unhealthy_checks = 0
            if record.state == STATE_OVERLOADED:
                record.state = baseline
            return
        record.unhealthy_checks += 1
        if record.unhealthy_checks < cfg.min_unhealthy_checks:
            return
        if cfg.policy == POLICY_DROP:
            record.state = STATE_OVERLOADED
        elif cfg.policy == POLICY_BACKPRESSURE:
            self._begin_shed(record, STATE_SHED)
        else:  # POLICY_QUARANTINE
            self._begin_shed(record, STATE_QUARANTINED)

    # ------------------------------------------------------------- reporting
    def report(self) -> List[dict]:
        """Per-endpoint telemetry rows, in endpoint-id order."""
        return [self._records[key].telemetry() for key in sorted(self._records)]
