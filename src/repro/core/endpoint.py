"""U-Net endpoints.

An endpoint is "an application's handle into the network" (Section 3.1):
a buffer area plus three message queues.  The queues are plain data
structures in (simulated) memory — the send and free queues are written
by the application and polled by the NIC/kernel, and the receive queue is
written by the NIC/kernel and polled (or waited on) by the application —
exactly the sharing pattern of the real system.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hw.memory import Buffer, BufferArea
from ..sim import BoundedRing, Event, Simulator
from .descriptors import RecvDescriptor, SendDescriptor
from .errors import EndpointError, InvalidDescriptorError, ProtectionError

__all__ = ["Endpoint", "EndpointConfig", "DROP_COUNTERS"]

#: the shared drop-accounting vocabulary: every layer that can lose a
#: message (endpoint, demux, either substrate backend) reports these
#: counter names from its ``drop_stats()`` so reports can merge them
DROP_COUNTERS = ("recv_queue_drops", "no_buffer_drops", "unknown_tag_drops",
                 "quarantine_drops", "stale_epoch_drops", "peer_dead_drops",
                 "admission_rejected_drops")


class EndpointConfig:
    """Sizing of an endpoint's buffer area and queues."""

    def __init__(
        self,
        num_buffers: int = 64,
        buffer_size: int = 2048,
        send_queue_depth: int = 32,
        recv_queue_depth: int = 64,
        free_queue_depth: Optional[int] = None,
    ) -> None:
        self.num_buffers = num_buffers
        self.buffer_size = buffer_size
        self.send_queue_depth = send_queue_depth
        self.recv_queue_depth = recv_queue_depth
        self.free_queue_depth = free_queue_depth if free_queue_depth is not None else num_buffers


class Endpoint:
    """One U-Net endpoint: buffer area + send/recv/free queues."""

    def __init__(self, sim: Simulator, endpoint_id: int, config: EndpointConfig, owner: str = "",
                 tenant: str = "", qos: str = "") -> None:
        self.sim = sim
        self.id = endpoint_id
        self.owner = owner
        #: tenant identity for multi-tenant accounting (empty = untenanted);
        #: every drop this endpoint counts is attributed to this tenant and
        #: no other — the isolation invariant the soak suite pins
        self.tenant = tenant
        #: QoS class name (see :mod:`repro.core.tenancy`); empty = default
        self.qos = qos
        self.config = config
        self.buffers = BufferArea(config.num_buffers, config.buffer_size)
        self.send_queue: BoundedRing[SendDescriptor] = BoundedRing(
            config.send_queue_depth, name=f"ep{endpoint_id}.send"
        )
        self.recv_queue: BoundedRing[RecvDescriptor] = BoundedRing(
            config.recv_queue_depth, name=f"ep{endpoint_id}.recv"
        )
        self.free_queue: BoundedRing[int] = BoundedRing(
            config.free_queue_depth, name=f"ep{endpoint_id}.free"
        )
        #: registered channels (channel_id -> backend-specific tag record)
        self.channels = {}
        #: most recent send-queue activity, used by the i960's adaptive
        #: polling ("endpoints with recent activity are polled more
        #: frequently", Section 4.2.2)
        self.last_send_activity = -1.0
        #: optional application signal handler, invoked (once per
        #: empty->non-empty transition) when messages arrive
        self._signal_handler: Optional[Callable[["Endpoint"], None]] = None
        self._recv_waiters: List[Event] = []
        self._send_complete_waiters: List[Event] = []
        self._send_space_waiters: List[Event] = []
        # statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.receive_drops = 0
        #: messages lost because the free queue held no buffer (counted
        #: here by the serving backend, in addition to its own total)
        self.no_buffer_drops = 0
        #: messages shed while the endpoint was quarantined
        self.quarantine_drops = 0
        #: packets fenced because they carried a dead incarnation's epoch
        self.stale_epoch_drops = 0
        #: sends abandoned because the peer was declared dead
        self.peer_dead_drops = 0
        #: always zero on an endpoint — admission rejection happens before
        #: the endpoint exists, so the backend owns the live count; the key
        #: is carried here so every ``drop_stats()`` speaks one vocabulary
        self.admission_rejected_drops = 0
        #: set by the health layer (see :mod:`repro.core.health`): the
        #: NI/kernel sheds this endpoint's traffic at the demux step so a
        #: misbehaving process cannot consume service time that other
        #: endpoints need
        self.quarantined = False
        #: optional observable-event hook ``observer(kind, endpoint)``,
        #: invoked on every counted drop (kind is a ``DROP_COUNTERS``
        #: name); used by the conformance checker to build per-run traces
        self.observer: Optional[Callable[[str, "Endpoint"], None]] = None

    # -- application side --------------------------------------------------
    def post_send(self, descriptor: SendDescriptor) -> None:
        """Push a send descriptor (application side).

        The descriptor is validated here, at the protection boundary: a
        bad buffer index or segment length raises a typed
        :class:`~repro.core.errors.InvalidDescriptorError` instead of
        corrupting state deep inside the substrate.
        """
        if descriptor.channel_id not in self.channels:
            raise ProtectionError(
                f"channel {descriptor.channel_id} not registered on endpoint {self.id}"
            )
        for index, length in descriptor.segments:
            if not 0 <= index < self.buffers.num_buffers:
                raise InvalidDescriptorError(
                    f"endpoint {self.id}: send segment names buffer {index}, "
                    f"but the buffer area has {self.buffers.num_buffers}"
                )
            if not 0 <= length <= self.buffers.buffer_size:
                raise InvalidDescriptorError(
                    f"endpoint {self.id}: send segment length {length} outside "
                    f"[0, {self.buffers.buffer_size}]"
                )
        self.send_queue.push(descriptor)
        self.last_send_activity = self.sim.now

    def wait_send_queue_space(self) -> Event:
        """Event that fires when the send queue has (or gets) room."""
        event = self.sim.event(name=f"ep{self.id}.wait_sq")
        if not self.send_queue.is_full:
            event.succeed()
        else:
            self._send_space_waiters.append(event)
        return event

    def take_send_descriptor(self) -> Optional[SendDescriptor]:
        """NI/kernel side: pop the next send descriptor, waking any
        application process blocked on a full send queue."""
        descriptor = self.send_queue.try_pop()
        if descriptor is not None and self._send_space_waiters:
            waiters, self._send_space_waiters = self._send_space_waiters, []
            for event in waiters:
                event.succeed()
        return descriptor

    def donate_free_buffer(self, buffer_index: int) -> None:
        """Provide a receive buffer to the NI via the free queue."""
        if not 0 <= buffer_index < self.buffers.num_buffers:
            raise InvalidDescriptorError(
                f"endpoint {self.id}: bad free-queue buffer index {buffer_index}"
            )
        self.free_queue.push(buffer_index)

    def set_signal_handler(self, handler: Optional[Callable[["Endpoint"], None]]) -> None:
        """Register an upcall run when the receive queue becomes non-empty."""
        self._signal_handler = handler

    def poll_receive(self) -> Optional[RecvDescriptor]:
        """Non-blocking receive-queue check."""
        return self.recv_queue.try_pop()

    def wait_receive(self) -> Event:
        """Event that fires when the receive queue is (or becomes) non-empty.

        Models blocking in ``select()``.  The caller must then
        :meth:`poll_receive`; a fired event does not consume the message.
        """
        event = self.sim.event(name=f"ep{self.id}.wait_recv")
        if not self.recv_queue.is_empty:
            event.succeed()
        else:
            self._recv_waiters.append(event)
        return event

    def read_message(self, descriptor: RecvDescriptor) -> bytes:
        """Assemble a received message's payload bytes."""
        if descriptor.is_inline:
            return descriptor.inline
        parts = [self.buffers.buffer(idx).read(length) for idx, length in descriptor.segments]
        return b"".join(parts)

    def recycle(self, descriptor: RecvDescriptor) -> None:
        """Return a consumed message's buffers to the free queue."""
        for idx, _length in descriptor.segments:
            self.free_queue.push(idx)

    # -- NI / kernel side ----------------------------------------------------
    def deliver(self, descriptor: RecvDescriptor) -> bool:
        """Enqueue a received message toward the application.

        Returns False (and counts a drop) when the receive queue is full —
        U-Net itself provides no flow control or retransmission; that is
        left to the protocols above (Section 3.1).
        """
        descriptor.timestamp = self.sim.now
        if not self.recv_queue.try_push(descriptor):
            self.note_drop("recv_queue_drops")
            return False
        self.messages_received += 1
        self.bytes_received += descriptor.length
        if len(self.recv_queue) == 1:
            self._wake_receivers()
        return True

    def send_completed(self, descriptor: SendDescriptor) -> None:
        """NI side: transmission done; sender may reclaim the buffers."""
        descriptor.completed = True
        waiters, self._send_complete_waiters = self._send_complete_waiters, []
        for event in waiters:
            event.succeed()

    def wait_send_complete(self) -> Event:
        """Event that fires at the next send completion."""
        event = self.sim.event(name=f"ep{self.id}.wait_send")
        self._send_complete_waiters.append(event)
        return event

    def take_free_buffer(self) -> Optional[int]:
        """NI side: pop a donated receive buffer index."""
        return self.free_queue.try_pop()

    # -- health / accounting -------------------------------------------------
    def note_drop(self, kind: str) -> None:
        """Count one lost message under the shared drop vocabulary.

        All layers that shed a message destined for this endpoint funnel
        through here (``deliver`` for a full receive queue, the serving
        backend for no-buffer and quarantine sheds), so the observer hook
        sees every drop exactly once with its classification.
        """
        if kind == "recv_queue_drops":
            self.receive_drops += 1
        elif kind == "no_buffer_drops":
            self.no_buffer_drops += 1
        elif kind == "quarantine_drops":
            self.quarantine_drops += 1
        elif kind == "stale_epoch_drops":
            self.stale_epoch_drops += 1
        elif kind == "peer_dead_drops":
            self.peer_dead_drops += 1
        elif kind == "admission_rejected_drops":
            self.admission_rejected_drops += 1
        else:
            raise ValueError(f"unknown drop class {kind!r}; expected one of {DROP_COUNTERS}")
        if self.observer is not None:
            self.observer(kind, self)

    @property
    def recv_queue_occupancy(self) -> float:
        """Receive-queue fill fraction (0.0 empty .. 1.0 full)."""
        return len(self.recv_queue) / self.recv_queue.capacity

    @property
    def free_buffer_level(self) -> float:
        """Free-queue fill fraction relative to its capacity."""
        return len(self.free_queue) / self.free_queue.capacity

    def drop_stats(self) -> dict:
        """Drop counters under the shared :data:`DROP_COUNTERS` names.

        ``unknown_tag_drops`` happen before any endpoint is known, so an
        endpoint always reports zero there; the demux table owns them.
        """
        return {
            "recv_queue_drops": self.receive_drops,
            "no_buffer_drops": self.no_buffer_drops,
            "unknown_tag_drops": 0,
            "quarantine_drops": self.quarantine_drops,
            "stale_epoch_drops": self.stale_epoch_drops,
            "peer_dead_drops": self.peer_dead_drops,
            "admission_rejected_drops": self.admission_rejected_drops,
        }

    def _wake_receivers(self) -> None:
        waiters, self._recv_waiters = self._recv_waiters, []
        for event in waiters:
            event.succeed()
        if self._signal_handler is not None:
            self._signal_handler(self)
