"""Incoming-message demultiplexing.

The NI (or the in-kernel service routine) maps each incoming message tag
to the destination endpoint and the channel identifier the application
registered — U-Net's core multiplexing function.  Unknown tags are
counted and dropped, never delivered across protection boundaries.

Two table implementations share one contract:

* :class:`DemuxTable` — the original flat dict, fine for tens of
  endpoints, but teardown (:meth:`DemuxTable.unregister_endpoint`) scans
  the whole table, so a churn of short-lived tenants makes endpoint
  destruction O(total rows) — quadratic over a tenant population.
* :class:`ShardedDemux` — a radix-sharded table with a reverse index
  (endpoint -> its tags) and per-tenant row accounting.  Lookup hashes
  the tag to one shard; teardown walks only the dying endpoint's own
  rows.  This is the shape a multi-tenant host needs: thousands of
  endpoints arriving and leaving without the shared demux path becoming
  the bottleneck ("keep the shared path cheap enough that isolation
  machinery doesn't eat the fast path").

Both speak the shared ``drop_stats()`` vocabulary
(:data:`repro.core.endpoint.DROP_COUNTERS`); the demux owns exactly one
class — ``unknown_tag_drops`` — because unknown tags have no endpoint
(and no tenant) to attribute them to.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .endpoint import DROP_COUNTERS, Endpoint

__all__ = ["DemuxTable", "ShardedDemux"]


class DemuxTable:
    """Tag -> (endpoint, channel_id) table maintained by the OS service."""

    def __init__(self, name: str = "demux") -> None:
        self.name = name
        self._table: Dict[Any, Tuple[Endpoint, int]] = {}
        self.unknown_tag_drops = 0
        #: optional hook ``observer(rx_tag)`` fired on unknown-tag drops
        #: (the one drop class no endpoint can own); see conformance
        self.observer = None

    def __len__(self) -> int:
        return len(self._table)

    def register(self, rx_tag: Any, endpoint: Endpoint, channel_id: int) -> None:
        if rx_tag in self._table:
            raise KeyError(f"{self.name}: tag {rx_tag!r} already registered")
        self._table[rx_tag] = (endpoint, channel_id)

    def unregister(self, rx_tag: Any) -> None:
        self._table.pop(rx_tag, None)

    def unregister_endpoint(self, endpoint: Endpoint) -> int:
        """Remove every row routing to ``endpoint`` (teardown); returns
        how many were removed."""
        dead = [tag for tag, (ep, _ch) in self._table.items() if ep is endpoint]
        for tag in dead:
            del self._table[tag]
        return len(dead)

    def lookup(self, rx_tag: Any) -> Optional[Tuple[Endpoint, int]]:
        """Destination for ``rx_tag``; None (and a drop count) if unknown."""
        entry = self._table.get(rx_tag)
        if entry is None:
            self.unknown_tag_drops += 1
            if self.observer is not None:
                self.observer(rx_tag)
        return entry

    def drop_stats(self) -> dict:
        """Drop counters under the shared ``DROP_COUNTERS`` names."""
        stats = {name: 0 for name in DROP_COUNTERS}
        stats["unknown_tag_drops"] = self.unknown_tag_drops
        return stats


class ShardedDemux(DemuxTable):
    """Radix-sharded demux table for multi-tenant endpoint populations.

    Rows live in ``1 << radix_bits`` shards selected by hashing the tag;
    a reverse index maps each endpoint to the set of tags routing to it,
    so :meth:`unregister_endpoint` is O(that endpoint's rows) instead of
    O(every row on the host).  Per-tenant row counts are maintained
    incrementally for the admission and health layers.

    The class keeps the exact :class:`DemuxTable` API (``register`` /
    ``unregister`` / ``unregister_endpoint`` / ``lookup`` / ``observer``
    / ``drop_stats`` / ``len``) so every substrate backend can adopt it
    without data-path changes.
    """

    def __init__(self, name: str = "demux", radix_bits: int = 6) -> None:
        super().__init__(name)
        if not 0 <= radix_bits <= 16:
            raise ValueError("radix_bits must be in [0, 16]")
        self.radix_bits = radix_bits
        self._mask = (1 << radix_bits) - 1
        self._shards: List[Dict[Any, Tuple[Endpoint, int]]] = [
            {} for _ in range(1 << radix_bits)
        ]
        #: reverse index: endpoint -> the set of tags routing to it
        self._tags_by_endpoint: Dict[Endpoint, set] = {}
        #: live row count per tenant name (untenanted rows under "")
        self._rows_by_tenant: Dict[str, int] = {}
        self._size = 0
        # the flat-table dict is unused; drop the reference so a bug that
        # bypasses the sharded paths fails loudly instead of splitting rows
        del self._table

    # ----------------------------------------------------------- internals
    def _shard_of(self, rx_tag: Any) -> Dict[Any, Tuple[Endpoint, int]]:
        return self._shards[hash(rx_tag) & self._mask]

    @staticmethod
    def _tenant_of(endpoint: Endpoint) -> str:
        return getattr(endpoint, "tenant", "") or ""

    def _account(self, endpoint: Endpoint, delta: int) -> None:
        tenant = self._tenant_of(endpoint)
        rows = self._rows_by_tenant.get(tenant, 0) + delta
        if rows:
            self._rows_by_tenant[tenant] = rows
        else:
            self._rows_by_tenant.pop(tenant, None)

    # ----------------------------------------------------------- table API
    def __len__(self) -> int:
        return self._size

    def register(self, rx_tag: Any, endpoint: Endpoint, channel_id: int) -> None:
        shard = self._shard_of(rx_tag)
        if rx_tag in shard:
            raise KeyError(f"{self.name}: tag {rx_tag!r} already registered")
        shard[rx_tag] = (endpoint, channel_id)
        self._tags_by_endpoint.setdefault(endpoint, set()).add(rx_tag)
        self._account(endpoint, +1)
        self._size += 1

    def unregister(self, rx_tag: Any) -> None:
        shard = self._shard_of(rx_tag)
        entry = shard.pop(rx_tag, None)
        if entry is None:
            return
        endpoint = entry[0]
        tags = self._tags_by_endpoint.get(endpoint)
        if tags is not None:
            tags.discard(rx_tag)
            if not tags:
                del self._tags_by_endpoint[endpoint]
        self._account(endpoint, -1)
        self._size -= 1

    def unregister_endpoint(self, endpoint: Endpoint) -> int:
        """Teardown via the reverse index: touches only this endpoint's
        rows, not the whole host table."""
        tags = self._tags_by_endpoint.pop(endpoint, None)
        if not tags:
            return 0
        for tag in tags:
            del self._shard_of(tag)[tag]
        removed = len(tags)
        self._account(endpoint, -removed)
        self._size -= removed
        return removed

    def lookup(self, rx_tag: Any) -> Optional[Tuple[Endpoint, int]]:
        entry = self._shard_of(rx_tag).get(rx_tag)
        if entry is None:
            self.unknown_tag_drops += 1
            if self.observer is not None:
                self.observer(rx_tag)
        return entry

    # ---------------------------------------------------------- accounting
    def tenant_rows(self) -> Dict[str, int]:
        """Live demux rows per tenant (copy; untenanted rows under "")."""
        return dict(self._rows_by_tenant)

    def endpoint_rows(self, endpoint: Endpoint) -> int:
        """How many rows currently route to ``endpoint``."""
        return len(self._tags_by_endpoint.get(endpoint, ()))

    def shard_load(self) -> List[int]:
        """Row count per shard (the radix balance, for telemetry)."""
        return [len(shard) for shard in self._shards]
