"""Incoming-message demultiplexing.

The NI (or the in-kernel service routine) maps each incoming message tag
to the destination endpoint and the channel identifier the application
registered — U-Net's core multiplexing function.  Unknown tags are
counted and dropped, never delivered across protection boundaries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .endpoint import Endpoint

__all__ = ["DemuxTable"]


class DemuxTable:
    """Tag -> (endpoint, channel_id) table maintained by the OS service."""

    def __init__(self, name: str = "demux") -> None:
        self.name = name
        self._table: Dict[Any, Tuple[Endpoint, int]] = {}
        self.unknown_tag_drops = 0
        #: optional hook ``observer(rx_tag)`` fired on unknown-tag drops
        #: (the one drop class no endpoint can own); see conformance
        self.observer = None

    def __len__(self) -> int:
        return len(self._table)

    def register(self, rx_tag: Any, endpoint: Endpoint, channel_id: int) -> None:
        if rx_tag in self._table:
            raise KeyError(f"{self.name}: tag {rx_tag!r} already registered")
        self._table[rx_tag] = (endpoint, channel_id)

    def unregister(self, rx_tag: Any) -> None:
        self._table.pop(rx_tag, None)

    def unregister_endpoint(self, endpoint: Endpoint) -> int:
        """Remove every row routing to ``endpoint`` (teardown); returns
        how many were removed."""
        dead = [tag for tag, (ep, _ch) in self._table.items() if ep is endpoint]
        for tag in dead:
            del self._table[tag]
        return len(dead)

    def lookup(self, rx_tag: Any) -> Optional[Tuple[Endpoint, int]]:
        """Destination for ``rx_tag``; None (and a drop count) if unknown."""
        entry = self._table.get(rx_tag)
        if entry is None:
            self.unknown_tag_drops += 1
            if self.observer is not None:
                self.observer(rx_tag)
        return entry

    def drop_stats(self) -> dict:
        """Drop counters under the shared ``DROP_COUNTERS`` names."""
        return {
            "recv_queue_drops": 0,
            "no_buffer_drops": 0,
            "unknown_tag_drops": self.unknown_tag_drops,
            "quarantine_drops": 0,
            "stale_epoch_drops": 0,
            "peer_dead_drops": 0,
        }
