"""The U-Net communication architecture (substrate-independent core).

Substrate bindings live with their hardware models:
``repro.atm.unet_atm`` and ``repro.ethernet.unet_fe``.
"""

from .api import Host, ReceivedMessage, UserEndpoint
from .base import UNetBackend
from .channels import AtmTag, ChannelBinding, EthernetTag, lookup_channel, register_channel
from .clock import Clock, ClockShim, ManualClock
from .cluster import ClusterHealthAggregator, HostView
from .descriptors import SMALL_MESSAGE_MAX, RecvDescriptor, SendDescriptor
from .endpoint import DROP_COUNTERS, Endpoint, EndpointConfig
from .errors import (
    AdmissionRejected,
    ChannelError,
    EndpointError,
    InvalidDescriptorError,
    MessageTooLarge,
    ProtectionError,
    UNetError,
)
from .health import (
    POLICIES,
    POLICY_BACKPRESSURE,
    POLICY_DROP,
    POLICY_QUARANTINE,
    EndpointHealth,
    HealthConfig,
    HealthMonitor,
)
from .mux import DemuxTable, ShardedDemux
from .tenancy import (
    QOS_BEST_EFFORT,
    QOS_CLASSES,
    QOS_GOLD,
    QOS_SILVER,
    AdmissionConfig,
    AdmissionController,
    QosClass,
    qos_class,
)
from .substrates import (
    SubstrateSpec,
    SubstrateUnavailable,
    available_substrates,
    ensure_available,
    get_substrate,
    register_substrate,
    substrate_names,
)

__all__ = [
    "Clock",
    "ClockShim",
    "ManualClock",
    "SubstrateSpec",
    "SubstrateUnavailable",
    "register_substrate",
    "get_substrate",
    "substrate_names",
    "available_substrates",
    "ensure_available",
    "Host",
    "UserEndpoint",
    "ReceivedMessage",
    "UNetBackend",
    "Endpoint",
    "EndpointConfig",
    "DROP_COUNTERS",
    "SendDescriptor",
    "RecvDescriptor",
    "SMALL_MESSAGE_MAX",
    "AtmTag",
    "EthernetTag",
    "ChannelBinding",
    "register_channel",
    "lookup_channel",
    "DemuxTable",
    "ShardedDemux",
    "QosClass",
    "qos_class",
    "QOS_GOLD",
    "QOS_SILVER",
    "QOS_BEST_EFFORT",
    "QOS_CLASSES",
    "AdmissionConfig",
    "AdmissionController",
    "ClusterHealthAggregator",
    "HostView",
    "HealthConfig",
    "HealthMonitor",
    "EndpointHealth",
    "POLICIES",
    "POLICY_DROP",
    "POLICY_BACKPRESSURE",
    "POLICY_QUARANTINE",
    "UNetError",
    "EndpointError",
    "InvalidDescriptorError",
    "ChannelError",
    "ProtectionError",
    "MessageTooLarge",
    "AdmissionRejected",
]
