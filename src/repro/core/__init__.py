"""The U-Net communication architecture (substrate-independent core).

Substrate bindings live with their hardware models:
``repro.atm.unet_atm`` and ``repro.ethernet.unet_fe``.
"""

from .api import Host, ReceivedMessage, UserEndpoint
from .base import UNetBackend
from .channels import AtmTag, ChannelBinding, EthernetTag, lookup_channel, register_channel
from .descriptors import SMALL_MESSAGE_MAX, RecvDescriptor, SendDescriptor
from .endpoint import Endpoint, EndpointConfig
from .errors import ChannelError, EndpointError, MessageTooLarge, ProtectionError, UNetError
from .mux import DemuxTable

__all__ = [
    "Host",
    "UserEndpoint",
    "ReceivedMessage",
    "UNetBackend",
    "Endpoint",
    "EndpointConfig",
    "SendDescriptor",
    "RecvDescriptor",
    "SMALL_MESSAGE_MAX",
    "AtmTag",
    "EthernetTag",
    "ChannelBinding",
    "register_channel",
    "lookup_channel",
    "DemuxTable",
    "UNetError",
    "EndpointError",
    "ChannelError",
    "ProtectionError",
    "MessageTooLarge",
]
