"""The Clock seam: how non-simulated code tells time.

The simulated substrates run on the event-driven
:class:`~repro.sim.engine.Simulator` clock, and the determinism lint
bans ambient wall-clock reads (``time.time()`` and friends) from
``src/repro`` so that every soak verdict and conformance artifact
replays bit-for-bit from a seed.  The live U-Net/OS substrate
(:mod:`repro.live`) genuinely needs wall time — that is the point of
it — so time flows through an explicit :class:`Clock` object instead:

* :class:`ManualClock` — a deterministic, manually-advanced clock for
  unit tests of live components (timers fire exactly when a test says
  the clock moved);
* ``repro.live.clock.WallClock`` — the one sanctioned wall-time
  implementation, living in the single module the determinism lint
  allowlists.

:class:`ClockShim` adapts a :class:`Clock` to the tiny ``sim`` surface
the substrate-independent core touches on the data path (``sim.now``),
letting the live backend reuse :class:`~repro.core.endpoint.Endpoint`
verbatim — same descriptor validation, same drop accounting, same
observer hooks — without dragging in the event engine.
"""

from __future__ import annotations

import abc

__all__ = ["Clock", "ManualClock", "ClockShim"]


class Clock(abc.ABC):
    """Where live (non-simulated) code gets its notion of time."""

    @abc.abstractmethod
    def now_us(self) -> float:
        """Monotonic time in microseconds since an arbitrary origin."""

    @abc.abstractmethod
    def sleep_us(self, us: float) -> None:
        """Yield the CPU for roughly ``us`` microseconds."""


class ManualClock(Clock):
    """A deterministic clock a test advances by hand.

    ``sleep_us`` advances the clock (a sleeper makes progress), so code
    written against the :class:`Clock` interface runs identically —
    just instantly — under test.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)
        self.sleeps = 0

    def now_us(self) -> float:
        return self._now_us

    def sleep_us(self, us: float) -> None:
        self.sleeps += 1
        self.advance(us)

    def advance(self, us: float) -> None:
        if us < 0:
            raise ValueError("clocks do not run backwards")
        self._now_us += us


class ClockShim:
    """Duck-typed stand-in for a :class:`~repro.sim.engine.Simulator`.

    Exposes exactly the surface the core data-path classes touch
    (``sim.now`` for timestamps and activity tracking).  The blocking
    primitives (``event()``/``timeout()``/``process()``) raise: live
    endpoints are *polled*, never waited on, so any attempt to block
    through the shim is a layering bug worth failing loudly on.
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    @property
    def now(self) -> float:
        return self.clock.now_us()

    def event(self, name: str = ""):  # pragma: no cover - defensive
        raise RuntimeError(
            f"live code tried to create simulation event {name!r}; "
            "live endpoints are polled, not waited on")

    def timeout(self, delay: float, name: str = ""):  # pragma: no cover - defensive
        raise RuntimeError("live code cannot schedule simulated timeouts")

    def process(self, generator, name: str = ""):  # pragma: no cover - defensive
        raise RuntimeError("live code cannot spawn simulation processes")
