"""U-Net message descriptors.

Applications communicate with the network interface through descriptors
pushed onto the endpoint's send/receive/free queues (Section 3.1):

* a :class:`SendDescriptor` names the channel and the buffer(s) holding
  the composed message;
* a :class:`RecvDescriptor` names the channel and the buffer(s) the
  message landed in — or, for small messages, carries the entire payload
  inline in the descriptor itself (the small-message optimization that
  "avoids buffer management overheads and can improve the round-trip
  latency substantially");
* free-queue entries are bare buffer indices the application donates for
  incoming data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["SendDescriptor", "RecvDescriptor", "SMALL_MESSAGE_MAX"]

#: Threshold for the small-message receive optimization on U-Net/FE
#: ("small messages (under 64 bytes) are copied directly into the U-Net
#: receive descriptor itself", Section 4.3.3).  U-Net/ATM special-cases
#: single-cell messages instead (<= 40 bytes of payload); the ATM backend
#: applies its own cell-derived threshold.
SMALL_MESSAGE_MAX = 64


@dataclass
class SendDescriptor:
    """An entry on an endpoint's send queue.

    ``segments`` lists ``(buffer_index, length)`` pairs; multi-segment
    descriptors model the DC21140's chained-buffer PDUs.
    """

    channel_id: int
    segments: List[Tuple[int, int]]
    #: set by the NIC/kernel when transmission has been handed to the wire,
    #: letting the application reclaim the buffers.
    completed: bool = False

    @property
    def length(self) -> int:
        return sum(length for _idx, length in self.segments)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("send descriptor needs at least one segment")
        for _idx, length in self.segments:
            if length < 0:
                raise ValueError("negative segment length")


@dataclass
class RecvDescriptor:
    """An entry on an endpoint's receive queue.

    Exactly one of ``inline`` (small-message optimization) or ``segments``
    is populated.
    """

    channel_id: int
    length: int
    #: payload carried directly in the descriptor (small messages)
    inline: Optional[bytes] = None
    #: (buffer_index, length) pairs for buffer-borne messages
    segments: List[Tuple[int, int]] = field(default_factory=list)
    #: simulation time at which the descriptor was enqueued
    timestamp: float = 0.0

    @property
    def is_inline(self) -> bool:
        return self.inline is not None

    def __post_init__(self) -> None:
        if self.inline is not None and self.segments:
            raise ValueError("descriptor cannot be both inline and buffer-borne")
        if self.inline is None and not self.segments and self.length > 0:
            raise ValueError("non-empty message needs inline payload or buffers")
        if self.inline is not None and len(self.inline) != self.length:
            raise ValueError("inline payload length mismatch")
