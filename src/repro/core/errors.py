"""U-Net error types."""

from __future__ import annotations

__all__ = [
    "UNetError",
    "ChannelError",
    "EndpointError",
    "InvalidDescriptorError",
    "ProtectionError",
    "MessageTooLarge",
]


class UNetError(Exception):
    """Base class for U-Net architecture errors."""


class EndpointError(UNetError):
    """Invalid endpoint operation (bad queue state, bad buffer)."""


class ChannelError(UNetError):
    """Unknown or mis-registered communication channel."""


class InvalidDescriptorError(EndpointError):
    """A descriptor pushed onto an endpoint queue is malformed (buffer
    index out of range, segment length negative or larger than the
    buffer).  Raised at ``post_send``/``donate_free_buffer`` time so a
    misbehaving application fails in its own system call instead of
    deep inside the NI firmware or kernel service routine."""


class ProtectionError(EndpointError):
    """An operation violated the protection boundaries U-Net enforces
    (e.g. sending on a channel not registered to the endpoint)."""


class MessageTooLarge(UNetError):
    """Message exceeds the substrate's maximum PDU."""
