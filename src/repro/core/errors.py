"""U-Net error types."""

from __future__ import annotations

__all__ = [
    "UNetError",
    "ChannelError",
    "EndpointError",
    "ProtectionError",
    "MessageTooLarge",
]


class UNetError(Exception):
    """Base class for U-Net architecture errors."""


class EndpointError(UNetError):
    """Invalid endpoint operation (bad queue state, bad buffer)."""


class ChannelError(UNetError):
    """Unknown or mis-registered communication channel."""


class ProtectionError(EndpointError):
    """An operation violated the protection boundaries U-Net enforces
    (e.g. sending on a channel not registered to the endpoint)."""


class MessageTooLarge(UNetError):
    """Message exceeds the substrate's maximum PDU."""
