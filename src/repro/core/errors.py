"""U-Net error types."""

from __future__ import annotations

__all__ = [
    "UNetError",
    "ChannelError",
    "EndpointError",
    "InvalidDescriptorError",
    "ProtectionError",
    "MessageTooLarge",
    "PeerUnavailableError",
    "StaleEpochError",
    "AdmissionRejected",
    "ConfigError",
    "NoPathError",
    "ClusterPartitionError",
]


class UNetError(Exception):
    """Base class for U-Net architecture errors."""


class EndpointError(UNetError):
    """Invalid endpoint operation (bad queue state, bad buffer)."""


class ChannelError(UNetError):
    """Unknown or mis-registered communication channel."""


class InvalidDescriptorError(EndpointError):
    """A descriptor pushed onto an endpoint queue is malformed (buffer
    index out of range, segment length negative or larger than the
    buffer).  Raised at ``post_send``/``donate_free_buffer`` time so a
    misbehaving application fails in its own system call instead of
    deep inside the NI firmware or kernel service routine."""


class ProtectionError(EndpointError):
    """An operation violated the protection boundaries U-Net enforces
    (e.g. sending on a channel not registered to the endpoint)."""


class MessageTooLarge(UNetError):
    """Message exceeds the substrate's maximum PDU."""


class PeerUnavailableError(UNetError):
    """The remote endpoint is dead or restarted: an in-flight or queued
    send cannot complete under the at-most-once contract.  Carries the
    message fate — the send was *abandoned*, not silently dropped — so
    callers can account for it rather than retry blindly."""

    def __init__(self, message: str = "peer unavailable", *,
                 peer: object = None, seq: object = None) -> None:
        super().__init__(message)
        self.peer = peer
        self.seq = seq


class AdmissionRejected(EndpointError):
    """Endpoint creation refused by admission control.

    The host is at capacity for the requesting tenant's QoS class (or
    the tenant hit its own endpoint quota).  Raised at creation time —
    before any endpoint state exists — so the backend, not an endpoint,
    owns the matching ``admission_rejected_drops`` counter."""

    def __init__(self, message: str = "admission rejected", *,
                 tenant: str = "", qos: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.qos = qos
        self.reason = reason


class ConfigError(UNetError, ValueError):
    """A configuration object rejected its field values or their
    combination at construction time (negative window, unknown mode,
    two flow-control schemes fighting over the same window, ...).
    Subclasses :class:`ValueError` so call sites that predate the typed
    hierarchy — and tests written against them — keep working, while
    new code can catch the U-Net family."""

    def __init__(self, message: str, *, knob: str = "") -> None:
        super().__init__(message)
        self.knob = knob


class NoPathError(ChannelError, ValueError):
    """No usable switch path exists between two fabric attachment points.

    Raised both for topologies that were never connected and for pairs
    severed by trunk faults (``Topology.set_trunk``).  Subclasses
    :class:`ValueError` because the topology layer historically raised
    that for disconnected graphs — old call sites keep working."""

    def __init__(self, message: str, *, src: int = -1, dst: int = -1) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst


class ClusterPartitionError(UNetError):
    """This host sits on the minority side of a cluster partition and
    must fail fast rather than diverge.  The majority side keeps
    running in degraded mode; see ``ClusterPartitionMonitor``."""

    def __init__(self, message: str = "cluster partitioned", *,
                 host: str = "", component: object = None) -> None:
        super().__init__(message)
        self.host = host
        self.component = tuple(component) if component is not None else ()


class StaleEpochError(UNetError):
    """An operation referenced a dead incarnation of an endpoint (e.g.
    completing a handle issued before the local endpoint crashed and
    restarted).  Wire-level stale traffic is fenced silently as the
    ``stale_epoch`` drop class; this error is for local API misuse."""
