"""Real OS datagram transports under the live U-Net/OS substrate.

Two backends, mirroring the paper's two NIC mappings in spirit:

* :class:`UnixDgramTransport` — ``AF_UNIX``/``SOCK_DGRAM``.  Same-host
  only, kernel-buffer "SHM-like" path: no checksums, no protocol
  headers, message boundaries preserved.  The closest a portable OS
  primitive gets to the PCA-200's memory-mapped FIFOs.
* :class:`UdpLoopbackTransport` — UDP on ``127.0.0.1``.  Crosses the
  full IP stack the way U-Net/FE's frames crossed the DC21140, and
  works between unrelated processes.

One transport is one node's "NIC": a single bound non-blocking socket.
All sends and receives are non-blocking; a send that would block
(receiver's kernel buffer full — the OS analogue of a full receive
ring) reports ``False`` so the backend can keep the descriptor queued
and retry, which is real backpressure rather than silent loss.  Every
syscall is counted: syscalls-per-message is one of the live benchmark's
headline numbers, exactly as the paper counted traps and doorbells.
"""

from __future__ import annotations

import errno
import os
import socket
import tempfile
from typing import List, Optional, Tuple

from ..core.errors import UNetError
from .mmsg import MmsgBatch, mmsg_available, pack_sockaddr

__all__ = [
    "TransportError",
    "LiveTransport",
    "UnixDgramTransport",
    "UdpLoopbackTransport",
    "TRANSPORT_KINDS",
    "transport_available",
    "available_transport_kinds",
    "make_transport",
]

#: datagrams drained from the socket per service-loop pass; bounding the
#: batch keeps one busy peer from starving the doorbell loop (and models
#: the bounded work a real interrupt handler does per invocation)
RECV_BATCH = 64

#: errnos that mean "the receiver's kernel buffer is full right now"
_WOULD_BLOCK = {errno.EAGAIN, getattr(errno, "EWOULDBLOCK", errno.EAGAIN), errno.ENOBUFS}

#: errnos that mean "the peer endpoint is gone" (teardown races)
_PEER_GONE = {errno.ECONNREFUSED, errno.ENOENT, errno.ECONNRESET}

_MSG_TRUNC = int(getattr(socket, "MSG_TRUNC", 0x20))


class TransportError(UNetError):
    """A live transport could not be created or used."""


class LiveTransport:
    """One node's datagram socket plus its syscall accounting."""

    kind = "abstract"
    #: socket address family, for raw sockaddr packing (mmsg path)
    family: Optional[int] = None

    def __init__(self, use_mmsg: Optional[bool] = None) -> None:
        self.sock: Optional[socket.socket] = None
        self.tx_syscalls = 0
        self.rx_syscalls = 0
        self.tx_datagrams = 0
        self.rx_datagrams = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: sends refused by a full kernel buffer (backpressure events)
        self.tx_would_block = 0
        #: sends to a peer that no longer exists (teardown races)
        self.tx_peer_gone = 0
        #: received datagrams larger than their receive slot (dropped)
        self.rx_truncated = 0
        #: None = auto-probe; the seam the fallback tests force shut
        self.use_mmsg = mmsg_available() if use_mmsg is None else use_mmsg
        # separate scratch per direction so alternating TX/RX doesn't
        # thrash the cached sockaddr/iovec slot state
        self._mmsg_tx: Optional[MmsgBatch] = None
        self._mmsg_rx: Optional[MmsgBatch] = None
        self._sockaddr_cache: dict = {}
        #: adaptive burst windows — how many datagrams the kernel has
        #: recently been willing to take/yield per call.  Composing a
        #: frame costs real work; composing 64 when the peer's buffer
        #: fits 11 wastes five frames of it per delivered message, so
        #: callers size their compose loop to this hint (AIMD-style:
        #: double on a clean batch, collapse to what actually went)
        self.tx_hint = 8
        self.rx_hint = 16
        #: set by :meth:`connect_peer` — pairwise pinned topology
        self.connected_peer = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self):
        """The opaque, sendable address peers use to reach this node."""
        raise NotImplementedError

    def close(self) -> None:
        if self.sock is not None:
            self.sock.close()
            self.sock = None

    def __enter__(self) -> "LiveTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def connect_peer(self, dest) -> None:
        """Pin this socket to one peer (pairwise fast-path topology).

        AF_UNIX datagram sends to an *unconnected* receiver are capped
        at ``net.unix.max_dgram_qlen`` queued datagrams (10 on stock
        kernels) — a pipe far too shallow for batching to amortize
        anything.  Mutually connected peers are exempt: the kernel
        switches to buffer-based accounting, hundreds of datagrams
        deep.  This is the live analogue of the paper's pinned virtual
        circuit — both ends commit to the channel and the NI commits
        queue depth in return.  After pinning, this socket only
        exchanges datagrams with ``dest``; use it for two-node
        topologies only.
        """
        if self.sock is None:
            raise TransportError(f"{self.kind} transport is closed")
        self.sock.connect(dest)
        self.connected_peer = dest

    # -- data path ---------------------------------------------------------
    def send(self, dest, payload: bytes) -> bool:
        """Non-blocking datagram send.

        Returns True when the kernel accepted the datagram (or the peer
        is gone, in which case the datagram is charged as transmitted
        and dropped exactly as a NIC drops frames for a dead endpoint).
        Returns False when the send would block — the caller keeps the
        descriptor queued and retries on its next doorbell pass.
        """
        if self.sock is None:
            raise TransportError(f"{self.kind} transport is closed")
        self.tx_syscalls += 1
        try:
            if self.connected_peer is not None:
                self.sock.send(payload)
            else:
                self.sock.sendto(payload, dest)
        except (BlockingIOError, InterruptedError):
            self.tx_would_block += 1
            return False
        except OSError as exc:
            if exc.errno in _WOULD_BLOCK:
                self.tx_would_block += 1
                return False
            if exc.errno in _PEER_GONE:
                self.tx_peer_gone += 1
                return True
            raise
        self.tx_datagrams += 1
        self.tx_bytes += len(payload)
        return True

    def recv_batch(self, max_datagrams: int = RECV_BATCH) -> List[bytes]:
        """Drain up to ``max_datagrams`` datagrams without blocking.

        A partial drain is normal: the remainder stays in the kernel
        buffer for the next pass, so a slow consumer backpressures the
        socket instead of losing data.
        """
        if self.sock is None:
            return []
        out: List[bytes] = []
        for _ in range(max_datagrams):
            self.rx_syscalls += 1
            try:
                raw, _addr = self.sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                if exc.errno in _WOULD_BLOCK:
                    break
                if exc.errno in _PEER_GONE:
                    # queued ICMP refusal from a torn-down UDP peer;
                    # irrelevant to *our* ingress, keep draining
                    continue
                raise
            out.append(raw)
            self.rx_datagrams += 1
            self.rx_bytes += len(raw)
        return out

    # -- batched data path -------------------------------------------------
    def batch_path(self) -> str:
        """Which batching implementation this transport actually uses."""
        if self.use_mmsg and mmsg_available():
            return "sendmmsg/recvmmsg (ctypes)"
        return "portable sendto/recvmsg_into loop"

    def _packed_dest(self, dest) -> bytes:
        packed = self._sockaddr_cache.get(dest)
        if packed is None:
            packed = pack_sockaddr(self.family, dest)
            self._sockaddr_cache[dest] = packed
        return packed

    def _tx_batch(self) -> Optional[MmsgBatch]:
        if not (self.use_mmsg and mmsg_available()):
            return None
        if self._mmsg_tx is None:
            self._mmsg_tx = MmsgBatch()
        return self._mmsg_tx

    def _rx_batch(self) -> Optional[MmsgBatch]:
        if not (self.use_mmsg and mmsg_available()):
            return None
        if self._mmsg_rx is None:
            self._mmsg_rx = MmsgBatch()
        return self._mmsg_rx

    @staticmethod
    def _sendable(payload):
        # PooledSlice -> its valid bytes, in place; bytes pass through
        fn = getattr(payload, "payload", None)
        return fn() if fn is not None else payload

    @staticmethod
    def _payload_len(payload) -> int:
        return getattr(payload, "length", None) or len(payload)

    def send_many(self, msgs: List[Tuple[object, object]]) -> int:
        """Send ``[(dest, payload), ...]``; payloads are ``bytes`` or
        :class:`~repro.live.bufpool.PooledSlice`.

        Returns how many datagrams were *disposed of* — accepted by the
        kernel or charged to a gone peer, exactly matching the scalar
        :meth:`send` contract per message.  Stops at the first
        would-block so the caller keeps the tail queued; the remainder
        is untouched and retries on the next doorbell pass.
        """
        if self.sock is None:
            raise TransportError(f"{self.kind} transport is closed")
        if self.connected_peer is not None:
            # pinned pairwise socket: every dest is the peer by
            # construction, and sendmsg wants msg_name NULL
            return self.send_many_to(self.connected_peer,
                                     [payload for _dest, payload in msgs])
        batch = self._tx_batch()
        if batch is None:
            accepted = 0
            for dest, payload in msgs:
                if not self.send(dest, self._sendable(payload)):
                    break
                accepted += 1
            self._update_tx_hint(accepted, len(msgs))
            return accepted
        accepted = 0
        fd = self.sock.fileno()
        while accepted < len(msgs):
            window = [(self._packed_dest(dest), payload)
                      for dest, payload in msgs[accepted:accepted + batch.max_batch]]
            self.tx_syscalls += 1
            try:
                sent = batch.sendmmsg(fd, window)
            except OSError as exc:
                if exc.errno in _WOULD_BLOCK:
                    self.tx_would_block += 1
                    break
                if exc.errno in _PEER_GONE:
                    # head datagram charged-and-dropped, like scalar send
                    self.tx_peer_gone += 1
                    accepted += 1
                    continue
                raise
            if sent == 0:
                break
            for _dest, payload in window[:sent]:
                self.tx_bytes += self._payload_len(payload)
            self.tx_datagrams += sent
            accepted += sent
            if sent < len(window):
                # a partial acceptance means the next send would block;
                # treat it as backpressure instead of burning a syscall
                # (and a full ctypes refill) to hear EAGAIN firsthand
                break
        self._update_tx_hint(accepted, len(msgs))
        return accepted

    def send_many_to(self, dest, payloads: List) -> int:
        """:meth:`send_many` specialized to one destination.

        U-Net channels are point-to-point, so a burst on one channel is
        the common case — packing the sockaddr once and skipping the
        per-message ``(dest, payload)`` pairing is measurably cheaper
        in the hot loop.  Same contract as :meth:`send_many`.
        """
        if self.sock is None:
            raise TransportError(f"{self.kind} transport is closed")
        batch = self._tx_batch()
        total = len(payloads)
        if batch is None:
            accepted = 0
            for payload in payloads:
                if not self.send(dest, self._sendable(payload)):
                    break
                accepted += 1
            self._update_tx_hint(accepted, total)
            return accepted
        accepted = 0
        fd = self.sock.fileno()
        # a pinned socket sends with msg_name NULL (kernel knows the peer)
        name = None if self.connected_peer is not None \
            else self._packed_dest(dest)
        while accepted < total:
            window = payloads[accepted:accepted + batch.max_batch] \
                if accepted or total > batch.max_batch else payloads
            self.tx_syscalls += 1
            try:
                sent = batch.sendmmsg_same(fd, name, window)
            except OSError as exc:
                if exc.errno in _WOULD_BLOCK:
                    self.tx_would_block += 1
                    break
                if exc.errno in _PEER_GONE:
                    self.tx_peer_gone += 1
                    accepted += 1
                    continue
                raise
            if sent == 0:
                break
            for payload in window[:sent]:
                self.tx_bytes += self._payload_len(payload)
            self.tx_datagrams += sent
            accepted += sent
            if sent < len(window):
                break  # partial acceptance == backpressure (see send_many)
        self._update_tx_hint(accepted, total)
        return accepted

    def _update_tx_hint(self, accepted: int, attempted: int) -> None:
        if accepted >= attempted:
            # clean batch: probe upward, but additively — doubling past
            # the kernel's steady-state acceptance just composes frames
            # that bounce and get recomposed next pass
            self.tx_hint = min(RECV_BATCH,
                               max(self.tx_hint, attempted) + 4)
        else:
            self.tx_hint = max(1, accepted + 1)

    def recv_batch_into(self, pool, max_datagrams: int = RECV_BATCH) -> List:
        """Drain datagrams directly into ``pool`` slices (zero-copy RX).

        Returns the filled :class:`~repro.live.bufpool.PooledSlice`
        objects; the caller owns them and must ``pool.free`` each after
        delivery.  Pool exhaustion bounds the drain — undrained
        datagrams stay in the kernel buffer (backpressure, counted by
        the pool's ``exhausted_total``), never silent loss.  A datagram
        larger than its slot is dropped and charged to ``rx_truncated``.
        """
        if self.sock is None:
            return []
        batch = self._rx_batch()
        out: List = []
        if batch is None:
            for _ in range(max_datagrams):
                slice_ = pool.try_alloc()
                if slice_ is None:
                    break
                self.rx_syscalls += 1
                try:
                    nbytes, _anc, flags, _addr = self.sock.recvmsg_into(
                        [slice_.view])
                except (BlockingIOError, InterruptedError):
                    pool.free(slice_)
                    break
                except OSError as exc:
                    pool.free(slice_)
                    if exc.errno in _WOULD_BLOCK:
                        break
                    if exc.errno in _PEER_GONE:
                        continue  # queued ICMP refusal; keep draining
                    raise
                if flags & _MSG_TRUNC:
                    self.rx_truncated += 1
                    pool.free(slice_)
                    continue
                slice_.length = nbytes
                self.rx_datagrams += 1
                self.rx_bytes += nbytes
                out.append(slice_)
            return out
        want = min(max_datagrams, batch.max_batch, pool.free_count,
                   self.rx_hint)
        if want == 0:
            if pool.free_count == 0:
                pool.exhausted_total += 1
            return out
        try_alloc = pool.try_alloc  # want <= free_count: cannot fail
        slices = [try_alloc() for _ in range(want)]
        self.rx_syscalls += 1
        try:
            results = batch.recvmmsg(self.sock.fileno(), slices)
        except OSError as exc:
            for slice_ in slices:
                pool.free(slice_)
            if exc.errno in _PEER_GONE:
                return out
            raise
        for slice_ in slices[len(results):]:
            pool.free(slice_)
        if len(results) >= want:
            self.rx_hint = min(RECV_BATCH, want * 2)
        else:
            # received + a small margin: every slice armed beyond what
            # actually arrives is a wasted alloc/free round trip
            self.rx_hint = max(4, len(results) + 4)
        for slice_, (nbytes, truncated) in zip(slices, results):
            if truncated:
                self.rx_truncated += 1
                pool.free(slice_)
                continue
            slice_.length = nbytes
            self.rx_datagrams += 1
            self.rx_bytes += nbytes
            out.append(slice_)
        return out

    # -- accounting --------------------------------------------------------
    @property
    def syscalls_per_message(self) -> float:
        """Kernel crossings per datagram moved — the paper's headline
        ratio.  1.0 is the scalar baseline; batching drives it toward
        1/batch-size."""
        messages = self.tx_datagrams + self.rx_datagrams
        if messages == 0:
            return 0.0
        return (self.tx_syscalls + self.rx_syscalls) / messages

    def syscall_stats(self) -> dict:
        return {
            "tx_syscalls": self.tx_syscalls,
            "rx_syscalls": self.rx_syscalls,
            "tx_datagrams": self.tx_datagrams,
            "rx_datagrams": self.rx_datagrams,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "tx_would_block": self.tx_would_block,
            "tx_peer_gone": self.tx_peer_gone,
            "rx_truncated": self.rx_truncated,
            "syscalls_per_message": self.syscalls_per_message,
        }

    def _configure(self, sock: socket.socket,
                   sndbuf: Optional[int], rcvbuf: Optional[int]) -> None:
        sock.setblocking(False)
        if sndbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
        if rcvbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)


class UnixDgramTransport(LiveTransport):
    """AF_UNIX SOCK_DGRAM: the same-host, SHM-like backend."""

    kind = "unix"
    family = getattr(socket, "AF_UNIX", None)

    def __init__(self, name: str = "node", sndbuf: Optional[int] = None,
                 rcvbuf: Optional[int] = None,
                 use_mmsg: Optional[bool] = None) -> None:
        super().__init__(use_mmsg=use_mmsg)
        if not hasattr(socket, "AF_UNIX"):
            raise TransportError("AF_UNIX is not available on this platform")
        self._dir = tempfile.mkdtemp(prefix="unet-live-")
        self.path = os.path.join(self._dir, f"{name}.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        try:
            sock.bind(self.path)
            self._configure(sock, sndbuf, rcvbuf)
        except OSError:
            sock.close()
            raise
        self.sock = sock

    @property
    def address(self) -> str:
        return self.path

    def close(self) -> None:
        super().close()
        try:
            os.unlink(self.path)
            os.rmdir(self._dir)
        except OSError:
            pass


class UdpLoopbackTransport(LiveTransport):
    """UDP on 127.0.0.1: the cross-process backend."""

    kind = "udp"
    family = socket.AF_INET

    def __init__(self, name: str = "node", sndbuf: Optional[int] = None,
                 rcvbuf: Optional[int] = None,
                 use_mmsg: Optional[bool] = None) -> None:
        super().__init__(use_mmsg=use_mmsg)
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.bind(("127.0.0.1", 0))
            self._configure(sock, sndbuf, rcvbuf)
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot bind UDP loopback: {exc}") from exc
        self.sock = sock

    @property
    def address(self) -> Tuple[str, int]:
        return self.sock.getsockname()


TRANSPORT_KINDS = ("unix", "udp")


def transport_available(kind: str) -> bool:
    """Can a ``kind`` transport be created on this machine?"""
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):
            return False
    elif kind != "udp":
        return False
    try:
        make_transport(kind, name="probe").close()
        return True
    except (TransportError, OSError):
        return False


def available_transport_kinds() -> Tuple[str, ...]:
    return tuple(k for k in TRANSPORT_KINDS if transport_available(k))


def make_transport(kind: str, name: str = "node", **kwargs) -> LiveTransport:
    if kind == "unix":
        return UnixDgramTransport(name=name, **kwargs)
    if kind == "udp":
        return UdpLoopbackTransport(name=name, **kwargs)
    raise TransportError(f"unknown transport kind {kind!r}; choose from {TRANSPORT_KINDS}")
