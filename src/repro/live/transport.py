"""Real OS datagram transports under the live U-Net/OS substrate.

Two backends, mirroring the paper's two NIC mappings in spirit:

* :class:`UnixDgramTransport` — ``AF_UNIX``/``SOCK_DGRAM``.  Same-host
  only, kernel-buffer "SHM-like" path: no checksums, no protocol
  headers, message boundaries preserved.  The closest a portable OS
  primitive gets to the PCA-200's memory-mapped FIFOs.
* :class:`UdpLoopbackTransport` — UDP on ``127.0.0.1``.  Crosses the
  full IP stack the way U-Net/FE's frames crossed the DC21140, and
  works between unrelated processes.

One transport is one node's "NIC": a single bound non-blocking socket.
All sends and receives are non-blocking; a send that would block
(receiver's kernel buffer full — the OS analogue of a full receive
ring) reports ``False`` so the backend can keep the descriptor queued
and retry, which is real backpressure rather than silent loss.  Every
syscall is counted: syscalls-per-message is one of the live benchmark's
headline numbers, exactly as the paper counted traps and doorbells.
"""

from __future__ import annotations

import errno
import os
import socket
import tempfile
from typing import List, Optional, Tuple

from ..core.errors import UNetError

__all__ = [
    "TransportError",
    "LiveTransport",
    "UnixDgramTransport",
    "UdpLoopbackTransport",
    "TRANSPORT_KINDS",
    "transport_available",
    "available_transport_kinds",
    "make_transport",
]

#: datagrams drained from the socket per service-loop pass; bounding the
#: batch keeps one busy peer from starving the doorbell loop (and models
#: the bounded work a real interrupt handler does per invocation)
RECV_BATCH = 64

#: errnos that mean "the receiver's kernel buffer is full right now"
_WOULD_BLOCK = {errno.EAGAIN, getattr(errno, "EWOULDBLOCK", errno.EAGAIN), errno.ENOBUFS}

#: errnos that mean "the peer endpoint is gone" (teardown races)
_PEER_GONE = {errno.ECONNREFUSED, errno.ENOENT, errno.ECONNRESET}


class TransportError(UNetError):
    """A live transport could not be created or used."""


class LiveTransport:
    """One node's datagram socket plus its syscall accounting."""

    kind = "abstract"

    def __init__(self) -> None:
        self.sock: Optional[socket.socket] = None
        self.tx_syscalls = 0
        self.rx_syscalls = 0
        self.tx_datagrams = 0
        self.rx_datagrams = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: sends refused by a full kernel buffer (backpressure events)
        self.tx_would_block = 0
        #: sends to a peer that no longer exists (teardown races)
        self.tx_peer_gone = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self):
        """The opaque, sendable address peers use to reach this node."""
        raise NotImplementedError

    def close(self) -> None:
        if self.sock is not None:
            self.sock.close()
            self.sock = None

    def __enter__(self) -> "LiveTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data path ---------------------------------------------------------
    def send(self, dest, payload: bytes) -> bool:
        """Non-blocking datagram send.

        Returns True when the kernel accepted the datagram (or the peer
        is gone, in which case the datagram is charged as transmitted
        and dropped exactly as a NIC drops frames for a dead endpoint).
        Returns False when the send would block — the caller keeps the
        descriptor queued and retries on its next doorbell pass.
        """
        if self.sock is None:
            raise TransportError(f"{self.kind} transport is closed")
        self.tx_syscalls += 1
        try:
            self.sock.sendto(payload, dest)
        except (BlockingIOError, InterruptedError):
            self.tx_would_block += 1
            return False
        except OSError as exc:
            if exc.errno in _WOULD_BLOCK:
                self.tx_would_block += 1
                return False
            if exc.errno in _PEER_GONE:
                self.tx_peer_gone += 1
                return True
            raise
        self.tx_datagrams += 1
        self.tx_bytes += len(payload)
        return True

    def recv_batch(self, max_datagrams: int = RECV_BATCH) -> List[bytes]:
        """Drain up to ``max_datagrams`` datagrams without blocking.

        A partial drain is normal: the remainder stays in the kernel
        buffer for the next pass, so a slow consumer backpressures the
        socket instead of losing data.
        """
        if self.sock is None:
            return []
        out: List[bytes] = []
        for _ in range(max_datagrams):
            self.rx_syscalls += 1
            try:
                raw, _addr = self.sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                if exc.errno in _WOULD_BLOCK:
                    break
                if exc.errno in _PEER_GONE:
                    # queued ICMP refusal from a torn-down UDP peer;
                    # irrelevant to *our* ingress, keep draining
                    continue
                raise
            out.append(raw)
            self.rx_datagrams += 1
            self.rx_bytes += len(raw)
        return out

    # -- accounting --------------------------------------------------------
    def syscall_stats(self) -> dict:
        return {
            "tx_syscalls": self.tx_syscalls,
            "rx_syscalls": self.rx_syscalls,
            "tx_datagrams": self.tx_datagrams,
            "rx_datagrams": self.rx_datagrams,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "tx_would_block": self.tx_would_block,
            "tx_peer_gone": self.tx_peer_gone,
        }

    def _configure(self, sock: socket.socket,
                   sndbuf: Optional[int], rcvbuf: Optional[int]) -> None:
        sock.setblocking(False)
        if sndbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, sndbuf)
        if rcvbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)


class UnixDgramTransport(LiveTransport):
    """AF_UNIX SOCK_DGRAM: the same-host, SHM-like backend."""

    kind = "unix"

    def __init__(self, name: str = "node", sndbuf: Optional[int] = None,
                 rcvbuf: Optional[int] = None) -> None:
        super().__init__()
        if not hasattr(socket, "AF_UNIX"):
            raise TransportError("AF_UNIX is not available on this platform")
        self._dir = tempfile.mkdtemp(prefix="unet-live-")
        self.path = os.path.join(self._dir, f"{name}.sock")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        try:
            sock.bind(self.path)
            self._configure(sock, sndbuf, rcvbuf)
        except OSError:
            sock.close()
            raise
        self.sock = sock

    @property
    def address(self) -> str:
        return self.path

    def close(self) -> None:
        super().close()
        try:
            os.unlink(self.path)
            os.rmdir(self._dir)
        except OSError:
            pass


class UdpLoopbackTransport(LiveTransport):
    """UDP on 127.0.0.1: the cross-process backend."""

    kind = "udp"

    def __init__(self, name: str = "node", sndbuf: Optional[int] = None,
                 rcvbuf: Optional[int] = None) -> None:
        super().__init__()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.bind(("127.0.0.1", 0))
            self._configure(sock, sndbuf, rcvbuf)
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot bind UDP loopback: {exc}") from exc
        self.sock = sock

    @property
    def address(self) -> Tuple[str, int]:
        return self.sock.getsockname()


TRANSPORT_KINDS = ("unix", "udp")


def transport_available(kind: str) -> bool:
    """Can a ``kind`` transport be created on this machine?"""
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):
            return False
    elif kind != "udp":
        return False
    try:
        make_transport(kind, name="probe").close()
        return True
    except (TransportError, OSError):
        return False


def available_transport_kinds() -> Tuple[str, ...]:
    return tuple(k for k in TRANSPORT_KINDS if transport_available(k))


def make_transport(kind: str, name: str = "node", **kwargs) -> LiveTransport:
    if kind == "unix":
        return UnixDgramTransport(name=name, **kwargs)
    if kind == "udp":
        return UdpLoopbackTransport(name=name, **kwargs)
    raise TransportError(f"unknown transport kind {kind!r}; choose from {TRANSPORT_KINDS}")
