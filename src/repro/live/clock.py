"""The wall-clock seam — the ONE module allowed to read real time.

The determinism lint (``tests/test_determinism.py``) bans ambient
``time``/``random`` calls across ``src/repro`` and allowlists exactly
this file: every other live module receives a
:class:`~repro.core.clock.Clock` instance and cannot tell (or care)
whether it is wall time or a test's :class:`~repro.core.clock.ManualClock`.
Keep any new wall-time need behind this seam.
"""

from __future__ import annotations

import time

from ..core.clock import Clock

__all__ = ["WallClock"]

_US_PER_S = 1_000_000.0


class WallClock(Clock):
    """Monotonic wall time, in microseconds."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now_us(self) -> float:
        return (time.monotonic() - self._origin) * _US_PER_S

    def sleep_us(self, us: float) -> None:
        if us > 0:
            time.sleep(us / _US_PER_S)
