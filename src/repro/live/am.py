"""Active Messages over U-Net/OS: the wall-clock state machine.

:class:`LiveAm` is the synchronous twin of the simulated
:class:`~repro.am.am.AmEndpoint`.  Same wire format
(:mod:`repro.am.protocol`), same go-back-N + cumulative-ack
reliability, same opt-in adaptive RTO / AIMD / fast-retransmit and
receiver-credit machinery, the same crash-recovery extension
(incarnation epochs, the HELLO reconnect handshake, the ack-starvation
liveness detector), the same loss-resilient transport extensions
(SACK scoreboard + bounded reorder buffer, ECN mark-echo backoff), and
the same observable-event vocabulary
(``grant``, ``credit_stall``, ``tx``, ``rexmit``, ``timeout``,
``dispatch``, ``reply``, ``dup_rx``, ``ecn_mark``, ``ecn_echo``,
``ecn_backoff``, plus the recovery kinds
``reconnect``, ``reconnected``, ``stale_epoch``, ``abandon``,
``peer_dead``, ``peer_alive``, ``peer_restart``) — which is what lets
one :class:`~repro.conformance.observe.ObservationProbe` check the same
online invariants against either implementation.

The difference is purely structural: where the simulated endpoint
blocks generator processes on events, LiveAm is *polled*.
``start_request`` returns ``None`` instead of blocking when the window
or credit gate refuses admission; :meth:`service` does one pass of
ingress dispatch, delayed-ack deadlines, retransmission timers, and
credit refresh against the injected :class:`~repro.core.clock.Clock`.
Spec-critical decisions (the credit gate, the cumulative-ack horizon,
the epoch fence, the at-most-once reconnect split) are delegated to
:mod:`repro.am.spec` — shared with the simulated endpoint — through the
``_credit_blocked`` / ``_acked_seqs`` / ``_epoch_stale`` /
``_reconnect_plan`` seams the conformance bug library patches.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..am.am import AmConfig, AmError
from ..am.protocol import (
    CREDIT_SIZE,
    EPOCH_MOD,
    EPOCH_SIZE,
    HEADER_SIZE,
    SACK_SIZE,
    SEQ_MOD,
    TYPE_ACK,
    TYPE_HELLO,
    TYPE_HELLO_ACK,
    TYPE_REPLY,
    TYPE_REQUEST,
    Packet,
    decode,
    encode,
    seq_add,
    seq_lt,
)
from ..am.spec import (
    ack_epoch_applies,
    credit_gate_blocks,
    cumulative_acked,
    ecn_backoff_allowed,
    effective_epoch,
    epoch_advances,
    epoch_is_stale,
    reconnect_plan,
    reorder_admit,
    sack_block,
    sack_retransmit_plan,
)
from ..core.errors import EndpointError, PeerUnavailableError, StaleEpochError
from .backend import LiveUserEndpoint

__all__ = ["LiveAm", "LiveRequestContext"]

#: bounded busy-retry of a transport-backpressured send before giving up
_SEND_RETRIES = 400
_SEND_RETRY_SLEEP_US = 25.0


class _LivePeer:
    """Per-connection reliability state (no simulator events)."""

    __slots__ = (
        "node", "channel", "next_seq", "unacked", "expected_seq",
        "ack_deadline", "deliveries_since_ack", "last_progress",
        "retransmissions", "duplicates", "ooo_held", "stalled",
        # adaptive reliability
        "srtt", "rttvar", "rto_us", "backoff", "sent_at", "rexmit_seqs",
        "cwnd", "last_ack", "dup_acks", "fast_done_seq", "timeouts",
        "fast_retransmits", "rtt_samples",
        # selective acknowledgment
        "sacked", "sack_rexmitted",
        # ECN-style congestion signaling
        "pending_echoes", "ecn_round_end", "ecn_marks", "ecn_echoes",
        "ecn_backoffs",
        # receiver-credit backpressure
        "remote_credit", "credit_stalls", "last_advertised",
        # crash recovery
        "remote_epoch", "alive", "starved_timeouts", "reconnecting",
        "next_hello_at", "abandoned", "last_heard",
    )

    def __init__(self, node: int, channel: int, window: int, now: float) -> None:
        self.node = node
        self.channel = channel
        self.next_seq = 0
        self.unacked: Dict[int, Packet] = {}
        self.expected_seq = 0
        #: wall deadline of the pending delayed ack (None = none pending)
        self.ack_deadline: Optional[float] = None
        self.deliveries_since_ack = 0
        self.last_progress = now
        self.retransmissions = 0
        self.duplicates = 0
        self.ooo_held: Dict[int, Packet] = {}
        #: in a credit-stall episode (count one stall per episode, not
        #: one per poll of a gated sender)
        self.stalled = False
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto_us = 0.0
        self.backoff = 0
        self.sent_at: Dict[int, float] = {}
        self.rexmit_seqs = set()
        self.cwnd = float(window)
        self.last_ack: Optional[int] = None
        self.dup_acks = 0
        self.fast_done_seq: Optional[int] = None
        self.timeouts = 0
        self.fast_retransmits = 0
        self.rtt_samples = 0
        #: outstanding seqs a SACK block reported the receiver holds
        self.sacked = set()
        #: holes already selectively retransmitted this round
        self.sack_rexmitted = set()
        #: congestion marks accepted but not yet echoed to the peer
        self.pending_echoes = 0
        #: window edge recorded at the last ECN backoff (one per round)
        self.ecn_round_end: Optional[int] = None
        self.ecn_marks = 0
        self.ecn_echoes = 0
        self.ecn_backoffs = 0
        self.remote_credit: Optional[int] = None
        self.credit_stalls = 0
        self.last_advertised: Optional[int] = None
        #: last incarnation epoch seen from (or HELLO'd by) the peer
        self.remote_epoch = 0
        #: any valid packet from the peer (usually its HELLO) revives it
        self.alive = True
        #: consecutive retransmission timeouts without cumulative-ack progress
        self.starved_timeouts = 0
        #: True between restart() and the peer's HELLO-ACK; new sends
        #: are refused admission until the channel is re-established
        self.reconnecting = False
        #: wall deadline of the next HELLO retransmit (reconnecting only)
        self.next_hello_at = now
        #: sends abandoned under the at-most-once contract
        self.abandoned = 0
        self.last_heard = now


class LiveRequestContext:
    """Handed to request handlers; ``reply`` sends synchronously."""

    __slots__ = ("am", "src_node", "args", "data", "_req_seq", "replied")

    def __init__(self, am: "LiveAm", src_node: int, args, data: bytes, req_seq: int) -> None:
        self.am = am
        self.src_node = src_node
        self.args = args
        self.data = data
        self._req_seq = req_seq
        self.replied = False

    def reply(self, args=(), data: bytes = b"") -> None:
        self.replied = True
        self.am._send_reply(self.src_node, self._req_seq, args, data)


#: live handler signature: fn(ctx) -> None (synchronous)
Handler = Callable[[LiveRequestContext], None]


class LiveAm:
    """An Active Messages endpoint bound to one live U-Net endpoint."""

    def __init__(self, node_id: int, user: LiveUserEndpoint,
                 config: Optional[AmConfig] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.node = node_id
        self.user = user
        self.clock = user.backend.clock
        self.config = config or AmConfig()
        self._rng = rng or random.Random(0x5EED ^ node_id)
        self._peers_by_node: Dict[int, _LivePeer] = {}
        self._peers_by_channel: Dict[int, _LivePeer] = {}
        self._handlers: Dict[int, Handler] = {}
        #: completed rpc replies keyed by (peer node, request seq)
        self.rpc_results: Dict[Tuple[int, int], Tuple[tuple, bytes]] = {}
        self._rpc_outstanding: set = set()
        self.requests_sent = 0
        self.replies_sent = 0
        self.acks_sent = 0
        self.requests_delivered = 0
        #: same hook contract as the simulated endpoint:
        #: ``observer(kind, fields)`` with kinds grant, credit_stall, tx,
        #: rexmit, timeout, dispatch, reply, dup_rx
        self.observer: Optional[Callable[[str, Dict], None]] = None
        self._running = True
        self._next_credit_refresh = (
            self.clock.now_us() + self.config.credit_update_us)
        #: current incarnation (stamped into every packet when the
        #: recovery extension is on; restarts increment it)
        self.epoch = self.config.epoch
        self._crashed = False
        self.restarts = 0
        #: sends abandoned under the at-most-once contract, all peers
        self.abandoned_sends = 0
        #: rpc keys whose request was abandoned; polled out as
        #: PeerUnavailableError by rpc_result
        self._rpc_failed: Dict[Tuple[int, int], str] = {}
        self._next_heartbeat = (
            self.clock.now_us() + self.config.heartbeat_us
            if self.config.recovery and self.config.heartbeat_us > 0 else None)
        #: optional :class:`~repro.core.health.HealthMonitor` (manual
        #: mode); same verdict feed as the simulated AM endpoint
        self.health = None

    # ------------------------------------------------------------- set-up
    @property
    def max_data(self) -> int:
        overhead = (HEADER_SIZE
                    + (CREDIT_SIZE if self.config.credit_flow else 0)
                    + (EPOCH_SIZE if self.config.recovery else 0)
                    + (SACK_SIZE if self.config.ack_mode == "sack" else 0))
        return self.user.backend.max_pdu - overhead

    def connect_peer(self, node_id: int, channel_id: int) -> None:
        if node_id in self._peers_by_node:
            raise AmError(f"peer {node_id} already connected")
        peer = _LivePeer(node_id, channel_id, self.config.window,
                         self.clock.now_us())
        self._peers_by_node[node_id] = peer
        self._peers_by_channel[channel_id] = peer

    def register_handler(self, handler_id: int, fn: Handler) -> None:
        if not 0 <= handler_id <= 0xFF:
            raise AmError("handler id must fit one byte")
        self._handlers[handler_id] = fn

    def shutdown(self) -> None:
        self._running = False

    def attach_health(self, monitor) -> None:
        """Feed liveness and incarnation verdicts into a (manual-mode)
        :class:`~repro.core.health.HealthMonitor` — the same contract
        :meth:`repro.am.am.AmEndpoint.attach_health` provides on the
        simulated substrates."""
        self.health = monitor
        monitor.watch(self.user.endpoint)

    # ------------------------------------------------------ crash recovery
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """The process dies abruptly: all AM state is gone.

        The live endpoint object survives (so the test/soak harness can
        restart it) but nothing is sent, processed, or acknowledged
        until :meth:`restart`; ingress is consumed and discarded, as the
        kernel does for a process that is no longer reading.
        """
        if not self.config.recovery:
            raise AmError("crash()/restart() require AmConfig.recovery")
        if self._crashed:
            return
        self._crashed = True
        for peer in self._peers_by_node.values():
            peer.unacked.clear()
            peer.sent_at.clear()
            peer.rexmit_seqs.clear()
            peer.ooo_held.clear()
        for key in list(self._rpc_outstanding):
            self._rpc_outstanding.discard(key)
            self._rpc_failed[key] = (
                f"incarnation {self.epoch} of node {self.node} crashed")

    def restart(self) -> int:
        """Come back as a fresh incarnation: epoch+1, empty state.

        Per-peer go-back-N state is rebuilt from scratch (a restarted
        process remembers nothing) and a HELLO handshake announces the
        new epoch on each channel; sends attempted before the peer's
        HELLO-ACK arrives are refused admission (``start_request``
        returns None).  Returns the new epoch.
        """
        if not self.config.recovery:
            raise AmError("crash()/restart() require AmConfig.recovery")
        self.epoch = (self.epoch + 1) % EPOCH_MOD
        self.restarts += 1
        self._crashed = False
        if self.health is not None:
            # local restart event: a quarantine latch earned by the dead
            # incarnation converts back into a live evaluation
            self.health.note_epoch_advance(self.user.endpoint)
        now = self.clock.now_us()
        for node, old in list(self._peers_by_node.items()):
            fresh = _LivePeer(old.node, old.channel, self.config.window, now)
            fresh.reconnecting = True
            self._peers_by_node[node] = fresh
            self._peers_by_channel[old.channel] = fresh
            self._observe("reconnect", fresh, epoch=self.epoch)
            self._send_hello(fresh, TYPE_HELLO)
            fresh.next_hello_at = now + self.config.hello_retry_us
        return self.epoch

    def _send_hello(self, peer: _LivePeer, ptype: int) -> None:
        # _transmit stamps the epoch pair and the receive horizon (ack)
        self._transmit(peer, Packet(type=ptype), track=False)

    def _abandon(self, peer: _LivePeer, seqs, reason: str) -> None:
        """Give the listed in-flight sends their ``abandoned`` fate."""
        for seq in list(seqs):
            peer.unacked.pop(seq, None)
            peer.sent_at.pop(seq, None)
            peer.rexmit_seqs.discard(seq)
            peer.abandoned += 1
            self.abandoned_sends += 1
            self.user.endpoint.note_drop("peer_dead_drops")
            self._observe("abandon", peer, seq=seq, reason=reason)
            key = (peer.node, seq)
            if key in self._rpc_outstanding:
                self._rpc_outstanding.discard(key)
                self._rpc_failed[key] = (
                    f"send seq {seq} to node {peer.node} abandoned: {reason}")

    def _declare_peer_dead(self, peer: _LivePeer, reason: str) -> None:
        if not peer.alive:
            return
        peer.alive = False
        self._observe("peer_dead", peer, reason=reason)
        self._abandon(peer, list(peer.unacked), reason)
        if self.health is not None:
            self.health.report_peer_dead(self.user.endpoint, peer.node)

    def _mark_alive(self, peer: _LivePeer) -> None:
        peer.last_heard = self.clock.now_us()
        peer.starved_timeouts = 0
        if not peer.alive:
            peer.alive = True
            self._observe("peer_alive", peer)
            if self.health is not None:
                self.health.report_peer_alive(self.user.endpoint, peer.node)

    def _epoch_stale(self, claimed: Optional[int], current: int) -> bool:
        """Seam for the epoch fence; healthy = :func:`epoch_is_stale`."""
        return epoch_is_stale(claimed, current)

    def _reconnect_plan(self, peer: _LivePeer, horizon: int, restarted: bool):
        """Seam for the at-most-once reconnect split; healthy =
        :func:`reconnect_plan`.  Whatever lands in neither list stays in
        ``unacked`` and is replayed."""
        return reconnect_plan(peer.unacked, horizon, restarted)

    def _peer_restarted(self, peer: _LivePeer, new_epoch: int,
                        horizon: int) -> None:
        """The peer came back as incarnation ``new_epoch``: apply the
        reconnect plan to our in-flight sends and rebuild both
        directions of the channel."""
        completed, abandoned = self._reconnect_plan(peer, horizon, True)
        for seq in completed:
            peer.unacked.pop(seq, None)
            peer.sent_at.pop(seq, None)
            peer.rexmit_seqs.discard(seq)
        self._abandon(peer, abandoned,
                      f"peer restarted as epoch {new_epoch}")
        remaining = list(peer.unacked)
        peer.next_seq = seq_add(remaining[-1], 1) if remaining else 0
        peer.expected_seq = 0
        peer.ooo_held.clear()
        peer.ack_deadline = None
        peer.deliveries_since_ack = 0
        peer.last_ack = None
        peer.dup_acks = 0
        peer.fast_done_seq = None
        peer.backoff = 0
        peer.remote_credit = None
        peer.remote_epoch = new_epoch
        if self.health is not None:
            # a fresh incarnation is talking: re-evaluate any latch the
            # dead one earned (the watchdog re-latches if still bad)
            self.health.note_epoch_advance(self.user.endpoint)
        self._observe("peer_restart", peer, epoch=new_epoch, horizon=horizon)

    def _check_incarnation(self) -> None:
        if self._crashed:
            raise StaleEpochError(
                f"node {self.node} epoch {self.epoch} has crashed; "
                f"restart() before sending")

    # ------------------------------------------------------- introspection
    def _observe(self, kind: str, peer: _LivePeer, **fields) -> None:
        if self.observer is not None:
            fields["node"] = self.node
            fields["peer"] = peer.node
            fields["t"] = self.clock.now_us()
            self.observer(kind, fields)

    def snapshot(self) -> Dict[int, Dict]:
        """Same introspection shape as the simulated endpoint."""
        out: Dict[int, Dict] = {}
        for node, p in self._peers_by_node.items():
            out[node] = {
                "next_seq": p.next_seq,
                "expected_seq": p.expected_seq,
                "unacked": len(p.unacked),
                "window": self._effective_window(p),
                "cwnd": p.cwnd,
                "remote_credit": p.remote_credit,
                "last_advertised": p.last_advertised,
                "retransmissions": p.retransmissions,
                "timeouts": p.timeouts,
                "fast_retransmits": p.fast_retransmits,
                "duplicates": p.duplicates,
                "credit_stalls": p.credit_stalls,
                "rtt_samples": p.rtt_samples,
                "sacked": len(p.sacked),
                "ooo_held": len(p.ooo_held),
                "ecn_marks": p.ecn_marks,
                "ecn_echoes": p.ecn_echoes,
                "ecn_backoffs": p.ecn_backoffs,
                "srtt_us": p.srtt,
                "epoch": self.epoch,
                "remote_epoch": p.remote_epoch,
                "alive": p.alive,
                "reconnecting": p.reconnecting,
                "abandoned": p.abandoned,
            }
        return out

    @property
    def credit_stalls(self) -> int:
        return sum(p.credit_stalls for p in self._peers_by_node.values())

    @property
    def idle(self) -> bool:
        """Nothing in flight: every peer fully acknowledged."""
        return all(not p.unacked for p in self._peers_by_node.values())

    # ------------------------------------------------------------- sending
    def start_request(self, dest: int, handler: int, args=(),
                      data: bytes = b"") -> Optional[int]:
        """Try to admit and transmit one request.

        Returns the assigned sequence number, or None when the window
        or credit gate refuses admission — the caller services the
        world and retries (the polled analogue of blocking).
        """
        if self.config.recovery:
            self._check_incarnation()
        peer = self._peer(dest)
        if len(data) > self.max_data:
            raise AmError(f"data block of {len(data)} bytes exceeds "
                          f"packet maximum {self.max_data}")
        if self.config.recovery:
            if not peer.alive:
                raise PeerUnavailableError(
                    f"node {peer.node} is dead (liveness detector)",
                    peer=peer.node)
            if peer.reconnecting:
                return None  # queue behind the HELLO handshake
        if not self._admit(peer):
            return None
        packet = Packet(type=TYPE_REQUEST, handler=handler, seq=peer.next_seq,
                        args=tuple(args), data=data)
        peer.next_seq = seq_add(peer.next_seq, 1)
        self.requests_sent += 1
        self._transmit(peer, packet, track=True)
        return packet.seq

    def start_rpc(self, dest: int, handler: int, args=(),
                  data: bytes = b"") -> Optional[int]:
        """Like :meth:`start_request`, but registers for the reply.

        Poll :meth:`rpc_result` with the returned seq for completion.
        """
        seq = self.start_request(dest, handler, args=args, data=data)
        if seq is not None:
            self._rpc_outstanding.add((dest, seq))
        return seq

    def rpc_result(self, dest: int, seq: int) -> Optional[Tuple[tuple, bytes]]:
        """The reply for request ``seq``, consumed, or None if pending.

        Raises :class:`PeerUnavailableError` when the request was
        abandoned (peer declared dead or restarted) — the polled
        analogue of the simulated endpoint failing the rpc waiter.
        """
        reason = self._rpc_failed.pop((dest, seq), None)
        if reason is not None:
            raise PeerUnavailableError(reason, peer=dest, seq=seq)
        return self.rpc_results.pop((dest, seq), None)

    def request(self, dest: int, handler: int, args=(), data: bytes = b"",
                pump: Optional[Callable[[], None]] = None,
                limit_us: float = 5_000_000.0) -> int:
        """Blocking convenience: poll until the request is admitted."""
        deadline = self.clock.now_us() + limit_us
        while True:
            seq = self.start_request(dest, handler, args=args, data=data)
            if seq is not None:
                return seq
            if self.clock.now_us() >= deadline:
                raise AmError(f"request to node {dest} not admitted "
                              f"within {limit_us:.0f}us")
            self._pump(pump)

    def rpc(self, dest: int, handler: int, args=(), data: bytes = b"",
            pump: Optional[Callable[[], None]] = None,
            limit_us: float = 5_000_000.0) -> Tuple[tuple, bytes]:
        """Blocking convenience: request + wait for the matching reply."""
        deadline = self.clock.now_us() + limit_us
        while True:
            seq = self.start_rpc(dest, handler, args=args, data=data)
            if seq is not None:
                break
            if self.clock.now_us() >= deadline:
                raise AmError(f"rpc to node {dest} not admitted "
                              f"within {limit_us:.0f}us")
            self._pump(pump)
        while True:
            result = self.rpc_result(dest, seq)
            if result is not None:
                return result
            if self.clock.now_us() >= deadline:
                raise AmError(f"rpc {seq} to node {dest} got no reply "
                              f"within {limit_us:.0f}us")
            self._pump(pump)

    def _pump(self, pump: Optional[Callable[[], None]]) -> None:
        if pump is not None:
            pump()
        else:
            self.user.backend.service()
            self.service()

    # -- admission (the gates the conformance probe watches) ---------------
    def _admit(self, peer: _LivePeer) -> bool:
        if len(peer.unacked) >= self._effective_window(peer):
            return False
        if self._credit_blocked(peer):
            if not peer.stalled:
                peer.stalled = True
                peer.credit_stalls += 1
                self._observe("credit_stall", peer,
                              remote_credit=peer.remote_credit)
            return False
        peer.stalled = False
        self._observe("grant", peer, unacked=len(peer.unacked),
                      window=self._effective_window(peer),
                      remote_credit=peer.remote_credit)
        return True

    def _credit_blocked(self, peer: _LivePeer) -> bool:
        """Spec seam: the conformance bug library patches this."""
        return self.config.credit_flow and credit_gate_blocks(peer.remote_credit)

    def _acked_seqs(self, peer: _LivePeer, ack: int) -> List[int]:
        """Spec seam: the conformance bug library patches this."""
        return cumulative_acked(peer.unacked, ack)

    def _sack_block(self, peer: _LivePeer) -> int:
        """The SACK bitmap this receiver advertises; healthy =
        :func:`repro.am.spec.sack_block` over the reorder buffer."""
        return sack_block(peer.expected_seq, peer.ooo_held,
                          self.config.sack_horizon)

    def _sack_plan(self, outstanding, ack: int, bits: int):
        """Seam for scoreboard interpretation of a SACK block; healthy =
        :func:`repro.am.spec.sack_retransmit_plan`.  The
        ``sack-bitmap-shift`` injected bug reads bit *i* as ``ack + i``
        instead of ``ack + 1 + i``."""
        return sack_retransmit_plan(outstanding, ack, bits)

    def _ecn_echo(self, peer: _LivePeer) -> bool:
        """Seam for the congestion-mark echo; healthy: drain one pending
        echo onto this outbound packet.  The ``ecn-echo-drop`` injected
        bug swallows it."""
        if peer.pending_echoes <= 0:
            return False
        peer.pending_echoes -= 1
        peer.ecn_echoes += 1
        self._observe("ecn_echo", peer, pending=peer.pending_echoes)
        return True

    def _effective_window(self, peer: _LivePeer) -> int:
        if not self.config.adaptive_window:
            return self.config.window
        return max(self.config.min_window,
                   min(self.config.window, int(peer.cwnd)))

    def _local_credit(self) -> int:
        endpoint = self.user.endpoint
        room = min(
            endpoint.recv_queue.capacity - len(endpoint.recv_queue),
            len(endpoint.free_queue),
        )
        return room // max(1, len(self._peers_by_node))

    def _send_reply(self, dest: int, req_seq: int, args, data: bytes) -> None:
        # replies bypass the request window (deadlock avoidance) but are
        # still sequenced, tracked, and retransmitted
        peer = self._peer(dest)
        packet = Packet(type=TYPE_REPLY, seq=peer.next_seq, req_seq=req_seq,
                        args=tuple(args), data=data)
        peer.next_seq = seq_add(peer.next_seq, 1)
        self.replies_sent += 1
        self._transmit(peer, packet, track=True)

    def _send_ack(self, peer: _LivePeer) -> None:
        self.acks_sent += 1
        self._transmit(peer, Packet(type=TYPE_ACK), track=False)

    def _transmit(self, peer: _LivePeer, packet: Packet, track: bool) -> None:
        packet.ack = peer.expected_seq
        if self.config.recovery:
            packet.epoch = self.epoch
            packet.peer_epoch = peer.remote_epoch
        if self.config.credit_flow:
            advertised = self._local_credit()
            packet.credit = advertised
            peer.last_advertised = advertised
        if self.config.ack_mode == "sack":
            packet.sack_bits = self._sack_block(peer)
        if self.config.congestion == "ecn":
            packet.ece = self._ecn_echo(peer)
        peer.ack_deadline = None
        peer.deliveries_since_ack = 0
        if track:
            peer.unacked[packet.seq] = packet
            peer.sent_at[packet.seq] = self.clock.now_us()
            peer.last_progress = self.clock.now_us()
            self._observe("tx", peer, seq=packet.seq, ptype=packet.type,
                          unacked=len(peer.unacked),
                          window=self._effective_window(peer),
                          remote_credit=peer.remote_credit)
            if self.config.credit_flow and peer.remote_credit is not None:
                peer.remote_credit -= 1
        self._push_wire(peer, encode(packet))

    def _push_wire(self, peer: _LivePeer, wire: bytes) -> None:
        """Hand one encoded packet to U-Net, riding out backpressure.

        A full send queue here means the transport is refusing datagrams
        (peer's kernel buffer full); kicking retries the syscall.  The
        retry budget is the live stand-in for the simulated endpoint's
        wait on send-queue space.
        """
        if self.user.backend.closed:
            return  # teardown race: an armed timer fired after close()
        for attempt in range(_SEND_RETRIES):
            try:
                # batched backends defer the doorbell: the packet rides
                # the next service pass's sendmmsg flush with its peers
                self.user.send(peer.channel, wire,
                               kick=not self.user.backend.defer_kick)
                return
            except EndpointError:
                self.user.backend.kick(self.user.endpoint)
                self.clock.sleep_us(_SEND_RETRY_SLEEP_US)
        raise AmError(
            f"node {self.node}: transport backpressure did not clear after "
            f"{_SEND_RETRIES} retries sending to node {peer.node}")

    def _peer(self, node: int) -> _LivePeer:
        try:
            return self._peers_by_node[node]
        except KeyError:
            raise AmError(f"node {node} is not a connected peer "
                          f"of node {self.node}") from None

    # ------------------------------------------------------------ receiving
    def service(self, max_messages: int = 64) -> int:
        """One polling pass: dispatch ingress, then run the timers.

        Returns the number of AM packets consumed.  Call this (plus the
        backend's ``service``) from the application's doorbell loop.
        """
        if self.user.backend.closed:
            return 0  # teardown: never touch a closed transport
        consumed = 0
        for _ in range(max_messages):
            message = self.user.poll()
            if message is None:
                break
            consumed += 1
            if self._crashed:
                continue  # the process is gone: drain and discard
            # charge the configured per-message receiver cost for real: a
            # "slow receiver" conformance case must be slow on the wall
            # clock too, or the credit machinery it exists to exercise
            # never engages
            if self.config.dispatch_overhead_us > 1.0:
                self.clock.sleep_us(self.config.dispatch_overhead_us)
            self._handle(message.channel_id, message.data)
        self._run_timers()
        return consumed

    def _handle(self, channel_id: int, raw: bytes) -> None:
        try:
            packet = decode(raw)
        except ValueError:
            return  # malformed: reliability will retransmit
        peer = self._peers_by_channel.get(channel_id)
        if peer is None:
            return
        if self.config.recovery and not self._fence(peer, packet):
            return
        if ack_epoch_applies(packet.epoch, peer.remote_epoch):
            self._process_ack(peer, packet.ack)
            if (self.config.ack_mode == "sack"
                    and packet.sack_bits is not None):
                self._process_sack(peer, packet.ack, packet.sack_bits)
            if self.config.congestion == "ecn" and packet.ece:
                self._ecn_backoff(peer, packet.ack)
        if packet.credit is not None and self.config.credit_flow:
            # absolute advertisement, charged with what it cannot know about
            peer.remote_credit = packet.credit - len(peer.unacked)
            if peer.remote_credit > 0:
                peer.stalled = False
        if packet.type == TYPE_HELLO:
            # answer every HELLO (idempotent): the HELLO-ACK may be
            # lost and the retransmitted HELLO must be re-answered
            self._send_hello(peer, TYPE_HELLO_ACK)
            return
        if packet.type == TYPE_HELLO_ACK:
            if peer.reconnecting:
                peer.reconnecting = False
                self._observe("reconnected", peer,
                              peer_epoch=peer.remote_epoch)
            return
        if packet.type == TYPE_ACK:
            return
        if packet.seq != peer.expected_seq:
            if self.config.ack_mode == "sack":
                verdict = reorder_admit(peer.expected_seq, packet.seq,
                                        self.config.sack_horizon)
                if verdict == "hold" and packet.seq not in peer.ooo_held:
                    peer.ooo_held[packet.seq] = packet
                    self._note_ce(peer, packet)
                else:
                    peer.duplicates += 1
                    self._observe("dup_rx", peer, seq=packet.seq,
                                  expected=peer.expected_seq)
            else:
                in_window = seq_lt(peer.expected_seq, packet.seq) and (
                    (packet.seq - peer.expected_seq) % SEQ_MOD <= self.config.window * 2
                )
                if self.config.ooo_buffering and in_window:
                    peer.ooo_held.setdefault(packet.seq, packet)
                else:
                    peer.duplicates += 1
                    self._observe("dup_rx", peer, seq=packet.seq,
                                  expected=peer.expected_seq)
            self._note_delivery(peer, out_of_order=True)
            return
        self._note_ce(peer, packet)
        self._deliver_in_order(peer, packet)
        while peer.ooo_held:
            held = peer.ooo_held.pop(peer.expected_seq, None)
            if held is None:
                break
            self._deliver_in_order(peer, held)
        self._note_delivery(peer)

    def _fence(self, peer: _LivePeer, packet: Packet) -> bool:
        """Epoch fence + restart detection.  False = packet fenced.

        Both halves of the epoch field are checked through the
        ``_epoch_stale`` seam: the sender half against our memory of the
        peer, and (except for HELLO traffic, whose sender cannot yet
        know our epoch) the destination echo against our own epoch.
        """
        if self._epoch_stale(packet.epoch, peer.remote_epoch):
            self.user.endpoint.note_drop("stale_epoch_drops")
            self._observe("stale_epoch", peer, seq=packet.seq,
                          ptype=packet.type,
                          epoch=effective_epoch(packet.epoch))
            return False
        if (packet.type not in (TYPE_HELLO, TYPE_HELLO_ACK)
                and self._epoch_stale(packet.peer_epoch, self.epoch)):
            self.user.endpoint.note_drop("stale_epoch_drops")
            self._observe("stale_epoch", peer, seq=packet.seq,
                          ptype=packet.type,
                          epoch=effective_epoch(packet.peer_epoch), echo=1)
            return False
        if epoch_advances(packet.epoch, peer.remote_epoch):
            # the peer restarted; its ack field is its fresh receive
            # horizon (its HELLO says so explicitly; data says it too)
            self._peer_restarted(peer, effective_epoch(packet.epoch),
                                 packet.ack)
        self._mark_alive(peer)
        return True

    def _deliver_in_order(self, peer: _LivePeer, packet: Packet) -> None:
        peer.expected_seq = seq_add(peer.expected_seq, 1)
        if packet.type == TYPE_REQUEST:
            self.requests_delivered += 1
            self._observe("dispatch", peer, seq=packet.seq,
                          handler=packet.handler, msg=packet.args[0])
            fn = self._handlers.get(packet.handler)
            if fn is not None:
                fn(LiveRequestContext(self, peer.node, packet.args,
                                      packet.data, packet.seq))
        elif packet.type == TYPE_REPLY:
            self._observe("reply", peer, seq=packet.seq, req_seq=packet.req_seq)
            key = (peer.node, packet.req_seq)
            if key in self._rpc_outstanding:
                self._rpc_outstanding.discard(key)
                self.rpc_results[key] = (packet.args, packet.data)

    def _process_ack(self, peer: _LivePeer, ack: int) -> None:
        cfg = self.config
        acked = self._acked_seqs(peer, ack)
        if not acked:
            if cfg.fast_retransmit and peer.unacked:
                if peer.last_ack is None or peer.last_ack != ack:
                    peer.last_ack = ack
                    peer.dup_acks = 0
                else:
                    peer.dup_acks += 1
                    if peer.dup_acks == cfg.dup_ack_threshold:
                        self._fast_retransmit(peer)
            return
        peer.last_ack = ack
        peer.dup_acks = 0
        now = self.clock.now_us()
        if cfg.adaptive_rto:
            sample = None
            for seq in acked:
                sent = peer.sent_at.pop(seq, None)
                if sent is not None and seq not in peer.rexmit_seqs:
                    sample = now - sent
                peer.rexmit_seqs.discard(seq)
            if sample is not None:
                self._update_rto(peer, sample)
            peer.backoff = 0
        else:
            for seq in acked:
                peer.sent_at.pop(seq, None)
                peer.rexmit_seqs.discard(seq)
        if cfg.adaptive_window:
            peer.cwnd = min(float(cfg.window),
                            peer.cwnd + len(acked) / max(peer.cwnd, 1.0))
        for seq in acked:
            peer.unacked.pop(seq, None)
            peer.sacked.discard(seq)
            peer.sack_rexmitted.discard(seq)
        peer.last_progress = now
        peer.starved_timeouts = 0  # forward progress: not a corpse

    def _process_sack(self, peer: _LivePeer, ack: int, bits: int) -> None:
        """Scoreboard update + selective retransmit of the holes, the
        synchronous mirror of the simulated endpoint's method."""
        sacked, holes = self._sack_plan(peer.unacked, ack, bits)
        for seq in sacked:
            peer.sacked.add(seq)
        for seq in holes:
            if seq in peer.sack_rexmitted or seq in peer.sacked:
                continue
            peer.sack_rexmitted.add(seq)
            self._retransmit_seq(peer, seq)

    def _note_ce(self, peer: _LivePeer, packet: Packet) -> None:
        """Account an accepted data packet's congestion mark (echoed on
        the next outbound packets, one echo per mark)."""
        if self.config.congestion != "ecn" or not packet.ce:
            return
        peer.ecn_marks += 1
        peer.pending_echoes += 1
        self._observe("ecn_mark", peer, seq=packet.seq)

    def _ecn_backoff(self, peer: _LivePeer, ack: int) -> None:
        """Congestion echo: halve the AIMD window at most once per round
        trip (:func:`repro.am.spec.ecn_backoff_allowed`)."""
        if not ecn_backoff_allowed(ack, peer.ecn_round_end):
            return
        peer.ecn_round_end = peer.next_seq
        peer.ecn_backoffs += 1
        peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
        self._observe("ecn_backoff", peer, cwnd=peer.cwnd)

    def _update_rto(self, peer: _LivePeer, rtt: float) -> None:
        cfg = self.config
        if peer.srtt is None:
            peer.srtt = rtt
            peer.rttvar = rtt / 2.0
        else:
            peer.rttvar = 0.75 * peer.rttvar + 0.25 * abs(peer.srtt - rtt)
            peer.srtt = 0.875 * peer.srtt + 0.125 * rtt
        peer.rtt_samples += 1
        peer.rto_us = min(max(peer.srtt + 4.0 * peer.rttvar, cfg.rto_min_us),
                          cfg.rto_max_us)

    def _fast_retransmit(self, peer: _LivePeer) -> None:
        head_seq = next(iter(peer.unacked), None)
        if head_seq is None or head_seq == peer.fast_done_seq:
            return
        peer.fast_done_seq = head_seq
        peer.fast_retransmits += 1
        if self.config.adaptive_window:
            peer.cwnd = max(float(self.config.min_window), peer.cwnd / 2.0)
        self._retransmit_head(peer)

    def _note_delivery(self, peer: _LivePeer, out_of_order: bool = False) -> None:
        peer.deliveries_since_ack += 1
        if out_of_order and (self.config.fast_retransmit
                             or self.config.ack_mode == "sack"):
            # ack holes immediately: the dup-ack counter (fast
            # retransmit) or the SACK bitmap (selective retransmit)
            # must reach the sender before the arrival stream dries up
            self._send_ack(peer)
            return
        if peer.deliveries_since_ack >= self.config.ack_every:
            self._send_ack(peer)
            return
        if peer.ack_deadline is None:
            peer.ack_deadline = self.clock.now_us() + self.config.ack_delay_us

    # ---------------------------------------------------------- timers
    def _current_rto(self, peer: _LivePeer) -> float:
        cfg = self.config
        if not cfg.adaptive_rto:
            return cfg.retransmit_timeout_us
        rto = peer.rto_us if peer.srtt is not None else cfg.retransmit_timeout_us
        if peer.backoff:
            rto *= cfg.backoff_factor ** peer.backoff
            if cfg.backoff_jitter > 0.0:
                rto *= 1.0 + cfg.backoff_jitter * self._rng.random()
        return min(max(rto, cfg.rto_min_us), cfg.rto_max_us)

    def _run_timers(self) -> None:
        if not self._running or self._crashed:
            return
        now = self.clock.now_us()
        cfg = self.config
        for peer in self._peers_by_node.values():
            if cfg.recovery and peer.reconnecting and now >= peer.next_hello_at:
                self._send_hello(peer, TYPE_HELLO)
                peer.next_hello_at = now + cfg.hello_retry_us
            if cfg.recovery and not peer.alive:
                continue  # no acks, no retransmits toward a corpse
            if peer.ack_deadline is not None and now >= peer.ack_deadline:
                self._send_ack(peer)
            if peer.unacked and now - peer.last_progress >= self._current_rto(peer):
                peer.timeouts += 1
                self._observe("timeout", peer, rto_us=self._current_rto(peer))
                if cfg.recovery:
                    peer.starved_timeouts += 1
                    if peer.starved_timeouts >= cfg.dead_after_timeouts:
                        self._declare_peer_dead(
                            peer, f"ack starvation: {peer.starved_timeouts} "
                                  f"consecutive retransmission timeouts")
                        continue
                if cfg.adaptive_rto:
                    peer.backoff += 1
                if cfg.adaptive_window:
                    peer.cwnd = max(float(cfg.min_window), peer.cwnd / 2.0)
                # a timeout opens a new selective-retransmit round
                peer.sack_rexmitted.clear()
                self._retransmit_head(peer)
        if (self._next_heartbeat is not None and now >= self._next_heartbeat):
            self._next_heartbeat = now + cfg.heartbeat_us
            for peer in self._peers_by_node.values():
                if not peer.alive:
                    continue
                silent = now - peer.last_heard
                if silent >= cfg.heartbeat_misses * cfg.heartbeat_us:
                    self._declare_peer_dead(
                        peer, f"heartbeat: silent for {silent:.0f}us")
                elif not peer.reconnecting:
                    self._send_ack(peer)
        if self.config.credit_flow and now >= self._next_credit_refresh:
            self._next_credit_refresh = now + self.config.credit_update_us
            for peer in self._peers_by_node.values():
                if peer.last_advertised is None:
                    continue  # never talked to them; nothing to refresh
                if self._local_credit() != peer.last_advertised:
                    self._send_ack(peer)

    def _restamp(self, peer: _LivePeer, packet: Packet) -> None:
        """Refresh the piggybacked fields on a retransmission (ack,
        epoch pair, credit, SACK block, congestion echo) to *now*."""
        packet.ack = peer.expected_seq
        if self.config.recovery:
            packet.epoch = self.epoch
            packet.peer_epoch = peer.remote_epoch
        if self.config.credit_flow:
            packet.credit = self._local_credit()
            peer.last_advertised = packet.credit
        if self.config.ack_mode == "sack":
            packet.sack_bits = self._sack_block(peer)
        if self.config.congestion == "ecn":
            packet.ece = self._ecn_echo(peer)

    def _retransmit_head(self, peer: _LivePeer) -> None:
        # head-of-window only, exactly as the simulated endpoint; under
        # SACK the head is the first unSACKed packet (plain head when
        # everything outstanding is SACKed — the cumulative ack itself
        # may have been lost, and liveness beats elegance)
        head_seq = next((s for s in peer.unacked if s not in peer.sacked),
                        None)
        if head_seq is None:
            head_seq = next(iter(peer.unacked), None)
        if head_seq is None:
            return
        head = peer.unacked[head_seq]
        peer.retransmissions += 1
        self._observe("rexmit", peer, seq=head_seq)
        peer.rexmit_seqs.add(head_seq)
        peer.last_progress = self.clock.now_us()
        self._restamp(peer, head)
        self._push_wire(peer, encode(head))

    def _retransmit_seq(self, peer: _LivePeer, seq: int) -> None:
        """Selective retransmit of one scoreboard hole (SACK mode),
        Karn-safe like the simulated endpoint's."""
        packet = peer.unacked.get(seq)
        if packet is None or seq in peer.sacked:
            return
        peer.retransmissions += 1
        self._observe("rexmit", peer, seq=seq, selective=1)
        peer.rexmit_seqs.add(seq)
        peer.last_progress = self.clock.now_us()
        self._restamp(peer, packet)
        self._push_wire(peer, encode(packet))
