"""A live AM peer in its own OS process — something a test can SIGKILL.

The in-process crash twins (``LiveAm.crash()`` / ``restart()``) model a
dying process faithfully at the protocol level, but the strongest
evidence for the recovery design is the real thing: a peer process that
is actually ``kill -9``'d mid-flight — kernel socket buffers dropped on
the floor, retransmission timers never fired, no destructor mercy — and
then respawned as a fresh incarnation that must HELLO its way back in.

Run as a module (``python -m repro.live.peer``) this file is the child:
it binds a UDP loopback socket, wires one channel back to the parent,
answers handler 1 with an echo reply, and prints two lines the parent
harness reads::

    ADDR <host> <port>
    READY <epoch>

:class:`PeerProcess` is the parent-side harness: ``spawn`` /
``kill`` (SIGKILL) / ``respawn`` (same AM node id, epoch + 1 via
``restart()``, fresh socket).  Because the wire's demux tag is the
``(dst_port, src_node, src_port)`` triple — not the socket address —
the respawned child is the *same peer* to the parent's AM layer, and
only the parent's channel tag needs re-targeting (``retarget``) so its
outbound datagrams chase the child's new socket.

Port convention: both sides use U-Net port 1 (the first allocated), so
neither process needs to be told the other's port out of band.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from typing import List, Optional, Tuple

from ..am.am import AmConfig
from ..core.channels import register_channel
from ..core.errors import UNetError
from .am import LiveAm, LiveRequestContext
from .backend import LiveBackend, LiveUserEndpoint
from .clock import WallClock
from .transport import UdpLoopbackTransport

__all__ = ["PeerProcess", "PEER_PORT", "peer_am_config"]

#: the fixed U-Net port both sides use (first allocate_port() result)
PEER_PORT = 1

#: child safety cap: an orphaned child exits on its own after this long
_CHILD_LIFETIME_US = 60_000_000.0

_IDLE_SLEEP_US = 200.0


def peer_am_config(**overrides) -> AmConfig:
    """The recovery-enabled AM config both sides of a kill test share."""
    defaults = dict(
        recovery=True,
        window=4,
        retransmit_timeout_us=30_000.0,
        dead_after_timeouts=4,
        hello_retry_us=20_000.0,
        ack_every=1,
    )
    defaults.update(overrides)
    return AmConfig(**defaults)


# --------------------------------------------------------------------- child
def _child_main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro.live.peer")
    parser.add_argument("--node", type=int, required=True)
    parser.add_argument("--parent-node", type=int, required=True)
    parser.add_argument("--parent-host", required=True)
    parser.add_argument("--parent-port", type=int, required=True)
    parser.add_argument("--epoch", type=int, default=0)
    parser.add_argument("--restart", action="store_true",
                        help="come up as a restarted incarnation: epoch+1 "
                             "and a HELLO handshake toward the parent")
    parser.add_argument("--rto-us", type=float, default=30_000.0)
    parser.add_argument("--dead-after", type=int, default=4)
    parser.add_argument("--hello-retry-us", type=float, default=20_000.0)
    parser.add_argument("--lifetime-us", type=float, default=_CHILD_LIFETIME_US)
    args = parser.parse_args(argv)

    clock = WallClock()
    backend = LiveBackend(UdpLoopbackTransport(name=f"peer{args.node}"),
                          clock, node_id=args.node,
                          node_name=f"peer{args.node}")
    user = backend.create_user_endpoint(rx_buffers=32)
    port = backend.allocate_port()
    from .backend import LiveTag  # local import keeps module surface tidy

    register_channel(user.endpoint, 0,
                     LiveTag((args.parent_host, args.parent_port), PEER_PORT,
                             args.node, port),
                     peer=f"n{args.parent_node}")
    backend.demux.register((port, args.parent_node, PEER_PORT),
                           user.endpoint, 0)
    config = peer_am_config(epoch=args.epoch,
                            retransmit_timeout_us=args.rto_us,
                            dead_after_timeouts=args.dead_after,
                            hello_retry_us=args.hello_retry_us)
    am = LiveAm(args.node, user, config)
    am.connect_peer(args.parent_node, 0)

    def echo(ctx: LiveRequestContext) -> None:
        ctx.reply(args=ctx.args, data=ctx.data)

    am.register_handler(1, echo)

    host, sockport = backend.transport.address
    sys.stdout.write(f"ADDR {host} {sockport}\n")
    sys.stdout.flush()
    if args.restart:
        am.restart()
    sys.stdout.write(f"READY {am.epoch}\n")
    sys.stdout.flush()

    deadline = clock.now_us() + args.lifetime_us
    while clock.now_us() < deadline:
        moved = backend.service()
        moved += am.service()
        if moved == 0:
            clock.sleep_us(_IDLE_SLEEP_US)
    backend.close()
    return 0


# -------------------------------------------------------------------- parent
class PeerProcess:
    """Parent-side lifecycle of one killable live AM peer process."""

    def __init__(self, parent_address: Tuple[str, int], node: int = 1,
                 parent_node: int = 0, rto_us: float = 30_000.0,
                 dead_after: int = 4, hello_retry_us: float = 20_000.0) -> None:
        self.parent_address = parent_address
        self.node = node
        self.parent_node = parent_node
        self.rto_us = rto_us
        self.dead_after = dead_after
        self.hello_retry_us = hello_retry_us
        #: the epoch the *next* spawn starts from (restart bumps it)
        self.epoch = 0
        self.proc: Optional[subprocess.Popen] = None
        self.address: Optional[Tuple[str, int]] = None
        self.kills = 0
        self.spawns = 0

    # -- lifecycle ---------------------------------------------------------
    def spawn(self, restart: bool = False) -> Tuple[str, int]:
        """Start the child; returns its socket address.

        With ``restart=True`` the child comes up as a restarted
        incarnation of the previous one: same AM node id, epoch + 1, and
        it opens with the HELLO handshake.
        """
        if self.proc is not None and self.proc.poll() is None:
            raise UNetError("peer process is already running")
        host, port = self.parent_address
        cmd = [sys.executable, "-m", "repro.live.peer",
               "--node", str(self.node),
               "--parent-node", str(self.parent_node),
               "--parent-host", host,
               "--parent-port", str(port),
               "--epoch", str(self.epoch),
               "--rto-us", str(self.rto_us),
               "--dead-after", str(self.dead_after),
               "--hello-retry-us", str(self.hello_retry_us)]
        if restart:
            cmd.append("--restart")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, env=env,
                                     text=True)
        self.address = self._read_addr()
        ready = self._read_line()
        if not ready.startswith("READY "):
            raise UNetError(f"peer process said {ready!r}, expected READY")
        self.epoch = int(ready.split()[1])
        self.spawns += 1
        return self.address

    def kill(self) -> None:
        """SIGKILL the child: no cleanup, no goodbye — a real crash."""
        if self.proc is None or self.proc.poll() is not None:
            return
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait()
        self.kills += 1

    def respawn(self) -> Tuple[str, int]:
        """Bring the killed peer back as the next incarnation."""
        if self.proc is not None and self.proc.poll() is None:
            raise UNetError("kill() the peer before respawning it")
        return self.spawn(restart=True)

    def stop(self) -> None:
        """Final teardown (idempotent): kill and reap the child."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGKILL)
            self.proc.wait()
        if self.proc.stdout is not None:
            self.proc.stdout.close()
        self.proc = None

    def __enter__(self) -> "PeerProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- parent wiring -----------------------------------------------------
    def wire_parent(self, user: LiveUserEndpoint, channel_id: int = 0) -> None:
        """Create the parent's channel + demux row toward the child."""
        from .backend import LiveTag

        if self.address is None:
            raise UNetError("spawn() the peer before wiring the parent")
        backend = user.backend
        port = backend.allocate_port()
        register_channel(user.endpoint, channel_id,
                         LiveTag(self.address, PEER_PORT,
                                 self.parent_node, port),
                         peer=f"peer{self.node}")
        backend.demux.register((port, self.node, PEER_PORT),
                               user.endpoint, channel_id)

    def retarget(self, user: LiveUserEndpoint, channel_id: int = 0) -> None:
        """Point the parent's existing channel at the respawned socket.

        The demux triple is unchanged (same nodes, same U-Net ports), so
        only the destination address moves.
        """
        if self.address is None:
            raise UNetError("no live peer address to retarget to")
        binding = user.endpoint.channels.get(channel_id)
        if binding is None:
            raise UNetError(f"parent has no channel {channel_id}")
        binding.tag.dest_address = self.address

    # -- internals ---------------------------------------------------------
    def _read_line(self) -> str:
        assert self.proc is not None and self.proc.stdout is not None
        line = self.proc.stdout.readline()
        if not line:
            raise UNetError("peer process exited before completing handshake")
        return line.strip()

    def _read_addr(self) -> Tuple[str, int]:
        line = self._read_line()
        if not line.startswith("ADDR "):
            raise UNetError(f"peer process said {line!r}, expected ADDR")
        _tag, host, port = line.split()
        return (host, int(port))


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(_child_main())
