"""Wall-clock benchmark rig: the paper's figures, rerun on U-Net/OS.

Where :mod:`repro.analysis` regenerates Figure 5 (round-trip latency
vs message size) and Figure 6 (bandwidth vs message size) inside the
calibrated performance model, this module reruns the same *shapes* on
the live substrate and real time: AM round trips over actual datagram
sockets, a windowed bandwidth stream, and an N-senders-into-one-
receiver incast — the live analogue of the overload soak.

Wall-clock numbers are noisy by nature, so every latency row reports
percentiles (p50/p95/p99), never a single average, and every row
carries **syscalls per message** from the transport's own accounting —
the OS-level cost metric that corresponds to the paper's obsession
with traps and doorbells (U-Net's whole point was getting syscalls out
of the fast path; U-Net/OS pays them and shows the bill).

The output is one JSON document (``BENCH_live.json``), schema-checked
by :func:`validate_bench` before it is written so downstream tooling
can trust its shape.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..am.am import AmConfig
from ..core import EndpointConfig
from .am import LiveAm
from .backend import LiveCluster
from .clock import WallClock
from .doorbell import DEFAULT_DOORBELL_MODE
from .transport import make_transport

__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA",
    "RTT_SIZES",
    "BANDWIDTH_SIZES",
    "bench_round_trip",
    "bench_bandwidth",
    "bench_incast",
    "bench_burst",
    "run_bench",
    "validate_bench",
    "write_bench",
    "render_bench",
    "percentile",
]

BENCH_FORMAT = "repro-bench-live/2"

#: Figure 5's sweep, minus nothing: the live rig walks the same sizes
RTT_SIZES = (0, 8, 16, 32, 40, 64, 128, 256, 512, 1024, 1498)
#: Figure 6's sweep plus one multi-buffer size (> one 2 KB buffer)
BANDWIDTH_SIZES = (16, 64, 128, 256, 512, 1024, 1498, 4000)

#: hard wall ceiling per benchmark phase; a wedged transport must fail
#: the phase, not hang the rig
_PHASE_LIMIT_US = 30_000_000.0


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in 0..100)."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


# ------------------------------------------------------------------ plumbing
def _make_pair(transport_kind: str, clock: WallClock,
               config: Optional[AmConfig] = None,
               doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> Tuple[LiveCluster, LiveAm, LiveAm, Callable[[], None]]:
    """Two fresh nodes, one channel, AM endpoints, and their pump."""
    cluster = LiveCluster(lambda name: make_transport(transport_kind, name),
                          clock, doorbell_mode=doorbell_mode)
    n0 = cluster.add_node("bench0")
    n1 = cluster.add_node("bench1")
    ep_cfg = EndpointConfig(num_buffers=96, buffer_size=2048,
                            send_queue_depth=64, recv_queue_depth=64)
    ep0 = n0.create_user_endpoint(config=ep_cfg, rx_buffers=48)
    ep1 = n1.create_user_endpoint(config=ep_cfg, rx_buffers=48)
    ch0, ch1 = cluster.connect(ep0, ep1)
    am0 = LiveAm(0, ep0, config=config or AmConfig())
    am1 = LiveAm(1, ep1, config=config or AmConfig())
    am0.connect_peer(1, ch0)
    am1.connect_peer(0, ch1)

    def pump() -> None:
        cluster.step()
        am0.service()
        am1.service()

    return cluster, am0, am1, pump


def _syscalls(cluster: LiveCluster) -> int:
    return sum(node.transport.tx_syscalls + node.transport.rx_syscalls
               for node in cluster.nodes)


# ------------------------------------------------------- round-trip latency
def bench_round_trip(transport_kind: str, sizes: Sequence[int] = RTT_SIZES,
                     samples: int = 40, warmup: int = 8,
                     doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> List[Dict]:
    """Figure 5's shape on the wall clock: AM echo RPC per size."""
    rows: List[Dict] = []
    clock = WallClock()
    for size in sizes:
        cluster, am0, am1, pump = _make_pair(transport_kind, clock,
                                             doorbell_mode=doorbell_mode)
        try:
            am1.register_handler(1, lambda ctx: ctx.reply(args=(ctx.args[0],),
                                                          data=ctx.data))
            payload = bytes(i % 256 for i in range(size))
            for i in range(warmup):
                am0.rpc(1, 1, args=(i,), data=payload, pump=pump,
                        limit_us=_PHASE_LIMIT_US)
            base_syscalls = _syscalls(cluster)
            lat: List[float] = []
            for i in range(samples):
                t0 = clock.now_us()
                am0.rpc(1, 1, args=(i,), data=payload, pump=pump,
                        limit_us=_PHASE_LIMIT_US)
                lat.append(clock.now_us() - t0)
            syscalls = _syscalls(cluster) - base_syscalls
            rows.append({
                "size": size,
                "samples": len(lat),
                "min_us": min(lat),
                "mean_us": sum(lat) / len(lat),
                "p50_us": percentile(lat, 50),
                "p95_us": percentile(lat, 95),
                "p99_us": percentile(lat, 99),
                "syscalls_per_message": syscalls / max(1, len(lat)),
            })
        finally:
            cluster.close()
    return rows


# --------------------------------------------------------------- bandwidth
def bench_bandwidth(transport_kind: str,
                    sizes: Sequence[int] = BANDWIDTH_SIZES,
                    messages: int = 200,
                    doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> List[Dict]:
    """Figure 6's shape: windowed one-way stream, goodput in Mb/s."""
    rows: List[Dict] = []
    clock = WallClock()
    for size in sizes:
        cluster, am0, am1, pump = _make_pair(transport_kind, clock,
                                             doorbell_mode=doorbell_mode)
        try:
            received = [0]

            def handler(ctx, _received=received) -> None:
                _received[0] += 1

            am1.register_handler(1, handler)
            payload = bytes(i % 256 for i in range(size))
            base_syscalls = _syscalls(cluster)
            deadline = clock.now_us() + _PHASE_LIMIT_US
            t0 = clock.now_us()
            for i in range(messages):
                while am0.start_request(1, 1, args=(i,), data=payload) is None:
                    if clock.now_us() >= deadline:
                        raise RuntimeError("bandwidth phase wedged")
                    pump()
            while not (am0.idle and received[0] >= messages):
                if clock.now_us() >= deadline:
                    break
                pump()
            elapsed_us = max(1.0, clock.now_us() - t0)
            syscalls = _syscalls(cluster) - base_syscalls
            snap = am0.snapshot()
            rexmit = sum(p["retransmissions"] for p in snap.values())
            rows.append({
                "size": size,
                "messages": messages,
                "delivered": received[0],
                "elapsed_us": elapsed_us,
                # bits per microsecond == megabits per second
                "goodput_mbps": received[0] * size * 8 / elapsed_us,
                "rexmit": rexmit,
                "syscalls_per_message": syscalls / max(1, received[0]),
            })
        finally:
            cluster.close()
    return rows


# ------------------------------------------------------------------ incast
def bench_incast(transport_kind: str, senders: int = 4,
                 messages_per_sender: int = 100, size: int = 512,
                 doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> Dict:
    """N senders into one credit-gated receiver: the live overload shape.

    Receiver-credit flow is on, so the interesting outputs are the
    aggregate goodput the receiver sustains, how often senders stalled
    on credit, and whether anything was dropped at the receive queue —
    on a healthy run backpressure (stalls) substitutes for loss.
    """
    clock = WallClock()
    cluster = LiveCluster(lambda name: make_transport(transport_kind, name),
                          clock, doorbell_mode=doorbell_mode)
    try:
        config = AmConfig(credit_flow=True)
        recv_node = cluster.add_node("sink")
        recv_ep = recv_node.create_user_endpoint(
            config=EndpointConfig(num_buffers=96, buffer_size=2048,
                                  send_queue_depth=64, recv_queue_depth=16),
            rx_buffers=32)
        recv_am = LiveAm(0, recv_ep, config=config)
        received = [0]
        recv_am.register_handler(1, lambda ctx: received.__setitem__(0, received[0] + 1))

        sender_ams: List[LiveAm] = []
        for s in range(senders):
            node = cluster.add_node(f"src{s}")
            ep = node.create_user_endpoint(
                config=EndpointConfig(num_buffers=96, buffer_size=2048,
                                      send_queue_depth=64, recv_queue_depth=64),
                rx_buffers=48)
            ch_sink, ch_src = cluster.connect(recv_ep, ep)
            recv_am.connect_peer(s + 1, ch_sink)
            am = LiveAm(s + 1, ep, config=config)
            am.connect_peer(0, ch_src)
            sender_ams.append(am)

        def pump() -> None:
            cluster.step()
            recv_am.service()
            for am in sender_ams:
                am.service()

        payload = bytes(i % 256 for i in range(size))
        sent = [0] * senders
        total = senders * messages_per_sender
        base_syscalls = _syscalls(cluster)
        deadline = clock.now_us() + _PHASE_LIMIT_US
        t0 = clock.now_us()
        while clock.now_us() < deadline:
            progress = False
            for s, am in enumerate(sender_ams):
                if sent[s] >= messages_per_sender:
                    continue
                if am.start_request(0, 1, args=(sent[s],), data=payload) is not None:
                    sent[s] += 1
                    progress = True
            pump()
            if (sum(sent) >= total and received[0] >= total
                    and all(am.idle for am in sender_ams)):
                break
            if not progress:
                pump()
        elapsed_us = max(1.0, clock.now_us() - t0)
        syscalls = _syscalls(cluster) - base_syscalls
        stalls = sum(am.credit_stalls for am in sender_ams)
        rexmit = sum(p["retransmissions"] for am in sender_ams
                     for p in am.snapshot().values())
        drops = recv_node.drop_stats()
        return {
            "senders": senders,
            "messages_per_sender": messages_per_sender,
            "size": size,
            "delivered": received[0],
            "elapsed_us": elapsed_us,
            "goodput_mbps": received[0] * size * 8 / elapsed_us,
            "credit_stalls": stalls,
            "rexmit": rexmit,
            "recv_queue_drops": drops["recv_queue_drops"],
            "no_buffer_drops": drops["no_buffer_drops"],
            "syscalls_per_message": syscalls / max(1, received[0]),
        }
    finally:
        cluster.close()


# ----------------------------------------------------------- burst fast path
def _burst_pair(transport_kind: str, clock: WallClock, doorbell_mode: str,
                use_mmsg: Optional[bool]):
    """A pinned two-node pair for the burst A/B (identical topology for
    both sides of the comparison)."""
    cluster = LiveCluster(
        lambda name: make_transport(transport_kind, name, use_mmsg=use_mmsg),
        clock, doorbell_mode=doorbell_mode)
    n0 = cluster.add_node("burst0")
    n1 = cluster.add_node("burst1")
    ep_cfg = EndpointConfig(num_buffers=96, buffer_size=2048,
                            send_queue_depth=64, recv_queue_depth=64)
    ep0 = n0.create_user_endpoint(config=ep_cfg, rx_buffers=48)
    ep1 = n1.create_user_endpoint(config=ep_cfg, rx_buffers=48)
    ch0, _ch1 = cluster.connect(ep0, ep1)
    # pairwise pinned topology: exempts AF_UNIX from the max_dgram_qlen
    # cap, so the kernel queue is deep enough for batching to amortize
    n0.transport.connect_peer(n1.transport.address)
    n1.transport.connect_peer(n0.transport.address)
    return cluster, n0, n1, ep0, ep1, ch0


def bench_burst(transport_kind: str, messages: int = 20000,
                size: int = 256) -> Dict:
    """The tentpole A/B: one-way stream at the raw endpoint layer,
    per-syscall descriptor path vs batched zero-copy fast path.

    Both sides run the identical pinned two-node topology and move the
    identical byte stream; the only difference is the doorbell
    discipline — scalar ``sendto``/``recvfrom`` per message against
    pooled ``send_burst``/``service_fast`` over sendmmsg/recvmmsg.
    The headline ratio is the paper's: messages per second bought per
    kernel crossing spent.
    """
    clock = WallClock()
    payloads = [bytes([i % 256]) * size for i in range(messages)]

    def run_baseline() -> Dict:
        cluster, n0, n1, ep0, ep1, ch0 = _burst_pair(
            transport_kind, clock, DEFAULT_DOORBELL_MODE, use_mmsg=False)
        try:
            got = 0
            sent = 0
            deadline = clock.now_us() + _PHASE_LIMIT_US
            t0 = clock.now_us()
            while got < messages:
                if clock.now_us() >= deadline:
                    raise RuntimeError("burst baseline phase wedged")
                if sent < messages:
                    try:
                        ep0.send(ch0, payloads[sent])
                        sent += 1
                    except Exception:
                        n1.service()  # backpressure: let the sink drain
                n1.service()
                while ep1.poll() is not None:
                    got += 1
            elapsed_us = max(1.0, clock.now_us() - t0)
            syscalls = (n0.transport.tx_syscalls + n1.transport.rx_syscalls)
            return {
                "msgs_per_sec": got * 1e6 / elapsed_us,
                "syscalls_per_message": syscalls / max(1, got),
                "elapsed_us": elapsed_us,
            }
        finally:
            cluster.close()

    def run_batched() -> Dict:
        cluster, n0, n1, ep0, ep1, ch0 = _burst_pair(
            transport_kind, clock, "batched", use_mmsg=None)
        try:
            got = [0]

            def on_message(_endpoint, _channel_id, _view) -> None:
                got[0] += 1

            sent = 0
            deadline = clock.now_us() + _PHASE_LIMIT_US
            t0 = clock.now_us()
            while got[0] < messages:
                if clock.now_us() >= deadline:
                    raise RuntimeError("burst batched phase wedged")
                if sent < messages:
                    sent += ep0.send_burst(ch0, payloads[sent:sent + 64])
                n1.service_fast(on_message)
            elapsed_us = max(1.0, clock.now_us() - t0)
            syscalls = (n0.transport.tx_syscalls + n1.transport.rx_syscalls)
            return {
                "msgs_per_sec": got[0] * 1e6 / elapsed_us,
                "syscalls_per_message": syscalls / max(1, got[0]),
                "elapsed_us": elapsed_us,
            }, n0.transport.batch_path()
        finally:
            cluster.close()

    baseline = run_baseline()
    batched, batch_path = run_batched()
    return {
        "messages": messages,
        "size": size,
        "baseline": baseline,
        "batched": batched,
        "speedup": batched["msgs_per_sec"] / max(1e-9,
                                                 baseline["msgs_per_sec"]),
        "batch_path": batch_path,
    }


# ------------------------------------------------------------------- driver
def run_bench(transport_kind: str = "unix", rtt_samples: int = 40,
              bw_messages: int = 200, incast_senders: int = 4,
              incast_messages: int = 100,
              rtt_sizes: Sequence[int] = RTT_SIZES,
              bw_sizes: Sequence[int] = BANDWIDTH_SIZES,
              burst_messages: int = 20000, burst_size: int = 256,
              doorbell_mode: str = DEFAULT_DOORBELL_MODE,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """The full rig: Fig 5 shape, Fig 6 shape, incast; one JSON payload."""
    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    clock = WallClock()
    t0 = clock.now_us()
    note(f"round-trip latency over {transport_kind} "
         f"({len(rtt_sizes)} sizes x {rtt_samples} samples)...")
    round_trip = bench_round_trip(transport_kind, sizes=rtt_sizes,
                                  samples=rtt_samples,
                                  doorbell_mode=doorbell_mode)
    note(f"bandwidth ({len(bw_sizes)} sizes x {bw_messages} messages)...")
    bandwidth = bench_bandwidth(transport_kind, sizes=bw_sizes,
                                messages=bw_messages,
                                doorbell_mode=doorbell_mode)
    note(f"incast ({incast_senders} senders x {incast_messages} messages)...")
    incast = bench_incast(transport_kind, senders=incast_senders,
                          messages_per_sender=incast_messages,
                          doorbell_mode=doorbell_mode)
    note(f"burst fast path ({burst_messages} messages x {burst_size}B, "
         f"per-syscall vs batched)...")
    burst = bench_burst(transport_kind, messages=burst_messages,
                        size=burst_size)
    payload = {
        "format": BENCH_FORMAT,
        "transport": transport_kind,
        "doorbell_mode": doorbell_mode,
        "elapsed_s": (clock.now_us() - t0) / 1e6,
        "round_trip": round_trip,
        "bandwidth": bandwidth,
        "incast": incast,
        "burst": burst,
    }
    errors = validate_bench(payload)
    if errors:  # pragma: no cover - a rig bug, not an input condition
        raise ValueError("benchmark payload failed its own schema:\n  "
                         + "\n  ".join(errors))
    return payload


# ------------------------------------------------------------------- schema
#: shape contract for BENCH_live.json: key -> type (or [row-template]);
#: ``float`` accepts ints too, JSON has one number type
_ROW_RTT = {"size": int, "samples": int, "min_us": float, "mean_us": float,
            "p50_us": float, "p95_us": float, "p99_us": float,
            "syscalls_per_message": float}
_ROW_BW = {"size": int, "messages": int, "delivered": int, "elapsed_us": float,
           "goodput_mbps": float, "rexmit": int, "syscalls_per_message": float}
_ROW_INCAST = {"senders": int, "messages_per_sender": int, "size": int,
               "delivered": int, "elapsed_us": float, "goodput_mbps": float,
               "credit_stalls": int, "rexmit": int, "recv_queue_drops": int,
               "no_buffer_drops": int, "syscalls_per_message": float}
_ROW_BURST_SIDE = {"msgs_per_sec": float, "syscalls_per_message": float,
                   "elapsed_us": float}
_ROW_BURST = {"messages": int, "size": int, "baseline": _ROW_BURST_SIDE,
              "batched": _ROW_BURST_SIDE, "speedup": float,
              "batch_path": str}
BENCH_SCHEMA = {
    "format": str,
    "transport": str,
    "doorbell_mode": str,
    "elapsed_s": float,
    "round_trip": [_ROW_RTT],
    "bandwidth": [_ROW_BW],
    "incast": _ROW_INCAST,
    "burst": _ROW_BURST,
}


def _check(value, spec, path: str, errors: List[str]) -> None:
    if isinstance(spec, list):
        if not isinstance(value, list) or not value:
            errors.append(f"{path}: expected a non-empty list")
            return
        for i, item in enumerate(value):
            _check(item, spec[0], f"{path}[{i}]", errors)
    elif isinstance(spec, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected an object")
            return
        for key, sub in spec.items():
            if key not in value:
                errors.append(f"{path}.{key}: missing")
            else:
                _check(value[key], sub, f"{path}.{key}", errors)
    elif spec is float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{path}: expected a number, got {type(value).__name__}")
    elif not isinstance(value, spec) or isinstance(value, bool) and spec is int:
        errors.append(f"{path}: expected {spec.__name__}, got {type(value).__name__}")


def validate_bench(payload: Dict) -> List[str]:
    """Schema-check a BENCH_live payload; empty list means valid."""
    errors: List[str] = []
    _check(payload, BENCH_SCHEMA, "$", errors)
    if not errors and payload["format"] != BENCH_FORMAT:
        errors.append(f"$.format: {payload['format']!r} != {BENCH_FORMAT!r}")
    return errors


def write_bench(path: str, payload: Dict) -> None:
    """Validate, then write ``BENCH_live.json``."""
    errors = validate_bench(payload)
    if errors:
        raise ValueError("refusing to write an invalid benchmark payload:\n  "
                         + "\n  ".join(errors))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_bench(payload: Dict) -> str:
    """Terminal summary of a benchmark payload."""
    lines = [f"U-Net/OS wall-clock benchmark over {payload['transport']} "
             f"({payload['elapsed_s']:.1f}s)"]
    lines.append("  round-trip latency (us):")
    lines.append(f"    {'bytes':>6} {'p50':>9} {'p95':>9} {'p99':>9} "
                 f"{'min':>9} {'sys/msg':>8}")
    for row in payload["round_trip"]:
        lines.append(f"    {row['size']:>6} {row['p50_us']:>9.1f} "
                     f"{row['p95_us']:>9.1f} {row['p99_us']:>9.1f} "
                     f"{row['min_us']:>9.1f} {row['syscalls_per_message']:>8.1f}")
    lines.append("  bandwidth:")
    lines.append(f"    {'bytes':>6} {'Mb/s':>9} {'rexmit':>7} {'sys/msg':>8}")
    for row in payload["bandwidth"]:
        lines.append(f"    {row['size']:>6} {row['goodput_mbps']:>9.1f} "
                     f"{row['rexmit']:>7} {row['syscalls_per_message']:>8.1f}")
    inc = payload["incast"]
    lines.append(f"  incast: {inc['senders']} senders x "
                 f"{inc['messages_per_sender']} x {inc['size']}B -> "
                 f"{inc['goodput_mbps']:.1f} Mb/s aggregate, "
                 f"{inc['credit_stalls']} credit stalls, "
                 f"{inc['recv_queue_drops']} recv-queue drops, "
                 f"{inc['rexmit']} rexmit")
    burst = payload.get("burst")
    if burst:
        base, fast = burst["baseline"], burst["batched"]
        lines.append(
            f"  burst fast path ({burst['messages']} x {burst['size']}B, "
            f"{burst['batch_path']}):")
        lines.append(
            f"    per-syscall {base['msgs_per_sec']:>10,.0f} msg/s "
            f"at {base['syscalls_per_message']:.2f} sys/msg")
        lines.append(
            f"    batched     {fast['msgs_per_sec']:>10,.0f} msg/s "
            f"at {fast['syscalls_per_message']:.3f} sys/msg "
            f"({burst['speedup']:.1f}x)")
    return "\n".join(lines)
