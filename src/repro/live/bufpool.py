"""Preallocated zero-copy buffer pool for the live fast path.

The paper's buffer areas are pinned, preregistered memory the NI DMAs
into without per-message allocation; the modern userspace-networking
reborn form ("Fast Userspace Networking for the Rest of Us", PAPERS.md)
is a preallocated pool of fixed slots the kernel scatter-gathers into
via ``recvmmsg``/``recvmsg_into``.  This module is that pool: one
``bytearray`` arena carved into :class:`PooledSlice` views, recycled
through an explicit free list, so the live RX/TX hot loops never
allocate a per-message ``bytes`` object.

Invariants (pinned by ``tests/live/test_bufpool.py``):

* two in-flight slices never alias — each owns a disjoint byte range of
  the arena;
* slices never leak — every ``alloc`` is balanced by exactly one
  ``free``, double frees raise, and a fully-freed pool is back to full
  capacity;
* exhaustion is *backpressure*, never silent loss: ``try_alloc``
  returns None, ``alloc`` raises the typed :class:`PoolExhausted`
  (``drop_class == "backpressure"``), and callers keep their message
  queued for the next doorbell pass exactly as they do for a full
  kernel buffer.

The arena's :class:`memoryview` export pins the ``bytearray`` for the
pool's lifetime, so slot addresses are stable — which is what lets the
ctypes ``sendmmsg``/``recvmmsg`` path (:mod:`repro.live.mmsg`) cache
the base address once and do integer math per message instead of
re-deriving pointers.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import UNetError

__all__ = ["PoolExhausted", "PooledSlice", "BufferPool"]


class PoolExhausted(UNetError):
    """No free slot in the pool right now: backpressure, retry later."""

    #: exhaustion maps to the shared backpressure vocabulary — the
    #: transport charges it to ``tx_would_block`` and the message stays
    #: queued, exactly like an EAGAIN from a full kernel buffer
    drop_class = "backpressure"


class PooledSlice:
    """One fixed-size slot of a :class:`BufferPool`.

    ``view`` is a writable :class:`memoryview` over the slot's whole
    byte range; ``length`` is how many of those bytes currently hold
    payload (set by whoever filled the slot).  A slice is only valid
    between the ``alloc`` that produced it and the matching ``free``;
    holding the view past ``free`` is aliasing, which is why consumers
    that need to keep data (delayed fault stages, inline descriptors)
    must copy out first.
    """

    __slots__ = ("pool", "index", "view", "length", "in_flight", "address")

    def __init__(self, pool: "BufferPool", index: int, view: memoryview) -> None:
        self.pool = pool
        self.index = index
        self.view = view
        self.length = 0
        self.in_flight = False
        #: stable arena address of this slot's first byte (for mmsg);
        #: precomputed — the hot path does zero arithmetic to find it
        self.address = pool.base_address + index * pool.slot_size

    def payload(self) -> memoryview:
        """The valid bytes: ``view[:length]`` without a copy."""
        return self.view[: self.length]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "in-flight" if self.in_flight else "free"
        return f"<PooledSlice #{self.index} len={self.length} {state}>"


class BufferPool:
    """Fixed arena of ``slots`` × ``slot_size`` bytes with a free list."""

    def __init__(self, slots: int, slot_size: int) -> None:
        if slots <= 0 or slot_size <= 0:
            raise ValueError("slots and slot_size must be positive")
        self.slots = slots
        self.slot_size = slot_size
        self._arena = bytearray(slots * slot_size)
        #: the export that pins the arena (and every slot address) in place
        self._view = memoryview(self._arena)
        self.base_address = _buffer_address(self._arena)
        self._slices = [
            PooledSlice(self, i, self._view[i * slot_size:(i + 1) * slot_size])
            for i in range(slots)
        ]
        self._free: List[int] = list(range(slots - 1, -1, -1))
        # accounting
        self.alloc_total = 0
        self.free_total = 0
        self.exhausted_total = 0

    # -- introspection -----------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_flight_count(self) -> int:
        return self.slots - len(self._free)

    def stats(self) -> dict:
        return {
            "slots": self.slots,
            "slot_size": self.slot_size,
            "free": self.free_count,
            "in_flight": self.in_flight_count,
            "alloc_total": self.alloc_total,
            "free_total": self.free_total,
            "exhausted_total": self.exhausted_total,
        }

    # -- alloc / recycle ---------------------------------------------------
    def try_alloc(self) -> Optional[PooledSlice]:
        """A free slice, or None when exhausted (backpressure)."""
        if not self._free:
            self.exhausted_total += 1
            return None
        index = self._free.pop()
        slice_ = self._slices[index]
        slice_.length = 0
        slice_.in_flight = True
        self.alloc_total += 1
        return slice_

    def alloc(self) -> PooledSlice:
        """Like :meth:`try_alloc` but raises :class:`PoolExhausted`."""
        slice_ = self.try_alloc()
        if slice_ is None:
            raise PoolExhausted(
                f"buffer pool exhausted ({self.slots} slots all in flight)")
        return slice_

    def free(self, slice_: PooledSlice) -> None:
        """Recycle ``slice_``; double frees and foreign slices raise."""
        if slice_.pool is not self:
            raise UNetError("slice belongs to a different pool")
        if not slice_.in_flight:
            raise UNetError(f"double free of pool slice #{slice_.index}")
        slice_.in_flight = False
        slice_.length = 0
        self._free.append(slice_.index)
        self.free_total += 1


def _buffer_address(buf: bytearray) -> int:
    """The arena's base address, via ctypes (0 when ctypes is absent —
    the portable paths never dereference it)."""
    try:
        import ctypes

        return ctypes.addressof(ctypes.c_char.from_buffer(buf))
    except Exception:  # pragma: no cover - exotic platforms
        return 0
