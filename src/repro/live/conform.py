"""Conformance execution on the live U-Net/OS substrate.

``run_live_case`` drives the *same* workload and content-addressed
fault schedule the simulated substrates run — faults applied at the
live framing layer by a
:class:`~repro.faults.scripted.DatagramScriptedStage` — and returns the
same :class:`~repro.conformance.observe.ObservedTrace` shape, so the
differential checker can diff ATM vs FE vs reference model vs wall
clock in one report.

Live executions register with ``relaxed_timing=True``: retransmission
counts depend on when the OS scheduler ran the doorbell loop, so the
checker compares them only loosely.  Everything semantic — dispatch
order, reply sets, drop classes, occurrence-0 fault hits, the online
window/credit/continuity invariants — is compared exactly; that is the
point of the exercise.

``inject_live_bug`` mirrors the checker's bug library onto
:class:`~repro.live.am.LiveAm`'s spec seams, proving the harness
catches the same semantic regressions on a wall-clock execution.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from ..am.am import AmError
from ..am.protocol import EPOCH_MOD, seq_add, seq_lt
from ..am.spec import epoch_is_stale
from ..conformance.observe import ObservationProbe, ObservedTrace
from ..conformance.schedule import ConformanceCase
from ..core import EndpointConfig
from ..core.errors import UNetError
from ..core.substrates import register_substrate
from ..faults.crash import ChainedStage, EndpointLifecycle, lifecycle_stage_factory
from ..faults.scripted import scripted_stage_factory
from .am import LiveAm
from .backend import LiveCluster
from .clock import WallClock
from .doorbell import DEFAULT_DOORBELL_MODE
from .transport import available_transport_kinds, make_transport, transport_available

__all__ = ["run_live_case", "inject_live_bug", "LIVE_BUGS",
           "WALL_LIMIT_US", "register_live_substrates"]

#: hard wall-clock ceiling per live execution, whatever the case says
WALL_LIMIT_US = 8_000_000.0
#: wall-clock drain after the workload, so tail acks settle
_DRAIN_US = 500_000.0


# --------------------------------------------------------------- bug library
def _buggy_credit_blocked(self, peer) -> bool:
    """The classic off-by-one: sends while remote credit is exactly 0."""
    return (self.config.credit_flow and peer.remote_credit is not None
            and peer.remote_credit < 0)  # BUG: spec says <= 0


def _buggy_acked_seqs(self, peer, ack: int):
    """Cumulative-ack fencepost: also acks the packet the receiver is
    still waiting for, so a dropped packet is never retransmitted."""
    return [seq for seq in peer.unacked if seq_lt(seq, seq_add(ack, 1))]  # BUG


def _buggy_epoch_stale(self, claimed, current) -> bool:
    """Epoch fence off by one incarnation: traffic stamped with the
    immediately previous epoch is admitted instead of fenced."""
    if claimed is not None and (current - claimed) % EPOCH_MOD == 1:
        return False  # BUG: one-stale traffic admitted
    return epoch_is_stale(claimed, current)


def _buggy_reconnect_plan(self, peer, horizon, restarted):
    """Reconnect ignores the restart flag: nothing is abandoned, so the
    old window replays into the fresh incarnation."""
    return [], []  # BUG: spec abandons everything when the peer restarted


# the SACK/ECN seams take only plain arguments, so the simulated
# checker's patch functions apply to LiveAm verbatim — one bug, both
# engines, by construction
from ..conformance.checker import _buggy_ecn_echo, _buggy_sack_plan  # noqa: E402

#: same bug names as ``repro.conformance.checker.BUGS``, patched onto
#: the live endpoint's spec seams
LIVE_BUGS = {
    "credit-gate": {"_credit_blocked": _buggy_credit_blocked},
    "ack-horizon": {"_acked_seqs": _buggy_acked_seqs},
    "epoch-fence": {"_epoch_stale": _buggy_epoch_stale},
    "replay-horizon": {"_reconnect_plan": _buggy_reconnect_plan},
    "sack-bitmap-shift": {"_sack_plan": _buggy_sack_plan},
    "ecn-echo-drop": {"_ecn_echo": _buggy_ecn_echo},
}


@contextmanager
def inject_live_bug(name: Optional[str]):
    """Temporarily install a named bug into :class:`LiveAm`."""
    if name is None:
        yield
        return
    if name not in LIVE_BUGS:
        raise ValueError(f"bug {name!r} has no live patch; "
                         f"choose from {sorted(LIVE_BUGS)}")
    patches = LIVE_BUGS[name]
    saved = {attr: getattr(LiveAm, attr) for attr in patches}
    try:
        for attr, fn in patches.items():
            setattr(LiveAm, attr, fn)
        yield
    finally:
        for attr, fn in saved.items():
            setattr(LiveAm, attr, fn)


# ------------------------------------------------------------------- running
def _payload(i: int, size: int) -> bytes:
    # must match the checker's workload payloads byte-for-byte
    return bytes((i + j) % 256 for j in range(size))


def run_live_case(case: ConformanceCase, transport_kind: str = "unix",
                  bug: Optional[str] = None,
                  doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> ObservedTrace:
    """Run ``case`` on U-Net/OS and collect its observable trace.

    ``doorbell_mode`` selects the backend's doorbell discipline —
    busy-poll, event (epoll-parked), or batched (pooled zero-copy
    RX/TX with sendmmsg/recvmmsg) — and must be observably invisible
    here: the parity matrix diffs every mode against the reference
    model and demands zero semantic divergence.
    """
    clock = WallClock()
    limit_us = min(case.time_limit_us, WALL_LIMIT_US)
    with inject_live_bug(bug), LiveCluster(
            lambda name: make_transport(transport_kind, name), clock,
            doorbell_mode=doorbell_mode) as cluster:
        n0 = cluster.add_node("n0")
        n1 = cluster.add_node("n1")
        sender_cfg = EndpointConfig(num_buffers=64, buffer_size=2048,
                                    send_queue_depth=64, recv_queue_depth=64)
        receiver_cfg = EndpointConfig(num_buffers=case.rx_buffers + 24,
                                      buffer_size=2048, send_queue_depth=64,
                                      recv_queue_depth=case.recv_queue_depth)
        ep0 = n0.create_user_endpoint(config=sender_cfg, rx_buffers=32)
        ep1 = n1.create_user_endpoint(config=receiver_cfg,
                                      rx_buffers=case.rx_buffers)
        ch0, ch1 = cluster.connect(ep0, ep1)
        am0 = LiveAm(0, ep0, config=case.am_config(receiver=False))
        am1 = LiveAm(1, ep1, config=case.am_config(receiver=True))
        am0.connect_peer(1, ch0)
        am1.connect_peer(0, ch1)

        name = f"live-{transport_kind}"
        probe = ObservationProbe(name, requester_node=0,
                                 config_window=am0.config.window)
        probe.attach_am(am0)
        probe.attach_am(am1)
        probe.attach_endpoint(ep0.endpoint)
        probe.attach_endpoint(ep1.endpoint)
        probe.attach_demux(n0.demux)
        probe.attach_demux(n1.demux)

        # same keying as the simulated substrates: the stage at n1 sees
        # the request path, the one at n0 the reply path
        fwd_stage = scripted_stage_factory(n1, case.fwd_faults())
        rev_stage = scripted_stage_factory(n0, case.rev_faults())
        fwd_stage.reset()
        rev_stage.reset()
        fwd_events = case.fwd_lifecycle()
        fwd_life = None
        if fwd_events:
            lifecycle = EndpointLifecycle(crash=am1.crash, restart=am1.restart)
            fwd_life = lifecycle_stage_factory(n1, fwd_events, lifecycle.fire)
            fwd_life.reset()
        # one ingress slot on the live backend: chain scripted faults
        # first so a scripted drop never fires a lifecycle trigger
        n1.install_ingress_stage(ChainedStage(fwd_stage, fwd_life))
        n0.install_ingress_stage(rev_stage)

        integrity_failures: List[int] = []
        rpc_errors: List[str] = []

        def handler(ctx) -> None:
            i = ctx.args[0]
            if (ctx.data != _payload(i, len(ctx.data))
                    or len(ctx.data) != case.messages[i].size):
                integrity_failures.append(i)

        def rpc_handler(ctx) -> None:
            handler(ctx)
            ctx.reply(args=(ctx.args[0] * 2 + 1,))

        am1.register_handler(1, handler)
        am1.register_handler(2, rpc_handler)

        def pump() -> None:
            moved = cluster.step()
            am0.service()
            am1.service()
            if not moved and doorbell_mode == "event":
                # park on epoll instead of spinning: the event doorbell
                # wakes us the moment either socket turns readable
                cluster.wait_readable(500.0)

        deadline = clock.now_us() + limit_us
        completed = True
        try:
            for i, message in enumerate(case.messages):
                remaining = deadline - clock.now_us()
                if remaining <= 0:
                    raise AmError("wall-clock limit reached")
                data = _payload(i, message.size)
                if message.rpc:
                    args, _d = am0.rpc(1, 2, args=(i,), data=data,
                                       pump=pump, limit_us=remaining)
                    if args[0] != i * 2 + 1:
                        rpc_errors.append(
                            f"rpc {i} returned {args[0]}, wanted {i * 2 + 1}")
                else:
                    am0.request(1, 1, args=(i,), data=data,
                                pump=pump, limit_us=remaining)
        except (AmError, UNetError):
            # wall-clock limit, or the sender declared the peer dead and
            # refused the remaining sends: either way, incomplete
            completed = False

        def settled() -> bool:
            """Crash cases end at fate resolution, not at the last send:
            every lifecycle event fired, no send still awaiting a fate,
            and neither side mid-handshake."""
            if fwd_life is not None and len(fwd_life.fired) < len(fwd_events):
                return False
            s0 = am0.snapshot().get(1)
            if s0 and (s0["unacked"] or s0["reconnecting"]):
                return False
            s1 = am1.snapshot().get(0)
            return not (s1 and s1["reconnecting"])

        if completed and case.lifecycle:
            while clock.now_us() < deadline and not settled():
                pump()
            completed = settled()
        completion = clock.now_us() if completed else limit_us
        if completed:
            drain_deadline = min(deadline, clock.now_us() + _DRAIN_US)
            while clock.now_us() < drain_deadline:
                if am0.idle and am1.idle:
                    break
                pump()
            am0.shutdown()
            am1.shutdown()
            pump()

        for line in rpc_errors:
            probe.violations.append(f"rpc: {line}")
        if integrity_failures:
            probe.violations.append(
                f"integrity: corrupted payload reached the handler for ids "
                f"{sorted(set(integrity_failures))[:8]}")

        snapshots = {"am0": am0.snapshot(), "am1": am1.snapshot()}
        trace = probe.finish(completed, completion,
                             fired=fwd_stage.fired + rev_stage.fired,
                             snapshots=snapshots,
                             lifecycle_fired=(fwd_life.fired
                                              if fwd_life is not None else ()))
        trace.rexmit = sum(p["retransmissions"] for snap in snapshots.values()
                           for p in snap.values())
        trace.timeouts = sum(p["timeouts"] for snap in snapshots.values()
                             for p in snap.values())
        trace.dup_rx = sum(p["duplicates"] for snap in snapshots.values()
                           for p in snap.values())
        trace.credit_stalls = sum(p["credit_stalls"] for snap in snapshots.values()
                                  for p in snap.values())
        trace.ecn_marks = sum(p.get("ecn_marks", 0) for snap in snapshots.values()
                              for p in snap.values())
        trace.ecn_echoes = sum(p.get("ecn_echoes", 0) for snap in snapshots.values()
                               for p in snap.values())
        trace.ecn_backoffs = sum(p.get("ecn_backoffs", 0) for snap in snapshots.values()
                                 for p in snap.values())
        return trace


# -------------------------------------------------------------- registration
def _auto_kind() -> str:
    kinds = available_transport_kinds()
    if not kinds:
        raise RuntimeError("no live transport available on this machine")
    return kinds[0]  # prefer unix (SHM-like) when it exists


def register_live_substrates() -> None:
    """Install U-Net/OS runners in the global substrate registry."""
    register_substrate(
        "live", lambda case, bug=None: run_live_case(case, _auto_kind(), bug=bug),
        available=lambda: bool(available_transport_kinds()),
        relaxed_timing=True,
        description="U-Net/OS on the best available local transport")
    register_substrate(
        "live-unix", lambda case, bug=None: run_live_case(case, "unix", bug=bug),
        available=lambda: transport_available("unix"),
        relaxed_timing=True,
        description="U-Net/OS over AF_UNIX datagram sockets")
    register_substrate(
        "live-udp", lambda case, bug=None: run_live_case(case, "udp", bug=bug),
        available=lambda: transport_available("udp"),
        relaxed_timing=True,
        description="U-Net/OS over UDP loopback")
    register_substrate(
        "live-batched",
        lambda case, bug=None: run_live_case(case, _auto_kind(), bug=bug,
                                             doorbell_mode="batched"),
        available=lambda: bool(available_transport_kinds()),
        relaxed_timing=True,
        description="U-Net/OS with pooled zero-copy batched doorbells")
    register_substrate(
        "live-event",
        lambda case, bug=None: run_live_case(case, _auto_kind(), bug=bug,
                                             doorbell_mode="event"),
        available=lambda: bool(available_transport_kinds()),
        relaxed_timing=True,
        description="U-Net/OS with the epoll event doorbell")
