"""U-Net/OS: the live backend — real sockets behind the U-Net API.

One :class:`LiveBackend` is one node's "NIC plus kernel service": a
single datagram socket (:mod:`repro.live.transport`), a
:class:`~repro.core.mux.DemuxTable`, and the node's endpoints — which
are the *same* :class:`~repro.core.endpoint.Endpoint` objects the
simulated substrates serve (same buffer areas, same bounded
send/recv/free rings, same descriptor validation, same drop
vocabulary), timestamped through the :class:`~repro.core.clock.ClockShim`.

The fast-trap analogue is the **polling doorbell loop**: where U-Net/FE
trapped into the kernel to drain the send queue and U-Net/ATM had the
i960 poll doorbell words in NI memory, U-Net/OS drains every endpoint's
send queue and the socket's receive buffer from :meth:`service`, in
user context, with plain non-blocking syscalls.  ``kick`` is therefore
synchronous — by the time it returns, accepted descriptors have been
handed to the kernel (and marked complete, since a datagram ``sendto``
copies).  A send the kernel refuses (full peer buffer) stays on the
send queue: backpressure, never silent loss.

Wire format: a 6-byte frame header ``!HHH`` — destination port, source
node id, source port — in front of the payload, the moral equivalent of
U-Net/FE's MAC + U-Net-port header.  The (dst_port, src_node, src_port)
triple is the demux tag; unknown tags are counted and dropped at this
boundary, exactly as the NI firmware does.
"""

from __future__ import annotations

import heapq
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..core.api import ReceivedMessage
from ..core.channels import lookup_channel, register_channel
from ..core.clock import Clock, ClockShim
from ..core.descriptors import RecvDescriptor, SendDescriptor, SMALL_MESSAGE_MAX
from ..core.endpoint import Endpoint, EndpointConfig
from ..core.errors import AdmissionRejected, EndpointError, MessageTooLarge
from ..core.mux import ShardedDemux
from .bufpool import BufferPool, PooledSlice
from .doorbell import DEFAULT_DOORBELL_MODE, EventDoorbell, validate_doorbell_mode
from .transport import LiveTransport, RECV_BATCH

__all__ = ["LiveTag", "LiveBackend", "LiveUserEndpoint", "LiveCluster",
           "FRAME_HEADER", "FRAME_HEADER_SIZE", "DEFAULT_MAX_PDU",
           "POOL_SLOTS"]

#: dst_port, src_node, src_port
FRAME_HEADER = "!HHH"
FRAME_HEADER_SIZE = struct.calcsize(FRAME_HEADER)
#: precompiled once — the per-message fast paths call bound methods on
#: this instead of re-resolving the format through struct's cache
_FRAME_STRUCT = struct.Struct(FRAME_HEADER)

#: largest U-Net message U-Net/OS carries in one datagram; comfortably
#: above both simulated substrates' PDUs and far below any datagram limit
DEFAULT_MAX_PDU = 4096

#: slots per zero-copy pool in batched mode (one batch deep on each of
#: TX and RX, so a full drain never stalls on its own pool)
POOL_SLOTS = RECV_BATCH

#: longest an event-mode cluster parks in epoll before re-polling; short
#: enough that AM retransmission timers still fire close to on time
_EVENT_WAIT_US = 500.0


class LiveTag:
    """Message tag of one live channel (the EthernetTag analogue)."""

    __slots__ = ("dest_address", "dst_port", "src_node", "src_port")

    def __init__(self, dest_address, dst_port: int, src_node: int, src_port: int) -> None:
        self.dest_address = dest_address
        self.dst_port = dst_port
        self.src_node = src_node
        self.src_port = src_port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveTag dst={self.dest_address!r}:{self.dst_port} "
                f"src=n{self.src_node}:{self.src_port}>")


class LiveBackend:
    """One node: transport socket + demux + endpoints + doorbell loop."""

    name = "U-Net/OS"
    #: lets :func:`repro.faults.scripted.scripted_stage_factory` pick the
    #: datagram stage and skip the frame header when content-addressing
    frame_header_size = FRAME_HEADER_SIZE

    def __init__(self, transport: LiveTransport, clock: Clock,
                 node_id: int = 0, node_name: str = "n0",
                 max_pdu: int = DEFAULT_MAX_PDU,
                 doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> None:
        self.transport = transport
        self.clock = clock
        self.sim = ClockShim(clock)
        self.node_id = node_id
        self.node_name = node_name
        self._max_pdu = max_pdu
        self.doorbell_mode = validate_doorbell_mode(doorbell_mode)
        #: zero-copy frame pools, only in batched mode — the busy-poll
        #: and event data paths stay byte-for-byte the PR-4 baseline
        slot = max_pdu + FRAME_HEADER_SIZE
        if self.doorbell_mode == "batched":
            self._tx_pool: Optional[BufferPool] = BufferPool(POOL_SLOTS, slot)
            self._rx_pool: Optional[BufferPool] = BufferPool(POOL_SLOTS, slot)
        else:
            self._tx_pool = None
            self._rx_pool = None
        self.endpoints: List[Endpoint] = []
        self._next_endpoint_id = 0
        self._next_port = 1
        self.demux = ShardedDemux(name=f"{node_name}.demux")
        #: optional ingress fault stage (conformance schedules interpose
        #: here, at the framing layer): ``process(raw, now_us, emit)``
        self._ingress_stage = None
        #: (due_us, tiebreak, raw) — datagrams a fault stage delayed
        self._held: List[Tuple[float, int, bytes]] = []
        self._held_count = 0
        # kernel-level drop accounting (shared DROP_COUNTERS vocabulary)
        self.recv_queue_drops = 0
        self.no_buffer_drops = 0
        self.quarantine_drops = 0
        self.admission_rejected_drops = 0
        #: optional :class:`~repro.core.tenancy.AdmissionController`,
        #: same contract as the simulated backends
        self.admission = None
        self.closed = False

    # -- endpoint lifecycle ------------------------------------------------
    @property
    def max_pdu(self) -> int:
        return self._max_pdu

    @property
    def defer_kick(self) -> bool:
        """Batched mode rings the doorbell per service pass, not per
        send: producers enqueue with ``kick=False`` and the next pass
        flushes a whole batch in one ``sendmmsg``."""
        return self._tx_pool is not None

    def create_endpoint(self, config: Optional[EndpointConfig] = None,
                        owner: str = "", tenant: str = "", qos: str = "") -> Endpoint:
        if self.admission is not None:
            from ..core.tenancy import qos_class
            try:
                self.admission.admit(tenant, qos_class(qos))
            except AdmissionRejected:
                self.admission_rejected_drops += 1
                raise
        endpoint = Endpoint(self.sim, self._next_endpoint_id,
                            config or EndpointConfig(), owner=owner,
                            tenant=tenant, qos=qos)
        self._next_endpoint_id += 1
        self.endpoints.append(endpoint)
        return endpoint

    def create_user_endpoint(self, config: Optional[EndpointConfig] = None,
                             rx_buffers: int = 32, owner: str = "",
                             tenant: str = "", qos: str = "") -> "LiveUserEndpoint":
        endpoint = self.create_endpoint(config, owner=owner or self.node_name,
                                        tenant=tenant, qos=qos)
        user = LiveUserEndpoint(self, endpoint)
        user.donate_rx_buffers(rx_buffers)
        return user

    def destroy_endpoint(self, endpoint: Endpoint) -> None:
        """Teardown: stop demultiplexing to it; in-flight datagrams for
        it die at the demux step as unknown tags (protection)."""
        if endpoint not in self.endpoints:
            raise EndpointError(
                f"endpoint {endpoint.id} does not belong to {self.node_name}")
        self.endpoints.remove(endpoint)
        self.demux.unregister_endpoint(endpoint)
        if self.admission is not None:
            self.admission.release(endpoint.tenant)

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # -- doorbell / service loop -------------------------------------------
    def kick(self, endpoint: Endpoint) -> int:
        """Drain ``endpoint``'s send queue onto the socket (synchronous).

        Returns the number of descriptors handed to the kernel.  A
        would-block leaves the head descriptor queued for the next pass.
        """
        if self.closed:
            return 0  # teardown: queued descriptors die with the node
        if self._tx_pool is not None:
            return self._kick_batched(endpoint)
        sent = 0
        while True:
            descriptor = endpoint.send_queue.peek()
            if descriptor is None:
                break
            binding = endpoint.channels.get(descriptor.channel_id)
            if binding is None:
                # validated at post_send; a vanished channel means teardown
                endpoint.take_send_descriptor()
                continue
            tag: LiveTag = binding.tag
            payload = b"".join(
                endpoint.buffers.buffer(idx).read(length)
                for idx, length in descriptor.segments)
            frame = struct.pack(FRAME_HEADER, tag.dst_port, tag.src_node,
                                tag.src_port) + payload
            if not self.transport.send(tag.dest_address, frame):
                break  # backpressure: retry on the next doorbell pass
            endpoint.take_send_descriptor()
            endpoint.send_completed(descriptor)
            binding.messages_sent += 1
            sent += 1
        return sent

    def _compose_frame(self, endpoint: Endpoint, descriptor: SendDescriptor,
                       tag: LiveTag, slice_: PooledSlice) -> None:
        """Frame ``descriptor`` into ``slice_`` without allocating: pack
        the header in place, copy payload straight between the two
        pinned areas."""
        _FRAME_STRUCT.pack_into(slice_.view, 0, tag.dst_port,
                                tag.src_node, tag.src_port)
        offset = FRAME_HEADER_SIZE
        for idx, length in descriptor.segments:
            if length:
                slice_.view[offset:offset + length] = \
                    endpoint.buffers.buffer(idx).view(length)
                offset += length
        slice_.length = offset

    def _kick_batched(self, endpoint: Endpoint) -> int:
        """Batched doorbell: compose a queue prefix into the TX pool,
        flush it in one ``send_many``, pop exactly what the kernel
        accepted.  Identical backpressure contract to the scalar loop —
        the unaccepted tail stays queued, FIFO order intact."""
        pool = self._tx_pool
        sent = 0
        while True:
            head = endpoint.send_queue.peek()
            if head is None:
                break
            if endpoint.channels.get(head.channel_id) is None:
                # validated at post_send; a vanished channel means teardown
                endpoint.take_send_descriptor()
                continue
            batch: List[Tuple[object, PooledSlice]] = []
            bindings = []
            window = min(POOL_SLOTS, self.transport.tx_hint)
            for descriptor in endpoint.send_queue.peek_many(window):
                binding = endpoint.channels.get(descriptor.channel_id)
                if binding is None:
                    break  # flush up to here; it becomes the head next pass
                slice_ = pool.try_alloc()
                if slice_ is None:
                    break  # pool backpressure: flush what we composed
                self._compose_frame(endpoint, descriptor, binding.tag, slice_)
                batch.append((binding.tag.dest_address, slice_))
                bindings.append(binding)
            if not batch:
                break
            accepted = self.transport.send_many(batch)
            for i in range(accepted):
                descriptor = endpoint.take_send_descriptor()
                endpoint.send_completed(descriptor)
                bindings[i].messages_sent += 1
            for _dest, slice_ in batch:
                pool.free(slice_)
            sent += accepted
            if accepted < len(batch):
                break  # transport backpressure: the tail stays queued
        return sent

    def service(self) -> int:
        """One doorbell-loop pass: egress drain, ingress drain, held
        (fault-delayed) datagrams whose deadline passed.  Returns the
        number of datagrams delivered toward endpoints."""
        if self.closed:
            return 0
        for endpoint in self.endpoints:
            if not endpoint.send_queue.is_empty:
                self.kick(endpoint)
        delivered = 0
        now = self.clock.now_us()
        if self._rx_pool is not None:
            for slice_ in self.transport.recv_batch_into(self._rx_pool):
                try:
                    if self._ingress_stage is None:
                        delivered += self._deliver(slice_.payload())
                    else:
                        # a fault stage may hold the datagram past this
                        # pass; materialize so the recycled slot can't
                        # alias what the stage is still holding
                        delivered += self._ingress(bytes(slice_.payload()), now)
                finally:
                    self._rx_pool.free(slice_)
        else:
            for raw in self.transport.recv_batch():
                delivered += self._ingress(raw, now)
        while self._held and self._held[0][0] <= self.clock.now_us():
            _due, _n, raw = heapq.heappop(self._held)
            delivered += self._deliver(raw)
        return delivered

    def service_fast(self, on_message) -> int:
        """Fast-path doorbell pass: batched ingress delivered as
        zero-copy upcalls.

        Runs the same egress kick and the same protection checks as
        :meth:`service` — demux by tag, quarantine, shared drop
        vocabulary — but hands each payload to ``on_message(endpoint,
        channel_id, payload_view)`` straight out of the RX pool slice,
        skipping descriptor composition and the buffer-area copy: the
        moral equivalent of an Active Message handler running directly
        on the NI's receive buffer.  The view dies when the upcall
        returns (the slot is recycled); consumers that keep data copy
        out, exactly as AM handlers must.  Batched mode only.
        """
        if self.closed:
            return 0
        if self._rx_pool is None:
            raise EndpointError(
                f"{self.node_name}: service_fast requires doorbell_mode="
                f"'batched' (got {self.doorbell_mode!r})")
        for endpoint in self.endpoints:
            if not endpoint.send_queue.is_empty:
                self.kick(endpoint)
        delivered = 0
        slices = self.transport.recv_batch_into(self._rx_pool)
        # bound methods hoisted: this loop is the per-message RX cost
        free = self._rx_pool.free
        unpack = _FRAME_STRUCT.unpack_from
        lookup = self.demux.lookup
        done = 0
        try:
            for slice_ in slices:
                length = slice_.length
                view = slice_.view
                if length >= FRAME_HEADER_SIZE:
                    entry = lookup(unpack(view, 0))
                    # None -> unknown tag, counted by the demux table
                    if entry is not None:
                        endpoint, channel_id = entry
                        if endpoint.quarantined:
                            self.quarantine_drops += 1
                            endpoint.note_drop("quarantine_drops")
                        else:
                            on_message(endpoint, channel_id,
                                       view[FRAME_HEADER_SIZE:length])
                            delivered += 1
                free(slice_)
                done += 1
        except BaseException:
            # free is the loop's last step, so slices[done:] are still
            # in flight (including the one the upcall blew up on)
            for slice_ in slices[done:]:
                free(slice_)
            raise
        return delivered

    def install_ingress_stage(self, stage) -> None:
        """Interpose a fault stage at the framing layer (ingress side)."""
        self._ingress_stage = stage

    def _ingress(self, raw: bytes, now: float) -> int:
        if self._ingress_stage is None:
            return self._deliver(raw)
        delivered = 0

        def emit(pdu, delay_us: float = 0.0) -> None:
            nonlocal delivered
            if delay_us <= 0.0:
                delivered += self._deliver(pdu)
            else:
                self._held_count += 1
                heapq.heappush(self._held, (now + delay_us, self._held_count, pdu))

        self._ingress_stage.process(raw, now, emit)
        return delivered

    def _deliver(self, raw) -> int:
        """Demux one datagram (``bytes`` or a pool-slice ``memoryview``)
        to its endpoint's receive queue."""
        if len(raw) < FRAME_HEADER_SIZE:
            return 0
        dst_port, src_node, src_port = struct.unpack_from(FRAME_HEADER, raw, 0)
        payload = raw[FRAME_HEADER_SIZE:]
        entry = self.demux.lookup((dst_port, src_node, src_port))
        if entry is None:
            return 0  # unknown tag: counted by the demux table
        endpoint, channel_id = entry
        if endpoint.quarantined:
            self.quarantine_drops += 1
            endpoint.note_drop("quarantine_drops")
            return 0
        if len(payload) <= SMALL_MESSAGE_MAX:
            # inline descriptors own their bytes (the slice is recycled
            # after this call); bytes(bytes) is free for the scalar path
            descriptor = RecvDescriptor(channel_id=channel_id,
                                        length=len(payload),
                                        inline=bytes(payload))
        else:
            size = endpoint.buffers.buffer_size
            needed = (len(payload) + size - 1) // size
            indices: List[int] = []
            for _ in range(needed):
                index = endpoint.take_free_buffer()
                if index is None:
                    for idx in indices:  # partial claim: give them back
                        endpoint.donate_free_buffer(idx)
                    self.no_buffer_drops += 1
                    endpoint.note_drop("no_buffer_drops")
                    return 0
                indices.append(index)
            segments = []
            for k, index in enumerate(indices):
                chunk = payload[k * size:(k + 1) * size]
                buf = endpoint.buffers.buffer(index)
                buf.clear()
                buf.write(chunk)
                segments.append((index, len(chunk)))
            descriptor = RecvDescriptor(channel_id=channel_id,
                                        length=len(payload), segments=segments)
        if not endpoint.deliver(descriptor):
            # receive queue full: recycle the buffers we just claimed
            for index, _length in descriptor.segments:
                endpoint.donate_free_buffer(index)
            self.recv_queue_drops += 1
            return 0
        return 1

    # -- accounting ---------------------------------------------------------
    def drop_stats(self) -> dict:
        return {
            "recv_queue_drops": self.recv_queue_drops,
            "no_buffer_drops": self.no_buffer_drops,
            "unknown_tag_drops": self.demux.unknown_tag_drops,
            "quarantine_drops": self.quarantine_drops,
            "stale_epoch_drops": sum(ep.stale_epoch_drops for ep in self.endpoints),
            "peer_dead_drops": sum(ep.peer_dead_drops for ep in self.endpoints),
            "admission_rejected_drops": self.admission_rejected_drops,
        }

    def close(self) -> None:
        """Idempotent teardown: the socket FD is released exactly once,
        no matter what state the doorbell loop or any armed AM
        retransmission timer was in when the node went down."""
        if self.closed:
            return
        self.closed = True
        self.transport.close()


class LiveUserEndpoint:
    """Synchronous application-side wrapper (the live ``UserEndpoint``).

    Same contract as :class:`repro.core.api.UserEndpoint` — compose into
    the buffer area, push a validated descriptor, ring the doorbell —
    but blocking is explicit polling against the wall clock instead of
    simulation events.
    """

    def __init__(self, backend: LiveBackend, endpoint: Endpoint) -> None:
        self.backend = backend
        self.endpoint = endpoint
        self._tx_inflight: List[Tuple[SendDescriptor, List[int]]] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.backend.destroy_endpoint(self.endpoint)

    # -- sending -----------------------------------------------------------
    def send(self, channel_id: int, payload: bytes, kick: bool = True) -> None:
        if self._closed:
            raise EndpointError(f"endpoint {self.endpoint.id} is closed")
        if len(payload) > self.backend.max_pdu:
            raise MessageTooLarge(
                f"{len(payload)} bytes > max PDU {self.backend.max_pdu}")
        lookup_channel(self.endpoint, channel_id)  # protection check
        self._reclaim_completed()
        buffers = self._compose_buffers(payload)
        descriptor = SendDescriptor(
            channel_id=channel_id,
            segments=[(buf.index, length) for buf, length in buffers])
        if self.endpoint.send_queue.is_full:
            self.backend.kick(self.endpoint)  # drain in our own context
        if self.endpoint.send_queue.is_full:
            for buf, _length in buffers:
                self.endpoint.buffers.free(buf)
            raise EndpointError(
                f"endpoint {self.endpoint.id}: send queue full "
                f"(transport backpressure)")
        self.endpoint.post_send(descriptor)
        self.endpoint.messages_sent += 1
        self.endpoint.bytes_sent += len(payload)
        self._tx_inflight.append((descriptor, [buf.index for buf, _l in buffers]))
        if kick:
            self.backend.kick(self.endpoint)

    def kick(self) -> None:
        self.backend.kick(self.endpoint)

    def send_burst(self, channel_id: int, payloads: List[bytes]) -> int:
        """Zero-copy burst send: frame ``payloads`` straight into the TX
        pool and flush with as few syscalls as the kernel allows.

        One protection check covers the burst (one channel, one tag —
        the paper's per-message protection is per-channel, established
        at channel-registration time).  Returns how many messages the
        kernel accepted, always a prefix of ``payloads``; backpressure
        (pool or socket) yields a partial count and the caller retries
        the tail.  Batched mode only.
        """
        if self._closed:
            raise EndpointError(f"endpoint {self.endpoint.id} is closed")
        pool = self.backend._tx_pool
        if pool is None:
            raise EndpointError(
                f"endpoint {self.endpoint.id}: send_burst requires "
                f"doorbell_mode='batched' "
                f"(got {self.backend.doorbell_mode!r})")
        max_pdu = self.backend.max_pdu
        for payload in payloads:
            if len(payload) > max_pdu:
                raise MessageTooLarge(
                    f"{len(payload)} bytes > max PDU {max_pdu}")
        binding = lookup_channel(self.endpoint, channel_id)  # protection
        tag: LiveTag = binding.tag
        # one channel means one header for the whole burst: pack it once
        header = _FRAME_STRUCT.pack(tag.dst_port, tag.src_node, tag.src_port)
        dest = tag.dest_address
        transport = self.backend.transport
        try_alloc, free = pool.try_alloc, pool.free
        sent = 0
        total = len(payloads)
        while sent < total:
            batch: List[PooledSlice] = []
            append = batch.append
            j = sent
            # compose only what the kernel has recently been accepting:
            # frames composed past the would-block point are pure waste
            limit = min(total, sent + transport.tx_hint)
            while j < limit:
                slice_ = try_alloc()
                if slice_ is None:
                    break
                payload = payloads[j]
                end = FRAME_HEADER_SIZE + len(payload)
                view = slice_.view
                view[:FRAME_HEADER_SIZE] = header
                view[FRAME_HEADER_SIZE:end] = payload
                slice_.length = end
                append(slice_)
                j += 1
            if not batch:
                break  # pool exhausted with nothing composed
            accepted = transport.send_many_to(dest, batch)
            for k in range(accepted):
                self.endpoint.bytes_sent += batch[k].length - FRAME_HEADER_SIZE
            for slice_ in batch:
                free(slice_)
            sent += accepted
            if accepted < len(batch):
                break  # kernel backpressure: caller retries the tail
        self.endpoint.messages_sent += sent
        binding.messages_sent += sent
        return sent

    def _compose_buffers(self, payload: bytes):
        size = self.endpoint.buffers.buffer_size
        if not payload:
            return [(self._alloc_tx_buffer(), 0)]
        buffers = []
        for start in range(0, len(payload), size):
            chunk = payload[start:start + size]
            buf = self._alloc_tx_buffer()
            buf.write(chunk)
            buffers.append((buf, len(chunk)))
        return buffers

    def _alloc_tx_buffer(self):
        buf = self.endpoint.buffers.try_alloc()
        if buf is None:
            # live sends complete at kick time, so one reclaim pass is
            # the whole backpressure story
            self.backend.kick(self.endpoint)
            self._reclaim_completed()
            buf = self.endpoint.buffers.try_alloc()
        if buf is None:
            raise EndpointError(
                f"endpoint {self.endpoint.id}: buffer area exhausted")
        return buf

    def _reclaim_completed(self) -> None:
        still = []
        for descriptor, indices in self._tx_inflight:
            if descriptor.completed:
                for idx in indices:
                    self.endpoint.buffers.free(self.endpoint.buffers.buffer(idx))
            else:
                still.append((descriptor, indices))
        self._tx_inflight[:] = still

    # -- receiving ---------------------------------------------------------
    def donate_rx_buffers(self, count: int) -> None:
        for _ in range(count):
            buf = self.endpoint.buffers.try_alloc()
            if buf is None:
                raise EndpointError(
                    "buffer area exhausted while donating receive buffers")
            self.endpoint.donate_free_buffer(buf.index)

    def poll(self) -> Optional[ReceivedMessage]:
        descriptor = self.endpoint.poll_receive()
        if descriptor is None:
            return None
        return self._consume(descriptor)

    def _consume(self, descriptor: RecvDescriptor) -> ReceivedMessage:
        data = self.endpoint.read_message(descriptor)
        self.endpoint.recycle(descriptor)
        binding = self.endpoint.channels.get(descriptor.channel_id)
        if binding is not None:
            binding.messages_received += 1
        return ReceivedMessage(descriptor.channel_id, data, descriptor.timestamp)


class LiveCluster:
    """N live nodes in one process, serviced by one polling loop.

    The cluster is the live stand-in for a simulated network object:
    it creates nodes (one transport socket each), wires channels (tags
    plus demux rows on both sides — the OS-mediated channel service),
    and pumps every node's doorbell loop from :meth:`step`.
    """

    def __init__(self, make_transport: Callable[[str], LiveTransport],
                 clock: Clock, max_pdu: int = DEFAULT_MAX_PDU,
                 doorbell_mode: str = DEFAULT_DOORBELL_MODE) -> None:
        self._make_transport = make_transport
        self.clock = clock
        self.max_pdu = max_pdu
        self.doorbell_mode = validate_doorbell_mode(doorbell_mode)
        #: event mode parks here when a full pass moved nothing; other
        #: modes sleep blind (busy-poll's fixed backoff)
        self._doorbell = (EventDoorbell()
                          if self.doorbell_mode == "event" else None)
        self.nodes: List[LiveBackend] = []

    def add_node(self, name: Optional[str] = None) -> LiveBackend:
        node_id = len(self.nodes)
        node_name = name or f"n{node_id}"
        backend = LiveBackend(self._make_transport(node_name), self.clock,
                              node_id=node_id, node_name=node_name,
                              max_pdu=self.max_pdu,
                              doorbell_mode=self.doorbell_mode)
        self.nodes.append(backend)
        return backend

    def connect(self, a: LiveUserEndpoint, b: LiveUserEndpoint) -> Tuple[int, int]:
        """Create the channel pair between two live endpoints.

        Returns ``(channel_on_a, channel_on_b)``, mirroring the
        simulated networks' ``connect``.
        """
        node_a, node_b = a.backend, b.backend
        port_a, port_b = node_a.allocate_port(), node_b.allocate_port()
        ch_a = len(a.endpoint.channels)
        ch_b = len(b.endpoint.channels)
        register_channel(a.endpoint, ch_a,
                         LiveTag(node_b.transport.address, port_b,
                                 node_a.node_id, port_a),
                         peer=node_b.node_name)
        register_channel(b.endpoint, ch_b,
                         LiveTag(node_a.transport.address, port_a,
                                 node_b.node_id, port_b),
                         peer=node_a.node_name)
        node_a.demux.register((port_a, node_b.node_id, port_b), a.endpoint, ch_a)
        node_b.demux.register((port_b, node_a.node_id, port_a), b.endpoint, ch_b)
        return ch_a, ch_b

    def step(self) -> int:
        """Service every node once; returns datagrams delivered."""
        return sum(node.service() for node in self.nodes)

    def run_until(self, predicate: Callable[[], bool], limit_us: float,
                  idle_sleep_us: float = 50.0) -> bool:
        """Pump the cluster until ``predicate()`` or the wall deadline.

        Sleeps briefly only when a full pass moved no data, so the loop
        busy-polls under load (the doorbell model) without pinning a
        CPU while idle.
        """
        deadline = self.clock.now_us() + limit_us
        while self.clock.now_us() < deadline:
            if predicate():
                return True
            if self.step() == 0:
                if self._doorbell is not None:
                    # interrupt-analogue: park until a socket is
                    # readable (or a short timeout keeps AM timers live)
                    self._doorbell.sync(node.transport.sock
                                        for node in self.nodes)
                    self._doorbell.wait_us(
                        min(_EVENT_WAIT_US, deadline - self.clock.now_us()))
                elif idle_sleep_us > 0:
                    self.clock.sleep_us(idle_sleep_us)
        return predicate()

    def wait_readable(self, timeout_us: float) -> int:
        """Event-mode idle wait for external pump loops; returns the
        number of readable sockets (0 on timeout or in other modes)."""
        if self._doorbell is None:
            return 0
        self._doorbell.sync(node.transport.sock for node in self.nodes)
        return self._doorbell.wait_us(timeout_us)

    def close(self) -> None:
        """Close every node's transport, even when one close raises.

        An abrupt teardown (a soak aborting mid-crash-fault, a test
        failing with retransmit timers armed) must not leak the
        remaining nodes' socket FDs because the first node's close blew
        up; the first error is re-raised after all sockets are released.
        """
        first_error: Optional[BaseException] = None
        for node in self.nodes:
            try:
                node.close()
            except Exception as exc:  # pragma: no cover - defensive
                if first_error is None:
                    first_error = exc
        if self._doorbell is not None:
            self._doorbell.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
