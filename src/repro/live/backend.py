"""U-Net/OS: the live backend — real sockets behind the U-Net API.

One :class:`LiveBackend` is one node's "NIC plus kernel service": a
single datagram socket (:mod:`repro.live.transport`), a
:class:`~repro.core.mux.DemuxTable`, and the node's endpoints — which
are the *same* :class:`~repro.core.endpoint.Endpoint` objects the
simulated substrates serve (same buffer areas, same bounded
send/recv/free rings, same descriptor validation, same drop
vocabulary), timestamped through the :class:`~repro.core.clock.ClockShim`.

The fast-trap analogue is the **polling doorbell loop**: where U-Net/FE
trapped into the kernel to drain the send queue and U-Net/ATM had the
i960 poll doorbell words in NI memory, U-Net/OS drains every endpoint's
send queue and the socket's receive buffer from :meth:`service`, in
user context, with plain non-blocking syscalls.  ``kick`` is therefore
synchronous — by the time it returns, accepted descriptors have been
handed to the kernel (and marked complete, since a datagram ``sendto``
copies).  A send the kernel refuses (full peer buffer) stays on the
send queue: backpressure, never silent loss.

Wire format: a 6-byte frame header ``!HHH`` — destination port, source
node id, source port — in front of the payload, the moral equivalent of
U-Net/FE's MAC + U-Net-port header.  The (dst_port, src_node, src_port)
triple is the demux tag; unknown tags are counted and dropped at this
boundary, exactly as the NI firmware does.
"""

from __future__ import annotations

import heapq
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..core.api import ReceivedMessage
from ..core.channels import lookup_channel, register_channel
from ..core.clock import Clock, ClockShim
from ..core.descriptors import RecvDescriptor, SendDescriptor, SMALL_MESSAGE_MAX
from ..core.endpoint import Endpoint, EndpointConfig
from ..core.errors import AdmissionRejected, EndpointError, MessageTooLarge
from ..core.mux import ShardedDemux
from .transport import LiveTransport

__all__ = ["LiveTag", "LiveBackend", "LiveUserEndpoint", "LiveCluster",
           "FRAME_HEADER", "FRAME_HEADER_SIZE", "DEFAULT_MAX_PDU"]

#: dst_port, src_node, src_port
FRAME_HEADER = "!HHH"
FRAME_HEADER_SIZE = struct.calcsize(FRAME_HEADER)

#: largest U-Net message U-Net/OS carries in one datagram; comfortably
#: above both simulated substrates' PDUs and far below any datagram limit
DEFAULT_MAX_PDU = 4096


class LiveTag:
    """Message tag of one live channel (the EthernetTag analogue)."""

    __slots__ = ("dest_address", "dst_port", "src_node", "src_port")

    def __init__(self, dest_address, dst_port: int, src_node: int, src_port: int) -> None:
        self.dest_address = dest_address
        self.dst_port = dst_port
        self.src_node = src_node
        self.src_port = src_port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveTag dst={self.dest_address!r}:{self.dst_port} "
                f"src=n{self.src_node}:{self.src_port}>")


class LiveBackend:
    """One node: transport socket + demux + endpoints + doorbell loop."""

    name = "U-Net/OS"
    #: lets :func:`repro.faults.scripted.scripted_stage_factory` pick the
    #: datagram stage and skip the frame header when content-addressing
    frame_header_size = FRAME_HEADER_SIZE

    def __init__(self, transport: LiveTransport, clock: Clock,
                 node_id: int = 0, node_name: str = "n0",
                 max_pdu: int = DEFAULT_MAX_PDU) -> None:
        self.transport = transport
        self.clock = clock
        self.sim = ClockShim(clock)
        self.node_id = node_id
        self.node_name = node_name
        self._max_pdu = max_pdu
        self.endpoints: List[Endpoint] = []
        self._next_endpoint_id = 0
        self._next_port = 1
        self.demux = ShardedDemux(name=f"{node_name}.demux")
        #: optional ingress fault stage (conformance schedules interpose
        #: here, at the framing layer): ``process(raw, now_us, emit)``
        self._ingress_stage = None
        #: (due_us, tiebreak, raw) — datagrams a fault stage delayed
        self._held: List[Tuple[float, int, bytes]] = []
        self._held_count = 0
        # kernel-level drop accounting (shared DROP_COUNTERS vocabulary)
        self.recv_queue_drops = 0
        self.no_buffer_drops = 0
        self.quarantine_drops = 0
        self.admission_rejected_drops = 0
        #: optional :class:`~repro.core.tenancy.AdmissionController`,
        #: same contract as the simulated backends
        self.admission = None
        self.closed = False

    # -- endpoint lifecycle ------------------------------------------------
    @property
    def max_pdu(self) -> int:
        return self._max_pdu

    def create_endpoint(self, config: Optional[EndpointConfig] = None,
                        owner: str = "", tenant: str = "", qos: str = "") -> Endpoint:
        if self.admission is not None:
            from ..core.tenancy import qos_class
            try:
                self.admission.admit(tenant, qos_class(qos))
            except AdmissionRejected:
                self.admission_rejected_drops += 1
                raise
        endpoint = Endpoint(self.sim, self._next_endpoint_id,
                            config or EndpointConfig(), owner=owner,
                            tenant=tenant, qos=qos)
        self._next_endpoint_id += 1
        self.endpoints.append(endpoint)
        return endpoint

    def create_user_endpoint(self, config: Optional[EndpointConfig] = None,
                             rx_buffers: int = 32, owner: str = "",
                             tenant: str = "", qos: str = "") -> "LiveUserEndpoint":
        endpoint = self.create_endpoint(config, owner=owner or self.node_name,
                                        tenant=tenant, qos=qos)
        user = LiveUserEndpoint(self, endpoint)
        user.donate_rx_buffers(rx_buffers)
        return user

    def destroy_endpoint(self, endpoint: Endpoint) -> None:
        """Teardown: stop demultiplexing to it; in-flight datagrams for
        it die at the demux step as unknown tags (protection)."""
        if endpoint not in self.endpoints:
            raise EndpointError(
                f"endpoint {endpoint.id} does not belong to {self.node_name}")
        self.endpoints.remove(endpoint)
        self.demux.unregister_endpoint(endpoint)
        if self.admission is not None:
            self.admission.release(endpoint.tenant)

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # -- doorbell / service loop -------------------------------------------
    def kick(self, endpoint: Endpoint) -> int:
        """Drain ``endpoint``'s send queue onto the socket (synchronous).

        Returns the number of descriptors handed to the kernel.  A
        would-block leaves the head descriptor queued for the next pass.
        """
        if self.closed:
            return 0  # teardown: queued descriptors die with the node
        sent = 0
        while True:
            descriptor = endpoint.send_queue.peek()
            if descriptor is None:
                break
            binding = endpoint.channels.get(descriptor.channel_id)
            if binding is None:
                # validated at post_send; a vanished channel means teardown
                endpoint.take_send_descriptor()
                continue
            tag: LiveTag = binding.tag
            payload = b"".join(
                endpoint.buffers.buffer(idx).read(length)
                for idx, length in descriptor.segments)
            frame = struct.pack(FRAME_HEADER, tag.dst_port, tag.src_node,
                                tag.src_port) + payload
            if not self.transport.send(tag.dest_address, frame):
                break  # backpressure: retry on the next doorbell pass
            endpoint.take_send_descriptor()
            endpoint.send_completed(descriptor)
            binding.messages_sent += 1
            sent += 1
        return sent

    def service(self) -> int:
        """One doorbell-loop pass: egress drain, ingress drain, held
        (fault-delayed) datagrams whose deadline passed.  Returns the
        number of datagrams delivered toward endpoints."""
        if self.closed:
            return 0
        for endpoint in self.endpoints:
            if not endpoint.send_queue.is_empty:
                self.kick(endpoint)
        delivered = 0
        now = self.clock.now_us()
        for raw in self.transport.recv_batch():
            delivered += self._ingress(raw, now)
        while self._held and self._held[0][0] <= self.clock.now_us():
            _due, _n, raw = heapq.heappop(self._held)
            delivered += self._deliver(raw)
        return delivered

    def install_ingress_stage(self, stage) -> None:
        """Interpose a fault stage at the framing layer (ingress side)."""
        self._ingress_stage = stage

    def _ingress(self, raw: bytes, now: float) -> int:
        if self._ingress_stage is None:
            return self._deliver(raw)
        delivered = 0

        def emit(pdu, delay_us: float = 0.0) -> None:
            nonlocal delivered
            if delay_us <= 0.0:
                delivered += self._deliver(pdu)
            else:
                self._held_count += 1
                heapq.heappush(self._held, (now + delay_us, self._held_count, pdu))

        self._ingress_stage.process(raw, now, emit)
        return delivered

    def _deliver(self, raw: bytes) -> int:
        """Demux one datagram to its endpoint's receive queue."""
        if len(raw) < FRAME_HEADER_SIZE:
            return 0
        dst_port, src_node, src_port = struct.unpack(
            FRAME_HEADER, raw[:FRAME_HEADER_SIZE])
        payload = raw[FRAME_HEADER_SIZE:]
        entry = self.demux.lookup((dst_port, src_node, src_port))
        if entry is None:
            return 0  # unknown tag: counted by the demux table
        endpoint, channel_id = entry
        if endpoint.quarantined:
            self.quarantine_drops += 1
            endpoint.note_drop("quarantine_drops")
            return 0
        if len(payload) <= SMALL_MESSAGE_MAX:
            descriptor = RecvDescriptor(channel_id=channel_id,
                                        length=len(payload), inline=payload)
        else:
            size = endpoint.buffers.buffer_size
            needed = (len(payload) + size - 1) // size
            indices: List[int] = []
            for _ in range(needed):
                index = endpoint.take_free_buffer()
                if index is None:
                    for idx in indices:  # partial claim: give them back
                        endpoint.donate_free_buffer(idx)
                    self.no_buffer_drops += 1
                    endpoint.note_drop("no_buffer_drops")
                    return 0
                indices.append(index)
            segments = []
            for k, index in enumerate(indices):
                chunk = payload[k * size:(k + 1) * size]
                buf = endpoint.buffers.buffer(index)
                buf.clear()
                buf.write(chunk)
                segments.append((index, len(chunk)))
            descriptor = RecvDescriptor(channel_id=channel_id,
                                        length=len(payload), segments=segments)
        if not endpoint.deliver(descriptor):
            # receive queue full: recycle the buffers we just claimed
            for index, _length in descriptor.segments:
                endpoint.donate_free_buffer(index)
            self.recv_queue_drops += 1
            return 0
        return 1

    # -- accounting ---------------------------------------------------------
    def drop_stats(self) -> dict:
        return {
            "recv_queue_drops": self.recv_queue_drops,
            "no_buffer_drops": self.no_buffer_drops,
            "unknown_tag_drops": self.demux.unknown_tag_drops,
            "quarantine_drops": self.quarantine_drops,
            "stale_epoch_drops": sum(ep.stale_epoch_drops for ep in self.endpoints),
            "peer_dead_drops": sum(ep.peer_dead_drops for ep in self.endpoints),
            "admission_rejected_drops": self.admission_rejected_drops,
        }

    def close(self) -> None:
        """Idempotent teardown: the socket FD is released exactly once,
        no matter what state the doorbell loop or any armed AM
        retransmission timer was in when the node went down."""
        if self.closed:
            return
        self.closed = True
        self.transport.close()


class LiveUserEndpoint:
    """Synchronous application-side wrapper (the live ``UserEndpoint``).

    Same contract as :class:`repro.core.api.UserEndpoint` — compose into
    the buffer area, push a validated descriptor, ring the doorbell —
    but blocking is explicit polling against the wall clock instead of
    simulation events.
    """

    def __init__(self, backend: LiveBackend, endpoint: Endpoint) -> None:
        self.backend = backend
        self.endpoint = endpoint
        self._tx_inflight: List[Tuple[SendDescriptor, List[int]]] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.backend.destroy_endpoint(self.endpoint)

    # -- sending -----------------------------------------------------------
    def send(self, channel_id: int, payload: bytes, kick: bool = True) -> None:
        if self._closed:
            raise EndpointError(f"endpoint {self.endpoint.id} is closed")
        if len(payload) > self.backend.max_pdu:
            raise MessageTooLarge(
                f"{len(payload)} bytes > max PDU {self.backend.max_pdu}")
        lookup_channel(self.endpoint, channel_id)  # protection check
        self._reclaim_completed()
        buffers = self._compose_buffers(payload)
        descriptor = SendDescriptor(
            channel_id=channel_id,
            segments=[(buf.index, length) for buf, length in buffers])
        if self.endpoint.send_queue.is_full:
            self.backend.kick(self.endpoint)  # drain in our own context
        if self.endpoint.send_queue.is_full:
            for buf, _length in buffers:
                self.endpoint.buffers.free(buf)
            raise EndpointError(
                f"endpoint {self.endpoint.id}: send queue full "
                f"(transport backpressure)")
        self.endpoint.post_send(descriptor)
        self.endpoint.messages_sent += 1
        self.endpoint.bytes_sent += len(payload)
        self._tx_inflight.append((descriptor, [buf.index for buf, _l in buffers]))
        if kick:
            self.backend.kick(self.endpoint)

    def kick(self) -> None:
        self.backend.kick(self.endpoint)

    def _compose_buffers(self, payload: bytes):
        size = self.endpoint.buffers.buffer_size
        if not payload:
            return [(self._alloc_tx_buffer(), 0)]
        buffers = []
        for start in range(0, len(payload), size):
            chunk = payload[start:start + size]
            buf = self._alloc_tx_buffer()
            buf.write(chunk)
            buffers.append((buf, len(chunk)))
        return buffers

    def _alloc_tx_buffer(self):
        buf = self.endpoint.buffers.try_alloc()
        if buf is None:
            # live sends complete at kick time, so one reclaim pass is
            # the whole backpressure story
            self.backend.kick(self.endpoint)
            self._reclaim_completed()
            buf = self.endpoint.buffers.try_alloc()
        if buf is None:
            raise EndpointError(
                f"endpoint {self.endpoint.id}: buffer area exhausted")
        return buf

    def _reclaim_completed(self) -> None:
        still = []
        for descriptor, indices in self._tx_inflight:
            if descriptor.completed:
                for idx in indices:
                    self.endpoint.buffers.free(self.endpoint.buffers.buffer(idx))
            else:
                still.append((descriptor, indices))
        self._tx_inflight[:] = still

    # -- receiving ---------------------------------------------------------
    def donate_rx_buffers(self, count: int) -> None:
        for _ in range(count):
            buf = self.endpoint.buffers.try_alloc()
            if buf is None:
                raise EndpointError(
                    "buffer area exhausted while donating receive buffers")
            self.endpoint.donate_free_buffer(buf.index)

    def poll(self) -> Optional[ReceivedMessage]:
        descriptor = self.endpoint.poll_receive()
        if descriptor is None:
            return None
        return self._consume(descriptor)

    def _consume(self, descriptor: RecvDescriptor) -> ReceivedMessage:
        data = self.endpoint.read_message(descriptor)
        self.endpoint.recycle(descriptor)
        binding = self.endpoint.channels.get(descriptor.channel_id)
        if binding is not None:
            binding.messages_received += 1
        return ReceivedMessage(descriptor.channel_id, data, descriptor.timestamp)


class LiveCluster:
    """N live nodes in one process, serviced by one polling loop.

    The cluster is the live stand-in for a simulated network object:
    it creates nodes (one transport socket each), wires channels (tags
    plus demux rows on both sides — the OS-mediated channel service),
    and pumps every node's doorbell loop from :meth:`step`.
    """

    def __init__(self, make_transport: Callable[[str], LiveTransport],
                 clock: Clock, max_pdu: int = DEFAULT_MAX_PDU) -> None:
        self._make_transport = make_transport
        self.clock = clock
        self.max_pdu = max_pdu
        self.nodes: List[LiveBackend] = []

    def add_node(self, name: Optional[str] = None) -> LiveBackend:
        node_id = len(self.nodes)
        node_name = name or f"n{node_id}"
        backend = LiveBackend(self._make_transport(node_name), self.clock,
                              node_id=node_id, node_name=node_name,
                              max_pdu=self.max_pdu)
        self.nodes.append(backend)
        return backend

    def connect(self, a: LiveUserEndpoint, b: LiveUserEndpoint) -> Tuple[int, int]:
        """Create the channel pair between two live endpoints.

        Returns ``(channel_on_a, channel_on_b)``, mirroring the
        simulated networks' ``connect``.
        """
        node_a, node_b = a.backend, b.backend
        port_a, port_b = node_a.allocate_port(), node_b.allocate_port()
        ch_a = len(a.endpoint.channels)
        ch_b = len(b.endpoint.channels)
        register_channel(a.endpoint, ch_a,
                         LiveTag(node_b.transport.address, port_b,
                                 node_a.node_id, port_a),
                         peer=node_b.node_name)
        register_channel(b.endpoint, ch_b,
                         LiveTag(node_a.transport.address, port_a,
                                 node_b.node_id, port_b),
                         peer=node_a.node_name)
        node_a.demux.register((port_a, node_b.node_id, port_b), a.endpoint, ch_a)
        node_b.demux.register((port_b, node_a.node_id, port_a), b.endpoint, ch_b)
        return ch_a, ch_b

    def step(self) -> int:
        """Service every node once; returns datagrams delivered."""
        return sum(node.service() for node in self.nodes)

    def run_until(self, predicate: Callable[[], bool], limit_us: float,
                  idle_sleep_us: float = 50.0) -> bool:
        """Pump the cluster until ``predicate()`` or the wall deadline.

        Sleeps briefly only when a full pass moved no data, so the loop
        busy-polls under load (the doorbell model) without pinning a
        CPU while idle.
        """
        deadline = self.clock.now_us() + limit_us
        while self.clock.now_us() < deadline:
            if predicate():
                return True
            if self.step() == 0 and idle_sleep_us > 0:
                self.clock.sleep_us(idle_sleep_us)
        return predicate()

    def close(self) -> None:
        """Close every node's transport, even when one close raises.

        An abrupt teardown (a soak aborting mid-crash-fault, a test
        failing with retransmit timers armed) must not leak the
        remaining nodes' socket FDs because the first node's close blew
        up; the first error is re-raised after all sockets are released.
        """
        first_error: Optional[BaseException] = None
        for node in self.nodes:
            try:
                node.close()
            except Exception as exc:  # pragma: no cover - defensive
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
