"""Doorbell modes for the live substrate: fast-trap vs interrupt, reborn.

The paper's §3 dichotomy — poll a doorbell word (U-Net/ATM's i960 spin
loop, U-Net/FE's fast trap) or take an interrupt and pay the wakeup —
maps onto the modern userspace-networking choice between busy-polling a
non-blocking socket and parking in ``epoll_wait`` until the kernel says
a datagram arrived.  :data:`DOORBELL_MODES` names the three stances the
live backend can take:

* ``busy-poll`` — the PR-4 baseline: every service pass issues
  non-blocking syscalls, one per datagram, and idle passes sleep a
  fixed 50 µs.  Lowest latency under load, burns syscalls while idle.
* ``event`` — interrupt-analogue: same scalar data path, but an idle
  cluster parks in :class:`EventDoorbell` (``selectors``/epoll) and is
  woken by readability instead of sleeping blind.
* ``batched`` — fast-trap amortized: egress composes frames into a
  zero-copy pool and flushes up to a batch per doorbell ring
  (``sendmmsg``), ingress drains straight into pool slices
  (``recvmmsg``/``recvmsg_into``), driving syscalls-per-message well
  below 1.

This module is a declared determinism-lint boundary (with ``clock.py``):
``selectors`` blocks on the wall clock, so it is banned everywhere else
in ``src/repro``.
"""

from __future__ import annotations

import selectors
from typing import Dict, Iterable

__all__ = ["DOORBELL_MODES", "DEFAULT_DOORBELL_MODE", "validate_doorbell_mode",
           "EventDoorbell"]

#: the three stances; also the CLI/bench/conformance vocabulary
DOORBELL_MODES = ("busy-poll", "event", "batched")
DEFAULT_DOORBELL_MODE = "busy-poll"


def validate_doorbell_mode(mode: str) -> str:
    if mode not in DOORBELL_MODES:
        raise ValueError(f"unknown doorbell mode {mode!r}; "
                         f"choose from {DOORBELL_MODES}")
    return mode


class EventDoorbell:
    """Readability-wait over a set of live sockets (the interrupt line).

    ``sync`` keeps the selector's registrations matching the cluster's
    current sockets — nodes crash and restart mid-run, so membership is
    re-reconciled before every wait rather than tracked by callbacks.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._registered: Dict[int, object] = {}

    def sync(self, socks: Iterable) -> None:
        """Register new sockets, drop closed/vanished ones."""
        current = {}
        for sock in socks:
            if sock is None:
                continue
            try:
                current[sock.fileno()] = sock
            except (OSError, ValueError):
                continue  # closed underneath us
        for fd in list(self._registered):
            if fd not in current:
                try:
                    self._selector.unregister(self._registered[fd])
                except (KeyError, ValueError, OSError):
                    pass
                del self._registered[fd]
        for fd, sock in current.items():
            if fd not in self._registered:
                try:
                    self._selector.register(sock, selectors.EVENT_READ)
                except (KeyError, ValueError, OSError):
                    continue
                self._registered[fd] = sock

    def wait_us(self, timeout_us: float) -> int:
        """Park until a registered socket is readable or the timeout
        lapses; returns how many sockets woke us (0 on timeout)."""
        if not self._registered:
            return 0
        try:
            return len(self._selector.select(max(0.0, timeout_us) / 1e6))
        except OSError:
            return 0  # a watched fd died mid-wait; sync() will prune it

    def close(self) -> None:
        self._registered.clear()
        self._selector.close()
