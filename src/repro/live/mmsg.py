"""ctypes ``sendmmsg``/``recvmmsg``: many datagrams per kernel crossing.

The paper's whole argument is amortizing the cost of crossing a
protection boundary; Linux grew the same amortization for sockets in
``sendmmsg(2)``/``recvmmsg(2)`` — one trap moves a vector of datagrams.
CPython never wrapped them, so this module reaches them through ctypes.
Everything is probed at import: on platforms without the symbols (or
without Linux struct layouts) :func:`mmsg_available` is False and the
transport quietly uses its portable per-datagram loop — same semantics,
more syscalls.  :func:`mmsg_path` reports which path is live so tests
and CI can log (and ``skipif``) it explicitly.

The hot-path contract: all ctypes arrays (headers, iovecs, sockaddr
scratch) are preallocated once per :class:`MmsgBatch`; filling a slot
for one message is a couple of integer stores.  Payloads are addressed
in place — a :class:`~repro.live.bufpool.PooledSlice` hands over its
stable arena address, ``bytes`` lends its internal pointer for the
duration of the call — so batching composes with the zero-copy pool
rather than undoing it.
"""

from __future__ import annotations

import ctypes
import errno
import socket
import struct
import sys
from typing import List, Optional, Sequence, Tuple

__all__ = ["MMSG_MAX_BATCH", "mmsg_available", "mmsg_path", "MmsgBatch",
           "pack_sockaddr"]

#: datagrams per sendmmsg/recvmmsg call (also the preallocation bound)
MMSG_MAX_BATCH = 64

_MSG_DONTWAIT = int(getattr(socket, "MSG_DONTWAIT", 0x40))
_MSG_TRUNC = int(getattr(socket, "MSG_TRUNC", 0x20))
_SOCKADDR_MAX = 128  # >= sizeof(struct sockaddr_un) on Linux (110)


class _iovec(ctypes.Structure):
    _fields_ = [("iov_base", ctypes.c_void_p),
                ("iov_len", ctypes.c_size_t)]


class _msghdr(ctypes.Structure):
    # glibc layout; ctypes inserts the same natural-alignment padding
    _fields_ = [("msg_name", ctypes.c_void_p),
                ("msg_namelen", ctypes.c_uint),
                ("msg_iov", ctypes.POINTER(_iovec)),
                ("msg_iovlen", ctypes.c_size_t),
                ("msg_control", ctypes.c_void_p),
                ("msg_controllen", ctypes.c_size_t),
                ("msg_flags", ctypes.c_int)]


class _mmsghdr(ctypes.Structure):
    _fields_ = [("msg_hdr", _msghdr),
                ("msg_len", ctypes.c_uint)]


def _load() -> Tuple[Optional[object], Optional[object]]:
    """The (sendmmsg, recvmmsg) foreign functions, or (None, None)."""
    if not sys.platform.startswith("linux"):
        return None, None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        sendmmsg = libc.sendmmsg
        recvmmsg = libc.recvmmsg
    except (OSError, AttributeError):
        return None, None
    sendmmsg.restype = ctypes.c_int
    sendmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_mmsghdr),
                         ctypes.c_uint, ctypes.c_int]
    recvmmsg.restype = ctypes.c_int
    recvmmsg.argtypes = [ctypes.c_int, ctypes.POINTER(_mmsghdr),
                         ctypes.c_uint, ctypes.c_int, ctypes.c_void_p]
    return sendmmsg, recvmmsg


_SENDMMSG, _RECVMMSG = _load()


def mmsg_available() -> bool:
    """True when the ctypes sendmmsg/recvmmsg path is usable here."""
    return _SENDMMSG is not None and _RECVMMSG is not None


def mmsg_path() -> str:
    """Human-readable name of the active batching path (CI log line)."""
    if mmsg_available():
        return "sendmmsg/recvmmsg (ctypes)"
    return "portable sendto/recvmsg_into loop"


def pack_sockaddr(family: int, address) -> bytes:
    """``address`` as the raw ``struct sockaddr`` bytes sendmmsg wants."""
    if family == getattr(socket, "AF_UNIX", -1):
        path = address.encode() if isinstance(address, str) else bytes(address)
        if len(path) + 3 > _SOCKADDR_MAX:
            raise ValueError(f"AF_UNIX path too long: {address!r}")
        return struct.pack("@H", family) + path + b"\x00"
    if family == socket.AF_INET:
        host, port = address
        return (struct.pack("@H", family) + struct.pack("!H", port)
                + socket.inet_aton(host) + b"\x00" * 8)
    raise ValueError(f"unsupported address family {family}")


def _payload_address(payload) -> Tuple[int, int, Optional[object]]:
    """(address, length, keepalive) for anything we send from.

    PooledSlice exposes a stable arena address; ``bytes`` lends its
    internal pointer (valid while the object lives — hence keepalive);
    writable buffers go through ``from_buffer``.
    """
    address = getattr(payload, "address", None)
    if address is not None:
        return address, payload.length, None
    if isinstance(payload, bytes):
        anchor = ctypes.c_char_p(payload)
        return ctypes.cast(anchor, ctypes.c_void_p).value or 0, len(payload), anchor
    anchor = (ctypes.c_char * len(payload)).from_buffer(payload)
    return ctypes.addressof(anchor), len(anchor), anchor


class MmsgBatch:
    """Preallocated scratch for one socket's mmsg calls."""

    def __init__(self, max_batch: int = MMSG_MAX_BATCH) -> None:
        if not mmsg_available():
            raise RuntimeError("sendmmsg/recvmmsg are not available here")
        self.max_batch = max_batch
        self._headers = (_mmsghdr * max_batch)()
        self._iovecs = (_iovec * max_batch)()
        self._names = [ctypes.create_string_buffer(_SOCKADDR_MAX)
                       for _ in range(max_batch)]
        # everything that never varies is wired up once here: iovec and
        # sockaddr pointers, control fields.  ctypes attribute stores
        # are the expensive part of a fill, so the per-message work
        # below is reduced to the fields that actually change — and
        # each of those is cached and skipped when it repeats, which on
        # one-destination fixed-size traffic leaves ~one store/message.
        self._name_ptrs = [ctypes.cast(name, ctypes.c_void_p)
                           for name in self._names]
        for i in range(max_batch):
            hdr = self._headers[i].msg_hdr
            hdr.msg_name = self._name_ptrs[i]
            hdr.msg_namelen = 0
            hdr.msg_iov = ctypes.pointer(self._iovecs[i])
            hdr.msg_iovlen = 1
            hdr.msg_control = None
            hdr.msg_controllen = 0
        self._slot_name: List[Optional[bytes]] = [None] * max_batch
        self._slot_len: List[int] = [-1] * max_batch
        self._rx_armed = 0  # slots already pointed at msg_name=NULL

    # -- egress --------------------------------------------------------------
    def sendmmsg(self, fd: int,
                 msgs: Sequence[Tuple[bytes, object]]) -> int:
        """Send ``[(packed_sockaddr, payload), ...]`` in one syscall.

        Returns how many the kernel accepted (0..len).  Raises OSError
        with the kernel errno when not even the first one went —
        EAGAIN/ECONNREFUSED dispositions are the *caller's* policy, the
        same as for a scalar ``sendto``.
        """
        count = min(len(msgs), self.max_batch)
        keepalive: List[object] = []
        headers, iovecs = self._headers, self._iovecs
        slot_name, slot_len = self._slot_name, self._slot_len
        for i in range(count):
            name, payload = msgs[i]
            if slot_name[i] != name:
                self._names[i].raw = name
                hdr = headers[i].msg_hdr
                hdr.msg_name = self._name_ptrs[i]  # re-arm after a recv
                hdr.msg_namelen = len(name)
                slot_name[i] = name
            address = getattr(payload, "address", None)
            if address is not None:
                length = payload.length
            else:
                address, length, anchor = _payload_address(payload)
                if anchor is not None:
                    keepalive.append(anchor)
            iovecs[i].iov_base = address
            if slot_len[i] != length:
                iovecs[i].iov_len = length
                slot_len[i] = length
        self._rx_armed = 0  # sockaddr pointers are live again
        sent = _SENDMMSG(fd, headers, count, _MSG_DONTWAIT)
        del keepalive
        if sent < 0:
            err = ctypes.get_errno()
            raise OSError(err, f"sendmmsg failed: errno {err}")
        return sent

    def sendmmsg_same(self, fd: int, name: Optional[bytes],
                      payloads: Sequence) -> int:
        """:meth:`sendmmsg` with every datagram bound for ``name``.

        The single-destination shape of a channel burst: the sockaddr
        compare-and-skip happens once per slot instead of once per
        message-tuple, and no ``(dest, payload)`` pairs are built.
        ``name=None`` sends on a connected socket — msg_name NULL, the
        same slot state receives use, so the arming bookkeeping is
        shared and steady-state bursts store nothing but iov_base.
        """
        count = min(len(payloads), self.max_batch)
        keepalive: List[object] = []
        headers, iovecs = self._headers, self._iovecs
        slot_name, slot_len = self._slot_name, self._slot_len
        if name is None:
            for i in range(self._rx_armed, count):
                hdr = headers[i].msg_hdr
                hdr.msg_name = None
                hdr.msg_namelen = 0
                slot_name[i] = None
            if count > self._rx_armed:
                self._rx_armed = count
        for i in range(count):
            payload = payloads[i]
            if slot_name[i] != name:
                self._names[i].raw = name
                hdr = headers[i].msg_hdr
                hdr.msg_name = self._name_ptrs[i]  # re-arm after a recv
                hdr.msg_namelen = len(name)
                slot_name[i] = name
            address = getattr(payload, "address", None)
            if address is not None:
                length = payload.length
            else:
                address, length, anchor = _payload_address(payload)
                if anchor is not None:
                    keepalive.append(anchor)
            iovecs[i].iov_base = address
            if slot_len[i] != length:
                iovecs[i].iov_len = length
                slot_len[i] = length
        if name is not None:
            self._rx_armed = 0  # sockaddr pointers are live again
        sent = _SENDMMSG(fd, headers, count, _MSG_DONTWAIT)
        del keepalive
        if sent < 0:
            err = ctypes.get_errno()
            raise OSError(err, f"sendmmsg failed: errno {err}")
        return sent

    # -- ingress -------------------------------------------------------------
    def recvmmsg(self, fd: int, views: Sequence) -> List[Tuple[int, bool]]:
        """Fill ``views`` (PooledSlices or writable buffers) from ``fd``.

        One syscall; returns ``(nbytes, truncated)`` per datagram
        received, possibly empty.  Raises OSError on a real error;
        EAGAIN comes back as the empty list (nothing waiting).
        """
        count = min(len(views), self.max_batch)
        keepalive: List[object] = []
        headers, iovecs = self._headers, self._iovecs
        slot_name, slot_len = self._slot_name, self._slot_len
        for i in range(count):
            view = views[i]
            address = getattr(view, "address", None)
            if address is not None:
                length = view.pool.slot_size
            else:
                anchor = (ctypes.c_char * len(view)).from_buffer(view)
                keepalive.append(anchor)
                address, length = ctypes.addressof(anchor), len(view)
            if i >= self._rx_armed:
                # receives take no sockaddr; disarm the slot's pointer
                # once and remember (sendmmsg re-arms lazily)
                headers[i].msg_hdr.msg_name = None
                headers[i].msg_hdr.msg_namelen = 0
                slot_name[i] = None
            iovecs[i].iov_base = address
            if slot_len[i] != length:
                iovecs[i].iov_len = length
                slot_len[i] = length
        self._rx_armed = max(self._rx_armed, count)
        got = _RECVMMSG(fd, headers, count, _MSG_DONTWAIT, None)
        del keepalive
        if got < 0:
            err = ctypes.get_errno()
            if err in (errno.EAGAIN, getattr(errno, "EWOULDBLOCK", errno.EAGAIN),
                       errno.EINTR):
                return []  # nothing waiting
            raise OSError(err, f"recvmmsg failed: errno {err}")
        return [(self._headers[i].msg_len,
                 bool(self._headers[i].msg_hdr.msg_flags & _MSG_TRUNC))
                for i in range(got)]
