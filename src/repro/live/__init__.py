"""U-Net/OS: the live substrate over real OS transports.

Where :mod:`repro.atm` and :mod:`repro.ethernet` model the paper's two
network interfaces inside the discrete-event simulator, this package
implements the same endpoint/channel/queue architecture over actual
operating-system primitives — AF_UNIX datagram sockets (same-host,
SHM-like) and UDP loopback (cross-process) — with a polling doorbell
loop standing in for the fast trap.  The descriptors, the demux table,
the drop-accounting vocabulary, and the Active Messages wire protocol
are shared with the simulated substrates; only time is real.

Importing this package registers the ``live``/``live-unix``/``live-udp``
substrates with :mod:`repro.core.substrates` so the conformance checker
and CLI can name them without special-casing.
"""

from .am import LiveAm, LiveRequestContext
from .bench import (
    BENCH_FORMAT,
    BENCH_SCHEMA,
    bench_bandwidth,
    bench_incast,
    bench_round_trip,
    render_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from .backend import (
    DEFAULT_MAX_PDU,
    FRAME_HEADER,
    FRAME_HEADER_SIZE,
    LiveBackend,
    LiveCluster,
    LiveTag,
    LiveUserEndpoint,
)
from .bufpool import BufferPool, PooledSlice, PoolExhausted
from .clock import WallClock
from .conform import LIVE_BUGS, inject_live_bug, register_live_substrates, run_live_case
from .doorbell import DEFAULT_DOORBELL_MODE, DOORBELL_MODES, EventDoorbell
from .mmsg import mmsg_available, mmsg_path
from .transport import (
    TRANSPORT_KINDS,
    LiveTransport,
    TransportError,
    UdpLoopbackTransport,
    UnixDgramTransport,
    available_transport_kinds,
    make_transport,
    transport_available,
)

__all__ = [
    "LiveAm",
    "LiveRequestContext",
    "LiveBackend",
    "LiveCluster",
    "LiveTag",
    "LiveUserEndpoint",
    "WallClock",
    "LiveTransport",
    "UnixDgramTransport",
    "UdpLoopbackTransport",
    "TransportError",
    "TRANSPORT_KINDS",
    "transport_available",
    "available_transport_kinds",
    "make_transport",
    "run_live_case",
    "inject_live_bug",
    "LIVE_BUGS",
    "register_live_substrates",
    "FRAME_HEADER",
    "FRAME_HEADER_SIZE",
    "DEFAULT_MAX_PDU",
    "BufferPool",
    "PooledSlice",
    "PoolExhausted",
    "DOORBELL_MODES",
    "DEFAULT_DOORBELL_MODE",
    "EventDoorbell",
    "mmsg_available",
    "mmsg_path",
    "BENCH_FORMAT",
    "BENCH_SCHEMA",
    "bench_round_trip",
    "bench_bandwidth",
    "bench_incast",
    "run_bench",
    "render_bench",
    "validate_bench",
    "write_bench",
]

register_live_substrates()
